/**
 * @file
 * Tests for the controller's host interface: copy-on-write, buffer
 * hits, foreground stalls and the populate placements.
 */

#include <gtest/gtest.h>

#include <vector>

#include "envy/envy_store.hh"

namespace envy {
namespace {

EnvyConfig
smallConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 16; // small, to exercise flushing
    cfg.storeData = true;
    cfg.policy = PolicyKind::Hybrid;
    cfg.partitionSize = 4;
    return cfg;
}

TEST(Controller, FirstWriteIsCowSecondIsBufferHit)
{
    EnvyStore store(smallConfig());
    Controller &ctl = store.controller();

    const std::uint8_t v1[4] = {1, 2, 3, 4};
    const auto out1 = ctl.write(4096, v1);
    EXPECT_TRUE(out1.cow);
    EXPECT_FALSE(out1.hitSram);

    const std::uint8_t v2[4] = {5, 6, 7, 8};
    const auto out2 = ctl.write(4100, v2);
    EXPECT_FALSE(out2.cow);
    EXPECT_TRUE(out2.hitSram);

    EXPECT_EQ(ctl.statCows.value(), 1u);
    EXPECT_EQ(ctl.statBufferHits.value(), 1u);
}

TEST(Controller, CowInvalidatesOldFlashCopy)
{
    EnvyStore store(smallConfig());
    Controller &ctl = store.controller();
    const auto before =
        store.flash().statPagesInvalidated.value();
    const std::uint8_t v[1] = {9};
    ctl.write(0, v);
    EXPECT_EQ(store.flash().statPagesInvalidated.value(), before + 1);
}

TEST(Controller, ReadsSeeWritesAcrossFlushes)
{
    EnvyStore store(smallConfig());
    store.writeU64(1000, 0xFACEFEEDull);
    store.flushAll();
    EXPECT_EQ(store.readU64(1000), 0xFACEFEEDull);
    // Rewrite after the flush: a second COW.
    store.writeU64(1000, 0xBEEF);
    EXPECT_EQ(store.readU64(1000), 0xBEEFull);
}

TEST(Controller, WritesSpanPageBoundaries)
{
    EnvyStore store(smallConfig());
    const std::uint32_t ps = store.config().geom.pageSize;
    std::vector<std::uint8_t> data(3 * ps);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);

    const Addr addr = 5 * ps - 13; // straddles three pages
    store.write(addr, data);
    std::vector<std::uint8_t> back(data.size());
    store.read(addr, back);
    EXPECT_EQ(back, data);
}

TEST(Controller, UnpopulatedStoreReadsZeroes)
{
    EnvyConfig cfg = smallConfig();
    cfg.prePopulate = false;
    EnvyStore store(cfg);
    EXPECT_EQ(store.readU64(12345), 0u);
    // And a write to unmapped space works (COW from nothing).
    store.writeU32(12345, 77);
    EXPECT_EQ(store.readU32(12345), 77u);
    EXPECT_EQ(store.readU32(12341), 0u);
}

TEST(Controller, AutoDrainKeepsBufferAtThreshold)
{
    EnvyConfig cfg = smallConfig();
    cfg.bufferThreshold = 8;
    EnvyStore store(cfg);
    // Touch many distinct pages; the buffer must stay bounded.
    const std::uint32_t ps = cfg.geom.pageSize;
    for (std::uint64_t p = 0; p < 200; ++p)
        store.writeU8(p * ps, static_cast<std::uint8_t>(p));
    EXPECT_LT(store.writeBuffer().size(), 9u);
    // All data readable.
    for (std::uint64_t p = 0; p < 200; ++p)
        EXPECT_EQ(store.readU8(p * ps), static_cast<std::uint8_t>(p));
}

TEST(Controller, FullBufferForcesForegroundFlush)
{
    EnvyConfig cfg = smallConfig();
    cfg.autoDrain = false; // nobody drains in the background
    EnvyStore store(cfg);
    Controller &ctl = store.controller();
    const std::uint32_t ps = cfg.geom.pageSize;

    const std::uint32_t cap = store.writeBuffer().capacity();
    for (std::uint64_t p = 0; p < cap + 5; ++p) {
        std::uint8_t v = static_cast<std::uint8_t>(p);
        ctl.write(p * ps, {&v, 1});
    }
    EXPECT_GT(ctl.statForegroundFlushes.value(), 0u);
    EXPECT_TRUE(store.writeBuffer().full());
    for (std::uint64_t p = 0; p < cap + 5; ++p)
        EXPECT_EQ(store.readU8(p * ps), static_cast<std::uint8_t>(p));
}

TEST(Controller, PopulateSequentialFillsInRuns)
{
    EnvyConfig cfg = smallConfig();
    cfg.placement = Controller::Placement::Sequential;
    EnvyStore store(cfg);
    // Page 0 lives in logical segment 0.
    const auto loc = store.pageTable().lookup(LogicalPageId(0));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(store.space().logOf(loc.flash.segment), 0u);
}

TEST(Controller, PopulateAgedFillsSegmentsCompletely)
{
    EnvyConfig cfg = smallConfig();
    cfg.placement = Controller::Placement::Aged;
    cfg.agedStride = 4;
    EnvyStore store(cfg);

    std::uint32_t full = 0, with_free = 0;
    for (std::uint32_t s = 0; s < store.space().numLogical(); ++s) {
        if (store.space().freeSlots(s) == PageCount(0))
            ++full;
        else
            ++with_free;
    }
    // Every 4th segment keeps the free space; the rest are full of
    // live + pre-invalidated slots.
    EXPECT_GT(full, with_free);
    EXPECT_GT(with_free, 0u);
    // Utilization unchanged: exactly logicalPages live.
    EXPECT_EQ(store.flash().totalLive(),
              cfg.geom.effectiveLogicalPages());
    // And the data is all there (zeroes).
    EXPECT_EQ(store.readU64(0), 0u);
}

TEST(Controller, StatsCountHostAccesses)
{
    EnvyStore store(smallConfig());
    Controller &ctl = store.controller();
    store.readU32(0);
    store.writeU32(0, 1);
    EXPECT_EQ(ctl.statHostReads.value(), 1u);
    EXPECT_EQ(ctl.statHostWrites.value(), 1u);
}

TEST(Controller, ProbeReadReportsTlbMiss)
{
    EnvyStore store(smallConfig());
    Controller &ctl = store.controller();
    store.controller().mmu().flushTlb();
    EXPECT_TRUE(ctl.probeRead(0));
    EXPECT_FALSE(ctl.probeRead(0));
}

TEST(ControllerDeathTest, OutOfRangeAccessIsFatal)
{
    EnvyStore store(smallConfig());
    EXPECT_DEATH(store.readU8(store.size()), "beyond");
    EXPECT_DEATH(store.writeU8(store.size() - 1 + 1, 0), "beyond");
}

} // namespace
} // namespace envy
