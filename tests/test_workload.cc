/**
 * @file
 * Tests for the TPC-A access-shape generator against the paper's
 * Figure 12 (record counts, index levels) and for trace record and
 * replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/units.hh"
#include "workload/tpca.hh"
#include "workload/trace.hh"

namespace envy {
namespace {

TEST(TpcaShape, PaperScaleMatchesFigure12)
{
    // Paper: 2 GB store at 80% -> 15.5 million accounts, 1550
    // tellers, 155 branches, trees of 5/3/2 levels.
    const TpcaConfig cfg =
        TpcaConfig::forStoreBytes(std::uint64_t(0.8 * 2 * GiB));
    TpcaWorkload w(cfg, 1);

    EXPECT_NEAR(static_cast<double>(cfg.numAccounts), 15.5e6, 0.5e6);
    EXPECT_EQ(cfg.numTellers(),
              (cfg.numAccounts + 9999) / 10000);
    EXPECT_EQ(w.accountLevels(), 5u);
    EXPECT_EQ(w.tellerLevels(), 3u);
    EXPECT_EQ(w.branchLevels(), 2u);
    // The database fills the store without overflowing it.
    EXPECT_LE(w.footprintBytes(), std::uint64_t(0.8 * 2 * GiB));
    EXPECT_GT(w.footprintBytes(), std::uint64_t(0.7 * 2 * GiB));
}

TEST(TpcaShape, TransactionShape)
{
    TpcaConfig cfg;
    cfg.numAccounts = 100000;
    TpcaWorkload w(cfg, 2);

    std::vector<StorageAccess> txn;
    w.nextTransaction(txn);

    // Reads: probes per node over all three trees' levels plus the
    // record pre-reads; writes: one balance word per record.
    const std::uint32_t levels =
        w.accountLevels() + w.tellerLevels() + w.branchLevels();
    std::uint32_t reads = 0, writes = 0;
    for (const auto &a : txn) {
        (a.isWrite ? writes : reads) += 1;
        EXPECT_EQ(a.bytes, cfg.wordBytes);
    }
    EXPECT_EQ(reads, levels * cfg.probesPerNode +
                         3 * cfg.recordReadWords);
    EXPECT_EQ(writes, 3 * cfg.recordWriteWords);
}

TEST(TpcaShape, WritesHitTheThreeRecords)
{
    TpcaConfig cfg;
    cfg.numAccounts = 50000;
    TpcaWorkload w(cfg, 3);
    std::vector<StorageAccess> txn;
    const std::uint64_t account = w.nextTransaction(txn);
    const std::uint64_t teller = account / cfg.accountsPerTeller;
    const std::uint64_t branch = teller / cfg.tellersPerBranch;

    std::set<Addr> writes;
    for (const auto &a : txn)
        if (a.isWrite)
            writes.insert(a.addr);
    EXPECT_TRUE(writes.count(w.accountRecordAddr(account)));
    EXPECT_TRUE(writes.count(w.tellerRecordAddr(teller)));
    EXPECT_TRUE(writes.count(w.branchRecordAddr(branch)));
}

TEST(TpcaShape, AccountsAreUniform)
{
    TpcaConfig cfg;
    cfg.numAccounts = 1000;
    TpcaWorkload w(cfg, 4);
    std::vector<StorageAccess> txn;
    std::vector<int> hits(cfg.numAccounts, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits[w.nextTransaction(txn)]++;
    for (auto h : hits)
        EXPECT_NEAR(h, 100, 60); // loose 6-sigma-ish band
}

TEST(TpcaShape, InterarrivalsAreExponential)
{
    TpcaConfig cfg;
    cfg.numAccounts = 1000;
    TpcaWorkload w(cfg, 5);
    const double rate = 10000.0;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(w.nextInterarrival(rate));
    // Mean inter-arrival = 1e9 / rate nanoseconds.
    EXPECT_NEAR(sum / n, 1e9 / rate, 1e9 / rate * 0.02);
}

TEST(TpcaShape, RegionsDoNotOverlap)
{
    TpcaConfig cfg;
    cfg.numAccounts = 30000;
    TpcaWorkload w(cfg, 6);
    // Record regions and trees are laid out back to back: spot-check
    // ordering via addresses.
    EXPECT_LT(w.branchRecordAddr(0), w.tellerRecordAddr(0));
    EXPECT_LT(w.tellerRecordAddr(0), w.accountRecordAddr(0));
    EXPECT_LT(w.accountRecordAddr(cfg.numAccounts - 1),
              w.footprintBytes());
}

class BTreeShapeSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BTreeShapeSweep, ShapeInvariants)
{
    const std::uint64_t keys = GetParam();
    BTreeShape tree(keys, 32, 256, 0x1000);

    // Levels: smallest L with 32^L >= keys.
    std::uint64_t reach = 32;
    std::uint32_t expect_levels = 1;
    while (reach < keys) {
        reach *= 32;
        ++expect_levels;
    }
    EXPECT_EQ(tree.levels(), expect_levels);

    // Every key's path stays inside the region, visits one node per
    // level, and distinct keys share prefixes exactly when their
    // high digits agree.
    const std::uint64_t probes[] = {0, 1, keys / 2, keys - 1};
    for (const std::uint64_t k : probes) {
        if (k >= keys)
            continue;
        for (std::uint32_t l = 0; l < tree.levels(); ++l) {
            const Addr a = tree.nodeAddr(l, k);
            EXPECT_GE(a, 0x1000u);
            EXPECT_LT(a, 0x1000 + tree.bytes());
            EXPECT_EQ((a - 0x1000) % 256, 0u);
        }
        // The root is shared by all keys.
        EXPECT_EQ(tree.nodeAddr(0, k), tree.nodeAddr(0, 0));
    }
    // Leaves of far-apart keys differ (when more than one leaf).
    if (keys > 32) {
        EXPECT_NE(tree.nodeAddr(tree.levels() - 1, 0),
                  tree.nodeAddr(tree.levels() - 1, keys - 1));
    }
    // Node count is at least keys/32 and at most ~keys/31 + levels.
    EXPECT_GE(tree.totalNodes(), (keys + 31) / 32);
    EXPECT_LE(tree.totalNodes(), keys / 16 + tree.levels() + 1);
}

INSTANTIATE_TEST_SUITE_P(KeyCounts, BTreeShapeSweep,
                         ::testing::Values(1, 31, 32, 33, 155, 1024,
                                           1550, 32768, 32769,
                                           1000000, 15500000));

TEST(Trace, RecordAndCounts)
{
    Trace t;
    t.append(100, 4, false);
    t.append(200, 4, true);
    t.append(300, 8, true);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.readCount(), 1u);
    EXPECT_EQ(t.writeCount(), 2u);
    EXPECT_EQ(t[1].addr, 200u);
    EXPECT_TRUE(t[1].isWrite);
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t;
    for (int i = 0; i < 1000; ++i)
        t.append(i * 37, static_cast<std::uint16_t>(4 + i % 8),
                 i % 3 == 0);

    const std::string path = ::testing::TempDir() + "/trace.bin";
    t.save(path);
    const Trace back = Trace::load(path);

    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].addr, t[i].addr);
        EXPECT_EQ(back[i].bytes, t[i].bytes);
        EXPECT_EQ(back[i].isWrite, t[i].isWrite);
    }
    std::remove(path.c_str());
}

TEST(TraceDeathTest, LoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_DEATH(Trace::load(path), "not an eNVy trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace envy
