/**
 * @file
 * Unit tests for the persistence primitives (docs/PERSISTENCE.md):
 * the MmapPool, the StoreFile layout, the BankBacking lifecycle, and
 * the MetaJournal — including property tests that truncate a journal
 * at random byte positions and check replay lands exactly on the
 * state of the last intact record.  Ends with the differential twin:
 * a persistent store must behave byte-for-byte like an anonymous one.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "envy/envy_store.hh"
#include "persist/backend.hh"
#include "persist/flash_backing.hh"
#include "persist/meta_journal.hh"
#include "persist/mmap_pool.hh"
#include "persist/store_file.hh"
#include "sim/random.hh"

namespace envy {
namespace persist {
namespace {

std::string
tempFile(const char *name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
    return path;
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
}

std::uint64_t
fileSize(const std::string &path)
{
    struct ::stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
    return static_cast<std::uint64_t>(st.st_size);
}

// ---- MmapPool ----------------------------------------------------

TEST(MmapPool, BytesSurviveReopen)
{
    const std::string path = tempFile("pool.bin");
    {
        MmapPool pool(path, 8192);
        auto s = pool.span();
        ASSERT_EQ(s.size(), 8192u);
        for (std::size_t i = 0; i < s.size(); ++i)
            s[i] = static_cast<std::uint8_t>(i * 7);
    }
    {
        MmapPool pool(path, 8192);
        auto s = pool.span();
        for (std::size_t i = 0; i < s.size(); ++i)
            ASSERT_EQ(s[i], static_cast<std::uint8_t>(i * 7)) << i;
    }
    cleanup(path);
}

TEST(MmapPool, PunchReadsBackAsZeros)
{
    const std::string path = tempFile("punch.bin");
    MmapPool pool(path, 16384);
    auto s = pool.span();
    std::fill(s.begin(), s.end(), std::uint8_t(0xAA));
    pool.punch(4096, 4096);
    for (std::uint64_t i = 0; i < 16384; ++i) {
        const std::uint8_t want =
            (i >= 4096 && i < 8192) ? 0x00 : 0xAA;
        ASSERT_EQ(s[i], want) << i;
    }
    cleanup(path);
}

TEST(MmapPoolDeathTest, RefusesToShrinkAnExistingFile)
{
    const std::string path = tempFile("shrink.bin");
    { MmapPool pool(path, 8192); }
    EXPECT_DEATH(MmapPool(path, 4096), "refusing to shrink");
    cleanup(path);
}

// ---- StoreFile ---------------------------------------------------

StoreParams
tinyParams()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    return paramsFor(cfg, /*sram_bytes=*/4096);
}

TEST(StoreFile, FreshThenReopenedKeepsParams)
{
    const std::string path = tempFile("store.envy");
    const StoreParams want = tinyParams();
    {
        StoreFile file(path, want);
        EXPECT_FALSE(file.reopened());
        file.markValid();
    }
    {
        StoreFile file(path, want);
        EXPECT_TRUE(file.reopened());
        EXPECT_EQ(file.params(), want);
    }
    // readParams sees the same superblock without opening the store.
    StoreParams got;
    std::string error;
    ASSERT_TRUE(StoreFile::readParams(path, got, error)) << error;
    EXPECT_EQ(got, want);
    cleanup(path);
}

TEST(StoreFile, UnfinishedCreationIsWipedNotTrusted)
{
    const std::string path = tempFile("unfinished.envy");
    {
        StoreFile file(path, tinyParams());
        // No markValid(): creation "crashed" before the first
        // checkpoint.
        file.segMeta(SegmentId(0))[0] = 0x55;
    }
    {
        StoreFile file(path, tinyParams());
        EXPECT_FALSE(file.reopened()); // recreated from scratch
        EXPECT_EQ(file.segMeta(SegmentId(0))[0], 0x00);
    }
    cleanup(path);
}

TEST(StoreFileDeathTest, MismatchedParamsRefuseToReformat)
{
    const std::string path = tempFile("mismatch.envy");
    {
        StoreFile file(path, tinyParams());
        file.markValid();
    }
    StoreParams other = tinyParams();
    other.wearThreshold += 1;
    EXPECT_DEATH(StoreFile(path, other), "refusing to reformat");
    cleanup(path);
}

TEST(StoreFile, FreshSegmentDecodesAsFullyErased)
{
    const std::string path = tempFile("erased.envy");
    StoreFile file(path, tinyParams());
    FlashMetaView meta(file, {});
    const SegmentId seg(3);
    EXPECT_EQ(meta.writePtr(seg), 0u);
    EXPECT_EQ(meta.eraseCycles(seg), 0u);
    EXPECT_FALSE(meta.specFailed(seg));
    for (std::uint32_t s = 0; s < 8; ++s) {
        // Holes read as zeros; ~0 is the dead-owner word, so an
        // untouched segment costs no disk yet reads fully erased.
        EXPECT_EQ(meta.owner(seg, SlotId(s)), 0xFFFFFFFFu);
        EXPECT_FALSE(meta.retired(seg, SlotId(s)));
    }
    cleanup(path);
}

TEST(StoreFile, MetaRoundTripsThroughReopen)
{
    const std::string path = tempFile("meta.envy");
    const SegmentId seg(5);
    {
        StoreFile file(path, tinyParams());
        file.markValid();
        FlashMetaView meta(file, {});
        meta.setWritePtr(seg, 17);
        meta.setEraseCycles(seg, 123456789);
        meta.setSpecFailed(seg);
        meta.setOwner(seg, SlotId(3), 42);
        meta.setRetired(seg, SlotId(9));
    }
    {
        StoreFile file(path, tinyParams());
        ASSERT_TRUE(file.reopened());
        FlashMetaView meta(file, {});
        EXPECT_EQ(meta.writePtr(seg), 17u);
        EXPECT_EQ(meta.eraseCycles(seg), 123456789u);
        EXPECT_TRUE(meta.specFailed(seg));
        EXPECT_EQ(meta.owner(seg, SlotId(3)), 42u);
        EXPECT_TRUE(meta.retired(seg, SlotId(9)));
        EXPECT_EQ(meta.owner(seg, SlotId(4)), 0xFFFFFFFFu);

        meta.resetAfterErase(seg, 7);
        EXPECT_EQ(meta.writePtr(seg), 0u);
        EXPECT_EQ(meta.eraseCycles(seg), 7u);
        EXPECT_EQ(meta.owner(seg, SlotId(3)), 0xFFFFFFFFu);
        EXPECT_TRUE(meta.retired(seg, SlotId(9))); // physical damage
    }
    cleanup(path);
}

TEST(StoreFile, BankBackingMaterializeReleaseLifecycle)
{
    const std::string path = tempFile("banks.envy");
    StoreFile file(path, tinyParams());
    BankBacking bank(file, 1);

    EXPECT_FALSE(bank.materialized(2));
    EXPECT_EQ(bank.materializedCount(), 0u);

    bank.materialize(2);
    EXPECT_TRUE(bank.materialized(2));
    EXPECT_EQ(bank.materializedCount(), 1u);
    auto data = bank.blockData(2);
    for (const std::uint8_t b : data)
        ASSERT_EQ(b, 0xFF);

    data[0] = 0x12;
    bank.release(2);
    EXPECT_FALSE(bank.materialized(2));
    EXPECT_EQ(bank.materializedCount(), 0u);
    // The punched range reads as zeros until re-materialized...
    EXPECT_EQ(bank.blockData(2)[0], 0x00);
    // ...and materializing re-fills it with erased 0xFF.
    bank.materialize(2);
    EXPECT_EQ(bank.blockData(2)[0], 0xFF);
    cleanup(path);
}

// ---- MetaJournal -------------------------------------------------

/** A journal armed against a plain byte image, with manual dirt. */
struct JournalRig
{
    explicit JournalRig(const std::string &journal_path,
                        std::uint64_t bytes)
        : image(bytes, 0), journal(journal_path, bytes)
    {
    }

    void
    arm()
    {
        journal.activate(
            [this](const MetaJournal::Emit &emit) {
                for (const auto &[addr, bytes] : pending)
                    emit(addr, bytes);
                pending.clear();
            },
            [this] {
                return std::span<const std::uint8_t>(image);
            });
    }

    void
    poke(std::uint64_t addr, std::span<const std::uint8_t> bytes)
    {
        std::copy(bytes.begin(), bytes.end(),
                  image.begin() + static_cast<std::ptrdiff_t>(addr));
        pending.emplace_back(
            addr, std::vector<std::uint8_t>(bytes.begin(),
                                            bytes.end()));
    }

    std::vector<std::uint8_t> image;
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
        pending;
    MetaJournal journal;
};

TEST(MetaJournal, ReplayReconstructsTheImage)
{
    const std::string path = tempFile("jrn1") + ".journal";
    constexpr std::uint64_t bytes = 256;
    std::vector<std::uint8_t> want;
    {
        JournalRig rig(path, bytes);
        rig.journal.createFresh();
        rig.arm();
        rig.journal.checkpoint(); // first record is the checkpoint

        const std::uint8_t a[] = {1, 2, 3, 4};
        const std::uint8_t b[] = {9, 8, 7};
        rig.poke(0, a);
        rig.poke(100, b);
        rig.journal.flush();
        rig.poke(250, {a, 2});
        rig.journal.commit();
        want = rig.image;
    }
    MetaJournal journal(path, bytes);
    const MetaJournal::ReplayResult res = journal.replay();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.truncatedBytes, 0u);
    EXPECT_EQ(res.records, 4u); // checkpoint + 3 writes
    EXPECT_EQ(res.sram, want);
    std::remove(path.c_str());
}

TEST(MetaJournal, CheckpointCompactsAndResetsTheCounter)
{
    const std::string path = tempFile("jrn2") + ".journal";
    constexpr std::uint64_t bytes = 512;
    JournalRig rig(path, bytes);
    rig.journal.createFresh();
    rig.arm();
    rig.journal.checkpoint();

    std::vector<std::uint8_t> blob(64, 0x5A);
    for (int i = 0; i < 20; ++i) {
        rig.poke(static_cast<std::uint64_t>(i) * 8, {blob.data(), 8});
        rig.journal.flush();
    }
    const std::uint64_t grown = fileSize(path);
    EXPECT_GT(rig.journal.bytesSinceCheckpoint(),
              bytes + MetaJournal::recordOverhead);

    rig.journal.checkpoint();
    EXPECT_EQ(rig.journal.bytesSinceCheckpoint(), 0u);
    EXPECT_LT(fileSize(path), grown);

    // The compacted journal still replays to the same image.
    MetaJournal replayer(path, bytes);
    const MetaJournal::ReplayResult res = replayer.replay();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.sram, rig.image);
    std::remove(path.c_str());
}

TEST(MetaJournal, EmptyFlushAppendsNothing)
{
    const std::string path = tempFile("jrn3") + ".journal";
    JournalRig rig(path, 128);
    rig.journal.createFresh();
    rig.arm();
    rig.journal.checkpoint();
    const std::uint64_t size = fileSize(path);
    rig.journal.flush();
    rig.journal.flush();
    EXPECT_EQ(fileSize(path), size);
    std::remove(path.c_str());
}

/**
 * Property test: truncate the journal at *every* byte boundary in a
 * sampled set.  Cutting inside the initial checkpoint must fail
 * replay (nothing trustworthy yet); any later cut must succeed and
 * land exactly on the state as of the last record that still fits.
 */
TEST(MetaJournal, ReplaySurvivesRandomTornTails)
{
    const std::string path = tempFile("jrn4") + ".journal";
    constexpr std::uint64_t bytes = 128;
    Rng rng(42);

    // Build a journal of known record boundaries; snapshot the image
    // at each boundary.
    std::vector<std::uint64_t> boundaries; // file size after flush i
    std::vector<std::vector<std::uint8_t>> states;
    std::vector<std::uint8_t> full;
    {
        JournalRig rig(path, bytes);
        rig.journal.createFresh();
        rig.arm();
        rig.journal.checkpoint();
        boundaries.push_back(fileSize(path));
        states.push_back(rig.image);
        for (int i = 0; i < 30; ++i) {
            const std::uint64_t addr = rng.below(bytes - 8);
            std::uint8_t data[8];
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            rig.poke(addr, {data, 1 + rng.below(8)});
            rig.journal.flush();
            boundaries.push_back(fileSize(path));
            states.push_back(rig.image);
        }
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        int c;
        while ((c = std::fgetc(f)) != EOF)
            full.push_back(static_cast<std::uint8_t>(c));
        std::fclose(f);
    }

    const std::string cutPath = tempFile("jrn4cut") + ".journal";
    auto writeCut = [&](std::uint64_t cut) {
        std::FILE *f = std::fopen(cutPath.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(full.data(), 1, cut, f), cut);
        std::fclose(f);
    };

    std::vector<std::uint64_t> cuts = boundaries; // exact boundaries
    for (int i = 0; i < 60; ++i)                  // and torn middles
        cuts.push_back(MetaJournal::headerBytes +
                       rng.below(full.size() -
                                 MetaJournal::headerBytes));

    for (const std::uint64_t cut : cuts) {
        writeCut(cut);
        MetaJournal journal(cutPath, bytes);
        const MetaJournal::ReplayResult res = journal.replay();
        if (cut < boundaries[0]) {
            // Inside the initial checkpoint: no trustworthy record.
            EXPECT_FALSE(res.ok) << "cut " << cut;
            continue;
        }
        ASSERT_TRUE(res.ok) << "cut " << cut << ": " << res.error;
        // The last boundary <= cut decides the replayed state.
        std::size_t last = 0;
        while (last + 1 < boundaries.size() &&
               boundaries[last + 1] <= cut)
            ++last;
        EXPECT_EQ(res.sram, states[last]) << "cut " << cut;
        EXPECT_EQ(res.truncatedBytes, cut - boundaries[last])
            << "cut " << cut;
        EXPECT_EQ(fileSize(cutPath), boundaries[last])
            << "truncation must persist, cut " << cut;
    }
    std::remove(path.c_str());
    std::remove(cutPath.c_str());
}

TEST(MetaJournal, CorruptMiddleRecordStopsReplayThere)
{
    const std::string path = tempFile("jrn5") + ".journal";
    constexpr std::uint64_t bytes = 64;
    std::vector<std::uint64_t> boundaries;
    std::vector<std::vector<std::uint8_t>> states;
    {
        JournalRig rig(path, bytes);
        rig.journal.createFresh();
        rig.arm();
        rig.journal.checkpoint();
        boundaries.push_back(fileSize(path));
        states.push_back(rig.image);
        for (std::uint8_t i = 1; i <= 4; ++i) {
            const std::uint8_t v[] = {i, i, i};
            rig.poke(i * 10u, v);
            rig.journal.flush();
            boundaries.push_back(fileSize(path));
            states.push_back(rig.image);
        }
    }
    // Flip one payload byte of record 3 (between boundaries 2 and 3):
    // its CRC now fails, so replay keeps records 1-2 and truncates.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, static_cast<long>(boundaries[2]) + 14, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, static_cast<long>(boundaries[2]) + 14, SEEK_SET);
        std::fputc(c ^ 0xFF, f);
        std::fclose(f);
    }
    MetaJournal journal(path, bytes);
    const MetaJournal::ReplayResult res = journal.replay();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.sram, states[2]);
    EXPECT_EQ(fileSize(path), boundaries[2]);
    std::remove(path.c_str());
}

/**
 * Group-commit frames are all-or-nothing: a recGroup record carries
 * many dirty ranges under ONE trailing CRC, so a journal cut at ANY
 * byte inside the frame must drop the whole batch — never replay a
 * prefix of its ranges.  This is the property the commit pipeline's
 * durable acks lean on (docs/PERSISTENCE.md): an epoch's writes
 * become durable together or not at all.
 *
 * Exhaustive, not sampled: the journal is small enough to cut at
 * every single byte offset.
 */
TEST(MetaJournal, GroupFrameTornAtEveryByteDropsWholeBatch)
{
    const std::string path = tempFile("jrn6") + ".journal";
    constexpr std::uint64_t bytes = 128;
    Rng rng(1234);

    // Build a journal of several multi-range group frames; snapshot
    // the image at each frame boundary.
    std::vector<std::uint64_t> boundaries; // file size after frame i
    std::vector<std::vector<std::uint8_t>> states;
    std::vector<std::uint8_t> full;
    {
        JournalRig rig(path, bytes);
        rig.journal.createFresh();
        rig.arm();
        rig.journal.setGroupCommit(true);
        rig.journal.checkpoint();
        boundaries.push_back(fileSize(path));
        states.push_back(rig.image);
        for (int frame = 0; frame < 6; ++frame) {
            // 2-5 ranges per frame: the batch shape the pipeline's
            // epoch capture produces from several dirty pages.
            const int ranges = 2 + static_cast<int>(rng.below(4));
            for (int r = 0; r < ranges; ++r) {
                const std::uint64_t addr = rng.below(bytes - 8);
                std::uint8_t data[8];
                for (auto &b : data)
                    b = static_cast<std::uint8_t>(rng.next());
                rig.poke(addr, {data, 1 + rng.below(8)});
            }
            rig.journal.flush(); // ONE recGroup frame
            boundaries.push_back(fileSize(path));
            states.push_back(rig.image);
        }
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        int c;
        while ((c = std::fgetc(f)) != EOF)
            full.push_back(static_cast<std::uint8_t>(c));
        std::fclose(f);
    }
    ASSERT_EQ(boundaries.size(), 7u);

    const std::string cutPath = tempFile("jrn6cut") + ".journal";
    for (std::uint64_t cut = MetaJournal::headerBytes;
         cut <= full.size(); ++cut) {
        {
            std::FILE *f = std::fopen(cutPath.c_str(), "wb");
            ASSERT_NE(f, nullptr);
            ASSERT_EQ(std::fwrite(full.data(), 1, cut, f), cut);
            std::fclose(f);
        }
        MetaJournal journal(cutPath, bytes);
        const MetaJournal::ReplayResult res = journal.replay();
        if (cut < boundaries[0]) {
            // Inside the initial checkpoint: nothing trustworthy.
            EXPECT_FALSE(res.ok) << "cut " << cut;
            continue;
        }
        ASSERT_TRUE(res.ok) << "cut " << cut << ": " << res.error;
        // The whole-batch property: the replayed state is EXACTLY
        // the one at the last intact frame boundary — a cut one byte
        // short of a boundary loses every range of that frame.
        std::size_t last = 0;
        while (last + 1 < boundaries.size() &&
               boundaries[last + 1] <= cut)
            ++last;
        EXPECT_EQ(res.sram, states[last]) << "cut " << cut;
        EXPECT_EQ(res.truncatedBytes, cut - boundaries[last])
            << "cut " << cut;
        EXPECT_EQ(fileSize(cutPath), boundaries[last])
            << "truncation must persist, cut " << cut;
    }
    std::remove(path.c_str());
    std::remove(cutPath.c_str());
}

/**
 * A group-commit journal replays through a reader that knows nothing
 * about batching modes — and mixed journals (serial records, then
 * group frames, as after a setGroupCommit toggle) replay in order.
 */
TEST(MetaJournal, MixedSerialAndGroupRecordsReplayInOrder)
{
    const std::string path = tempFile("jrn7") + ".journal";
    constexpr std::uint64_t bytes = 96;
    std::vector<std::uint8_t> want;
    {
        JournalRig rig(path, bytes);
        rig.journal.createFresh();
        rig.arm();
        rig.journal.checkpoint();

        const std::uint8_t a[] = {1, 2, 3, 4};
        rig.poke(0, a);
        rig.journal.flush(); // serial recSramWrite

        rig.journal.setGroupCommit(true);
        rig.poke(16, a);
        rig.poke(0, {a, 2}); // overwrites part of the first range
        rig.journal.flush(); // one recGroup frame, two ranges

        rig.journal.setGroupCommit(false);
        rig.poke(90, {a, 3});
        rig.journal.commit(); // serial again, plus fdatasync
        want = rig.image;
    }
    MetaJournal journal(path, bytes);
    const MetaJournal::ReplayResult res = journal.replay();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.truncatedBytes, 0u);
    EXPECT_EQ(res.records, 4u); // checkpoint + write + group + write
    EXPECT_EQ(res.sram, want);
    std::remove(path.c_str());
}

// ---- differential twin: persistent vs anonymous ------------------

EnvyConfig
twinConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    return cfg;
}

TEST(PersistTwin, PersistentStoreMatchesAnonymousByteForByte)
{
    const std::string path = tempFile("twin.envy");
    EnvyConfig anonCfg = twinConfig();
    EnvyConfig persCfg = twinConfig();
    persCfg.persistPath = path;

    EnvyStore anon(anonCfg);
    EnvyStore pers(persCfg);
    ASSERT_TRUE(pers.persistent());
    ASSERT_FALSE(anon.persistent());
    EXPECT_TRUE(pers.persistReport().created);

    Rng rng(7);
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 400; ++i) {
        const std::uint64_t len = 1 + rng.below(200);
        const std::uint64_t addr = rng.below(anon.size() - len);
        data.resize(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        anon.write(addr, data);
        pers.write(addr, data);
    }

    // Same bytes...
    std::vector<std::uint8_t> a(4096), p(4096);
    for (std::uint64_t off = 0; off < anon.size(); off += a.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(a.size(), anon.size() - off);
        anon.read(off, {a.data(), n});
        pers.read(off, {p.data(), n});
        ASSERT_EQ(std::memcmp(a.data(), p.data(), n), 0)
            << "offset " << off;
    }
    // ...and the same sparse shape: the mapped file materializes the
    // same blocks the anonymous vectors would.
    EXPECT_EQ(anon.flash().materializedBlocks(),
              pers.flash().materializedBlocks());
    cleanup(path);
}

TEST(PersistTwin, ReleaseParityAfterCleaning)
{
    const std::string path = tempFile("twinclean.envy");
    // Small and over-subscribed so cleaning erases segments within a
    // short run (erase = block release: anonymous buffers freed,
    // persistent ranges hole-punched).
    EnvyConfig anonCfg;
    anonCfg.geom.pageSize = 64;
    anonCfg.geom.blockBytes = 128;
    anonCfg.geom.blocksPerChip = 4;
    anonCfg.geom.numBanks = 2;
    anonCfg.geom.logicalPages = 640;
    anonCfg.geom.writeBufferPages = 16;
    anonCfg.partitionSize = 4;
    EnvyConfig persCfg = anonCfg;
    persCfg.persistPath = path;

    EnvyStore anon(anonCfg);
    EnvyStore pers(persCfg);

    // Hammer one hot quarter so segments are cleaned and erased —
    // erases release blocks (anonymous: buffer freed; persistent:
    // hole punched).  The materialized-block count must track.
    Rng rng(11);
    std::vector<std::uint8_t> data(64);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t addr =
            rng.below(anon.size() / 4 - data.size());
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        anon.write(addr, data);
        pers.write(addr, data);
    }
    EXPECT_EQ(anon.flash().materializedBlocks(),
              pers.flash().materializedBlocks());
    const obs::MetricsSnapshot snap = anon.metrics().snapshot();
    const obs::MetricsSnapshot::Entry *released =
        snap.find("flash.blocks_released");
    ASSERT_NE(released, nullptr);
    EXPECT_GT(released->value, 0u);
    cleanup(path);
}

} // namespace
} // namespace persist
} // namespace envy
