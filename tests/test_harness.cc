/**
 * @file
 * Tests for the experiment harness helpers: option parsing and
 * result tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "envysim/config.hh"
#include "envysim/experiment.hh"
#include "envysim/system.hh"

namespace envy {
namespace {

Options
parse(std::initializer_list<const char *> args)
{
    std::vector<char *> argv{const_cast<char *>("prog")};
    for (const char *a : args)
        argv.push_back(const_cast<char *>(a));
    return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, ParsesTypes)
{
    const Options o =
        parse({"segments=128", "util=0.85", "verbose=true",
               "policy=hybrid", "name=run1"});
    EXPECT_EQ(o.getUint("segments", 0), 128u);
    EXPECT_DOUBLE_EQ(o.getDouble("util", 0.0), 0.85);
    EXPECT_TRUE(o.getBool("verbose", false));
    EXPECT_EQ(o.getPolicy("policy", PolicyKind::Greedy),
              PolicyKind::Hybrid);
    EXPECT_EQ(o.getString("name", ""), "run1");
}

TEST(Options, DefaultsWhenMissing)
{
    const Options o = parse({});
    EXPECT_EQ(o.getUint("segments", 42), 42u);
    EXPECT_DOUBLE_EQ(o.getDouble("util", 0.5), 0.5);
    EXPECT_FALSE(o.getBool("verbose", false));
    EXPECT_EQ(o.getPolicy("policy", PolicyKind::Fifo),
              PolicyKind::Fifo);
}

TEST(Options, PolicyAliases)
{
    EXPECT_EQ(parse({"p=lg"}).getPolicy("p", PolicyKind::Greedy),
              PolicyKind::LocalityGathering);
    EXPECT_EQ(parse({"p=fifo"}).getPolicy("p", PolicyKind::Greedy),
              PolicyKind::Fifo);
}

TEST(OptionsDeathTest, MalformedArgumentIsFatal)
{
    EXPECT_DEATH(parse({"notakeyvalue"}), "key=value");
    EXPECT_DEATH(parse({"p=bogus"}).getPolicy("p", PolicyKind::Fifo),
                 "unknown policy");
}

TEST(ResultTable, FormatsAlignedColumns)
{
    ResultTable t("Figure X");
    t.setColumns({"locality", "cost"});
    t.addRow({"50/50", ResultTable::num(4.0, 2)});
    t.addRow({"5/95", ResultTable::num(0.72, 2)});
    t.addNote("quick scale");

    ::testing::internal::CaptureStdout();
    t.print();
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("Figure X"), std::string::npos);
    EXPECT_NE(out.find("locality"), std::string::npos);
    EXPECT_NE(out.find("4.00"), std::string::npos);
    EXPECT_NE(out.find("note: quick scale"), std::string::npos);
}

TEST(ResultTable, Formatters)
{
    EXPECT_EQ(ResultTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ResultTable::integer(12345), "12345");
    EXPECT_EQ(ResultTable::percent(0.405, 0), "40%");
    EXPECT_EQ(ResultTable::percent(0.405, 1), "40.5%");
}

TEST(SystemPresets, PaperConfigIsFigure12)
{
    const EnvyConfig cfg = paperConfig();
    EXPECT_EQ(cfg.geom.numSegments(), 128u);
    EXPECT_FALSE(cfg.storeData);
    EXPECT_EQ(cfg.policy, PolicyKind::Hybrid);
    EXPECT_EQ(cfg.partitionSize, 16u);
    EXPECT_EQ(cfg.geom.validate(), nullptr);
}

TEST(SystemPresets, ScaleShrinksSegmentCountNotSize)
{
    const EnvyConfig full = paperConfig(0.8, 1.0);
    const EnvyConfig quarter = paperConfig(0.8, 0.25);
    EXPECT_EQ(quarter.geom.segmentBytes(), full.geom.segmentBytes());
    EXPECT_LT(quarter.geom.numSegments(), full.geom.numSegments());
}

TEST(SystemPresets, TimedParamsSizeTpcaToTheStore)
{
    const TimedParams p = paperTimedParams(10000, 0.8, 0.25);
    TpcaWorkload w(p.tpca, 1);
    EXPECT_LE(w.footprintBytes(), p.envy.geom.logicalBytes().value());
}

} // namespace
} // namespace envy
