/**
 * @file
 * Tests for the Flash chip model (paper §2): CUI sequencing,
 * program-only-clears-bits, bulk erase, wear and spec overrun.
 */

#include <gtest/gtest.h>

#include "flash/flash_chip.hh"

namespace envy {
namespace {

FlashTiming
fastTiming()
{
    FlashTiming t;
    t.programTime = 4000;
    t.eraseTime = 50000000;
    return t;
}

TEST(FlashChip, ErasedChipReadsAllOnes)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    for (std::uint64_t a = 0; a < chip.capacity(); a += 97)
        EXPECT_EQ(chip.read(a), 0xFF);
}

TEST(FlashChip, ProgramStoresValue)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    const Tick t = chip.programByte(100, 0xA5);
    EXPECT_EQ(t, 4000u);
    EXPECT_EQ(chip.read(100), 0xA5);
    EXPECT_EQ(chip.status() & FlashStatus::programError, 0);
}

TEST(FlashChip, ProgramOnlyClearsBits)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(5, 0xF0);
    // A second program can clear more bits...
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(5, 0x30);
    EXPECT_EQ(chip.read(5), 0x30);
}

TEST(FlashChip, SettingBitsIsAProgramError)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(5, 0x00);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(5, 0x01); // would set a bit
    chip.writeCommand(FlashCmd::ReadStatus);
    EXPECT_NE(chip.read(0) & FlashStatus::programError, 0);
    chip.writeCommand(FlashCmd::ClearStatus);
    EXPECT_EQ(chip.status(), FlashStatus::ready);
}

TEST(FlashChip, EraseRestoresBlockToOnes)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(2048 + 7, 0x00); // block 2
    chip.writeCommand(FlashCmd::EraseSetup);
    const Tick t = chip.eraseBlock(2);
    EXPECT_GE(t, 50000000u);
    EXPECT_EQ(chip.read(2048 + 7), 0xFF);
}

TEST(FlashChip, EraseOnlyAffectsItsBlock)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(0, 0x11); // block 0
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(1024, 0x22); // block 1
    chip.writeCommand(FlashCmd::EraseSetup);
    chip.eraseBlock(0);
    EXPECT_EQ(chip.read(0), 0xFF);
    EXPECT_EQ(chip.read(1024), 0x22);
}

TEST(FlashChip, EraseCountsWearPerBlock)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    for (int i = 0; i < 3; ++i) {
        chip.writeCommand(FlashCmd::EraseSetup);
        chip.eraseBlock(1);
    }
    EXPECT_EQ(chip.blockCycles(0), 0u);
    EXPECT_EQ(chip.blockCycles(1), 3u);
    EXPECT_EQ(chip.maxCycles(), 3u);
}

TEST(FlashChip, WearSlowsOperationsDown)
{
    FlashTiming t = fastTiming();
    t.wearSlowdownPerCycle = 0.1; // exaggerated for the test
    FlashChip chip(256, 2, t, true);
    chip.writeCommand(FlashCmd::EraseSetup);
    const Tick first = chip.eraseBlock(0);
    chip.writeCommand(FlashCmd::EraseSetup);
    const Tick second = chip.eraseBlock(0);
    EXPECT_GT(second, first);

    chip.writeCommand(FlashCmd::ProgramSetup);
    const Tick prog = chip.programByte(0, 0x00);
    EXPECT_GT(prog, t.programTime); // two cycles of wear by now
}

TEST(FlashChip, SpecOverrunIsFlaggedNotFatal)
{
    FlashTiming t = fastTiming();
    t.wearSlowdownPerCycle = 1.0;
    t.maxEraseTime = t.eraseTime * 2; // fail on the 3rd erase
    FlashChip chip(256, 2, t, true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(3, 0x5A);
    for (int i = 0; i < 3 && !chip.outOfSpec(); ++i) {
        chip.writeCommand(FlashCmd::EraseSetup);
        chip.eraseBlock(1);
    }
    EXPECT_TRUE(chip.outOfSpec());
    // §2: "existing data will remain readable" after flash failure.
    EXPECT_EQ(chip.read(3), 0x5A);
}

TEST(FlashChip, MetadataOnlyModeSkipsData)
{
    FlashChip chip(1024, 4, fastTiming(), false);
    EXPECT_FALSE(chip.storesData());
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(0, 0x12);
    EXPECT_EQ(chip.read(0), 0xFF); // no cells to store it
    chip.writeCommand(FlashCmd::EraseSetup);
    chip.eraseBlock(0);
    EXPECT_EQ(chip.blockCycles(0), 1u); // wear still tracked
}

TEST(FlashChip, SuspendReflectsInStatus)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::Suspend);
    EXPECT_NE(chip.status() & FlashStatus::suspended, 0);
    chip.writeCommand(FlashCmd::ProgramSetup);
    chip.programByte(0, 0x00);
    EXPECT_EQ(chip.status() & FlashStatus::suspended, 0);
}

TEST(FlashChipDeathTest, ProgramWithoutSetupPanics)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    EXPECT_DEATH(chip.programByte(0, 0x00), "ProgramSetup");
}

TEST(FlashChipDeathTest, EraseWithoutSetupPanics)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    EXPECT_DEATH(chip.eraseBlock(0), "EraseSetup");
}

TEST(FlashChipDeathTest, ReadDuringPendingOperationPanics)
{
    FlashChip chip(1024, 4, fastTiming(), true);
    chip.writeCommand(FlashCmd::ProgramSetup);
    EXPECT_DEATH((void)chip.read(0), "CUI busy");
}

} // namespace
} // namespace envy
