/**
 * @file
 * Differential tests of the flash data plane: the bulk
 * programPage/readPage/eraseSegment fast paths must be bit-exact
 * with the byte-at-a-time CUI oracle (slow_dataplane) — same cell
 * data, wear counters, status registers, spec-failure latching and
 * busy times.  Plus the sparseness contract: a 2 GB Figure-12
 * functional geometry constructs in O(metadata) memory and RSS
 * grows only with touched erase blocks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "envy/envy_store.hh"
#include "flash/flash_array.hh"
#include "flash/flash_bank.hh"
#include "sim/random.hh"

#if defined(__linux__)
#include <unistd.h>
#endif

// The RSS smoke asserts a hard byte ceiling, which sanitizer
// instrumentation (shadow memory, quarantines) blows through for
// reasons unrelated to the store's sparseness.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ENVY_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ENVY_TEST_SANITIZED 1
#endif
#endif

namespace envy {
namespace {

constexpr std::uint32_t chips = 16;   // page size in bytes
constexpr std::uint32_t blockLen = 64; // pages per segment
constexpr std::uint32_t blocks = 4;

FlashBank
makeBank(bool slow, const FlashTiming &timing = FlashTiming{})
{
    return FlashBank(chips, blockLen, blocks, timing, true, slow);
}

/** Compare every observable of the two banks: full cell contents,
 *  per-chip status registers, wear, spec-failure records. */
void
expectBanksEqual(const FlashBank &fast, const FlashBank &slow)
{
    std::vector<std::uint8_t> a(chips), b(chips);
    for (std::uint32_t blk = 0; blk < blocks; ++blk) {
        for (std::uint32_t p = 0; p < blockLen; ++p) {
            fast.readPage(blk, p, a);
            slow.readPage(blk, p, b);
            ASSERT_EQ(a, b) << "block " << blk << " page " << p;
        }
        EXPECT_EQ(fast.segmentCycles(blk), slow.segmentCycles(blk));
        EXPECT_EQ(fast.blockSpecFailed(blk), slow.blockSpecFailed(blk));
    }
    for (std::uint32_t j = 0; j < chips; ++j) {
        EXPECT_EQ(fast.chip(j).status(), slow.chip(j).status())
            << "chip " << j;
        EXPECT_EQ(fast.chip(j).specFailedBlocks(),
                  slow.chip(j).specFailedBlocks());
    }
    EXPECT_EQ(fast.specFailedBlocks(), slow.specFailedBlocks());
    EXPECT_EQ(fast.outOfSpec(), slow.outOfSpec());
    EXPECT_EQ(fast.allReady(), slow.allReady());
    EXPECT_EQ(fast.allProgrammedOk(), slow.allProgrammedOk());
    EXPECT_EQ(fast.allErasedOk(), slow.allErasedOk());
    EXPECT_EQ(fast.materializedBlocks(), slow.materializedBlocks());
}

TEST(Dataplane, RandomChurnMatchesOracle)
{
    FlashBank fast = makeBank(false);
    FlashBank slow = makeBank(true);
    ASSERT_FALSE(fast.slowDataplane());
    ASSERT_TRUE(slow.slowDataplane());

    Rng rng(2024);
    std::vector<std::uint8_t> data(chips);
    for (int op = 0; op < 4000; ++op) {
        const auto blk = static_cast<std::uint32_t>(rng.below(blocks));
        const auto p = static_cast<std::uint32_t>(rng.below(blockLen));
        const double roll = 0.01 * static_cast<double>(rng.below(100));
        if (roll < 0.70) {
            // Program: biased toward 0xFF bytes so reprogramming an
            // already-programmed page is often legal (AND semantics)
            // and sometimes a program error (0 -> 1 request).
            for (auto &v : data) {
                v = rng.chance(0.5)
                        ? 0xFF
                        : static_cast<std::uint8_t>(rng.next());
            }
            EXPECT_EQ(fast.programPage(blk, p, data),
                      slow.programPage(blk, p, data));
        } else if (roll < 0.90) {
            std::vector<std::uint8_t> a(chips), b(chips);
            EXPECT_EQ(fast.readPage(blk, p, a),
                      slow.readPage(blk, p, b));
            EXPECT_EQ(a, b);
        } else if (roll < 0.97) {
            EXPECT_EQ(fast.eraseSegment(blk), slow.eraseSegment(blk));
        } else {
            fast.clearStatus();
            slow.clearStatus();
        }
        if (op % 500 == 0)
            expectBanksEqual(fast, slow);
    }
    expectBanksEqual(fast, slow);
}

TEST(Dataplane, ProgramErrorParity)
{
    FlashBank fast = makeBank(false);
    FlashBank slow = makeBank(true);

    // Lane j holds ~j; asking for 0xFF afterwards requests 0 -> 1 on
    // every lane but lane 0 (which holds 0xFF already).
    std::vector<std::uint8_t> first(chips), again(chips, 0xFF);
    for (std::uint32_t j = 0; j < chips; ++j)
        first[j] = static_cast<std::uint8_t>(~j);
    for (FlashBank *bank : {&fast, &slow}) {
        bank->programPage(1, 3, first);
        ASSERT_TRUE(bank->allProgrammedOk());
        bank->programPage(1, 3, again);
        EXPECT_FALSE(bank->allProgrammedOk());
        // An illegal program never touches the cells or the
        // spec-failure record.
        EXPECT_FALSE(bank->blockSpecFailed(1));
        EXPECT_FALSE(bank->outOfSpec());
        std::vector<std::uint8_t> out(chips);
        bank->readPage(1, 3, out);
        EXPECT_EQ(out, first);
        // Lane 0's request was legal (0xFF & ~0xFF == 0).
        EXPECT_EQ(bank->chip(0).status() & FlashStatus::programError,
                  0);
        EXPECT_NE(bank->chip(1).status() & FlashStatus::programError,
                  0);
    }
    expectBanksEqual(fast, slow);

    fast.clearStatus();
    slow.clearStatus();
    expectBanksEqual(fast, slow);
}

TEST(Dataplane, ProgramClearsSuspendedParity)
{
    FlashBank fast = makeBank(false);
    FlashBank slow = makeBank(true);
    std::vector<std::uint8_t> data(chips, 0x3C);
    for (FlashBank *bank : {&fast, &slow}) {
        for (std::uint32_t j = 0; j < chips; ++j)
            bank->chip(j).writeCommand(FlashCmd::Suspend);
        EXPECT_NE(bank->chip(2).status() & FlashStatus::suspended, 0);
        bank->programPage(0, 0, data);
        for (std::uint32_t j = 0; j < chips; ++j) {
            EXPECT_EQ(bank->chip(j).status() & FlashStatus::suspended,
                      0);
        }
    }
    expectBanksEqual(fast, slow);
}

TEST(Dataplane, ReadStatusLaneFallsBackToOracle)
{
    FlashBank fast = makeBank(false);
    FlashBank slow = makeBank(true);
    std::vector<std::uint8_t> data(chips);
    for (std::uint32_t j = 0; j < chips; ++j)
        data[j] = static_cast<std::uint8_t>(0xA0 + j);
    fast.programPage(2, 5, data);
    slow.programPage(2, 5, data);

    // Chip 3 left in ReadStatus: its lane must read as the status
    // register, the others as cell data — on both paths.
    fast.chip(3).writeCommand(FlashCmd::ReadStatus);
    slow.chip(3).writeCommand(FlashCmd::ReadStatus);
    std::vector<std::uint8_t> a(chips), b(chips);
    fast.readPage(2, 5, a);
    slow.readPage(2, 5, b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a[3], FlashStatus::ready);
    EXPECT_EQ(a[0], 0xA0);

    fast.chip(3).writeCommand(FlashCmd::ReadArray);
    slow.chip(3).writeCommand(FlashCmd::ReadArray);
    fast.readPage(2, 5, a);
    slow.readPage(2, 5, b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a[3], data[3]);
}

TEST(Dataplane, WearOverrunParity)
{
    // Rated window one tick below the base program time: every
    // program overruns, so legal lanes write *and* spec-fail.
    FlashTiming hot;
    hot.maxProgramTime = hot.programTime - 1;
    FlashBank fast = makeBank(false, hot);
    FlashBank slow = makeBank(true, hot);

    std::vector<std::uint8_t> data(chips, 0x0F);
    EXPECT_EQ(fast.programPage(0, 7, data),
              slow.programPage(0, 7, data));
    for (FlashBank *bank : {&fast, &slow}) {
        EXPECT_TRUE(bank->blockSpecFailed(0));
        EXPECT_TRUE(bank->outOfSpec());
        EXPECT_FALSE(bank->allProgrammedOk());
        std::vector<std::uint8_t> out(chips);
        bank->readPage(0, 7, out);
        EXPECT_EQ(out, data); // overrun still writes the data
    }
    expectBanksEqual(fast, slow);
}

TEST(Dataplane, MixedErrorAndOverrunParity)
{
    // Overrun timing plus a page where half the lanes request an
    // illegal 0 -> 1: the error lanes latch programError only (no
    // spec-fail record), the legal lanes write and spec-fail.
    FlashTiming hot;
    hot.maxProgramTime = hot.programTime - 1;
    FlashBank fast = makeBank(false, hot);
    FlashBank slow = makeBank(true, hot);

    std::vector<std::uint8_t> first(chips), second(chips);
    for (std::uint32_t j = 0; j < chips; ++j) {
        first[j] = (j % 2) ? 0x00 : 0xFF;
        second[j] = (j % 2) ? 0xFF : 0x00; // odd lanes: 0 -> 1 error
    }
    // First program: all lanes legal (cells erased), all spec-fail.
    fast.programPage(3, 0, first);
    slow.programPage(3, 0, first);
    fast.clearStatus();
    slow.clearStatus();
    // Spec-failure records survive ClearStatus (physical damage).
    EXPECT_TRUE(fast.blockSpecFailed(3));

    fast.programPage(3, 0, second);
    slow.programPage(3, 0, second);
    for (FlashBank *bank : {&fast, &slow}) {
        for (std::uint32_t j = 0; j < chips; ++j) {
            // Every lane latched programError — odd ones from the
            // illegal request, even ones from the wear overrun.
            EXPECT_NE(bank->chip(j).status() &
                          FlashStatus::programError,
                      0);
        }
        std::vector<std::uint8_t> out(chips);
        bank->readPage(3, 0, out);
        for (std::uint32_t j = 0; j < chips; ++j) {
            // Odd lanes kept 0x00 (error, no write); even lanes
            // went 0xFF & 0x00 = 0x00.
            EXPECT_EQ(out[j], 0x00);
        }
    }
    expectBanksEqual(fast, slow);
}

TEST(Dataplane, EraseOverrunParity)
{
    FlashTiming hot;
    hot.maxEraseTime = hot.eraseTime - 1;
    FlashBank fast = makeBank(false, hot);
    FlashBank slow = makeBank(true, hot);
    std::vector<std::uint8_t> data(chips, 0x00);
    fast.programPage(1, 1, data);
    slow.programPage(1, 1, data);

    EXPECT_EQ(fast.eraseSegment(1), slow.eraseSegment(1));
    for (FlashBank *bank : {&fast, &slow}) {
        EXPECT_FALSE(bank->allErasedOk());
        EXPECT_TRUE(bank->blockSpecFailed(1));
        EXPECT_EQ(bank->segmentCycles(1), 1u);
        std::vector<std::uint8_t> out(chips);
        bank->readPage(1, 1, out);
        for (const std::uint8_t v : out)
            EXPECT_EQ(v, 0xFF);
    }
    expectBanksEqual(fast, slow);
}

TEST(Dataplane, LazyEraseKeepsStoreSparse)
{
    FlashBank bank = makeBank(false);
    EXPECT_EQ(bank.materializedBlocks(), 0u);

    // All-ones program of an erased page: a no-op, stays sparse.
    std::vector<std::uint8_t> ones(chips, 0xFF);
    bank.programPage(0, 0, ones);
    EXPECT_EQ(bank.materializedBlocks(), 0u);

    std::vector<std::uint8_t> data(chips, 0x55);
    bank.programPage(0, 0, data);
    EXPECT_EQ(bank.materializedBlocks(), 1u);

    // Reads never materialize, not even of untouched blocks.
    std::vector<std::uint8_t> out(chips);
    bank.readPage(3, 9, out);
    for (const std::uint8_t v : out)
        EXPECT_EQ(v, 0xFF);
    EXPECT_EQ(bank.materializedBlocks(), 1u);

    // Erase drops the buffer; the 0xFF fill is never performed.
    bank.eraseSegment(0);
    EXPECT_EQ(bank.materializedBlocks(), 0u);
    bank.readPage(0, 0, out);
    for (const std::uint8_t v : out)
        EXPECT_EQ(v, 0xFF);
    EXPECT_EQ(bank.materializedBlocks(), 0u);
}

TEST(Dataplane, ArrayFaultInjectionParity)
{
    // Twin FlashArrays, fast vs slow, with an identical deterministic
    // program-fault plan: every 13th program attempt spec-fails, so
    // the retire/retry machinery runs on both and must agree.
    Geometry g;
    g.pageSize = 16;
    g.blockBytes = 64;
    g.blocksPerChip = 4;
    g.numBanks = 2;
    ASSERT_EQ(g.validate(), nullptr);
    const FlashTiming ft;
    FlashArray fast(g, ft, true, nullptr, nullptr, false);
    FlashArray slow(g, ft, true, nullptr, nullptr, true);
    ASSERT_FALSE(fast.slowDataplane());
    ASSERT_TRUE(slow.slowDataplane());

    std::uint64_t fast_attempts = 0, slow_attempts = 0;
    fast.programFaultHook = [&](SegmentId, SlotId) {
        return ++fast_attempts % 13 == 0;
    };
    slow.programFaultHook = [&](SegmentId, SlotId) {
        return ++slow_attempts % 13 == 0;
    };

    Rng rng(77);
    std::vector<std::uint8_t> page(g.pageSize);
    std::vector<FlashPageAddr> fast_live, slow_live;
    for (int round = 0; round < 6; ++round) {
        const SegmentId seg{static_cast<std::uint32_t>(
            rng.below(g.numSegments()))};
        // Fill the segment, invalidating most appends as we go.
        while (fast.freeSlots(seg) > PageCount(0)) {
            for (auto &v : page)
                v = static_cast<std::uint8_t>(rng.next());
            const LogicalPageId logical(rng.below(1000));
            const FlashPageAddr fa = fast.appendPage(seg, logical, page);
            const FlashPageAddr sa = slow.appendPage(seg, logical, page);
            ASSERT_EQ(fa.segment.value(), sa.segment.value());
            ASSERT_EQ(fa.slot.value(), sa.slot.value());
            if (rng.chance(0.8)) {
                fast.invalidatePage(fa);
                slow.invalidatePage(sa);
            } else {
                fast_live.push_back(fa);
                slow_live.push_back(sa);
            }
        }
        ASSERT_EQ(fast.freeSlots(seg), slow.freeSlots(seg));
        // Live data must read back identically before the erase.
        std::vector<std::uint8_t> a(g.pageSize), b(g.pageSize);
        for (std::size_t i = 0; i < fast_live.size(); ++i) {
            fast.readPage(fast_live[i], a);
            slow.readPage(slow_live[i], b);
            ASSERT_EQ(a, b);
        }
        for (const FlashPageAddr &addr : fast_live)
            fast.invalidatePage(addr);
        for (const FlashPageAddr &addr : slow_live)
            slow.invalidatePage(addr);
        fast_live.clear();
        slow_live.clear();
        EXPECT_EQ(fast.eraseSegment(seg), slow.eraseSegment(seg));
    }

    EXPECT_EQ(fast_attempts, slow_attempts);
    EXPECT_EQ(fast.statPagesProgrammed.value(),
              slow.statPagesProgrammed.value());
    EXPECT_EQ(fast.statSlotsRetired.value(),
              slow.statSlotsRetired.value());
    EXPECT_EQ(fast.statProgramSpecFailures.value(),
              slow.statProgramSpecFailures.value());
    EXPECT_GT(fast.statSlotsRetired.value(), 0u);
    for (std::uint32_t s = 0; s < g.numSegments(); ++s) {
        const SegmentId seg{s};
        EXPECT_EQ(fast.eraseCycles(seg), slow.eraseCycles(seg));
        EXPECT_EQ(fast.retiredCount(seg), slow.retiredCount(seg));
    }
    const std::vector<SegmentId> ff = fast.specFailedSegments();
    const std::vector<SegmentId> sf = slow.specFailedSegments();
    ASSERT_EQ(ff.size(), sf.size());
    for (std::size_t i = 0; i < ff.size(); ++i)
        EXPECT_EQ(ff[i].value(), sf[i].value());
}

TEST(Dataplane, StoreChurnMatchesOracleEndToEnd)
{
    // Whole-stack differential: twin EnvyStores driven by the same
    // write stream; cleaning, wear leveling and buffer flushes all
    // ride the data plane under test.
    EnvyConfig base;
    base.geom = Geometry::tiny();
    base.geom.writeBufferPages = 32;
    base.wearThreshold = 8; // make rotations happen
    EnvyConfig slow_cfg = base;
    slow_cfg.slowDataplane = true;
    EnvyStore fast(base);
    EnvyStore slow(slow_cfg);
    ASSERT_FALSE(fast.flash().slowDataplane());
    ASSERT_TRUE(slow.flash().slowDataplane());

    Rng rng(9);
    std::vector<std::uint8_t> data(3 * base.geom.pageSize);
    const std::uint64_t size = fast.size();
    for (int op = 0; op < 400; ++op) {
        const Addr addr = rng.below(size);
        const std::uint64_t len = std::min<std::uint64_t>(
            rng.between(1, data.size()), size - addr);
        for (std::uint64_t i = 0; i < len; ++i)
            data[i] = static_cast<std::uint8_t>(rng.next());
        fast.write(addr, {data.data(), len});
        slow.write(addr, {data.data(), len});
    }
    fast.flushAll();
    slow.flushAll();

    // Same logical contents...
    std::vector<std::uint8_t> a(4096), b(4096);
    for (std::uint64_t off = 0; off < size; off += a.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(a.size(), size - off);
        fast.read(off, {a.data(), n});
        slow.read(off, {b.data(), n});
        ASSERT_EQ(a, b) << "offset " << off;
    }
    // ...and the same physical history.
    EXPECT_EQ(fast.flash().statPagesProgrammed.value(),
              slow.flash().statPagesProgrammed.value());
    EXPECT_EQ(fast.flash().statSegmentErases.value(),
              slow.flash().statSegmentErases.value());
    EXPECT_EQ(fast.flash().statPagesInvalidated.value(),
              slow.flash().statPagesInvalidated.value());
    EXPECT_EQ(fast.cleaningCost(), slow.cleaningCost());
    for (std::uint32_t s = 0; s < fast.flash().numSegments(); ++s) {
        const SegmentId seg{s};
        EXPECT_EQ(fast.flash().eraseCycles(seg),
                  slow.flash().eraseCycles(seg));
        EXPECT_EQ(fast.flash().liveCount(seg),
                  slow.flash().liveCount(seg));
    }
}

#if defined(__linux__) && !defined(ENVY_TEST_SANITIZED)

std::uint64_t
rssBytes()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long pages_total = 0, pages_rss = 0;
    const int got =
        std::fscanf(f, "%llu %llu", &pages_total, &pages_rss);
    std::fclose(f);
    if (got != 2)
        return 0;
    return pages_rss *
           static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

TEST(Dataplane, PaperScaleFunctionalGeometryIsSparse)
{
    // The full Figure-12 array (2 GB of cells) in functional mode.
    // Before the page-major sparse store this allocated 2 GB up
    // front; now construction is O(metadata) and RSS grows only with
    // touched erase blocks (16 MB of cells each).
    const std::uint64_t rss_before = rssBytes();
    ASSERT_GT(rss_before, 0u);

    const Geometry g = Geometry::paperSystem();
    const FlashTiming ft;
    FlashArray flash(g, ft, true);
    EXPECT_EQ(flash.materializedBlocks(), 0u);

    // Touch three segments with real data.
    std::vector<std::uint8_t> page(g.pageSize, 0x5A);
    std::vector<std::uint8_t> out(g.pageSize);
    const std::uint32_t touched = 3;
    for (std::uint32_t s = 0; s < touched; ++s) {
        const SegmentId seg{s * 40}; // spread across banks
        const FlashPageAddr addr =
            flash.appendPage(seg, LogicalPageId(s), page);
        flash.readPage(addr, out);
        EXPECT_EQ(out, page);
    }
    EXPECT_EQ(flash.materializedBlocks(), touched);

    const std::uint64_t rss_after = rssBytes();
    ASSERT_GT(rss_after, 0u);
    // 3 materialized segments = 48 MB of cells.  Allow generous
    // slack for metadata (per-slot owner words etc.) but stay far
    // below the 2 GB a dense layout would need.
    EXPECT_LT(rss_after - rss_before, 256ull * 1024 * 1024)
        << "sparse store materialized too much";
}

#endif // __linux__ && !ENVY_TEST_SANITIZED

} // namespace
} // namespace envy
