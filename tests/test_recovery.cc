/**
 * @file
 * Crash-recovery tests (§3.2-§3.4): the page table in battery-backed
 * SRAM is the commit point; no committed data may be lost across a
 * power failure, including one that interrupts a clean.
 */

#include <gtest/gtest.h>

#include <vector>

#include "envy/envy_store.hh"
#include "faults/fault_injector.hh"
#include "sim/random.hh"

namespace envy {
namespace {

EnvyConfig
recoveryConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    cfg.policy = PolicyKind::Hybrid;
    cfg.partitionSize = 4;
    return cfg;
}

TEST(Recovery, IdleRecoveryIsIdempotent)
{
    EnvyStore store(recoveryConfig());
    store.writeU64(500, 0xABCDEF);
    store.powerFailAndRecover();
    EXPECT_EQ(store.readU64(500), 0xABCDEFull);
    store.powerFailAndRecover();
    store.powerFailAndRecover();
    EXPECT_EQ(store.readU64(500), 0xABCDEFull);
}

TEST(Recovery, BufferedDataSurvives)
{
    EnvyConfig cfg = recoveryConfig();
    cfg.autoDrain = false; // keep everything buffered in SRAM
    EnvyStore store(cfg);
    for (int i = 0; i < 20; ++i)
        store.writeU32(i * 1000, 0xC0DE0000u + i);
    EXPECT_FALSE(store.writeBuffer().empty());

    store.powerFailAndRecover();

    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(store.readU32(i * 1000), 0xC0DE0000u + i);
}

TEST(Recovery, RandomChurnThenCrash)
{
    EnvyStore store(recoveryConfig());
    std::vector<std::uint8_t> ref(store.size(), 0);
    Rng rng(11);

    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t addr = rng.below(store.size() - 8);
        const std::uint64_t v = rng.next();
        std::uint8_t buf[8];
        for (int i = 0; i < 8; ++i) {
            buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
            ref[addr + i] = buf[i];
        }
        store.write(addr, buf);
    }
    ASSERT_GT(store.cleanerRef().statCleans.value(), 0u);

    store.powerFailAndRecover();

    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < store.size(); a += buf.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store.size() - a);
        store.read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i])
                << "lost byte at " << a + i;
    }
}

TEST(Recovery, CrashDuringCleanResumesAndLosesNothing)
{
    EnvyStore store(recoveryConfig());
    std::vector<std::uint8_t> ref(store.size(), 0);
    Rng rng(13);

    // Arm a power failure 100 relocations into some future clean:
    // the injected PowerLoss cuts execution exactly at the crash
    // point the way real power loss would.
    FaultPlan plan;
    plan.crashPoint = "cleaner.relocate.done";
    plan.crashOccurrence = 100;
    FaultInjector injector(plan);
    injector.arm();

    bool crashed = false;
    for (int op = 0; op < 20000 && !crashed; ++op) {
        const std::uint64_t addr = rng.below(store.size() - 4);
        const std::uint32_t v = static_cast<std::uint32_t>(rng.next());
        std::uint8_t buf[4];
        for (int i = 0; i < 4; ++i) {
            buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
            // The write data lands in the SRAM buffer before the
            // background drain where the crash fires, so it counts
            // as committed either way.
            ref[addr + i] = buf[i];
        }
        try {
            store.write(addr, buf);
        } catch (const PowerLoss &) {
            crashed = true;
        }
    }
    ASSERT_TRUE(crashed) << "no clean reached 100 relocations";
    ASSERT_TRUE(store.space().cleanRecord().inProgress);
    injector.disarm();

    store.powerFailAndRecover();
    EXPECT_FALSE(store.space().cleanRecord().inProgress);

    // Every byte written before the crash is intact.
    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < store.size(); a += buf.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store.size() - a);
        store.read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i])
                << "lost byte at " << a + i;
    }

    // And the system still works.
    store.writeU64(0, 42);
    EXPECT_EQ(store.readU64(0), 42u);
}

TEST(Recovery, StoreKeepsWorkingAfterRecovery)
{
    EnvyStore store(recoveryConfig());
    Rng rng(17);
    for (int round = 0; round < 3; ++round) {
        for (int op = 0; op < 5000; ++op)
            store.writeU32(rng.below(store.size() - 4),
                           static_cast<std::uint32_t>(rng.next()));
        store.powerFailAndRecover();
    }
    store.writeU64(100, 0x1234);
    EXPECT_EQ(store.readU64(100), 0x1234ull);
}

TEST(Recovery, TlbIsColdAfterRecovery)
{
    EnvyStore store(recoveryConfig());
    store.readU8(0);
    const auto misses0 = store.controller().mmu().statMisses.value();
    store.readU8(0); // hit
    EXPECT_EQ(store.controller().mmu().statMisses.value(), misses0);
    store.powerFailAndRecover();
    store.readU8(0); // must walk again
    EXPECT_GT(store.controller().mmu().statMisses.value(), misses0);
}

} // namespace
} // namespace envy
