/**
 * @file
 * Tests for the bank organisation of Figure 4: byte j of a page lives
 * in chip j, a whole page moves in one cycle, and a segment is one
 * erase block across every chip.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "flash/flash_bank.hh"

namespace envy {
namespace {

FlashBank
makeBank(bool store_data = true)
{
    // 16 chips, 128-byte blocks, 4 blocks per chip.
    return FlashBank(16, 128, 4, FlashTiming{}, store_data);
}

TEST(FlashBank, PageRoundTrip)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16);
    std::iota(page.begin(), page.end(), 1);

    bank.programPage(2, 77, page);

    std::vector<std::uint8_t> out(16, 0);
    bank.readPage(2, 77, out);
    EXPECT_EQ(out, page);
}

TEST(FlashBank, BytesStripeAcrossChips)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16);
    std::iota(page.begin(), page.end(), 0x10);
    bank.programPage(1, 5, page);

    // Byte j of page p in block b = chip j, address b*128 + p.
    for (std::uint32_t j = 0; j < 16; ++j)
        EXPECT_EQ(bank.chip(j).read(1 * 128 + 5), 0x10 + j);
}

TEST(FlashBank, ProgramTakesOneParallelProgramTime)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16, 0xAB);
    const Tick t = bank.programPage(0, 0, page);
    EXPECT_EQ(t, FlashTiming{}.programTime); // parallel, not 16x
}

TEST(FlashBank, EraseSegmentClearsEveryChip)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16, 0x00);
    bank.programPage(3, 9, page);

    const Tick t = bank.eraseSegment(3);
    EXPECT_GE(t, FlashTiming{}.eraseTime);

    std::vector<std::uint8_t> out(16, 0);
    bank.readPage(3, 9, out);
    for (auto b : out)
        EXPECT_EQ(b, 0xFF);
}

TEST(FlashBank, EraseLeavesOtherSegmentsAlone)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16, 0x42);
    bank.programPage(0, 1, page);
    bank.programPage(1, 1, page);
    bank.eraseSegment(0);

    std::vector<std::uint8_t> out(16, 0);
    bank.readPage(1, 1, out);
    EXPECT_EQ(out[0], 0x42);
}

TEST(FlashBank, SegmentWearCountsErases)
{
    FlashBank bank = makeBank();
    EXPECT_EQ(bank.segmentCycles(2), 0u);
    bank.eraseSegment(2);
    bank.eraseSegment(2);
    EXPECT_EQ(bank.segmentCycles(2), 2u);
    EXPECT_EQ(bank.segmentCycles(0), 0u);
}

TEST(FlashBank, ParallelStatusCheck)
{
    FlashBank bank = makeBank();
    EXPECT_TRUE(bank.allReady());
    EXPECT_FALSE(bank.outOfSpec());
}

TEST(FlashBank, MetadataOnlyStillTracksWear)
{
    FlashBank bank = makeBank(false);
    std::vector<std::uint8_t> page(16, 0x00);
    bank.programPage(0, 0, page);
    bank.eraseSegment(0);
    EXPECT_EQ(bank.segmentCycles(0), 1u);
}

// The bank caches "every lane is lockstep-idle" to skip per-chip
// walks in the bulk paths; these tests pin the invalidation edges.

TEST(FlashBank, ProgramErrorSticksThroughLaterCleanPrograms)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16, 0x00);
    bank.programPage(0, 3, page);
    EXPECT_TRUE(bank.allProgrammedOk()); // primes the lockstep cache

    // 0 -> 1 on every lane: rejected, programError latched.
    std::vector<std::uint8_t> ones(16, 0xFF);
    bank.programPage(0, 3, ones);
    EXPECT_FALSE(bank.allProgrammedOk());

    // A later clean program must not revalidate the cache past the
    // sticky status bit.
    bank.programPage(0, 4, page);
    EXPECT_FALSE(bank.allProgrammedOk());

    bank.clearStatus();
    EXPECT_TRUE(bank.allProgrammedOk());
    EXPECT_TRUE(bank.allReady());
}

TEST(FlashBank, ExternalChipAccessInvalidatesLockstepCache)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16);
    std::iota(page.begin(), page.end(), 1);
    bank.programPage(2, 7, page);

    std::vector<std::uint8_t> out(16, 0);
    bank.readPage(2, 7, out); // primes the lockstep cache
    EXPECT_EQ(out, page);

    // Drop one lane out of read-array mode behind the bank's back
    // (the accessor must pessimise the cache): the page read now has
    // to take the per-chip CUI path, which returns the status byte
    // for the lane left in ReadStatus.
    bank.chip(5).writeCommand(FlashCmd::ReadStatus);
    bank.readPage(2, 7, out);
    EXPECT_EQ(out[5], FlashStatus::ready);
    for (std::uint32_t j = 0; j < 16; ++j) {
        if (j != 5) {
            EXPECT_EQ(out[j], page[j]);
        }
    }

    bank.chip(5).writeCommand(FlashCmd::ReadArray);
    bank.readPage(2, 7, out);
    EXPECT_EQ(out, page);
}

TEST(FlashBankDeathTest, OutOfRangeProgramPanics)
{
    FlashBank bank = makeBank();
    std::vector<std::uint8_t> page(16, 0);
    EXPECT_DEATH(bank.programPage(4, 0, page), "out of range");
    EXPECT_DEATH(bank.programPage(0, 128, page), "out of range");
}

} // namespace
} // namespace envy
