/**
 * @file
 * Tests for the statistics package (sim/stats.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace envy {
namespace {

TEST(Counter, CountsAndResets)
{
    StatGroup g("g");
    Counter c(&g, "c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMinMaxMean)
{
    StatGroup g("g");
    Average a(&g, "a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, SingleSample)
{
    StatGroup g("g");
    Average a(&g, "a", "");
    a.sample(-5.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), -5.0);
}

TEST(Histogram, MeanAndPercentiles)
{
    StatGroup g("g");
    Histogram h(&g, "h", "a histogram");
    for (int i = 0; i < 99; ++i)
        h.sample(100);
    h.sample(1 << 20);
    EXPECT_EQ(h.count(), 100u);
    // p50 falls in the bucket containing 100: [64, 128) -> 128.
    EXPECT_EQ(h.percentile(50), 128u);
    // p99 is still within the dense bucket; p100 would hit the spike.
    EXPECT_LE(h.percentile(99), 128u);
    EXPECT_NEAR(h.mean(), (99 * 100.0 + (1 << 20)) / 100.0, 1.0);
}

TEST(Histogram, ZeroBucket)
{
    StatGroup g("g");
    Histogram h(&g, "h", "");
    h.sample(0);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(StatGroup, PrintsHierarchy)
{
    StatGroup root("system");
    StatGroup child("component", &root);
    Counter c(&child, "events", "number of events");
    c += 7;

    std::ostringstream os;
    root.printStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("system.component.events"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("number of events"), std::string::npos);
}

TEST(StatGroup, ResetRecurses)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Counter a(&root, "a", "");
    Counter b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, ChildDetachesOnDestruction)
{
    StatGroup root("r");
    {
        StatGroup child("c", &root);
    }
    std::ostringstream os;
    root.printStats(os);
    EXPECT_EQ(os.str().find("c."), std::string::npos);
}

} // namespace
} // namespace envy
