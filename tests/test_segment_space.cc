/**
 * @file
 * Tests for logical/physical segment identity and the persistent
 * cleaning state (§3.4), plus the property test cross-checking the
 * incremental policy indexes against full rescans.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "envy/segment_space.hh"
#include "sim/random.hh"

namespace envy {
namespace {

class SegmentSpaceTest : public ::testing::Test
{
  protected:
    SegmentSpaceTest()
        : flash(Geometry::tiny(), FlashTiming{}, false),
          sram(SegmentSpace::bytesNeeded(flash.numSegments()).value()),
          space(flash, sram, 0)
    {
    }

    FlashArray flash;
    SramArray sram;
    SegmentSpace space;
};

TEST_F(SegmentSpaceTest, FreshIdentityMapping)
{
    EXPECT_EQ(space.numLogical(), flash.numSegments() - 1);
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        EXPECT_EQ(space.physOf(l).value(), l);
        EXPECT_EQ(space.logOf(SegmentId(l)), l);
    }
    EXPECT_EQ(space.reserve().value(), space.numLogical());
    EXPECT_EQ(space.logOf(space.reserve()), SegmentSpace::noLogical);
}

TEST_F(SegmentSpaceTest, CommitCleanRotatesReserve)
{
    const SegmentId old_phys = space.physOf(3);
    const SegmentId old_reserve = space.reserve();

    space.commitClean(3);

    EXPECT_EQ(space.physOf(3), old_reserve);
    EXPECT_EQ(space.reserve(), old_phys);
    EXPECT_EQ(space.logOf(old_reserve), 3u);
    EXPECT_EQ(space.logOf(old_phys), SegmentSpace::noLogical);
}

TEST_F(SegmentSpaceTest, RepeatedCleansKeepMappingBijective)
{
    for (std::uint32_t i = 0; i < 100; ++i)
        space.commitClean(i % space.numLogical());

    std::vector<bool> seen(flash.numSegments(), false);
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId p = space.physOf(l);
        EXPECT_FALSE(seen[p.value()]);
        seen[p.value()] = true;
        EXPECT_EQ(space.logOf(p), l);
    }
    EXPECT_FALSE(seen[space.reserve().value()]);
}

TEST_F(SegmentSpaceTest, WearRotationRewiresThreeWays)
{
    const SegmentId pa = space.physOf(2);
    const SegmentId pb = space.physOf(9);
    const SegmentId res = space.reserve();

    space.rotateForWear(2, 9);

    EXPECT_EQ(space.physOf(2), res); // hot -> old reserve
    EXPECT_EQ(space.physOf(9), pa);  // cold -> hot's worn home
    EXPECT_EQ(space.reserve(), pb);  // cold's home becomes reserve
}

TEST_F(SegmentSpaceTest, FlushClockAndPerSegmentClocks)
{
    EXPECT_EQ(space.flushClock(), 0u);
    space.noteFlush();
    space.noteFlush();
    EXPECT_EQ(space.flushClock(), 2u);

    EXPECT_EQ(space.cleanCount(5), 0u);
    space.noteClean(5);
    EXPECT_EQ(space.cleanCount(5), 1u);
    EXPECT_EQ(space.lastCleanClock(5), 2u);
}

TEST_F(SegmentSpaceTest, CleanRecordRoundTrip)
{
    EXPECT_FALSE(space.cleanRecord().inProgress);
    space.beginCleanRecord(4, SegmentId(4), space.reserve());
    const auto rec = space.cleanRecord();
    EXPECT_TRUE(rec.inProgress);
    EXPECT_EQ(rec.logical, 4u);
    EXPECT_EQ(rec.victimPhys, SegmentId(4));
    EXPECT_EQ(rec.destPhys, space.reserve());
    space.clearCleanRecord();
    EXPECT_FALSE(space.cleanRecord().inProgress);
}

TEST_F(SegmentSpaceTest, RecoverRebuildsFromSram)
{
    space.commitClean(7);
    space.commitClean(2);
    const SegmentId phys7 = space.physOf(7);
    const SegmentId phys2 = space.physOf(2);
    const SegmentId reserve = space.reserve();

    // recover() must rebuild exactly what persistAll() wrote, even
    // after the in-core mirrors are clobbered.
    space.recover();
    EXPECT_EQ(space.physOf(7), phys7);
    EXPECT_EQ(space.physOf(2), phys2);
    EXPECT_EQ(space.reserve(), reserve);
}

TEST_F(SegmentSpaceTest, QueriesForwardToFlash)
{
    const SegmentId phys = space.physOf(1);
    flash.appendPage(phys, LogicalPageId(0));
    flash.appendPage(phys, LogicalPageId(1));
    flash.invalidatePage({phys, SlotId(0)});
    EXPECT_EQ(space.liveCount(1), PageCount(1));
    EXPECT_EQ(space.invalidCount(1), PageCount(1));
    EXPECT_EQ(space.freeSlots(1),
              flash.pagesPerSegment() - PageCount(2));
    EXPECT_DOUBLE_EQ(space.utilization(1),
                     1.0 / asDouble(flash.pagesPerSegment()));
}

// ---- incremental index properties -------------------------------
//
// Every query the policies use must agree with a brute-force rescan
// of the flash counts, under a randomized mix of appends,
// invalidations, erases, clean commits and wear rotations.

class IndexPropertyTest : public ::testing::Test
{
  protected:
    static Geometry
    smallGeom()
    {
        Geometry g;
        g.pageSize = 64;
        g.blockBytes = 32; // 32 pages per segment: fills up quickly
        g.blocksPerChip = 8;
        g.numBanks = 2; // 16 segments
        return g;
    }

    IndexPropertyTest()
        : flash(smallGeom(), FlashTiming{}, false),
          sram(SegmentSpace::bytesNeeded(flash.numSegments()).value()),
          space(flash, sram, 0)
    {
    }

    std::uint64_t freeOf(std::uint32_t l) const
    {
        return space.freeSlots(l).value();
    }
    std::uint64_t invalidOf(std::uint32_t l) const
    {
        return space.invalidCount(l).value();
    }

    void
    checkAgainstRescan()
    {
        const std::uint32_t n = space.numLogical();

        // roomiest: FIRST index with the maximum free count.
        std::uint64_t max_free = 0;
        std::uint32_t roomiest = 0;
        for (std::uint32_t l = 0; l < n; ++l) {
            if (freeOf(l) > max_free) {
                max_free = freeOf(l);
                roomiest = l;
            }
        }
        EXPECT_EQ(space.maxFreeSlots(), PageCount(max_free));
        EXPECT_EQ(space.roomiestLogical(), roomiest);

        // victim: LAST index with the maximum invalid count.
        std::uint64_t max_inv = 0;
        std::uint32_t victim = 0;
        for (std::uint32_t l = 0; l < n; ++l) {
            if (invalidOf(l) >= max_inv) {
                max_inv = invalidOf(l);
                victim = l;
            }
        }
        EXPECT_EQ(space.mostInvalidLogical(), victim);

        // Range sums and first-free, over a few random ranges.
        for (int i = 0; i < 8; ++i) {
            std::uint32_t a = static_cast<std::uint32_t>(
                rng.below(n + 1));
            std::uint32_t b = static_cast<std::uint32_t>(
                rng.below(n + 1));
            if (a > b)
                std::swap(a, b);
            std::uint64_t free_sum = 0, live_sum = 0;
            std::uint32_t first_free = SegmentSpace::noLogical;
            for (std::uint32_t l = a; l < b; ++l) {
                free_sum += freeOf(l);
                live_sum += space.liveCount(l).value();
                if (first_free == SegmentSpace::noLogical &&
                    freeOf(l) > 0)
                    first_free = l;
            }
            EXPECT_EQ(space.freeInRange(a, b), PageCount(free_sum));
            EXPECT_EQ(space.liveInRange(a, b), PageCount(live_sum));
            EXPECT_EQ(space.firstWithFreeInRange(a, b), first_free);
        }

        // nearestWithSpareFree in both directions from a few starts.
        for (int i = 0; i < 8; ++i) {
            const std::uint32_t from =
                static_cast<std::uint32_t>(rng.below(n));
            std::uint32_t up = from, down = from;
            for (std::uint32_t l = from + 1; l < n; ++l) {
                if (freeOf(l) > 1) {
                    up = l;
                    break;
                }
            }
            for (std::uint32_t l = from; l-- > 0;) {
                if (freeOf(l) > 1) {
                    down = l;
                    break;
                }
            }
            EXPECT_EQ(space.nearestWithSpareFree(from, +1), up);
            EXPECT_EQ(space.nearestWithSpareFree(from, -1), down);
        }
    }

    FlashArray flash;
    SramArray sram;
    SegmentSpace space;
    Rng rng{97};
};

TEST_F(IndexPropertyTest, IndexesMatchRescanUnderRandomChurn)
{
    // Tracked live pages, as (logical segment, slot) pairs resolved
    // to physical addresses at use time.
    std::vector<FlashPageAddr> live;
    std::uint64_t next_owner = 0;

    for (int op = 0; op < 3000; ++op) {
        const std::uint32_t l = static_cast<std::uint32_t>(
            rng.below(space.numLogical()));
        const SegmentId phys = space.physOf(l);
        switch (rng.below(100)) {
        case 0: // commit a (metadata-level) clean
            space.commitClean(l);
            break;
        case 1: { // wear rotation between two distinct logicals
            const std::uint32_t other = static_cast<std::uint32_t>(
                rng.below(space.numLogical()));
            if (other != l)
                space.rotateForWear(l, other);
            break;
        }
        case 2: { // erase once everything in the segment is dead
            if (flash.liveCount(phys) == PageCount(0) &&
                flash.usedSlots(phys) > PageCount(0)) {
                flash.eraseSegment(phys);
                std::erase_if(live, [&](const FlashPageAddr &a) {
                    return a.segment == phys;
                });
            }
            break;
        }
        default:
            if (rng.chance(0.4) && !live.empty()) {
                const std::size_t pick = rng.below(live.size());
                flash.invalidatePage(live[pick]);
                live[pick] = live.back();
                live.pop_back();
            } else if (flash.freeSlots(phys) > PageCount(0)) {
                live.push_back(flash.appendPage(
                    phys, LogicalPageId(next_owner++)));
            }
            break;
        }
        if (op % 100 == 99)
            checkAgainstRescan();
    }
    checkAgainstRescan();
}

TEST_F(IndexPropertyTest, RecoverRebuildsIndexes)
{
    // Populate unevenly, then recover() and re-check.
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId phys = space.physOf(l);
        for (std::uint32_t j = 0; j < l * 2; ++j) {
            const FlashPageAddr a =
                flash.appendPage(phys, LogicalPageId(l * 64 + j));
            if (j % 3 == 0)
                flash.invalidatePage(a);
        }
    }
    space.commitClean(5);
    space.recover();
    checkAgainstRescan();
}

} // namespace
} // namespace envy
