/**
 * @file
 * Tests for logical/physical segment identity and the persistent
 * cleaning state (§3.4).
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "envy/segment_space.hh"

namespace envy {
namespace {

class SegmentSpaceTest : public ::testing::Test
{
  protected:
    SegmentSpaceTest()
        : flash(Geometry::tiny(), FlashTiming{}, false),
          sram(SegmentSpace::bytesNeeded(flash.numSegments()).value()),
          space(flash, sram, 0)
    {
    }

    FlashArray flash;
    SramArray sram;
    SegmentSpace space;
};

TEST_F(SegmentSpaceTest, FreshIdentityMapping)
{
    EXPECT_EQ(space.numLogical(), flash.numSegments() - 1);
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        EXPECT_EQ(space.physOf(l).value(), l);
        EXPECT_EQ(space.logOf(SegmentId(l)), l);
    }
    EXPECT_EQ(space.reserve().value(), space.numLogical());
    EXPECT_EQ(space.logOf(space.reserve()), SegmentSpace::noLogical);
}

TEST_F(SegmentSpaceTest, CommitCleanRotatesReserve)
{
    const SegmentId old_phys = space.physOf(3);
    const SegmentId old_reserve = space.reserve();

    space.commitClean(3);

    EXPECT_EQ(space.physOf(3), old_reserve);
    EXPECT_EQ(space.reserve(), old_phys);
    EXPECT_EQ(space.logOf(old_reserve), 3u);
    EXPECT_EQ(space.logOf(old_phys), SegmentSpace::noLogical);
}

TEST_F(SegmentSpaceTest, RepeatedCleansKeepMappingBijective)
{
    for (std::uint32_t i = 0; i < 100; ++i)
        space.commitClean(i % space.numLogical());

    std::vector<bool> seen(flash.numSegments(), false);
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId p = space.physOf(l);
        EXPECT_FALSE(seen[p.value()]);
        seen[p.value()] = true;
        EXPECT_EQ(space.logOf(p), l);
    }
    EXPECT_FALSE(seen[space.reserve().value()]);
}

TEST_F(SegmentSpaceTest, WearRotationRewiresThreeWays)
{
    const SegmentId pa = space.physOf(2);
    const SegmentId pb = space.physOf(9);
    const SegmentId res = space.reserve();

    space.rotateForWear(2, 9);

    EXPECT_EQ(space.physOf(2), res); // hot -> old reserve
    EXPECT_EQ(space.physOf(9), pa);  // cold -> hot's worn home
    EXPECT_EQ(space.reserve(), pb);  // cold's home becomes reserve
}

TEST_F(SegmentSpaceTest, FlushClockAndPerSegmentClocks)
{
    EXPECT_EQ(space.flushClock(), 0u);
    space.noteFlush();
    space.noteFlush();
    EXPECT_EQ(space.flushClock(), 2u);

    EXPECT_EQ(space.cleanCount(5), 0u);
    space.noteClean(5);
    EXPECT_EQ(space.cleanCount(5), 1u);
    EXPECT_EQ(space.lastCleanClock(5), 2u);
}

TEST_F(SegmentSpaceTest, CleanRecordRoundTrip)
{
    EXPECT_FALSE(space.cleanRecord().inProgress);
    space.beginCleanRecord(4, SegmentId(4), space.reserve());
    const auto rec = space.cleanRecord();
    EXPECT_TRUE(rec.inProgress);
    EXPECT_EQ(rec.logical, 4u);
    EXPECT_EQ(rec.victimPhys, SegmentId(4));
    EXPECT_EQ(rec.destPhys, space.reserve());
    space.clearCleanRecord();
    EXPECT_FALSE(space.cleanRecord().inProgress);
}

TEST_F(SegmentSpaceTest, RecoverRebuildsFromSram)
{
    space.commitClean(7);
    space.commitClean(2);
    const SegmentId phys7 = space.physOf(7);
    const SegmentId phys2 = space.physOf(2);
    const SegmentId reserve = space.reserve();

    // recover() must rebuild exactly what persistAll() wrote, even
    // after the in-core mirrors are clobbered.
    space.recover();
    EXPECT_EQ(space.physOf(7), phys7);
    EXPECT_EQ(space.physOf(2), phys2);
    EXPECT_EQ(space.reserve(), reserve);
}

TEST_F(SegmentSpaceTest, QueriesForwardToFlash)
{
    const SegmentId phys = space.physOf(1);
    flash.appendPage(phys, LogicalPageId(0));
    flash.appendPage(phys, LogicalPageId(1));
    flash.invalidatePage({phys, SlotId(0)});
    EXPECT_EQ(space.liveCount(1), PageCount(1));
    EXPECT_EQ(space.invalidCount(1), PageCount(1));
    EXPECT_EQ(space.freeSlots(1),
              flash.pagesPerSegment() - PageCount(2));
    EXPECT_DOUBLE_EQ(space.utilization(1),
                     1.0 / asDouble(flash.pagesPerSegment()));
}

} // namespace
} // namespace envy
