/**
 * @file
 * Tests for the 6-byte-entry page table (§3.3).
 */

#include <gtest/gtest.h>

#include "envy/page_table.hh"

namespace envy {
namespace {

class PageTableTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t entries = 1000;

    PageTableTest()
        : sram(PageTable::bytesNeeded(entries) + 64),
          table(sram, 64, entries)
    {
    }

    SramArray sram;
    PageTable table;
};

TEST_F(PageTableTest, StartsUnmapped)
{
    for (std::uint64_t p = 0; p < entries; p += 97) {
        const auto loc = table.lookup(LogicalPageId(p));
        EXPECT_EQ(loc.kind, PageTable::LocKind::Unmapped);
        EXPECT_FALSE(loc.mapped());
    }
    EXPECT_EQ(table.countMapped(), 0u);
}

TEST_F(PageTableTest, FlashMappingRoundTrip)
{
    const FlashPageAddr addr{SegmentId(113), SlotId(0xDEADBEu)};
    table.mapToFlash(LogicalPageId(5), addr);
    const auto loc = table.lookup(LogicalPageId(5));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(loc.flash, addr);
}

TEST_F(PageTableTest, SramMappingRoundTrip)
{
    table.mapToSram(LogicalPageId(6), BufferSlotId(0xFEEDu));
    const auto loc = table.lookup(LogicalPageId(6));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Sram);
    EXPECT_EQ(loc.sramSlot.value(), 0xFEEDu);
}

TEST_F(PageTableTest, RemapOverwrites)
{
    table.mapToFlash(LogicalPageId(7), {SegmentId(1), SlotId(2)});
    table.mapToSram(LogicalPageId(7), BufferSlotId(3));
    EXPECT_EQ(table.lookup(LogicalPageId(7)).kind,
              PageTable::LocKind::Sram);
    table.mapToFlash(LogicalPageId(7), {SegmentId(4), SlotId(5)});
    const auto loc = table.lookup(LogicalPageId(7));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(loc.flash.segment.value(), 4u);
    EXPECT_EQ(loc.flash.slot.value(), 5u);
}

TEST_F(PageTableTest, UnmapRestoresUnmapped)
{
    table.mapToSram(LogicalPageId(8), BufferSlotId(1));
    table.unmap(LogicalPageId(8));
    EXPECT_FALSE(table.lookup(LogicalPageId(8)).mapped());
}

TEST_F(PageTableTest, CountMapped)
{
    table.mapToSram(LogicalPageId(1), BufferSlotId(1));
    table.mapToFlash(LogicalPageId(2), {SegmentId(0), SlotId(0)});
    table.mapToSram(LogicalPageId(3), BufferSlotId(2));
    table.unmap(LogicalPageId(3));
    EXPECT_EQ(table.countMapped(), 2u);
}

TEST_F(PageTableTest, EntriesAreExactlySixBytes)
{
    EXPECT_EQ(PageTable::bytesNeeded(entries), entries * 6);
    // Mapping entry k must only touch bytes [64 + 6k, 64 + 6k + 6).
    const std::uint8_t before = sram.readByte(64 + 6 * 10 - 1);
    table.mapToFlash(LogicalPageId(10), {SegmentId(3), SlotId(9)});
    EXPECT_EQ(sram.readByte(64 + 6 * 10 - 1), before);
    EXPECT_EQ(table.lookup(LogicalPageId(9)).kind,
              PageTable::LocKind::Unmapped);
    EXPECT_EQ(table.lookup(LogicalPageId(11)).kind,
              PageTable::LocKind::Unmapped);
}

struct PackCase
{
    std::uint64_t segment;
    std::uint32_t slot;
};

class PageTablePackTest : public ::testing::TestWithParam<PackCase>
{
};

TEST_P(PageTablePackTest, FlashEncodingIsLossless)
{
    SramArray sram(PageTable::bytesNeeded(4));
    PageTable table(sram, 0, 4);
    const auto &c = GetParam();
    const FlashPageAddr addr{SegmentId(c.segment), SlotId(c.slot)};
    table.mapToFlash(LogicalPageId(0), addr);
    const auto loc = table.lookup(LogicalPageId(0));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(loc.flash.segment.value(), c.segment);
    EXPECT_EQ(loc.flash.slot.value(), c.slot);
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, PageTablePackTest,
    ::testing::Values(PackCase{0, 0}, PackCase{0, 0xFFFFFFFF},
                      PackCase{0x7FFE, 0}, PackCase{0x7FFE, 0xFFFFFFFF},
                      PackCase{127, 65535}, PackCase{1, 1}));

TEST(PageTableDeathTest, OutOfRangePagePanics)
{
    SramArray sram(PageTable::bytesNeeded(4));
    PageTable table(sram, 0, 4);
    EXPECT_DEATH(table.lookup(LogicalPageId(4)), "out of range");
    EXPECT_DEATH(table.mapToSram(LogicalPageId(99), BufferSlotId(0)),
                 "out of range");
}

TEST(PageTableDeathTest, OversizedSegmentPanics)
{
    SramArray sram(PageTable::bytesNeeded(4));
    PageTable table(sram, 0, 4);
    EXPECT_DEATH(
        table.mapToFlash(LogicalPageId(0),
                         {SegmentId(0x8000), SlotId(0)}),
        "6-byte");
}

} // namespace
} // namespace envy
