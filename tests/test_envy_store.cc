/**
 * @file
 * End-to-end tests of the public EnvyStore interface, centred on a
 * randomized differential test against a plain byte-array reference
 * model while cleaning and wear-leveling churn underneath.
 */

#include <gtest/gtest.h>

#include <vector>

#include "envy/envy_store.hh"
#include "sim/random.hh"

namespace envy {
namespace {

EnvyConfig
churnConfig(PolicyKind policy)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    cfg.policy = policy;
    cfg.partitionSize = 4;
    cfg.wearThreshold = 8; // exercise wear rotation too
    return cfg;
}

TEST(EnvyStore, SizeMatchesGeometry)
{
    EnvyStore store(churnConfig(PolicyKind::Hybrid));
    EXPECT_EQ(store.size(), store.config().geom.logicalBytes().value());
    EXPECT_GT(store.size(), 0u);
}

TEST(EnvyStore, WordHelpersRoundTrip)
{
    EnvyStore store(churnConfig(PolicyKind::Hybrid));
    store.writeU8(1, 0xAB);
    store.writeU32(100, 0xDEADBEEF);
    store.writeU64(200, 0x0123456789ABCDEFull);
    EXPECT_EQ(store.readU8(1), 0xAB);
    EXPECT_EQ(store.readU32(100), 0xDEADBEEFu);
    EXPECT_EQ(store.readU64(200), 0x0123456789ABCDEFull);
}

TEST(EnvyStore, FlushAllEmptiesBuffer)
{
    EnvyStore store(churnConfig(PolicyKind::Hybrid));
    for (int i = 0; i < 100; ++i)
        store.writeU32(i * 300, i);
    store.flushAll();
    EXPECT_TRUE(store.writeBuffer().empty());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(store.readU32(i * 300), std::uint32_t(i));
}

class StoreFuzz : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(StoreFuzz, MatchesReferenceModelUnderChurn)
{
    EnvyStore store(churnConfig(GetParam()));
    const std::uint64_t size = store.size();
    std::vector<std::uint8_t> ref(size, 0);
    Rng rng(2024);

    for (int op = 0; op < 30000; ++op) {
        const std::uint64_t len = rng.between(1, 64);
        const std::uint64_t addr = rng.below(size - len);
        if (rng.chance(0.6)) {
            std::uint8_t buf[64];
            for (std::uint64_t i = 0; i < len; ++i) {
                buf[i] = static_cast<std::uint8_t>(rng.next());
                ref[addr + i] = buf[i];
            }
            store.write(addr, {buf, len});
        } else {
            std::uint8_t buf[64];
            store.read(addr, {buf, len});
            for (std::uint64_t i = 0; i < len; ++i)
                ASSERT_EQ(buf[i], ref[addr + i])
                    << "mismatch at " << addr + i << " after " << op
                    << " ops";
        }
    }

    // Cleaning must actually have happened for this to mean much.
    EXPECT_GT(store.cleanerRef().statCleans.value(), 0u);

    // Final sweep.
    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < size; a += buf.size()) {
        const std::uint64_t n = std::min<std::uint64_t>(
            buf.size(), size - a);
        store.read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i]) << "sweep mismatch at "
                                          << a + i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, StoreFuzz,
                         ::testing::Values(
                             PolicyKind::Greedy, PolicyKind::Fifo,
                             PolicyKind::LocalityGathering,
                             PolicyKind::Hybrid),
                         [](const auto &param_info) {
                             std::string n =
                                 policyKindName(param_info.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(EnvyStore, HotSpotHammeringStaysCorrect)
{
    // Repeated rewrites of a few pages force heavy cleaning of a
    // small region (worst case for the policies).
    EnvyStore store(churnConfig(PolicyKind::Hybrid));
    for (std::uint64_t round = 0; round < 2000; ++round) {
        for (Addr a = 0; a < 8; ++a)
            store.writeU64(a * 64, round * 100 + a);
    }
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(store.readU64(a * 64), 1999 * 100 + a);
}

TEST(EnvyStore, MetadataOnlyModeRunsTheSameMachinery)
{
    EnvyConfig cfg = churnConfig(PolicyKind::Hybrid);
    cfg.storeData = false;
    EnvyStore store(cfg);
    // Writes drive COW/flush/clean state without data.
    const std::uint32_t ps = cfg.geom.pageSize;
    Rng rng(7);
    for (int i = 0; i < 50000; ++i) {
        std::uint8_t b = 0;
        store.write(rng.below(store.size() / ps) * ps, {&b, 1});
    }
    EXPECT_GT(store.cleanerRef().statCleans.value(), 0u);
    store.flushAll(); // buffered pages are not in flash yet
    EXPECT_EQ(store.flash().totalLive(),
              cfg.geom.effectiveLogicalPages());
}

TEST(EnvyStore, CleaningCostReported)
{
    EnvyStore store(churnConfig(PolicyKind::Hybrid));
    Rng rng(3);
    for (int i = 0; i < 40000; ++i)
        store.writeU8(rng.below(store.size()), 1);
    EXPECT_GT(store.cleaningCost(), 0.0);
    EXPECT_LT(store.cleaningCost(), 40.0);
}

TEST(EnvyStore, StatsReportRenders)
{
    EnvyStore store(churnConfig(PolicyKind::Hybrid));
    store.writeU8(0, 1);
    std::ostringstream os;
    store.printStats(os);
    EXPECT_NE(os.str().find("envy.flash.pagesProgrammed"),
              std::string::npos);
    EXPECT_NE(os.str().find("envy.controller.cows"),
              std::string::npos);
}

} // namespace
} // namespace envy
