/**
 * @file
 * Tests for the four cleaning policies of §4, including a
 * parameterized invariant fuzz: under any policy and any locality,
 * every flush destination has room, every logical page stays mapped,
 * and the total live count is conserved.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/units.hh"
#include "envy/cleaner.hh"
#include "envy/policy/fifo.hh"
#include "envy/policy/greedy.hh"
#include "envy/policy/hybrid.hh"
#include "envy/policy/locality_gathering.hh"
#include "workload/bimodal.hh"

namespace envy {
namespace {

/** A little rig: metadata-only flash, table, space, cleaner. */
struct Rig
{
    explicit Rig(const Geometry &g = Geometry::tiny())
        : flash(g, FlashTiming{}, false),
          sram(PageTable::bytesNeeded(g.physicalPages().value()) +
               SegmentSpace::bytesNeeded(g.numSegments()).value()),
          table(sram, 0, g.physicalPages().value()),
          mmu(table, 256),
          space(flash, sram,
                PageTable::bytesNeeded(g.physicalPages().value())),
          cleaner(space, mmu)
    {
    }

    /** Sequential initial population at the geometry's utilization
     *  (like a database load: low addresses land in low segments). */
    void
    populate()
    {
        const std::uint64_t pages =
            flash.geom().effectiveLogicalPages().value();
        const std::uint64_t share =
            (pages + space.numLogical() - 1) / space.numLogical();
        for (std::uint64_t p = 0; p < pages; ++p) {
            const auto seg = static_cast<std::uint32_t>(p / share);
            mmu.mapToFlash(LogicalPageId(p),
                           flash.appendPage(space.physOf(seg),
                                            LogicalPageId(p)));
        }
        populated = pages;
    }

    /** One §4-style write: COW + immediate flush via the policy. */
    void
    rewrite(CleaningPolicy &policy, std::uint64_t page)
    {
        const auto loc = mmu.lookup(LogicalPageId(page));
        ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
        const std::uint64_t origin =
            policy.originTag(space.logOf(loc.flash.segment));
        flash.invalidatePage(loc.flash);
        const std::uint32_t dest = policy.flushDestination(origin);
        ASSERT_LT(dest, space.numLogical());
        ASSERT_GT(space.freeSlots(dest), PageCount(0));
        mmu.mapToFlash(LogicalPageId(page),
                       flash.appendPage(space.physOf(dest),
                                        LogicalPageId(page)));
        space.noteFlush();
    }

    FlashArray flash;
    SramArray sram;
    PageTable table;
    Mmu mmu;
    SegmentSpace space;
    Cleaner cleaner;
    std::uint64_t populated = 0;
};

TEST(GreedyPolicy, PicksMostInvalidatedVictim)
{
    Rig rig;
    GreedyPolicy policy;
    policy.attach(rig.space, rig.cleaner);

    // Fill segments 0..2 completely; invalidate most of segment 1.
    const std::uint64_t cap = rig.flash.pagesPerSegment().value();
    std::uint64_t page = 0;
    for (std::uint32_t s = 0; s < 3; ++s)
        for (std::uint64_t i = 0; i < cap; ++i)
            rig.mmu.mapToFlash(
                LogicalPageId(page),
                rig.flash.appendPage(rig.space.physOf(s),
                                     LogicalPageId(page))),
                ++page;
    for (std::uint32_t i = 0; i < cap - 1; ++i) {
        rig.flash.invalidatePage({rig.space.physOf(1), SlotId(i)});
    }

    // Fill everything else so only cleaning can make room.
    for (std::uint32_t s = 3; s < rig.space.numLogical(); ++s)
        for (std::uint64_t i = 0; i < cap; ++i)
            rig.mmu.mapToFlash(
                LogicalPageId(page),
                rig.flash.appendPage(rig.space.physOf(s),
                                     LogicalPageId(page))),
                ++page;

    const std::uint64_t cleans0 = rig.cleaner.statCleans.value();
    const std::uint32_t dest = policy.flushDestination(0);
    EXPECT_EQ(dest, 1u); // the most-invalidated segment was cleaned
    EXPECT_EQ(rig.cleaner.statCleans.value(), cleans0 + 1);
    EXPECT_GT(rig.space.freeSlots(dest), PageCount(0));
}

TEST(GreedyPolicy, UsesFreeSegmentsBeforeCleaning)
{
    Rig rig;
    GreedyPolicy policy;
    policy.attach(rig.space, rig.cleaner);
    const std::uint32_t dest = policy.flushDestination(0);
    EXPECT_EQ(rig.cleaner.statCleans.value(), 0u);
    EXPECT_GT(rig.space.freeSlots(dest), PageCount(0));
}

TEST(FifoPolicy, CleansInRotation)
{
    Rig rig;
    FifoPolicy policy;
    policy.attach(rig.space, rig.cleaner);

    // Full array with some invalid everywhere.
    const std::uint64_t cap = rig.flash.pagesPerSegment().value();
    std::uint64_t page = 0;
    for (std::uint32_t s = 0; s < rig.space.numLogical(); ++s) {
        for (std::uint64_t i = 0; i < cap; ++i) {
            rig.mmu.mapToFlash(
                LogicalPageId(page),
                rig.flash.appendPage(rig.space.physOf(s),
                                     LogicalPageId(page)));
            ++page;
        }
        rig.flash.invalidatePage({rig.space.physOf(s), SlotId(0)});
    }

    // Each time the active segment fills, the next victim in order
    // is cleaned: 0, 1, 2, ...
    std::vector<std::uint32_t> victims;
    for (int round = 0; round < 3; ++round) {
        const std::uint64_t cleans0 = rig.cleaner.statCleans.value();
        std::uint32_t dest = policy.flushDestination(0);
        if (rig.cleaner.statCleans.value() > cleans0)
            victims.push_back(dest);
        // Exhaust the destination to force the next clean.
        while (rig.space.freeSlots(dest) > PageCount(0)) {
            rig.flash.appendPage(rig.space.physOf(dest),
                                 LogicalPageId(0));
            rig.flash.invalidatePage(
                {rig.space.physOf(dest),
                 SlotId(static_cast<std::uint32_t>(
                            rig.flash.usedSlots(rig.space.physOf(dest))
                                .value()) -
                        1)});
        }
    }
    (void)policy.flushDestination(0);
    EXPECT_GE(rig.cleaner.statCleans.value(), 3u);
}

TEST(LocalityGathering, FlushReturnsToOrigin)
{
    Rig rig;
    LocalityGatheringPolicy policy;
    policy.attach(rig.space, rig.cleaner);
    rig.populate();
    // Rewrites of pages with origin 3 go back to segment 3.
    EXPECT_EQ(policy.flushDestination(3), 3u);
    EXPECT_EQ(policy.flushDestination(7), 7u);
}

TEST(LocalityGathering, TargetsTrackWriteRates)
{
    Rig rig;
    LocalityGatheringPolicy policy;
    policy.attach(rig.space, rig.cleaner);
    rig.populate();

    // Hammer segment 0's pages; its live target must fall below a
    // cold segment's.
    BimodalWriteWorkload w(rig.populated, LocalitySpec{0.05, 0.95},
                           21);
    for (int i = 0; i < 200000; ++i)
        rig.rewrite(policy, w.nextPage().value());

    EXPECT_LT(policy.targetLive(0),
              policy.targetLive(rig.space.numLogical() - 1));
    EXPECT_GT(policy.writeShare(0),
              policy.writeShare(rig.space.numLogical() - 1));
}

TEST(LocalityGathering, TargetsConserveTotalLive)
{
    // The free-space allocator must hand out exactly the free space
    // that exists: summing the live targets over all segments gives
    // the total live page count (otherwise redistribution would
    // chase an unreachable allocation forever).
    Rig rig;
    LocalityGatheringPolicy policy;
    policy.attach(rig.space, rig.cleaner);
    rig.populate();

    BimodalWriteWorkload w(rig.populated, LocalitySpec{0.1, 0.9}, 8);
    for (int i = 0; i < 100000; ++i)
        rig.rewrite(policy, w.nextPage().value());

    double target_sum = 0.0, live_sum = 0.0;
    for (std::uint32_t s = 0; s < rig.space.numLogical(); ++s) {
        target_sum += policy.targetLive(s);
        live_sum += asDouble(rig.space.liveCount(s));
    }
    // Clamping of extreme hot segments can leave a little slack.
    EXPECT_NEAR(target_sum, live_sum, live_sum * 0.02);
}

TEST(Hybrid, PartitionGeometry)
{
    Rig rig;
    HybridPolicy policy(4);
    policy.attach(rig.space, rig.cleaner);
    // tiny(): 15 logical segments -> 4 partitions of 4,4,4,3.
    EXPECT_EQ(policy.numPartitions(), 4u);
    EXPECT_EQ(policy.partitionOf(0), 0u);
    EXPECT_EQ(policy.partitionOf(3), 0u);
    EXPECT_EQ(policy.partitionOf(4), 1u);
    EXPECT_EQ(policy.partitionOf(14), 3u);
}

TEST(Hybrid, OversizedPartitionClampsToOnePartition)
{
    Rig rig;
    HybridPolicy policy(1000);
    policy.attach(rig.space, rig.cleaner);
    EXPECT_EQ(policy.numPartitions(), 1u);
}

TEST(Hybrid, FlushStaysInOriginPartition)
{
    Rig rig;
    HybridPolicy policy(4);
    policy.attach(rig.space, rig.cleaner);
    rig.populate();
    const std::uint32_t dest = policy.flushDestination(6);
    EXPECT_EQ(policy.partitionOf(dest), policy.partitionOf(6));
}

TEST(PolicyFactory, MakesAllKinds)
{
    EXPECT_STREQ(makePolicy(PolicyKind::Greedy, 0)->name(), "greedy");
    EXPECT_STREQ(makePolicy(PolicyKind::Fifo, 0)->name(), "fifo");
    EXPECT_STREQ(makePolicy(PolicyKind::LocalityGathering, 0)->name(),
                 "locality-gathering");
    EXPECT_STREQ(makePolicy(PolicyKind::Hybrid, 16)->name(), "hybrid");
    EXPECT_STREQ(policyKindName(PolicyKind::Hybrid), "hybrid");
}

// ---- parameterized invariant fuzz --------------------------------

using FuzzParam = std::tuple<PolicyKind, const char *>;

class PolicyFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(PolicyFuzz, InvariantsHoldUnderChurn)
{
    const auto [kind, locality] = GetParam();
    Rig rig;
    auto policy = makePolicy(kind, 4);
    policy->attach(rig.space, rig.cleaner);
    rig.populate();

    BimodalWriteWorkload w(rig.populated,
                           LocalitySpec::parse(locality), 5);
    const std::uint64_t writes = 4 * rig.populated;
    for (std::uint64_t i = 0; i < writes; ++i)
        rig.rewrite(*policy, w.nextPage().value());

    // 1. Conservation: exactly one live copy per logical page.
    EXPECT_EQ(rig.flash.totalLive().value(), rig.populated);

    // 2. The reserve is always erased and ready.
    EXPECT_EQ(rig.flash.usedSlots(rig.space.reserve()),
              PageCount(0));

    // 3. Every page's mapping points at a live slot that names it.
    for (std::uint64_t p = 0; p < rig.populated; p += 37) {
        const auto loc = rig.table.lookup(LogicalPageId(p));
        ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
        EXPECT_EQ(rig.flash.pageOwner(loc.flash), LogicalPageId(p));
    }

    // 4. Cleaning cost is sane (bounded by the worst possible).
    const double cost = rig.cleaner.cleaningCost();
    EXPECT_GE(cost, 0.0);
    EXPECT_LT(cost, 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndLocalities, PolicyFuzz,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Greedy, PolicyKind::Fifo,
                          PolicyKind::LocalityGathering,
                          PolicyKind::Hybrid),
        ::testing::Values("50/50", "20/80", "5/95")),
    [](const auto &param_info) {
        std::string name = policyKindName(std::get<0>(param_info.param));
        std::string loc = std::get<1>(param_info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        for (auto &c : loc)
            if (c == '/')
                c = '_';
        return name + "_" + loc;
    });

} // namespace
} // namespace envy
