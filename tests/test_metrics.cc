/**
 * @file
 * The metrics registry: typed handles, idempotent registration,
 * snapshot isolation, histogram bucket edges, null-safety of the
 * no-op handles, windowed deltas and JSON serialisation.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace envy {
namespace obs {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.events", "events", "a counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, RegistrationIsIdempotent)
{
    MetricsRegistry reg;
    Counter a = reg.counter("test.events", "events", "a counter");
    a.add(7);
    // Same name + kind + unit: a handle to the SAME cell, not a
    // fresh one — this is what lets recovery re-register per run.
    Counter b = reg.counter("test.events", "events", "a counter");
    EXPECT_EQ(b.value(), 7u);
    b.add(3);
    EXPECT_EQ(a.value(), 10u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeTracksValueAndHighWater)
{
    MetricsRegistry reg;
    Gauge g = reg.gauge("test.level", "pages", "a gauge");
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(9.0);
    g.set(2.0);
    EXPECT_EQ(g.value(), 2.0);
    EXPECT_EQ(g.high(), 9.0);
}

TEST(Metrics, GaugeHighWaterHandlesNegativeFirstSample)
{
    MetricsRegistry reg;
    Gauge g = reg.gauge("test.neg", "units", "negative gauge");
    g.set(-5.0);
    EXPECT_EQ(g.high(), -5.0); // first sample IS the high-water
    g.set(-9.0);
    EXPECT_EQ(g.high(), -5.0);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    MetricsRegistry reg;
    Histogram h =
        reg.histogram("test.lat", "ns", "a histogram", {10, 100, 1000});
    // Bucket i counts v <= edges[i] (above the previous edge); the
    // last bucket is the overflow.
    h.record(0);    // bucket 0 (<= 10)
    h.record(10);   // bucket 0 (edge inclusive)
    h.record(11);   // bucket 1
    h.record(100);  // bucket 1
    h.record(101);  // bucket 2
    h.record(1000); // bucket 2
    h.record(1001); // overflow
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0.0 + 10 + 11 + 100 + 101 + 1000 + 1001);

    const MetricsSnapshot snap = reg.snapshot();
    const MetricsSnapshot::Entry *e = snap.find("test.lat");
    ASSERT_NE(e, nullptr);
    ASSERT_EQ(e->counts.size(), 4u); // 3 edges + overflow
    EXPECT_EQ(e->counts[0], 2u);
    EXPECT_EQ(e->counts[1], 2u);
    EXPECT_EQ(e->counts[2], 2u);
    EXPECT_EQ(e->counts[3], 1u);
}

TEST(Metrics, SnapshotIsIsolatedFromLaterMutation)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.events", "events", "a counter");
    Gauge g = reg.gauge("test.level", "pages", "a gauge");
    c.add(5);
    g.set(1.5);

    const MetricsSnapshot before = reg.snapshot();
    c.add(100);
    g.set(99.0);

    EXPECT_EQ(before.counter("test.events"), 5u);
    EXPECT_EQ(before.gauge("test.level"), 1.5);
    const MetricsSnapshot after = reg.snapshot();
    EXPECT_EQ(after.counter("test.events"), 105u);
    EXPECT_EQ(after.gauge("test.level"), 99.0);
}

TEST(Metrics, CounterDeltaComputesWindowedFigures)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.events", "events", "a counter");
    c.add(10);
    const MetricsSnapshot warmup = reg.snapshot();
    c.add(32);
    const MetricsSnapshot final_snap = reg.snapshot();
    EXPECT_EQ(final_snap.counterDelta(warmup, "test.events"), 32u);
}

TEST(Metrics, NullHandlesAreNoOps)
{
    // Components built without a registry get default handles: every
    // operation is safe and observes zero.
    Counter c = counterOf(nullptr, "x", "u", "d");
    Gauge g = gaugeOf(nullptr, "x", "u", "d");
    Histogram h = histogramOf(nullptr, "x", "u", "d", {1, 2});
    c.add(5);
    g.set(3.0);
    h.record(7);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.high(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
}

TEST(Metrics, RegistrationOrderIsPreservedInSnapshots)
{
    MetricsRegistry reg;
    reg.counter("z.last", "u", "registered first");
    reg.gauge("a.first", "u", "registered second");
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 2u);
    EXPECT_EQ(snap.entries[0].name, "z.last");
    EXPECT_EQ(snap.entries[1].name, "a.first");
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.events", "events", "a counter");
    Gauge g = reg.gauge("test.level", "pages", "a gauge");
    Histogram h = reg.histogram("test.lat", "ns", "a histogram", {10});
    c.add(5);
    g.set(2.0);
    h.record(3);

    reg.reset();
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(c.value(), 0u); // the handles still point at the cells
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    c.add(1);
    EXPECT_EQ(reg.snapshot().counter("test.events"), 1u);
}

TEST(Metrics, DescribeReturnsTheRegisteredDescription)
{
    MetricsRegistry reg;
    reg.counter("test.events", "events", "what it counts");
    EXPECT_EQ(reg.describe("test.events"), "what it counts");
    EXPECT_EQ(reg.describe("no.such"), "");
}

TEST(Metrics, SnapshotToJsonContainsEveryEntry)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.events", "events", "a counter");
    Gauge g = reg.gauge("test.level", "pages", "a gauge");
    Histogram h = reg.histogram("test.lat", "ns", "a histogram", {10});
    c.add(3);
    g.set(1.25);
    h.record(4);

    const std::string json = reg.snapshot().toJson();
    EXPECT_NE(json.find("\"name\":\"test.events\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":3"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test.level\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test.lat\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(Metrics, ConcurrentCounterIncrementsLoseNoUpdates)
{
    // PR 8: counter cells are relaxed atomics, so worker and cleaner
    // threads bump shared metrics without a lock and without losing
    // updates.  4 threads x 50k mixed-width adds must sum exactly.
    MetricsRegistry reg;
    Counter c = reg.counter("test.mt", "events", "contended counter");
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kIters = 50000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg] {
            // Handles are per-thread, but registration is idempotent
            // and returns the same cell.
            Counter mine =
                reg.counter("test.mt", "events", "contended counter");
            for (std::uint64_t i = 0; i < kIters; ++i)
                mine.add(i % 2 ? 3 : 1);
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kIters * 2);
}

TEST(Metrics, ConcurrentGaugeKeepsTrueHighWater)
{
    MetricsRegistry reg;
    Gauge g = reg.gauge("test.mt_gauge", "pages", "contended gauge");
    constexpr unsigned kThreads = 4;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg, t] {
            Gauge mine = reg.gauge("test.mt_gauge", "pages",
                                   "contended gauge");
            for (int i = 0; i < 20000; ++i)
                mine.set(static_cast<double>(t * 100000 + i));
        });
    }
    for (auto &w : workers)
        w.join();
    // The high-water is the global max of every value ever set,
    // regardless of interleaving; the last-writer value is one of
    // the threads' final samples.
    const double high = (kThreads - 1) * 100000 + 19999;
    EXPECT_EQ(g.high(), high);
}

TEST(Metrics, SingleThreadedSnapshotOutputUnchangedByAtomicCells)
{
    // The atomic cells must not perturb single-threaded snapshots:
    // same values, same JSON rendering as the pre-atomic registry.
    MetricsRegistry reg;
    Counter c = reg.counter("test.events", "events", "a counter");
    Gauge g = reg.gauge("test.level", "pages", "a gauge");
    c.add(3);
    c.add(39);
    g.set(4.5);
    g.set(1.25);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("test.events"), 42u);
    EXPECT_EQ(snap.gauge("test.level"), 1.25);
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"value\":42"), std::string::npos);
    EXPECT_NE(json.find("\"value\":1.25"), std::string::npos);
    EXPECT_NE(json.find("\"high\":4.5"), std::string::npos);
}

TEST(MetricsDeath, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("test.events", "events", "a counter");
    EXPECT_DEATH(reg.gauge("test.events", "events", "now a gauge"),
                 "re-registered as");
}

TEST(MetricsDeath, UnitMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("test.events", "events", "a counter");
    EXPECT_DEATH(reg.counter("test.events", "pages", "other unit"),
                 "unit");
}

TEST(MetricsDeath, HistogramEdgeMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.histogram("test.lat", "ns", "a histogram", {10, 100});
    EXPECT_DEATH(reg.histogram("test.lat", "ns", "a histogram",
                               {10, 200}),
                 "edges");
}

} // namespace
} // namespace obs
} // namespace envy
