/**
 * @file
 * Concurrent client histories against a multi-worker server
 * (docs/SERVING.md §7): N loopback clients run real protocol traffic
 * against a threaded Server over a concurrent-mode store, every
 * operation stamped against a shared clock, and the merged history is
 * checked against the single-writer consistency contract — acked
 * writes are visible, reads never go backwards — plus a final-state
 * diff against a serial std::map model.  The tsan CI job runs this
 * under ThreadSanitizer; it is the data race hunt for the whole
 * serve path (loopback pipes, admission queue, worker pool, engine
 * shard locks, sharded controller underneath).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/history.hh"
#include "serve/loopback.hh"
#include "serve/server.hh"
#include "sim/random.hh"

namespace envy {
namespace serve {
namespace {

constexpr unsigned kWriters = 4;
constexpr unsigned kReaders = 3;
constexpr std::uint64_t kKeysPerWriter = 8;
constexpr std::uint64_t kVersionsPerKey = 30;

std::uint64_t
keyOf(unsigned writer, std::uint64_t slot)
{
    return writer * 100 + slot;
}

struct Rig
{
    explicit Rig(unsigned storeWorkers, unsigned serveWorkers)
        : store(config(storeWorkers)), engine(store, engineConfig()),
          server(store, engine, serveConfig(serveWorkers))
    {}

    static EnvyConfig
    config(unsigned workers)
    {
        EnvyConfig cfg;
        cfg.geom = Geometry::tiny();
        cfg.geom.writeBufferPages = 32;
        cfg.numWorkers = workers;
        return cfg;
    }
    static KvEngineConfig
    engineConfig()
    {
        KvEngineConfig cfg;
        cfg.numShards = 4;
        return cfg;
    }
    static ServeConfig
    serveConfig(unsigned workers)
    {
        ServeConfig cfg;
        cfg.workers = workers;
        return cfg;
    }

    ByteStreamPtr
    connect()
    {
        LoopbackPair pair = loopbackPair();
        server.attach(std::move(pair.server));
        return std::move(pair.client);
    }

    EnvyStore store;
    KvEngine engine;
    Server server;
};

TEST(ServeHistories, ConcurrentClientsAgainstWorkerPool)
{
    Rig rig(4, 4);
    std::atomic<std::uint64_t> clock{0};
    std::atomic<bool> writersDone{false};

    std::vector<std::unique_ptr<RecordingClient>> clients;
    for (unsigned c = 0; c < kWriters + kReaders; c++)
        clients.push_back(std::make_unique<RecordingClient>(
            c, rig.connect(), clock));

    std::vector<std::thread> threads;
    // Writers: each owns its keys, writes them sequentially with
    // increasing versions, waiting for each ack (single-writer
    // discipline; see history.hh).
    for (unsigned w = 0; w < kWriters; w++) {
        threads.emplace_back([&, w] {
            RecordingClient &cli = *clients[w];
            for (std::uint64_t v = 1; v <= kVersionsPerKey; v++)
                for (std::uint64_t k = 0; k < kKeysPerWriter; k++)
                    ASSERT_EQ(cli.put(keyOf(w, k), v), Status::Ok);
        });
    }
    // Readers: hammer random keys across all writers until the
    // writers finish.
    for (unsigned r = 0; r < kReaders; r++) {
        threads.emplace_back([&, r] {
            RecordingClient &cli = *clients[kWriters + r];
            Rng rng(9000 + r);
            while (!writersDone.load(std::memory_order_acquire)) {
                const auto w =
                    static_cast<unsigned>(rng.below(kWriters));
                const std::uint64_t k = rng.below(kKeysPerWriter);
                cli.get(keyOf(w, k));
            }
        });
    }
    for (unsigned w = 0; w < kWriters; w++)
        threads[w].join();
    writersDone.store(true, std::memory_order_release);
    for (unsigned t = kWriters; t < threads.size(); t++)
        threads[t].join();
    rig.server.stop();

    // The merged history obeys the contract.
    std::vector<std::vector<HistoryOp>> histories;
    std::uint64_t reads = 0;
    for (const auto &cli : clients) {
        histories.push_back(cli->ops());
        for (const HistoryOp &op : cli->ops())
            if (op.kind == HistoryOp::Kind::Get)
                reads++;
    }
    const std::vector<std::string> errors = checkHistory(histories);
    EXPECT_TRUE(errors.empty())
        << errors.size() << " violations, first: " << errors.front();
    EXPECT_GT(reads, 0u) << "readers never ran — vacuous history";

    // Final state equals the serial model: the last acked write of
    // every key.
    std::map<std::uint64_t, std::uint64_t> model;
    for (unsigned w = 0; w < kWriters; w++)
        for (std::uint64_t k = 0; k < kKeysPerWriter; k++)
            model[keyOf(w, k)] = kVersionsPerKey;
    for (const auto &[key, version] : model) {
        KvEngine::GetResult got = rig.engine.get(key);
        ASSERT_EQ(got.status, Status::Ok) << "key " << key;
        EXPECT_EQ(got.value, std::to_string(version))
            << "key " << key;
    }
}

TEST(ServeHistories, SingleWorkerServerOnSerialStore)
{
    // The same contract must hold in the cheapest threaded setup:
    // serial store, one worker.
    Rig rig(1, 1);
    std::atomic<std::uint64_t> clock{0};
    RecordingClient writer(0, rig.connect(), clock);
    RecordingClient reader(1, rig.connect(), clock);

    std::thread wt([&] {
        for (std::uint64_t v = 1; v <= 50; v++)
            ASSERT_EQ(writer.put(keyOf(0, 0), v), Status::Ok);
    });
    std::thread rt([&] {
        for (int i = 0; i < 200; i++)
            reader.get(keyOf(0, 0));
    });
    wt.join();
    rt.join();
    rig.server.stop();

    const auto errors =
        checkHistory({writer.ops(), reader.ops()});
    EXPECT_TRUE(errors.empty())
        << errors.size() << " violations, first: " << errors.front();
}

TEST(ServeHistories, CheckerCatchesStaleRead)
{
    // The checker itself is under test: a read that misses an acked
    // write must be flagged (otherwise the suite proves nothing).
    std::vector<HistoryOp> writer;
    HistoryOp put;
    put.kind = HistoryOp::Kind::Put;
    put.client = 0;
    put.key = 1;
    put.version = 1;
    put.invokeSeq = 1;
    put.ackSeq = 2;
    writer.push_back(put);
    put.version = 2;
    put.invokeSeq = 3;
    put.ackSeq = 4;
    writer.push_back(put);

    std::vector<HistoryOp> reader;
    HistoryOp get;
    get.kind = HistoryOp::Kind::Get;
    get.client = 1;
    get.key = 1;
    get.version = 1; // stale: version 2 acked at seq 4
    get.invokeSeq = 5;
    get.ackSeq = 6;
    get.status = Status::Ok;
    reader.push_back(get);

    EXPECT_FALSE(checkHistory({writer, reader}).empty());

    // And a backwards pair of reads.
    std::vector<HistoryOp> backwards;
    get.version = 2;
    get.invokeSeq = 5;
    get.ackSeq = 6;
    backwards.push_back(get);
    get.version = 1;
    get.invokeSeq = 7;
    get.ackSeq = 8;
    backwards.push_back(get);
    EXPECT_FALSE(checkHistory({writer, backwards}).empty());
}

} // namespace
} // namespace serve
} // namespace envy
