/**
 * @file
 * Band tests for the §5 timed simulation: below saturation the
 * system keeps up with the offered load at near-constant latencies
 * (Figs 13/15); past saturation throughput flattens and write
 * latency blows up.
 */

#include <gtest/gtest.h>

#include "envysim/system.hh"

namespace envy {
namespace {

TimedParams
quickParams(double rate)
{
    TimedParams p = paperTimedParams(rate, 0.8, 0.25);
    p.warmupSeconds = 4.0;
    p.measureSeconds = 4.0;
    return p;
}

TEST(TimedSystem, KeepsUpBelowSaturation)
{
    const auto r = runTimedSim(quickParams(10000));
    EXPECT_NEAR(r.completedTps, 10000, 400);
    EXPECT_EQ(r.foregroundStalls, 0u);
}

TEST(TimedSystem, LatenciesNearPaperValues)
{
    const auto r = runTimedSim(quickParams(10000));
    // Paper: ~180 ns reads, ~200 ns writes.
    EXPECT_GT(r.readLatencyNs, 150.0);
    EXPECT_LT(r.readLatencyNs, 220.0);
    EXPECT_GT(r.writeLatencyNs, 170.0);
    EXPECT_LT(r.writeLatencyNs, 300.0);
}

TEST(TimedSystem, SaturationFlattensThroughput)
{
    const auto at50k = runTimedSim(quickParams(50000));
    // Requested 50k, completed far less; and the write latency
    // cliff of Fig 15 appears.
    EXPECT_LT(at50k.completedTps, 45000);
    EXPECT_GT(at50k.foregroundStalls, 0u);
    EXPECT_GT(at50k.writeLatencyNs, 1000.0);
    // Reads stay fast even at saturation (Fig 15).
    EXPECT_LT(at50k.readLatencyNs, 250.0);
}

TEST(TimedSystem, BusyFractionsAreAFullPartition)
{
    const auto r = runTimedSim(quickParams(20000));
    const double total = r.fracRead + r.fracFlush + r.fracClean +
                         r.fracErase + r.fracIdle;
    EXPECT_NEAR(total, 1.0, 0.02);
    EXPECT_GT(r.fracRead, 0.0);
    EXPECT_GT(r.fracFlush, 0.0);
    EXPECT_GT(r.fracClean, 0.0);
}

TEST(TimedSystem, FlushRateAboutOnePagePerTransaction)
{
    // Paper §5.5: 10,376 pages/s at 10,000 TPS.
    const auto r = runTimedSim(quickParams(10000));
    EXPECT_NEAR(r.flushPagesPerSec, 10000, 1500);
}

TEST(TimedSystem, LifetimeFormulaMatchesPaperArithmetic)
{
    // §5.5's worked example: 2 GB, 1M-cycle parts, 10,376 pages/s at
    // cost 1.97 -> 3,151 days.
    TimedResult r;
    r.flushPagesPerSec = 10376;
    r.cleaningCost = 1.97;
    const double days =
        r.lifetimeDays(Geometry::paperSystem(), 1000000);
    EXPECT_NEAR(days, 3151, 40);
}

TEST(TimedSystem, ParallelOpsRaiseTheCeiling)
{
    auto base = quickParams(45000);
    auto par = base;
    par.parallelOps = 8; // §6 extension
    const auto serial = runTimedSim(base);
    const auto parallel = runTimedSim(par);
    EXPECT_GT(parallel.completedTps, serial.completedTps);
}

TEST(TimedSystem, Deterministic)
{
    const auto a = runTimedSim(quickParams(20000));
    const auto b = runTimedSim(quickParams(20000));
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_DOUBLE_EQ(a.readLatencyNs, b.readLatencyNs);
    EXPECT_DOUBLE_EQ(a.writeLatencyNs, b.writeLatencyNs);
}

TEST(TimedSystem, OverloadStillDeliversCapacity)
{
    // Even when the offered load is far beyond the ceiling, the
    // completion counter must report the system's capacity, not
    // collapse (transactions complete continuously, just late).
    auto p = quickParams(80000);
    const auto r = runTimedSim(p);
    EXPECT_GT(r.completedTps, 10000.0);
    EXPECT_LT(r.completedTps, 60000.0);
}

TEST(TimedSystem, BreakdownNeverDoubleCountsStalls)
{
    // Foreground stalls pay for device work inside the host span;
    // the buckets must not count it twice even at heavy overload.
    const auto r = runTimedSim(quickParams(60000));
    const double total = r.fracRead + r.fracFlush + r.fracClean +
                         r.fracErase + r.fracIdle;
    EXPECT_LT(total, 1.05);
    EXPECT_GT(total, 0.90);
}

TEST(TimedSystem, HigherUtilizationCostsMore)
{
    auto low = paperTimedParams(15000, 0.6, 0.25);
    auto high = paperTimedParams(15000, 0.9, 0.25);
    low.warmupSeconds = high.warmupSeconds = 4.0;
    low.measureSeconds = high.measureSeconds = 4.0;
    const auto r_low = runTimedSim(low);
    const auto r_high = runTimedSim(high);
    EXPECT_GT(r_high.cleaningCost, r_low.cleaningCost);
}

} // namespace
} // namespace envy
