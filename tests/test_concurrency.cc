/**
 * @file
 * PR 8 concurrency: the sharded controller under real threads.
 *
 * The centrepiece extends the fast/slow differential oracle to
 * concurrent histories: worker threads write DISJOINT page stripes
 * while logging every operation; the per-worker logs are then
 * replayed serially into a slow-dataplane (byte-at-a-time CUI
 * oracle) store, and every logical page must byte-match.  Because
 * the stripes are disjoint, any interleaving of the concurrent run
 * is equivalent to some serial order that preserves each worker's
 * program order — which the replay realises — so a mismatch is a
 * lost or torn write in the concurrent data path.
 *
 * Around it: counted backpressure (satellite d), cross-thread
 * conservation identities, cleaner-pool lifecycle across
 * powerFailAndRecover, and a mixed read/write stress aimed at the
 * TSan CI job.  PR 10 adds the persistent-concurrent pairing this
 * suite used to assert was rejected: durable churn through the
 * commit pipeline's group epochs, checked against the same serial
 * oracle and across a close/reopen cycle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "envy/envy_store.hh"
#include "envysim/crash_explorer.hh"
#include "persist/backend.hh"
#include "sim/random.hh"

namespace envy {
namespace {

/** Σ liveCount over every segment, recounted from the array. */
std::uint64_t
recountLive(FlashArray &flash)
{
    std::uint64_t live = 0;
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s)
        live += flash.liveCount(SegmentId{s}).value();
    return live;
}

/** Σ eraseCycles over every segment, recounted from the array. */
std::uint64_t
recountErases(FlashArray &flash)
{
    std::uint64_t erases = 0;
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s)
        erases += flash.eraseCycles(SegmentId{s});
    return erases;
}

/**
 * The conservation identities of test_obs_differential, which must
 * survive concurrent histories: counters are relaxed atomics bumped
 * on the same code paths, so cross-component sums still balance once
 * the threads are joined and the buffer is drained.
 */
void
expectConservation(EnvyStore &store, bool across_recovery = false)
{
    const obs::MetricsSnapshot snap = store.metrics().snapshot();
    EXPECT_EQ(snap.counter("flash.programs"),
              snap.counter("flash.invalidations") +
                  recountLive(store.flash()));
    EXPECT_EQ(snap.counter("flash.erases"),
              recountErases(store.flash()));
    // Recovery may drop mid-flight buffer entries outside the
    // insert/flush pairing, so this one only holds crash-free.
    if (!across_recovery) {
        EXPECT_EQ(snap.counter("buf.inserts"),
                  snap.counter("buf.flushes") +
                      store.writeBuffer().size());
    }
    EXPECT_EQ(snap.counter("ctl.host_writes"),
              store.controller().statHostWrites.value());
    EXPECT_EQ(snap.counter("ctl.cows"),
              store.controller().statCows.value());
}

struct LoggedOp
{
    Addr addr;
    std::vector<std::uint8_t> data;
};

/**
 * Run @p workers threads over disjoint page stripes (worker w owns
 * pages where page % workers == w), each logging every write, and
 * return the logs.  @p ops_per_worker full- and sub-page writes per
 * thread.
 */
std::vector<std::vector<LoggedOp>>
churnDisjointStripes(EnvyStore &store, unsigned workers,
                     int ops_per_worker)
{
    const std::uint32_t page_size = store.config().geom.pageSize;
    const std::uint64_t pages = store.size() / page_size;
    std::vector<std::vector<LoggedOp>> logs(workers);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            Rng rng(0xC0FFEEull + w);
            std::vector<LoggedOp> &log = logs[w];
            for (int i = 0; i < ops_per_worker; ++i) {
                const std::uint64_t mine =
                    rng.below(pages / workers) * workers + w;
                LoggedOp op;
                if (rng.chance(0.75)) { // full page
                    op.addr = mine * page_size;
                    op.data.resize(page_size);
                } else { // sub-page
                    const std::uint32_t off = static_cast<std::uint32_t>(
                        rng.below(page_size - 1));
                    op.addr = mine * page_size + off;
                    op.data.resize(rng.between(1, page_size - off));
                }
                for (auto &b : op.data)
                    b = static_cast<std::uint8_t>(rng.next());
                store.write(op.addr, op.data);
                log.push_back(std::move(op));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    return logs;
}

/** Byte-compare every logical page of two same-geometry stores. */
void
expectSameContents(EnvyStore &a, EnvyStore &b)
{
    const std::uint32_t page_size = a.config().geom.pageSize;
    const std::uint64_t pages = a.size() / page_size;
    std::vector<std::uint8_t> pa(page_size), pb(page_size);
    for (std::uint64_t p = 0; p < pages; ++p) {
        a.read(p * page_size, pa);
        b.read(p * page_size, pb);
        ASSERT_EQ(pa, pb) << "logical page " << p;
    }
}

TEST(Concurrency, DisjointStripesMatchSerialSlowReplay)
{
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.numWorkers = 4;
    cfg.numCleaners = 1;
    EnvyStore store(cfg);
    ASSERT_TRUE(store.controller().concurrent());
    ASSERT_NE(store.cleanerPool(), nullptr);

    const auto logs = churnDisjointStripes(store, 4, 400);
    store.flushAll();

    // Serial replay against the byte-at-a-time CUI oracle: each
    // worker's program order is preserved; stripes are disjoint, so
    // the final page contents must be identical.
    EnvyConfig serial = CrashExplorerConfig::churnStore();
    serial.slowDataplane = true;
    EnvyStore twin(serial);
    ASSERT_FALSE(twin.controller().concurrent());
    for (const auto &log : logs)
        for (const LoggedOp &op : log)
            twin.write(op.addr, op.data);
    twin.flushAll();

    expectSameContents(store, twin);
    expectConservation(store);
}

TEST(Concurrency, SingleThreadedDriverMatchesSerialMode)
{
    // The concurrent code path, driven by one thread, must agree
    // with the serial path on every logical page (placement and
    // flush scheduling may differ; content may not).
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.numWorkers = 4; // concurrent mode on, but driven serially
    EnvyStore conc(cfg);
    ASSERT_TRUE(conc.controller().concurrent());

    EnvyConfig serial_cfg = CrashExplorerConfig::churnStore();
    EnvyStore serial(serial_cfg);
    ASSERT_FALSE(serial.controller().concurrent());

    const std::uint32_t page_size = cfg.geom.pageSize;
    const std::uint64_t size = conc.size();
    Rng rng(0xABCDull);
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 3000; ++i) {
        const Addr addr = rng.below(size);
        std::uint64_t len = rng.between(1, 2 * page_size);
        len = std::min<std::uint64_t>(len, size - addr);
        buf.resize(len);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next());
        conc.write(addr, buf);
        serial.write(addr, buf);
    }
    conc.flushAll();
    serial.flushAll();
    expectSameContents(conc, serial);
    expectConservation(conc);
}

TEST(Concurrency, BackpressureIsCountedAndNeverDeadlocks)
{
    // Satellite (d): producers outrun the cleaner.  High utilization
    // exhausts free slots, and a floor watermark keeps the single
    // cleaner from cleaning ahead, so full-buffer flushes find no
    // ready destination: the producer must take the counted-wait
    // path, and the inline slow path guarantees forward progress.
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.geom.logicalPages = 800; // ~89% of the 896 usable slots
    cfg.policy = PolicyKind::Greedy;
    cfg.numWorkers = 4;
    cfg.numCleaners = 1;
    cfg.cleanerWatermark = 1; // engage only at zero free pages
    EnvyStore store(cfg);

    churnDisjointStripes(store, 4, 300);
    store.flushAll();

    const obs::MetricsSnapshot snap = store.metrics().snapshot();
    EXPECT_GT(snap.counter("ctl.backpressure_waits"), 0u)
        << "churn never hit the counted-wait backpressure path";
    // Foreground flushes (the inline fallback) kept things moving.
    EXPECT_GT(snap.counter("ctl.foreground_flushes"), 0u);
    expectConservation(store);
}

TEST(Concurrency, CleanerPoolCleansAheadOfProducers)
{
    // A generous watermark puts the pool to work: background cleans
    // must be attributed to the pool's own metric and the policy
    // counter, not to producer foreground stalls alone.
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.geom.logicalPages = 800;
    cfg.numWorkers = 2;
    cfg.numCleaners = 2;
    cfg.cleanerWatermark = 64;
    EnvyStore store(cfg);
    ASSERT_NE(store.cleanerPool(), nullptr);
    EXPECT_EQ(store.cleanerPool()->cleaners(), 2u);

    churnDisjointStripes(store, 2, 600);
    store.flushAll();
    // Quiesce: a cleaner snapshot mid-iteration would sit between
    // the controller's bump and the pool's.
    store.cleanerPool()->stop();

    const obs::MetricsSnapshot snap = store.metrics().snapshot();
    EXPECT_GT(snap.counter("ctl.background_cleans"), 0u);
    EXPECT_EQ(snap.counter("ctl.background_cleans"),
              snap.counter("cleaner.pool_cleans"));
    expectConservation(store);
}

TEST(Concurrency, PoolStopsAndRestartsAcrossRecovery)
{
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.numWorkers = 2;
    cfg.numCleaners = 1;
    EnvyStore store(cfg);

    churnDisjointStripes(store, 2, 200);
    const RecoveryReport report = store.powerFailAndRecover();
    // A quiesced (joined) store has no in-flight clean to resume.
    EXPECT_FALSE(report.cleanResumed);

    // The pool restarted: another churn still completes and the
    // store still balances.
    churnDisjointStripes(store, 2, 200);
    store.flushAll();
    expectConservation(store, /*across_recovery=*/true);
}

TEST(Concurrency, MixedReadersAndWritersStress)
{
    // Overlapping pages on purpose: per-page outcomes are racy (and
    // unchecked), but the store must stay internally consistent —
    // this is the TSan CI job's main course.
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.numWorkers = 4;
    cfg.numCleaners = 2;
    EnvyStore store(cfg);

    const std::uint32_t page_size = cfg.geom.pageSize;
    const std::uint64_t size = store.size();
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < 4; ++w) {
        threads.emplace_back([&, w] {
            Rng rng(0x57E55ull + w);
            std::vector<std::uint8_t> buf;
            for (int i = 0; i < 500; ++i) {
                const Addr addr = rng.below(size);
                std::uint64_t len = rng.between(1, 2 * page_size);
                len = std::min<std::uint64_t>(len, size - addr);
                buf.resize(len);
                if (rng.chance(0.7)) {
                    for (auto &b : buf)
                        b = static_cast<std::uint8_t>(rng.next());
                    store.write(addr, buf);
                } else {
                    store.read(addr, buf);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    store.flushAll();
    expectConservation(store);

    // Every logical page still reads back (no lost mappings).
    std::vector<std::uint8_t> page(page_size);
    for (std::uint64_t p = 0; p < size / page_size; ++p)
        store.read(p * page_size, page);
}

// ---- PR 10: persistence under the sharded controller -------------

/** Remove a persistent store's file set. */
void
removeStoreFiles(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
}

/**
 * Like churnDisjointStripes, but durable: every worker follows each
 * write with persistFlush(), so the commit pipeline sees the real
 * group-commit contention pattern (N callers coalesced per epoch).
 */
std::vector<std::vector<LoggedOp>>
durableChurnDisjointStripes(EnvyStore &store, unsigned workers,
                            int ops_per_worker)
{
    const std::uint32_t page_size = store.config().geom.pageSize;
    const std::uint64_t pages = store.size() / page_size;
    std::vector<std::vector<LoggedOp>> logs(workers);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            Rng rng(0xD0BEull + w);
            std::vector<LoggedOp> &log = logs[w];
            for (int i = 0; i < ops_per_worker; ++i) {
                const std::uint64_t mine =
                    rng.below(pages / workers) * workers + w;
                LoggedOp op;
                op.addr = mine * page_size;
                op.data.resize(page_size);
                for (auto &b : op.data)
                    b = static_cast<std::uint8_t>(rng.next());
                store.write(op.addr, op.data);
                store.persistFlush();
                log.push_back(std::move(op));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    return logs;
}

TEST(Concurrency, PersistentStoreRunsConcurrentAndGroupCommits)
{
    // PR 10 lifts the old exclusion: a persistPath plus numWorkers
    // now routes persistFlush() through the commit pipeline instead
    // of refusing to construct.  Concurrent durable churn must (a)
    // coalesce flushes into group epochs and (b) still match the
    // serial slow-dataplane oracle byte for byte.
    const std::string path =
        ::testing::TempDir() + "/envy_conc_persist.store";
    removeStoreFiles(path);

    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.numWorkers = 4;
    cfg.numCleaners = 1;
    cfg.persistPath = path;
    EnvyStore store(cfg);
    ASSERT_TRUE(store.controller().concurrent());
    ASSERT_TRUE(store.persistent());

    const auto logs = durableChurnDisjointStripes(store, 4, 200);
    store.flushAll();

    const obs::MetricsSnapshot snap = store.metrics().snapshot();
    const std::uint64_t epochs =
        snap.counter("persist.group_commit.epochs");
    EXPECT_GT(epochs, 0u) << "pipeline never ran an epoch";
    // 4x200 persistFlush() calls coalesced: strictly fewer epochs
    // than callers proves batching actually happened.
    EXPECT_LT(epochs, 800u) << "every flush got its own epoch";

    EnvyConfig serial = CrashExplorerConfig::churnStore();
    serial.slowDataplane = true;
    EnvyStore twin(serial);
    for (const auto &log : logs)
        for (const LoggedOp &op : log)
            twin.write(op.addr, op.data);
    twin.flushAll();
    expectSameContents(store, twin);
    expectConservation(store);
    removeStoreFiles(path);
}

TEST(Concurrency, PersistentConcurrentContentsSurviveReopen)
{
    // Clean-shutdown durability: everything the concurrent store
    // held is there after close + reopen, and the reopened store
    // recovers rather than re-creates.
    const std::string path =
        ::testing::TempDir() + "/envy_conc_reopen.store";
    removeStoreFiles(path);

    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    cfg.numWorkers = 4;
    cfg.numCleaners = 1;
    cfg.persistPath = path;

    const std::uint32_t page_size = cfg.geom.pageSize;
    std::vector<std::uint8_t> want;
    {
        EnvyStore store(cfg);
        ASSERT_TRUE(store.persistReport().created);
        durableChurnDisjointStripes(store, 4, 150);
        store.persistCommit();
        want.resize(store.size());
        store.read(0, want);
    } // dtor: pipeline stops, journal checkpoints, mmap syncs

    EnvyStore reopened(cfg);
    ASSERT_TRUE(reopened.controller().concurrent());
    EXPECT_FALSE(reopened.persistReport().created);
    std::vector<std::uint8_t> got(reopened.size());
    reopened.read(0, got);
    for (std::uint64_t p = 0; p < got.size() / page_size; ++p) {
        ASSERT_EQ(std::memcmp(got.data() + p * page_size,
                              want.data() + p * page_size, page_size),
                  0)
            << "logical page " << p;
    }
    removeStoreFiles(path);
}

} // namespace
} // namespace envy
