/**
 * @file
 * Restart-recovery tests: an EnvyStore with a persistPath must come
 * back from an orderly shutdown, from SIGKILL (the fork-and-kill
 * tests — real process death, not simulated), and from a torn
 * journal tail, with every acknowledged write intact and a clean
 * RecoveryReport.  The heavier many-crash-point sweep lives in
 * tools/persist/crash_harness; these tests pin the core properties.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "envy/envy_store.hh"
#include "faults/fault_injector.hh"
#include "faults/invariant_checker.hh"
#include "persist/backend.hh"
#include "persist/persistent_store.hh"
#include "sim/random.hh"

namespace envy {
namespace {

std::string
tempStore(const char *name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
    return path;
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
}

EnvyConfig
persistConfig(const std::string &path)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.persistPath = path;
    return cfg;
}

/** Deterministic page-sized pattern for logical page @p p. */
std::vector<std::uint8_t>
patternPage(std::uint32_t page_size, std::uint64_t p,
            std::uint64_t salt)
{
    std::vector<std::uint8_t> data(page_size);
    Rng rng(p * 0x9E3779B97F4A7C15ull + salt);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    return data;
}

void
expectCleanInvariants(EnvyStore &store)
{
    InvariantChecker::Options opts;
    opts.expectNoShadows = true;
    const InvariantReport inv = InvariantChecker::check(store, opts);
    EXPECT_TRUE(inv.violations.empty())
        << (inv.violations.empty() ? "" : inv.violations.front());
}

TEST(PersistRecovery, OrderlyShutdownRoundTrips)
{
    const std::string path = tempStore("orderly.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;
    constexpr std::uint64_t npages = 40;
    {
        EnvyStore store(persistConfig(path));
        EXPECT_TRUE(store.persistReport().created);
        for (std::uint64_t p = 0; p < npages; ++p)
            store.write(p * page, patternPage(page, p, 1));
    }
    {
        EnvyStore store(persistConfig(path));
        const persist::PersistReport &rep = store.persistReport();
        EXPECT_FALSE(rep.created);
        for (std::uint64_t p = 0; p < npages; ++p) {
            std::vector<std::uint8_t> got(page);
            store.read(p * page, got);
            ASSERT_EQ(got, patternPage(page, p, 1)) << "page " << p;
        }
        expectCleanInvariants(store);

        // The recovered store keeps working (and persisting).
        store.write(0, patternPage(page, 999, 2));
    }
    {
        EnvyStore store(persistConfig(path));
        std::vector<std::uint8_t> got(page);
        store.read(0, got);
        EXPECT_EQ(got, patternPage(page, 999, 2));
    }
    cleanup(path);
}

TEST(PersistRecovery, OpenByPathDerivesTheConfig)
{
    const std::string path = tempStore("bypath.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;
    EnvyConfig cfg = persistConfig(path);
    cfg.wearThreshold = 55;
    cfg.partitionSize = 8;
    {
        EnvyStore store(cfg);
        store.write(3 * page, patternPage(page, 3, 9));
    }
    std::unique_ptr<EnvyStore> store =
        persist::PersistentStore::open(path);
    EXPECT_EQ(store->config().wearThreshold, 55u);
    EXPECT_EQ(store->config().partitionSize, 8u);
    EXPECT_EQ(store->config().persistPath, path);
    std::vector<std::uint8_t> got(page);
    store->read(3 * page, got);
    EXPECT_EQ(got, patternPage(page, 3, 9));

    std::string error;
    EXPECT_EQ(persist::PersistentStore::tryOpen(
                  tempStore("nosuch.envy"), error),
              nullptr);
    EXPECT_FALSE(error.empty());
    cleanup(path);
}

/**
 * Run @p child in a forked process and SIGKILL-or-exit as the child
 * decides; the parent returns once the child is dead.  The child
 * must end with _exit or raise(SIGKILL) — never return into gtest.
 */
template <typename Fn>
void
inForkedChild(Fn &&child)
{
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        child();
        _exit(0); // not reached when the child raises SIGKILL
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
}

TEST(PersistRecovery, SigkillLosesNoAcknowledgedWrite)
{
    const std::string path = tempStore("sigkill.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;
    constexpr std::uint64_t npages = 25;

    inForkedChild([&] {
        EnvyStore store(persistConfig(path));
        // Each write is acknowledged once EnvyStore::write returns:
        // opEnd appended the dirty SRAM to the journal with write(2),
        // which survives process death.
        for (std::uint64_t p = 0; p < npages; ++p)
            store.write(p * page, patternPage(page, p, 3));
        ::raise(SIGKILL); // no destructor, no checkpoint, no msync
    });

    std::unique_ptr<EnvyStore> store =
        persist::PersistentStore::open(path);
    EXPECT_FALSE(store->persistReport().created);
    for (std::uint64_t p = 0; p < npages; ++p) {
        std::vector<std::uint8_t> got(page);
        store->read(p * page, got);
        ASSERT_EQ(got, patternPage(page, p, 3)) << "page " << p;
    }
    expectCleanInvariants(*store);
    cleanup(path);
}

TEST(PersistRecovery, SigkillDuringChurnKeepsEveryAckedWrite)
{
    const std::string path = tempStore("churnkill.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;

    // The child overwrites pages in a deterministic sequence and
    // SIGKILLs itself mid-churn.  Every page it completed before the
    // kill must read back with its *latest* acknowledged pattern.
    constexpr std::uint64_t totalOps = 600;
    constexpr std::uint64_t killAfter = 451;
    auto pageOf = [](std::uint64_t op) { return op % 37; };

    inForkedChild([&] {
        EnvyStore store(persistConfig(path));
        for (std::uint64_t op = 0; op < totalOps; ++op) {
            store.write(pageOf(op) * page,
                        patternPage(page, pageOf(op), op));
            if (op + 1 == killAfter)
                ::raise(SIGKILL);
        }
    });

    std::unique_ptr<EnvyStore> store =
        persist::PersistentStore::open(path);
    // Latest acknowledged op per page.
    std::map<std::uint64_t, std::uint64_t> latest;
    for (std::uint64_t op = 0; op < killAfter; ++op)
        latest[pageOf(op)] = op;
    for (const auto &[p, op] : latest) {
        std::vector<std::uint8_t> got(page);
        store->read(p * page, got);
        ASSERT_EQ(got, patternPage(page, p, op)) << "page " << p;
    }
    expectCleanInvariants(*store);
    cleanup(path);
}

TEST(PersistRecovery, TornJournalTailIsTruncatedAndSurvivable)
{
    const std::string path = tempStore("torn.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;
    {
        EnvyStore store(persistConfig(path));
        for (std::uint64_t p = 0; p < 10; ++p)
            store.write(p * page, patternPage(page, p, 5));
    }
    // A crash can tear the last journal append: simulate by writing
    // half a record of garbage at the end.
    {
        std::FILE *f = std::fopen((path + ".journal").c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const std::uint8_t junk[] = {0x13, 0x00, 0x00, 0x00, 0x02,
                                     0x01, 0x02, 0x03};
        ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f),
                  sizeof(junk));
        std::fclose(f);
    }
    {
        EnvyStore store(persistConfig(path));
        EXPECT_GT(store.persistReport().journalBytesTruncated, 0u);
        for (std::uint64_t p = 0; p < 10; ++p) {
            std::vector<std::uint8_t> got(page);
            store.read(p * page, got);
            ASSERT_EQ(got, patternPage(page, p, 5)) << "page " << p;
        }
        expectCleanInvariants(store);
    }
    cleanup(path);
}

TEST(PersistRecovery, StaleCheckpointTempFileIsIgnored)
{
    const std::string path = tempStore("staletmp.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;
    {
        EnvyStore store(persistConfig(path));
        store.write(0, patternPage(page, 0, 6));
    }
    // A crash between checkpoint-write and rename leaves a .tmp file;
    // reopen must discard it and trust the real journal.
    {
        std::FILE *f =
            std::fopen((path + ".journal.tmp").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("half-written checkpoint", f);
        std::fclose(f);
    }
    {
        EnvyStore store(persistConfig(path));
        std::vector<std::uint8_t> got(page);
        store.read(0, got);
        EXPECT_EQ(got, patternPage(page, 0, 6));
    }
    std::FILE *tmp = std::fopen((path + ".journal.tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr) << "stale checkpoint temp not removed";
    if (tmp)
        std::fclose(tmp);
    cleanup(path);
}

TEST(PersistRecovery, WearRetirementAndSpecFailSurviveRestart)
{
    const std::string path = tempStore("wear.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;

    std::vector<std::uint64_t> cycles;
    std::uint64_t retiredTotal = 0;
    bool sawSpecFail = false;
    {
        EnvyConfig cfg = persistConfig(path);
        EnvyStore store(cfg);

        // Deterministic device faults: some programs and one erase
        // spec-fail, retiring slots and latching out-of-spec blocks.
        FaultPlan plan;
        plan.seed = 21;
        plan.failProgramOps = {30, 75};
        plan.failEraseOps = {2};
        FaultInjector inj(plan);
        inj.arm();
        inj.attachFlash(store.flash());

        Rng rng(13);
        std::vector<std::uint8_t> data(page);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t addr =
                rng.below(store.size() / 4 - page);
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            store.write(addr, data);
        }
        inj.disarm();

        FlashArray &flash = store.flash();
        for (std::uint32_t s = 0; s < flash.numSegments(); ++s) {
            cycles.push_back(flash.eraseCycles(SegmentId(s)));
            retiredTotal += flash.retiredCount(SegmentId(s)).value();
        }
        sawSpecFail = flash.outOfSpec();
        EXPECT_GT(retiredTotal, 0u);
        EXPECT_TRUE(sawSpecFail);
    }
    {
        std::unique_ptr<EnvyStore> store =
            persist::PersistentStore::open(path);
        FlashArray &flash = store->flash();
        std::uint64_t retiredAfter = 0;
        for (std::uint32_t s = 0; s < flash.numSegments(); ++s) {
            EXPECT_EQ(flash.eraseCycles(SegmentId(s)), cycles[s])
                << "segment " << s;
            retiredAfter += flash.retiredCount(SegmentId(s)).value();
        }
        EXPECT_EQ(retiredAfter, retiredTotal);
        EXPECT_EQ(flash.outOfSpec(), sawSpecFail);
        expectCleanInvariants(*store);
    }
    cleanup(path);
}

TEST(PersistRecovery, PowerFailAndRecoverStillWorksWhenPersistent)
{
    const std::string path = tempStore("powerfail.envy");
    const std::uint32_t page = Geometry::tiny().pageSize;
    EnvyStore store(persistConfig(path));
    for (std::uint64_t p = 0; p < 8; ++p)
        store.write(p * page, patternPage(page, p, 8));
    const RecoveryReport rep = store.powerFailAndRecover();
    (void)rep;
    for (std::uint64_t p = 0; p < 8; ++p) {
        std::vector<std::uint8_t> got(page);
        store.read(p * page, got);
        ASSERT_EQ(got, patternPage(page, p, 8)) << "page " << p;
    }
    expectCleanInvariants(store);
    cleanup(path);
}

TEST(PersistRecoveryDeathTest, ForeignFileIsRejected)
{
    const std::string path = tempStore("foreign.envy");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::vector<std::uint8_t> junk(8192, 0x42);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
    EXPECT_DEATH(EnvyStore(persistConfig(path)), "");
    cleanup(path);
}

} // namespace
} // namespace envy
