/**
 * @file
 * Tests for the cleaning mechanics of Figure 5: copy live data in
 * order to the reserve, swing the page table, erase, rotate.
 */

#include <gtest/gtest.h>

#include <vector>

#include "envy/cleaner.hh"
#include "envy/wear_leveler.hh"
#include "faults/fault_injector.hh"

namespace envy {
namespace {

class CleanerTest : public ::testing::Test
{
  protected:
    CleanerTest()
        : flash(Geometry::tiny(), FlashTiming{}, true),
          sram(PageTable::bytesNeeded(
                   flash.geom().physicalPages().value()) +
               SegmentSpace::bytesNeeded(flash.numSegments()).value()),
          table(sram, 0, flash.geom().physicalPages().value()),
          mmu(table, 64),
          space(flash, sram,
                PageTable::bytesNeeded(
                    flash.geom().physicalPages().value())),
          cleaner(space, mmu)
    {
        pageData.resize(flash.geom().pageSize);
    }

    /** Write logical page p into logical segment seg. */
    FlashPageAddr
    put(std::uint32_t seg, std::uint64_t page, std::uint8_t fill)
    {
        std::fill(pageData.begin(), pageData.end(), fill);
        const FlashPageAddr a = flash.appendPage(
            space.physOf(seg), LogicalPageId(page), pageData);
        mmu.mapToFlash(LogicalPageId(page), a);
        return a;
    }

    std::uint8_t
    firstByte(std::uint64_t page)
    {
        const auto loc = table.lookup(LogicalPageId(page));
        EXPECT_EQ(loc.kind, PageTable::LocKind::Flash);
        std::vector<std::uint8_t> buf(flash.geom().pageSize);
        flash.readPage(loc.flash, buf);
        return buf[0];
    }

    FlashArray flash;
    SramArray sram;
    PageTable table;
    Mmu mmu;
    SegmentSpace space;
    Cleaner cleaner;
    std::vector<std::uint8_t> pageData;
};

TEST_F(CleanerTest, CleanMovesLiveDataAndErases)
{
    put(2, 10, 0xA1);
    const FlashPageAddr dead = put(2, 11, 0xB2);
    put(2, 12, 0xC3);
    flash.invalidatePage(dead);
    table.unmap(LogicalPageId(11));

    const SegmentId old_phys = space.physOf(2);
    const SegmentId old_reserve = space.reserve();
    const auto result = cleaner.clean(2, nullptr);

    EXPECT_EQ(result.copied, PageCount(2));
    EXPECT_EQ(result.diverted, PageCount(0));
    EXPECT_EQ(space.physOf(2), old_reserve);
    EXPECT_EQ(space.reserve(), old_phys);
    // The old physical segment is erased and reusable.
    EXPECT_EQ(flash.usedSlots(old_phys), PageCount(0));
    EXPECT_EQ(flash.eraseCycles(old_phys), 1u);
    // Data still reachable through the page table.
    EXPECT_EQ(firstByte(10), 0xA1);
    EXPECT_EQ(firstByte(12), 0xC3);
}

TEST_F(CleanerTest, CleanPreservesSlotOrder)
{
    std::vector<FlashPageAddr> addrs;
    for (std::uint64_t p = 0; p < 8; ++p)
        addrs.push_back(put(1, p, static_cast<std::uint8_t>(p)));
    // Kill the even pages; odd ones must stay in order.
    for (std::uint64_t p = 0; p < 8; p += 2) {
        flash.invalidatePage(addrs[p]);
        table.unmap(LogicalPageId(p));
    }
    cleaner.clean(1, nullptr);

    const SegmentId fresh = space.physOf(1);
    std::vector<std::uint64_t> order;
    flash.forEachLive(fresh, [&](SlotId, LogicalPageId p) {
        order.push_back(p.value());
    });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 5, 7}));
}

TEST_F(CleanerTest, CleaningCostCountsProgramsPerFlush)
{
    put(0, 1, 1);
    put(0, 2, 2);
    space.noteFlush();
    space.noteFlush();
    cleaner.clean(0, nullptr);
    // 2 cleaner programs over 2 flushed pages = cost 1.
    EXPECT_DOUBLE_EQ(cleaner.cleaningCost(), 1.0);
}

TEST_F(CleanerTest, MovePagesFromTailTakesHottest)
{
    for (std::uint64_t p = 0; p < 6; ++p)
        put(3, p, 0);
    const PageCount moved = cleaner.movePages(3, 4, true, PageCount(2));
    EXPECT_EQ(moved, PageCount(2));
    // The last two appended (4, 5) moved to segment 4.
    std::vector<std::uint64_t> in4;
    flash.forEachLive(space.physOf(4),
                      [&](SlotId, LogicalPageId p) {
                          in4.push_back(p.value());
                      });
    EXPECT_EQ(in4, (std::vector<std::uint64_t>{5, 4}));
    EXPECT_EQ(space.liveCount(3), PageCount(4));
}

TEST_F(CleanerTest, MovePagesFromHeadTakesColdest)
{
    for (std::uint64_t p = 10; p < 16; ++p)
        put(5, p, 0);
    cleaner.movePages(5, 6, false, PageCount(3));
    std::vector<std::uint64_t> in6;
    flash.forEachLive(space.physOf(6),
                      [&](SlotId, LogicalPageId p) {
                          in6.push_back(p.value());
                      });
    EXPECT_EQ(in6, (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST_F(CleanerTest, MovePagesRespectsDestinationRoom)
{
    // Fill destination segment 7 completely.
    const std::uint64_t cap = flash.pagesPerSegment().value();
    for (std::uint64_t i = 0; i < cap; ++i)
        put(7, 1000 + i, 0);
    put(8, 1, 0);
    EXPECT_EQ(cleaner.movePages(8, 7, false, PageCount(5)),
              PageCount(0));
}

TEST_F(CleanerTest, MovePagesUpdatesMappings)
{
    put(9, 42, 0x77);
    cleaner.movePages(9, 10, false, PageCount(1));
    const auto loc = table.lookup(LogicalPageId(42));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(loc.flash.segment, space.physOf(10));
    EXPECT_EQ(firstByte(42), 0x77);
}

TEST_F(CleanerTest, DivertSendsPagesElsewhere)
{
    struct DivertEven : CleaningPolicy
    {
        const char *name() const override { return "test"; }
        std::uint32_t
        flushDestination(std::uint64_t) override
        {
            return 0;
        }
        std::uint32_t
        divert(std::uint32_t seg, std::uint64_t idx,
               PageCount) override
        {
            return idx % 2 == 0 ? seg + 1 : seg;
        }
        std::uint64_t
        defaultOrigin(LogicalPageId) const override
        {
            return 0;
        }
    } policy;

    for (std::uint64_t p = 0; p < 6; ++p)
        put(11, p, 0);
    const auto result = cleaner.clean(11, &policy);
    EXPECT_EQ(result.diverted, PageCount(3));
    EXPECT_EQ(result.copied, PageCount(3));
    EXPECT_EQ(space.liveCount(12), PageCount(3));
    EXPECT_EQ(space.liveCount(11), PageCount(3));
}

TEST_F(CleanerTest, ShadowsAreCarriedAlong)
{
    put(13, 5, 0x55);
    const auto loc = table.lookup(LogicalPageId(5));
    flash.convertToShadow(loc.flash);
    table.unmap(LogicalPageId(5)); // shadows have no owner

    FlashPageAddr moved_to{};
    cleaner.shadowMoved = [&](FlashPageAddr, FlashPageAddr to) {
        moved_to = to;
    };
    cleaner.clean(13, nullptr);

    ASSERT_TRUE(moved_to.valid());
    EXPECT_EQ(moved_to.segment, space.physOf(13));
    EXPECT_TRUE(flash.pageIsShadow(moved_to));
    std::vector<std::uint8_t> buf(flash.geom().pageSize);
    flash.readPage(moved_to, buf);
    EXPECT_EQ(buf[0], 0x55);
}

TEST_F(CleanerTest, CrashMidCleanLeavesResumableState)
{
    for (std::uint64_t p = 0; p < 10; ++p)
        put(14, p, static_cast<std::uint8_t>(p));

    // Power fails right after the 4th page is fully relocated.
    FaultPlan plan;
    plan.crashPoint = "cleaner.relocate.done";
    plan.crashOccurrence = 4;
    FaultInjector injector(plan);
    injector.arm();
    EXPECT_THROW(cleaner.clean(14, nullptr), PowerLoss);
    injector.disarm();

    // The persistent record still marks the clean.
    const auto rec = space.cleanRecord();
    ASSERT_TRUE(rec.inProgress);
    EXPECT_EQ(rec.logical, 14u);

    // Resume finishes the job.
    cleaner.resume(14);
    EXPECT_FALSE(space.cleanRecord().inProgress);
    EXPECT_EQ(space.liveCount(14), PageCount(10));
    for (std::uint64_t p = 0; p < 10; ++p)
        EXPECT_EQ(firstByte(p), static_cast<std::uint8_t>(p));
}

TEST_F(CleanerTest, BusyTimeAccumulates)
{
    put(0, 1, 0);
    space.noteFlush();
    EXPECT_EQ(cleaner.busyTime(), 0u);
    cleaner.clean(0, nullptr);
    // One copy (read + program) plus one erase.
    const FlashTiming t;
    EXPECT_GE(cleaner.busyTime(),
              t.readTime + t.programTime + t.eraseTime);
}

} // namespace
} // namespace envy
