/**
 * @file
 * Tests for the parallel experiment engine: result ordering,
 * first-error propagation, inline serial mode, and the determinism
 * contract — a sweep or crash exploration run at --jobs 4 must be
 * byte-identical to the same run at --jobs 1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "envysim/crash_explorer.hh"
#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"

namespace envy {
namespace {

TEST(ParallelRunner, ResultsArriveInSubmissionOrder)
{
    for (const unsigned jobs : {1u, 2u, 4u}) {
        std::vector<std::function<int()>> tasks;
        for (int i = 0; i < 64; ++i)
            tasks.push_back([i] { return i * i; });
        const std::vector<int> out =
            parallelMap<int>(jobs, std::move(tasks));
        ASSERT_EQ(out.size(), 64u);
        for (int i = 0; i < 64; ++i)
            EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
    }
}

TEST(ParallelRunner, SingleJobRunsInline)
{
    const std::thread::id main_id = std::this_thread::get_id();
    ParallelRunner runner(1);
    std::thread::id task_id;
    runner.submit([&] { task_id = std::this_thread::get_id(); });
    runner.wait();
    EXPECT_EQ(task_id, main_id);
}

TEST(ParallelRunner, FirstErrorBySubmissionIndexWins)
{
    for (const unsigned jobs : {1u, 4u}) {
        ParallelRunner runner(jobs);
        std::atomic<int> ran{0};
        for (int i = 0; i < 40; ++i) {
            runner.submit([i, &ran] {
                ++ran;
                if (i == 7)
                    throw std::runtime_error("seven");
                if (i == 23)
                    throw std::runtime_error("twenty-three");
            });
        }
        try {
            runner.wait();
            FAIL() << "wait() did not rethrow";
        } catch (const std::runtime_error &e) {
            // Lowest submission index wins, whatever order the
            // workers happened to hit the two throws in.
            EXPECT_STREQ(e.what(), "seven");
        }
        EXPECT_EQ(ran.load(), 40);
    }
}

TEST(ParallelRunner, ManyMoreTasksThanWorkersAllComplete)
{
    // The queue is bounded; submit() must block rather than drop.
    ParallelRunner runner(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 500; ++i)
        runner.submit([&ran] { ++ran; });
    runner.wait();
    EXPECT_EQ(ran.load(), 500);
}

TEST(ParallelRunner, DefaultJobsHonorsEnv)
{
    EXPECT_GE(ParallelRunner::defaultJobs(), 1u);
}

/** A small real sweep, as the bench binaries run it. */
std::string
sweepTable(unsigned jobs)
{
    SweepRunner sweep(jobs);
    const char *locs[] = {"50/50", "10/90"};
    for (const std::uint32_t segments : {8u, 16u}) {
        for (const char *loc : locs) {
            sweep.defer([=] {
                PolicySimParams p;
                p.numSegments = segments;
                p.pagesPerSegment = 256;
                p.policy = PolicyKind::Greedy;
                p.locality = LocalitySpec::parse(loc);
                p.warmupChunks = 1;
                p.measureChunks = 1;
                const PolicySimResult r = runPolicySim(p);
                return ResultTable::num(r.cleaningCost, 2);
            });
        }
    }
    const std::vector<std::string> cells = sweep.run();

    ResultTable t("determinism probe");
    t.setColumns({"segments", "50/50", "10/90"});
    std::size_t cell = 0;
    for (const std::uint32_t segments : {8u, 16u}) {
        t.addRow({ResultTable::integer(segments), cells[cell],
                  cells[cell + 1]});
        cell += 2;
    }
    return t.toString();
}

TEST(Determinism, SweepTableByteIdenticalAcrossJobCounts)
{
    const std::string serial = sweepTable(1);
    const std::string parallel = sweepTable(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("determinism probe"), std::string::npos);
}

TEST(Determinism, CrashExplorerVerdictsIdenticalAcrossJobCounts)
{
    CrashExplorerConfig cfg;
    cfg.opsPerCase = 120;
    cfg.aftershockOps = 16;
    cfg.maxCasesPerPoint = 1;

    cfg.jobs = 1;
    const CrashExplorerResult serial =
        CrashPointExplorer(cfg).run();
    cfg.jobs = 4;
    const CrashExplorerResult parallel =
        CrashPointExplorer(cfg).run();

    EXPECT_EQ(serial.failures, parallel.failures);
    EXPECT_EQ(serial.probeHits, parallel.probeHits);
    ASSERT_EQ(serial.cases.size(), parallel.cases.size());
    for (std::size_t i = 0; i < serial.cases.size(); ++i) {
        const CrashCaseResult &a = serial.cases[i];
        const CrashCaseResult &b = parallel.cases[i];
        EXPECT_EQ(a.point, b.point) << "case " << i;
        EXPECT_EQ(a.occurrence, b.occurrence) << "case " << i;
        EXPECT_EQ(a.crashed, b.crashed) << "case " << i;
        EXPECT_EQ(a.violations, b.violations) << "case " << i;
    }
}

TEST(BenchOptions, ParsesJobsJsonAndSmoke)
{
    const char *argv[] = {"bench", "--jobs", "3", "--json",
                          "/tmp/x.json", "--smoke"};
    const BenchOptions opt = BenchOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(opt.jobs, 3u);
    EXPECT_EQ(opt.jsonPath, "/tmp/x.json");
    EXPECT_TRUE(opt.smoke);
}

TEST(BenchReport, JsonCarriesSchemaAndTables)
{
    BenchOptions opt;
    opt.jobs = 1;
    BenchReport report("probe", opt);
    ResultTable t("a \"quoted\" title");
    t.setColumns({"k", "v"});
    t.addRow({"x", "1"});
    t.addNote("n");
    report.add(t);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\": \"envy-bench-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bench\": \"probe\""), std::string::npos);
    EXPECT_NE(json.find("a \\\"quoted\\\" title"),
              std::string::npos);
    EXPECT_NE(json.find("\"rows\""), std::string::npos);
    // No metrics registered: the optional block is omitted entirely.
    EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(BenchReport, JsonEmbedsLabelledMetricsSnapshots)
{
    BenchOptions opt;
    opt.jobs = 1;
    BenchReport report("probe", opt);
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("x.events", "events", "a counter");
    c.add(4);
    report.addMetrics("u=30%", reg.snapshot());
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"metrics\": {\"u=30%\": ["),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"x.events\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":4"), std::string::npos);
}

} // namespace
} // namespace envy
