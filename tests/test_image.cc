/**
 * @file
 * Tests for whole-system images: a store serialised to a host file
 * and reloaded must be byte-identical to the host, keep its wear
 * history, and keep working (including its buffered, not-yet-flushed
 * state).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "db/btree.hh"
#include "envy/image.hh"
#include "sim/random.hh"

namespace envy {
namespace {

std::string
tempImage(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

EnvyConfig
imageConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    return cfg;
}

TEST(EnvyImage, RoundTripsHostBytes)
{
    const std::string path = tempImage("roundtrip.img");
    std::vector<std::uint8_t> ref;
    {
        EnvyStore store(imageConfig());
        ref.assign(store.size(), 0);
        Rng rng(1);
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t a = rng.below(store.size() - 8);
            const std::uint64_t v = rng.next();
            std::uint8_t buf[8];
            for (int b = 0; b < 8; ++b) {
                buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
                ref[a + b] = buf[b];
            }
            store.write(a, buf);
        }
        EnvyImage::save(store, path);
    } // original store destroyed

    auto store = EnvyImage::load(path);
    ASSERT_EQ(store->size(), ref.size());
    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < store->size(); a += buf.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store->size() - a);
        store->read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i]) << "byte " << a + i;
    }
    std::remove(path.c_str());
}

TEST(EnvyImage, BufferedStateSurvives)
{
    const std::string path = tempImage("buffered.img");
    {
        EnvyConfig cfg = imageConfig();
        cfg.autoDrain = false; // keep pages in the SRAM buffer
        EnvyStore store(cfg);
        for (int i = 0; i < 10; ++i)
            store.writeU32(i * 4096, 0xAB000000u + i);
        EXPECT_FALSE(store.writeBuffer().empty());
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(store->readU32(i * 4096), 0xAB000000u + i);
    std::remove(path.c_str());
}

TEST(EnvyImage, WearHistorySurvives)
{
    const std::string path = tempImage("wear.img");
    std::vector<std::uint64_t> cycles;
    {
        EnvyStore store(imageConfig());
        Rng rng(2);
        for (int i = 0; i < 30000; ++i)
            store.writeU8(rng.below(store.size()), 1);
        ASSERT_GT(store.flash().statSegmentErases.value(), 0u);
        for (std::uint32_t s = 0;
             s < store.flash().numSegments(); ++s)
            cycles.push_back(
                store.flash().eraseCycles(SegmentId(s)));
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    for (std::uint32_t s = 0; s < store->flash().numSegments(); ++s)
        EXPECT_EQ(store->flash().eraseCycles(SegmentId(s)),
                  cycles[s]);
    std::remove(path.c_str());
}

TEST(EnvyImage, LoadedStoreKeepsWorking)
{
    const std::string path = tempImage("working.img");
    {
        EnvyStore store(imageConfig());
        BTree tree(store, 0, 128 * KiB);
        for (std::uint64_t k = 0; k < 200; ++k)
            tree.insert(k, k * 3);
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    BTree tree = BTree::open(*store, 0, 128 * KiB);
    for (std::uint64_t k = 0; k < 200; ++k)
        ASSERT_EQ(tree.lookup(k), k * 3);
    // Writable, cleanable, and re-saveable.
    for (std::uint64_t k = 200; k < 400; ++k)
        tree.insert(k, k * 3);
    EXPECT_TRUE(tree.validate());
    EnvyImage::save(*store, path);
    auto again = EnvyImage::load(path);
    BTree t2 = BTree::open(*again, 0, 128 * KiB);
    EXPECT_EQ(t2.size(), 400u);
    std::remove(path.c_str());
}

TEST(EnvyImage, MetadataOnlyStoresImageToo)
{
    const std::string path = tempImage("meta.img");
    std::uint64_t live;
    {
        EnvyConfig cfg = imageConfig();
        cfg.storeData = false;
        EnvyStore store(cfg);
        Rng rng(3);
        for (int i = 0; i < 20000; ++i)
            store.writeU8(rng.below(store.size()), 1);
        store.flushAll();
        live = store.flash().totalLive().value();
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    EXPECT_FALSE(store->flash().storesData());
    EXPECT_EQ(store->flash().totalLive().value(), live);
    std::remove(path.c_str());
}

TEST(EnvyImage, RetiredSlotsSurviveTheRoundTrip)
{
    const std::string path = tempImage("retired.img");
    std::vector<std::uint8_t> ref;
    std::uint64_t retired;
    {
        EnvyStore store(imageConfig());
        ref.assign(store.size(), 0);

        // Spec-fail a handful of programs so slots retire, some of
        // them in segments that later get erased (retired slots then
        // sit ahead of the write pointer).
        int fails = 4;
        store.flash().programFaultHook =
            [&](SegmentId, SlotId) { return fails-- > 0; };

        Rng rng(9);
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t a = rng.below(store.size() - 8);
            const std::uint64_t v = rng.next();
            std::uint8_t buf[8];
            for (int b = 0; b < 8; ++b) {
                buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
                ref[a + b] = buf[b];
            }
            store.write(a, buf);
        }
        store.flash().programFaultHook = nullptr;

        retired = store.flash().statSlotsRetired.value();
        ASSERT_EQ(retired, 4u);
        EnvyImage::save(store, path);
    }

    auto store = EnvyImage::load(path);
    std::uint64_t found = 0;
    for (std::uint32_t s = 0; s < store->flash().numSegments(); ++s)
        found += store->flash().retiredCount(SegmentId{s}).value();
    EXPECT_EQ(found, retired);

    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < store->size(); a += buf.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store->size() - a);
        store->read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i]) << "byte " << a + i;
    }
    std::remove(path.c_str());
}

TEST(EnvyImageDeathTest, GarbageFileIsRejected)
{
    const std::string path = tempImage("garbage.img");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not an image", f);
    std::fclose(f);
    EXPECT_DEATH(EnvyImage::load(path), "not an eNVy image");
    std::remove(path.c_str());
}

// ---- corrupt-input hardening: tryLoad returns a typed error -------

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &b)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
    std::fclose(f);
}

void
patchU64(std::vector<std::uint8_t> &bytes, std::size_t off,
         std::uint64_t v)
{
    ASSERT_LE(off + 8, bytes.size());
    for (int i = 0; i < 8; ++i)
        bytes[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

/** A small saved image plus its interesting offsets. */
struct SavedImage
{
    // Header: 8-byte magic then 13 u64 config fields.
    static constexpr std::size_t pageSizeOff = 8;
    static constexpr std::size_t policyOff = 8 + 7 * 8;
    static constexpr std::size_t sramSizeOff = 8 + 13 * 8;

    std::string path;
    std::vector<std::uint8_t> bytes;
    std::uint64_t sramBytes = 0;

    /** First segment's first owner word (the store is populated, so
     *  segment 0 has used slots). */
    std::size_t
    firstOwnerOff() const
    {
        return sramSizeOff + 8 + sramBytes + 3 * 8;
    }
};

SavedImage
savedImage(const char *name)
{
    SavedImage img;
    img.path = tempImage(name);
    EnvyStore store(imageConfig());
    store.writeU64(0, 0x1122334455667788ull);
    EnvyImage::save(store, img.path);
    img.bytes = readAll(img.path);
    img.sramBytes = store.sram().size();
    return img;
}

std::string
expectRejected(const SavedImage &img)
{
    writeAll(img.path, img.bytes);
    std::string error;
    std::unique_ptr<EnvyStore> store =
        EnvyImage::tryLoad(img.path, error);
    EXPECT_EQ(store, nullptr);
    EXPECT_FALSE(error.empty());
    std::remove(img.path.c_str());
    return error;
}

TEST(EnvyImage, TryLoadReportsMissingAndGarbageFiles)
{
    std::string error;
    EXPECT_EQ(EnvyImage::tryLoad(tempImage("nosuch.img"), error),
              nullptr);
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

    SavedImage img = savedImage("notimage.img");
    img.bytes.assign({'j', 'u', 'n', 'k'});
    EXPECT_NE(expectRejected(img).find("not an eNVy image"),
              std::string::npos);
}

TEST(EnvyImage, TryLoadReportsTruncationAtEverySection)
{
    const SavedImage img = savedImage("trunc.img");
    // Mid-header, mid-SRAM, mid-flash: each prefix must come back as
    // a clean error, never a crash.
    const std::size_t cuts[] = {
        img.bytes.size() - 1,
        SavedImage::sramSizeOff + 8 + img.sramBytes / 2,
        SavedImage::sramSizeOff + 4,
        SavedImage::policyOff + 3,
    };
    for (const std::size_t cut : cuts) {
        SavedImage t = img;
        t.bytes.resize(cut);
        EXPECT_NE(expectRejected(t).find("truncated"),
                  std::string::npos)
            << "cut at " << cut;
    }
}

TEST(EnvyImage, TryLoadReportsBadHeaderFields)
{
    SavedImage img = savedImage("badgeom.img");
    patchU64(img.bytes, SavedImage::pageSizeOff, 0);
    EXPECT_NE(expectRejected(img).find("header"), std::string::npos);

    img = savedImage("badpolicy.img");
    patchU64(img.bytes, SavedImage::policyOff, 99);
    EXPECT_NE(expectRejected(img).find("unknown policy"),
              std::string::npos);

    img = savedImage("badsram.img");
    patchU64(img.bytes, SavedImage::sramSizeOff, 12345);
    EXPECT_NE(expectRejected(img).find("SRAM size mismatch"),
              std::string::npos);
}

TEST(EnvyImage, TryLoadReportsCorruptSegmentRecords)
{
    // Segment records follow the SRAM blob: used, cycles, ahead,
    // retired slots, then per-slot owner words.
    const std::size_t segOff = SavedImage::sramSizeOff + 8;

    SavedImage img = savedImage("badused.img");
    patchU64(img.bytes, segOff + img.sramBytes, 1u << 20);
    EXPECT_NE(expectRejected(img).find("exceed the capacity"),
              std::string::npos);

    img = savedImage("badahead.img");
    patchU64(img.bytes, segOff + img.sramBytes + 16, 1u << 20);
    EXPECT_NE(expectRejected(img).find("retired-ahead"),
              std::string::npos);

    img = savedImage("badowner.img");
    // Not one of the dead/shadow/retired sentinels, far beyond the
    // logical page count.
    patchU64(img.bytes, img.firstOwnerOff(), 0xFFFF0000ull);
    EXPECT_NE(expectRejected(img).find("beyond the"),
              std::string::npos);
}

TEST(EnvyImage, TryLoadReportsTrailingBytes)
{
    SavedImage img = savedImage("trailing.img");
    img.bytes.push_back(0xAB);
    EXPECT_NE(expectRejected(img).find("after the last segment"),
              std::string::npos);
}

TEST(EnvyImage, TryLoadStillLoadsAValidImage)
{
    const SavedImage img = savedImage("valid.img");
    writeAll(img.path, img.bytes);
    std::string error;
    std::unique_ptr<EnvyStore> store =
        EnvyImage::tryLoad(img.path, error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->readU64(0), 0x1122334455667788ull);
    std::remove(img.path.c_str());
}

} // namespace
} // namespace envy
