/**
 * @file
 * Tests for whole-system images: a store serialised to a host file
 * and reloaded must be byte-identical to the host, keep its wear
 * history, and keep working (including its buffered, not-yet-flushed
 * state).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "db/btree.hh"
#include "envy/image.hh"
#include "sim/random.hh"

namespace envy {
namespace {

std::string
tempImage(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

EnvyConfig
imageConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    return cfg;
}

TEST(EnvyImage, RoundTripsHostBytes)
{
    const std::string path = tempImage("roundtrip.img");
    std::vector<std::uint8_t> ref;
    {
        EnvyStore store(imageConfig());
        ref.assign(store.size(), 0);
        Rng rng(1);
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t a = rng.below(store.size() - 8);
            const std::uint64_t v = rng.next();
            std::uint8_t buf[8];
            for (int b = 0; b < 8; ++b) {
                buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
                ref[a + b] = buf[b];
            }
            store.write(a, buf);
        }
        EnvyImage::save(store, path);
    } // original store destroyed

    auto store = EnvyImage::load(path);
    ASSERT_EQ(store->size(), ref.size());
    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < store->size(); a += buf.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store->size() - a);
        store->read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i]) << "byte " << a + i;
    }
    std::remove(path.c_str());
}

TEST(EnvyImage, BufferedStateSurvives)
{
    const std::string path = tempImage("buffered.img");
    {
        EnvyConfig cfg = imageConfig();
        cfg.autoDrain = false; // keep pages in the SRAM buffer
        EnvyStore store(cfg);
        for (int i = 0; i < 10; ++i)
            store.writeU32(i * 4096, 0xAB000000u + i);
        EXPECT_FALSE(store.writeBuffer().empty());
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(store->readU32(i * 4096), 0xAB000000u + i);
    std::remove(path.c_str());
}

TEST(EnvyImage, WearHistorySurvives)
{
    const std::string path = tempImage("wear.img");
    std::vector<std::uint64_t> cycles;
    {
        EnvyStore store(imageConfig());
        Rng rng(2);
        for (int i = 0; i < 30000; ++i)
            store.writeU8(rng.below(store.size()), 1);
        ASSERT_GT(store.flash().statSegmentErases.value(), 0u);
        for (std::uint32_t s = 0;
             s < store.flash().numSegments(); ++s)
            cycles.push_back(
                store.flash().eraseCycles(SegmentId(s)));
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    for (std::uint32_t s = 0; s < store->flash().numSegments(); ++s)
        EXPECT_EQ(store->flash().eraseCycles(SegmentId(s)),
                  cycles[s]);
    std::remove(path.c_str());
}

TEST(EnvyImage, LoadedStoreKeepsWorking)
{
    const std::string path = tempImage("working.img");
    {
        EnvyStore store(imageConfig());
        BTree tree(store, 0, 128 * KiB);
        for (std::uint64_t k = 0; k < 200; ++k)
            tree.insert(k, k * 3);
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    BTree tree = BTree::open(*store, 0, 128 * KiB);
    for (std::uint64_t k = 0; k < 200; ++k)
        ASSERT_EQ(tree.lookup(k), k * 3);
    // Writable, cleanable, and re-saveable.
    for (std::uint64_t k = 200; k < 400; ++k)
        tree.insert(k, k * 3);
    EXPECT_TRUE(tree.validate());
    EnvyImage::save(*store, path);
    auto again = EnvyImage::load(path);
    BTree t2 = BTree::open(*again, 0, 128 * KiB);
    EXPECT_EQ(t2.size(), 400u);
    std::remove(path.c_str());
}

TEST(EnvyImage, MetadataOnlyStoresImageToo)
{
    const std::string path = tempImage("meta.img");
    std::uint64_t live;
    {
        EnvyConfig cfg = imageConfig();
        cfg.storeData = false;
        EnvyStore store(cfg);
        Rng rng(3);
        for (int i = 0; i < 20000; ++i)
            store.writeU8(rng.below(store.size()), 1);
        store.flushAll();
        live = store.flash().totalLive().value();
        EnvyImage::save(store, path);
    }
    auto store = EnvyImage::load(path);
    EXPECT_FALSE(store->flash().storesData());
    EXPECT_EQ(store->flash().totalLive().value(), live);
    std::remove(path.c_str());
}

TEST(EnvyImage, RetiredSlotsSurviveTheRoundTrip)
{
    const std::string path = tempImage("retired.img");
    std::vector<std::uint8_t> ref;
    std::uint64_t retired;
    {
        EnvyStore store(imageConfig());
        ref.assign(store.size(), 0);

        // Spec-fail a handful of programs so slots retire, some of
        // them in segments that later get erased (retired slots then
        // sit ahead of the write pointer).
        int fails = 4;
        store.flash().programFaultHook =
            [&](SegmentId, SlotId) { return fails-- > 0; };

        Rng rng(9);
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t a = rng.below(store.size() - 8);
            const std::uint64_t v = rng.next();
            std::uint8_t buf[8];
            for (int b = 0; b < 8; ++b) {
                buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
                ref[a + b] = buf[b];
            }
            store.write(a, buf);
        }
        store.flash().programFaultHook = nullptr;

        retired = store.flash().statSlotsRetired.value();
        ASSERT_EQ(retired, 4u);
        EnvyImage::save(store, path);
    }

    auto store = EnvyImage::load(path);
    std::uint64_t found = 0;
    for (std::uint32_t s = 0; s < store->flash().numSegments(); ++s)
        found += store->flash().retiredCount(SegmentId{s}).value();
    EXPECT_EQ(found, retired);

    std::vector<std::uint8_t> buf(4096);
    for (std::uint64_t a = 0; a < store->size(); a += buf.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store->size() - a);
        store->read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i]) << "byte " << a + i;
    }
    std::remove(path.c_str());
}

TEST(EnvyImageDeathTest, GarbageFileIsRejected)
{
    const std::string path = tempImage("garbage.img");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not an image", f);
    std::fclose(f);
    EXPECT_DEATH(EnvyImage::load(path), "not an eNVy image");
    std::remove(path.c_str());
}

} // namespace
} // namespace envy
