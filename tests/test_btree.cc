/**
 * @file
 * Tests for the in-store B-tree (db/btree.hh), including a
 * differential fuzz against std::map with cleaning underneath.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "db/btree.hh"
#include "sim/random.hh"

namespace envy {
namespace {

EnvyConfig
storeConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    return cfg;
}

TEST(BTree, EmptyTreeLookupMisses)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 64 * KiB);
    EXPECT_EQ(tree.lookup(1), std::nullopt);
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.height(), 1u);
    EXPECT_TRUE(tree.validate());
}

TEST(BTree, InsertThenLookup)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 64 * KiB);
    tree.insert(10, 100);
    tree.insert(5, 50);
    tree.insert(20, 200);
    EXPECT_EQ(tree.lookup(10), 100u);
    EXPECT_EQ(tree.lookup(5), 50u);
    EXPECT_EQ(tree.lookup(20), 200u);
    EXPECT_EQ(tree.lookup(15), std::nullopt);
    EXPECT_EQ(tree.size(), 3u);
}

TEST(BTree, InsertUpdatesExistingKey)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 64 * KiB);
    tree.insert(7, 1);
    tree.insert(7, 2);
    EXPECT_EQ(tree.lookup(7), 2u);
    EXPECT_EQ(tree.size(), 1u);
}

TEST(BTree, SplitsGrowHeight)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 256 * KiB);
    for (std::uint64_t k = 0; k < 1000; ++k)
        tree.insert(k, k * 10);
    EXPECT_GT(tree.height(), 2u);
    EXPECT_EQ(tree.size(), 1000u);
    EXPECT_TRUE(tree.validate());
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_EQ(tree.lookup(k), k * 10);
}

TEST(BTree, ScanIsOrdered)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 256 * KiB);
    // Insert in a scrambled order.
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; k < 500; ++k)
        keys.push_back(k * 3 + 1);
    for (std::uint64_t i = keys.size(); i > 1; --i)
        std::swap(keys[i - 1], keys[rng.below(i)]);
    for (auto k : keys)
        tree.insert(k, k);

    std::uint64_t prev = 0;
    std::uint64_t seen = 0;
    tree.scan([&](std::uint64_t k, std::uint64_t v) {
        EXPECT_GT(k, prev);
        EXPECT_EQ(v, k);
        prev = k;
        ++seen;
    });
    EXPECT_EQ(seen, keys.size());
}

TEST(BTree, DifferentialFuzzAgainstStdMap)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 1 * MiB);
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(99);

    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t key = rng.below(5000);
        if (rng.chance(0.7)) {
            const std::uint64_t val = rng.next();
            tree.insert(key, val);
            ref[key] = val;
        } else {
            const auto got = tree.lookup(key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_EQ(got, std::nullopt);
            } else {
                ASSERT_EQ(got, it->second);
            }
        }
    }
    EXPECT_EQ(tree.size(), ref.size());
    EXPECT_TRUE(tree.validate());
    // Cleaning happened under the tree's feet.
    EXPECT_GT(store.cleanerRef().statCleans.value(), 0u);

    // Full content comparison via scan.
    auto it = ref.begin();
    tree.scan([&](std::uint64_t k, std::uint64_t v) {
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    });
    EXPECT_EQ(it, ref.end());
}

TEST(BTree, PersistsAcrossOpen)
{
    EnvyStore store(storeConfig());
    {
        BTree tree(store, 4096, 256 * KiB);
        for (std::uint64_t k = 0; k < 300; ++k)
            tree.insert(k, k + 7);
        store.flushAll();
    }
    BTree again = BTree::open(store, 4096, 256 * KiB);
    EXPECT_EQ(again.size(), 300u);
    for (std::uint64_t k = 0; k < 300; ++k)
        ASSERT_EQ(again.lookup(k), k + 7);
    // And it is still writable.
    again.insert(1000, 1);
    EXPECT_EQ(again.lookup(1000), 1u);
}

TEST(BTree, SurvivesPowerFailure)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, 256 * KiB);
    for (std::uint64_t k = 0; k < 400; ++k)
        tree.insert(k, k * 2);

    store.powerFailAndRecover();

    BTree again = BTree::open(store, 0, 256 * KiB);
    for (std::uint64_t k = 0; k < 400; ++k)
        ASSERT_EQ(again.lookup(k), k * 2);
    EXPECT_TRUE(again.validate());
}

TEST(BTreeDeathTest, RegionExhaustionIsFatalNotCorrupting)
{
    EnvyStore store(storeConfig());
    BTree tree(store, 0, BTree::nodeBytes * 4 + 64);
    EXPECT_DEATH(
        {
            for (std::uint64_t k = 0; k < 10000; ++k)
                tree.insert(k, k);
        },
        "exhausted");
}

TEST(BTreeDeathTest, OpenWithoutTreeIsFatal)
{
    EnvyStore store(storeConfig());
    EXPECT_DEATH(BTree::open(store, 0, 64 * KiB), "no B-tree");
}

} // namespace
} // namespace envy
