/**
 * @file
 * Tests for §6 hardware atomic transactions: shadow pages pin the
 * pre-image in flash, survive cleaning, and power rollback.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "txn/shadow.hh"

namespace envy {
namespace {

EnvyConfig
txnConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 16;
    return cfg;
}

TEST(ShadowTxn, CommitMakesWritesPermanent)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    store.writeU64(100, 111);
    store.flushAll();

    const auto t = txns.begin();
    std::uint8_t v[8] = {222};
    txns.write(t, 100, v);
    txns.commit(t);
    EXPECT_EQ(store.readU8(100), 222);
    EXPECT_EQ(txns.shadowCount(), 0u);
}

TEST(ShadowTxn, AbortRestoresFlashPreImage)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    store.writeU64(100, 0xAAAA);
    store.flushAll(); // pre-image lands in flash

    const auto t = txns.begin();
    std::uint8_t v[8] = {0xBB, 0xBB, 0xBB, 0xBB};
    txns.write(t, 100, v);
    EXPECT_EQ(store.readU32(100), 0xBBBBBBBBu);
    EXPECT_EQ(txns.shadowCount(), 1u);

    txns.abort(t);
    EXPECT_EQ(store.readU64(100), 0xAAAAull);
    EXPECT_EQ(txns.shadowCount(), 0u);
}

TEST(ShadowTxn, AbortRestoresBufferedPreImage)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    // Pre-image still dirty in the SRAM buffer: no flash copy, so
    // the manager must snapshot.
    store.writeU64(200, 0x1234);

    const auto t = txns.begin();
    std::uint8_t v[8] = {0xFF};
    txns.write(t, 200, v);
    txns.abort(t);
    EXPECT_EQ(store.readU64(200), 0x1234ull);
}

TEST(ShadowTxn, MultiPageTransactionAbortsAtomically)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    const std::uint32_t ps = store.config().geom.pageSize;
    for (int p = 0; p < 6; ++p)
        store.writeU64(p * ps, 1000 + p);
    store.flushAll();

    const auto t = txns.begin();
    for (int p = 0; p < 6; ++p) {
        std::uint8_t v[8] = {static_cast<std::uint8_t>(p)};
        txns.write(t, p * ps, v);
    }
    EXPECT_EQ(txns.shadowCount(), 6u);
    txns.abort(t);
    for (int p = 0; p < 6; ++p)
        EXPECT_EQ(store.readU64(p * ps),
                  static_cast<std::uint64_t>(1000 + p));
}

TEST(ShadowTxn, RepeatedWritesKeepFirstPreImage)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    store.writeU64(300, 1);
    store.flushAll();

    const auto t = txns.begin();
    for (std::uint64_t i = 2; i < 10; ++i) {
        std::uint8_t v[8];
        for (int b = 0; b < 8; ++b)
            v[b] = static_cast<std::uint8_t>(i >> (8 * b));
        txns.write(t, 300, v);
    }
    EXPECT_EQ(txns.shadowCount(), 1u); // one shadow, not eight
    txns.abort(t);
    EXPECT_EQ(store.readU64(300), 1ull);
}

TEST(ShadowTxn, ShadowsSurviveCleaning)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    store.writeU64(400, 0xCAFE);
    store.flushAll();

    const auto t = txns.begin();
    std::uint8_t v[8] = {0x01};
    txns.write(t, 400, v);

    // Grind the store to force many cleans; the §6 requirement is
    // that the controller "protects [shadows] from being cleaned".
    Rng rng(55);
    const auto cleans0 = store.cleanerRef().statCleans.value();
    for (int i = 0; i < 40000; ++i)
        store.writeU8(rng.below(store.size()), 0x77);
    EXPECT_GT(store.cleanerRef().statCleans.value(), cleans0 + 10);

    txns.abort(t);
    EXPECT_EQ(store.readU64(400), 0xCAFEull);
}

TEST(ShadowTxn, IndependentTransactions)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    const std::uint32_t ps = store.config().geom.pageSize;
    store.writeU64(0, 10);
    store.writeU64(4 * ps, 20);
    store.flushAll();

    const auto t1 = txns.begin();
    const auto t2 = txns.begin();
    std::uint8_t a[8] = {11};
    std::uint8_t b[8] = {21};
    txns.write(t1, 0, a);
    txns.write(t2, 4 * ps, b);
    txns.commit(t1);
    txns.abort(t2);
    EXPECT_EQ(store.readU8(0), 11);
    EXPECT_EQ(store.readU64(4 * ps), 20ull);
}

TEST(ShadowTxn, DestructorAbortsOpenTransactions)
{
    EnvyStore store(txnConfig());
    store.writeU64(500, 7);
    store.flushAll();
    {
        ShadowManager txns(store);
        const auto t = txns.begin();
        std::uint8_t v[8] = {9};
        txns.write(t, 500, v);
        // No commit: manager destruction must roll back.
    }
    EXPECT_EQ(store.readU64(500), 7ull);
}

TEST(ShadowTxnDeathTest, OverlappingWritersAreRejected)
{
    EnvyStore store(txnConfig());
    ShadowManager txns(store);
    store.flushAll();
    const auto t1 = txns.begin();
    const auto t2 = txns.begin();
    std::uint8_t v[4] = {};
    txns.write(t1, 0, v);
    EXPECT_DEATH(txns.write(t2, 0, v), "owned by");
}

} // namespace
} // namespace envy
