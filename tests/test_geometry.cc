/**
 * @file
 * Tests for Geometry against the paper's Figure 12 numbers.
 */

#include <gtest/gtest.h>

#include "common/geometry.hh"

namespace envy {
namespace {

TEST(Geometry, PaperSystemMatchesFigure12)
{
    const Geometry g = Geometry::paperSystem();
    EXPECT_EQ(g.flashBytes(), ByteCount(2 * GiB));         // 2 GB array
    EXPECT_EQ(g.numChips(), 2048u);             // 2048 1MBx8 chips
    EXPECT_EQ(g.chipBytes(), ByteCount(1 * MiB));
    EXPECT_EQ(g.numBanks, 8u);                  // 8 banks
    EXPECT_EQ(g.pageSize, 256u);                // 256 chips/bank
    EXPECT_EQ(g.numSegments(), 128u);           // 128 segments
    EXPECT_EQ(g.segmentBytes(), ByteCount(16 * MiB));      // 16 MB each
    EXPECT_EQ(g.pagesPerSegment(), PageCount(64 * 1024)); // 64 KB erase blocks
    EXPECT_EQ(g.blocksPerChip, 16u);            // 16 blocks/chip
}

TEST(Geometry, SramSizingMatchesPaperSection33)
{
    const Geometry g = Geometry::paperSystem();
    // "For every gigabyte of Flash, 24 MBytes of SRAM is required for
    // the page table" -> 48 MB for 2 GB.
    EXPECT_EQ(g.pageTableBytes(), ByteCount(48 * MiB));
    // "The buffer size is chosen to be the size of one segment."
    EXPECT_EQ(g.effectiveWriteBufferPages().value() * g.pageSize,
              16 * MiB);
}

TEST(Geometry, UtilizationDerivesLogicalPages)
{
    Geometry g = Geometry::paperSystem();
    g.targetUtilization = 0.8;
    EXPECT_EQ(g.effectiveLogicalPages(),
              PageCount(std::uint64_t(0.8 * 128 * 65536)));
    g.logicalPages = 1000;
    EXPECT_EQ(g.effectiveLogicalPages(), PageCount(1000));
}

TEST(Geometry, SegmentToBankMapping)
{
    const Geometry g = Geometry::paperSystem();
    EXPECT_EQ(g.bankOf(SegmentId(0)), BankId(0));
    EXPECT_EQ(g.bankOf(SegmentId(15)), BankId(0));
    EXPECT_EQ(g.bankOf(SegmentId(16)), BankId(1));
    EXPECT_EQ(g.bankOf(SegmentId(127)), BankId(7));
    EXPECT_EQ(g.blockOf(SegmentId(0)), 0u);
    EXPECT_EQ(g.blockOf(SegmentId(17)), 1u);
}

TEST(Geometry, ValidCases)
{
    EXPECT_EQ(Geometry::paperSystem().validate(), nullptr);
    EXPECT_EQ(Geometry::tiny().validate(), nullptr);
}

TEST(Geometry, RejectsBadPageSize)
{
    Geometry g = Geometry::tiny();
    g.pageSize = 100; // not a power of two
    EXPECT_NE(g.validate(), nullptr);
    g.pageSize = 0;
    EXPECT_NE(g.validate(), nullptr);
}

TEST(Geometry, RejectsOverfullLogicalSpace)
{
    Geometry g = Geometry::tiny();
    // All space minus less than one reserve segment.
    g.logicalPages =
        (g.numSegments() - 1) * g.pagesPerSegment().value();
    EXPECT_NE(g.validate(), nullptr);
}

TEST(Geometry, RejectsBadUtilization)
{
    Geometry g = Geometry::tiny();
    g.targetUtilization = 1.0;
    EXPECT_NE(g.validate(), nullptr);
    g.targetUtilization = 0.0;
    EXPECT_NE(g.validate(), nullptr);
}

TEST(Geometry, RejectsTooFewSegments)
{
    Geometry g = Geometry::tiny();
    g.numBanks = 1;
    g.blocksPerChip = 2;
    EXPECT_NE(g.validate(), nullptr);
}

} // namespace
} // namespace envy
