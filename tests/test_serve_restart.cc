/**
 * @file
 * Server restart durability (docs/SERVING.md §3): a child process
 * serves PUT traffic over the loopback with durableAcks on a
 * persistent store, reporting every acked key up a pipe; the parent
 * SIGKILLs it mid-load, reopens the store (journal replay + restart
 * recovery), re-opens the KvEngine in place, and verifies every
 * acked PUT survived — the ack-prefix contract of
 * tools/persist/crash_harness.cc, pushed through the whole serve
 * stack.  The database needs no serialisation step to come back: it
 * *is* the store's address space.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "serve/kv_engine.hh"
#include "serve/loopback.hh"
#include "serve/server.hh"

namespace envy {
namespace serve {
namespace {

std::string
tempStore(const char *name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
    return path;
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
}

EnvyConfig
persistentConfig(const std::string &path)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    cfg.persistPath = path;
    return cfg;
}

std::string
valueFor(std::uint64_t key)
{
    return "v-" + std::to_string(key * 2654435761u);
}

/**
 * Child body: serve an endless PUT stream, pushing each acked key up
 * @p ackFd the instant its ack frame arrives.  Runs until killed.
 */
[[noreturn]] void
serveUntilKilled(const std::string &path, int ackFd)
{
    EnvyStore store(persistentConfig(path));
    KvEngineConfig engCfg;
    engCfg.numShards = 4;
    KvEngine engine(store, engCfg);
    // The engine layout itself must be durable before any ack.
    store.persistFlush();

    ServeConfig cfg;
    cfg.workers = 0; // deterministic pump
    cfg.durableAcks = true;
    Server server(store, engine, cfg);
    LoopbackPair pair = loopbackPair();
    server.attach(std::move(pair.server));
    KvClient client(std::move(pair.client));

    for (std::uint64_t i = 0;; i++) {
        // Cycle a bounded key space: overwrites are in-place, so the
        // child can serve forever without filling the engine.
        const std::uint64_t key = i % 4096;
        client.sendPut(key, valueFor(key));
        server.pump();
        Response resp;
        if (!client.recv(resp, false) || resp.status != Status::Ok)
            ::_exit(3); // engine full before the kill landed
        // The ack exists; only now may the parent learn of the key.
        ssize_t n;
        do {
            n = ::write(ackFd, &key, sizeof(key));
        } while (n < 0 && errno == EINTR);
        if (n != static_cast<ssize_t>(sizeof(key)))
            ::_exit(4);
    }
}

TEST(ServeRestart, AckedPutsSurviveSigkill)
{
    bool anyAcks = false;
    for (const int killDelayMs : {5, 20, 60}) {
        const std::string path = tempStore("serve_restart.store");
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);

        const pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            ::close(fds[0]);
            serveUntilKilled(path, fds[1]);
        }
        ::close(fds[1]);

        // Collect acked keys while the child serves, then kill it
        // mid-flight.
        ::usleep(static_cast<useconds_t>(killDelayMs) * 1000);
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        std::vector<std::uint64_t> acked;
        for (;;) {
            std::uint64_t key;
            const ssize_t n = ::read(fds[0], &key, sizeof(key));
            if (n == static_cast<ssize_t>(sizeof(key))) {
                acked.push_back(key);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break; // EOF: child gone, pipe drained
        }
        ::close(fds[0]);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status) &&
                    WTERMSIG(status) == SIGKILL)
            << "child exited on its own (status " << status
            << ") — the kill never interrupted it";

        // Nothing acked means the kill landed before the child even
        // finished bootstrapping — no durability claim was made, so
        // there is nothing to verify this round.
        if (acked.empty()) {
            cleanup(path);
            continue;
        }
        anyAcks = true;

        // Reopen: journal replay + restart recovery, then the
        // engine straight out of the recovered address space.  The
        // child flushed the engine layout before its first ack, so a
        // non-empty acked set implies the header is durable.
        EnvyStore store(persistentConfig(path));
        auto engine = KvEngine::open(store);
        for (const std::uint64_t key : acked) {
            KvEngine::GetResult got = engine->get(key);
            ASSERT_EQ(got.status, Status::Ok)
                << "acked key " << key << " lost (of "
                << acked.size() << " acked)";
            EXPECT_EQ(got.value, valueFor(key)) << "key " << key;
        }
        cleanup(path);
    }
    ASSERT_TRUE(anyAcks)
        << "no round produced acks before its kill — delays too "
           "short to test anything";
}

TEST(ServeRestart, CleanShutdownReopensIntact)
{
    const std::string path = tempStore("serve_clean.store");
    {
        EnvyStore store(persistentConfig(path));
        KvEngineConfig engCfg;
        engCfg.numShards = 4;
        KvEngine engine(store, engCfg);
        ServeConfig cfg;
        cfg.workers = 0;
        cfg.durableAcks = true;
        Server server(store, engine, cfg);
        LoopbackPair pair = loopbackPair();
        server.attach(std::move(pair.server));
        KvClient client(std::move(pair.client));
        for (std::uint64_t key = 0; key < 200; key++) {
            client.sendPut(key, valueFor(key));
            server.pump();
            Response resp;
            ASSERT_TRUE(client.recv(resp, false));
            ASSERT_EQ(resp.status, Status::Ok);
        }
        client.sendDel(7);
        server.pump();
        Response resp;
        ASSERT_TRUE(client.recv(resp, false));
        ASSERT_EQ(resp.status, Status::Ok);
        server.stop();
        store.persistCommit();
    }
    EnvyStore store(persistentConfig(path));
    auto engine = KvEngine::open(store);
    EXPECT_EQ(engine->keyCount(), 199u);
    EXPECT_EQ(engine->get(7).status, Status::NotFound);
    for (std::uint64_t key = 100; key < 110; key++)
        EXPECT_EQ(engine->get(key).value, valueFor(key));
    cleanup(path);
}

} // namespace
} // namespace serve
} // namespace envy
