/**
 * @file
 * Server restart durability (docs/SERVING.md §3): a child process
 * serves PUT traffic over the loopback with durableAcks on a
 * persistent store, reporting every acked key up a pipe; the parent
 * SIGKILLs it mid-load, reopens the store (journal replay + restart
 * recovery), re-opens the KvEngine in place, and verifies every
 * acked PUT survived — the ack-prefix contract of
 * tools/persist/crash_harness.cc, pushed through the whole serve
 * stack.  The database needs no serialisation step to come back: it
 * *is* the store's address space.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "faults/crash_point.hh"
#include "serve/client.hh"
#include "serve/kv_engine.hh"
#include "serve/loopback.hh"
#include "serve/server.hh"

namespace envy {
namespace serve {
namespace {

std::string
tempStore(const char *name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
    return path;
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
}

EnvyConfig
persistentConfig(const std::string &path)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    cfg.persistPath = path;
    return cfg;
}

std::string
valueFor(std::uint64_t key)
{
    return "v-" + std::to_string(key * 2654435761u);
}

/**
 * Child body: serve an endless PUT stream, pushing each acked key up
 * @p ackFd the instant its ack frame arrives.  Runs until killed.
 */
[[noreturn]] void
serveUntilKilled(const std::string &path, int ackFd)
{
    EnvyStore store(persistentConfig(path));
    KvEngineConfig engCfg;
    engCfg.numShards = 4;
    KvEngine engine(store, engCfg);
    // The engine layout itself must be durable before any ack.
    store.persistFlush();

    ServeConfig cfg;
    cfg.workers = 0; // deterministic pump
    cfg.durableAcks = true;
    Server server(store, engine, cfg);
    LoopbackPair pair = loopbackPair();
    server.attach(std::move(pair.server));
    KvClient client(std::move(pair.client));

    for (std::uint64_t i = 0;; i++) {
        // Cycle a bounded key space: overwrites are in-place, so the
        // child can serve forever without filling the engine.
        const std::uint64_t key = i % 4096;
        client.sendPut(key, valueFor(key));
        server.pump();
        Response resp;
        if (!client.recv(resp, false) || resp.status != Status::Ok)
            ::_exit(3); // engine full before the kill landed
        // The ack exists; only now may the parent learn of the key.
        ssize_t n;
        do {
            n = ::write(ackFd, &key, sizeof(key));
        } while (n < 0 && errno == EINTR);
        if (n != static_cast<ssize_t>(sizeof(key)))
            ::_exit(4);
    }
}

TEST(ServeRestart, AckedPutsSurviveSigkill)
{
    bool anyAcks = false;
    for (const int killDelayMs : {5, 20, 60}) {
        const std::string path = tempStore("serve_restart.store");
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);

        const pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            ::close(fds[0]);
            serveUntilKilled(path, fds[1]);
        }
        ::close(fds[1]);

        // Collect acked keys while the child serves, then kill it
        // mid-flight.
        ::usleep(static_cast<useconds_t>(killDelayMs) * 1000);
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        std::vector<std::uint64_t> acked;
        for (;;) {
            std::uint64_t key;
            const ssize_t n = ::read(fds[0], &key, sizeof(key));
            if (n == static_cast<ssize_t>(sizeof(key))) {
                acked.push_back(key);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break; // EOF: child gone, pipe drained
        }
        ::close(fds[0]);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status) &&
                    WTERMSIG(status) == SIGKILL)
            << "child exited on its own (status " << status
            << ") — the kill never interrupted it";

        // Nothing acked means the kill landed before the child even
        // finished bootstrapping — no durability claim was made, so
        // there is nothing to verify this round.
        if (acked.empty()) {
            cleanup(path);
            continue;
        }
        anyAcks = true;

        // Reopen: journal replay + restart recovery, then the
        // engine straight out of the recovered address space.  The
        // child flushed the engine layout before its first ack, so a
        // non-empty acked set implies the header is durable.
        EnvyStore store(persistentConfig(path));
        auto engine = KvEngine::open(store);
        for (const std::uint64_t key : acked) {
            KvEngine::GetResult got = engine->get(key);
            ASSERT_EQ(got.status, Status::Ok)
                << "acked key " << key << " lost (of "
                << acked.size() << " acked)";
            EXPECT_EQ(got.value, valueFor(key)) << "key " << key;
        }
        cleanup(path);
    }
    ASSERT_TRUE(anyAcks)
        << "no round produced acks before its kill — delays too "
           "short to test anything";
}

/**
 * Child body for the group-commit rounds: concurrent persistent
 * store, threaded server (=> batched durable acks through the commit
 * thread), pipelined client keeping a window of PUTs outstanding.
 * The worker pool may execute pipelined requests in any order
 * (server.hh ordering contract), so responses are matched by
 * requestId; the durable contract under test is that EVERY ack the
 * client observed names a mutation that survives SIGKILL.  Each key
 * is reported up @p ackFd only after its ack frame was read.  Runs
 * until killed.
 */
[[noreturn]] void
serveGroupCommitUntilKilled(const std::string &path, int ackFd)
{
    EnvyConfig storeCfg = persistentConfig(path);
    storeCfg.numWorkers = 2;
    storeCfg.numCleaners = 1;
    EnvyStore store(storeCfg);
    if (!store.controller().concurrent())
        ::_exit(6);
    KvEngineConfig engCfg;
    engCfg.numShards = 4;
    KvEngine engine(store, engCfg);
    store.persistFlush();

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.durableAcks = true;
    Server server(store, engine, cfg);
    LoopbackPair pair = loopbackPair();
    server.attach(std::move(pair.server));
    KvClient client(std::move(pair.client));

    constexpr std::size_t window = 16;
    std::map<std::uint64_t, std::uint64_t> inflight; // id -> key
    std::uint64_t next = 0;
    auto sendOne = [&] {
        // Distinct keys per op (bounded space): an acked key's value
        // is reconstructible from the key alone after restart.
        const std::uint64_t key = next++ % 4096;
        inflight.emplace(client.sendPut(key, valueFor(key)), key);
    };
    for (std::size_t i = 0; i < window; ++i)
        sendOne();
    for (;;) {
        Response resp;
        if (!client.recv(resp, true))
            ::_exit(3);
        const auto it = inflight.find(resp.requestId);
        if (it == inflight.end())
            ::_exit(5); // unknown or duplicate requestId
        if (resp.status != Status::Ok)
            ::_exit(3);
        const std::uint64_t key = it->second;
        inflight.erase(it);
        ssize_t n;
        do {
            n = ::write(ackFd, &key, sizeof(key));
        } while (n < 0 && errno == EINTR);
        if (n != static_cast<ssize_t>(sizeof(key)))
            ::_exit(4);
        sendOne();
    }
}

TEST(ServeRestart, GroupCommitAckedPutsSurviveSigkill)
{
    // The batched-durable-acks path of PR 10: same contract as
    // AckedPutsSurviveSigkill, but the acks now ride the commit
    // thread's shared journal flushes and the client pipelines a
    // 16-deep window, so one batch typically carries several acks.
    bool anyAcks = false;
    for (const int killDelayMs : {5, 20, 60}) {
        const std::string path =
            tempStore("serve_restart_gc.store");
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);

        const pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            ::close(fds[0]);
            serveGroupCommitUntilKilled(path, fds[1]);
        }
        ::close(fds[1]);

        ::usleep(static_cast<useconds_t>(killDelayMs) * 1000);
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        std::vector<std::uint64_t> acked;
        for (;;) {
            std::uint64_t key;
            const ssize_t n = ::read(fds[0], &key, sizeof(key));
            if (n == static_cast<ssize_t>(sizeof(key))) {
                acked.push_back(key);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        ::close(fds[0]);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status) &&
                    WTERMSIG(status) == SIGKILL)
            << "child exited on its own (status " << status
            << ") — ack order broke or the engine filled";

        if (acked.empty()) {
            cleanup(path);
            continue;
        }
        anyAcks = true;

        EnvyConfig storeCfg = persistentConfig(path);
        storeCfg.numWorkers = 2;
        storeCfg.numCleaners = 1;
        EnvyStore store(storeCfg);
        auto engine = KvEngine::open(store);
        for (const std::uint64_t key : acked) {
            KvEngine::GetResult got = engine->get(key);
            ASSERT_EQ(got.status, Status::Ok)
                << "acked key " << key << " lost (of "
                << acked.size() << " acked)";
            EXPECT_EQ(got.value, valueFor(key)) << "key " << key;
        }
        cleanup(path);
    }
    ASSERT_TRUE(anyAcks)
        << "no round produced acks before its kill — delays too "
           "short to test anything";
}

/** SIGKILLs its process at the @p at-th firing of crash point
 *  @p point — turns the wall-clock kill of the tests above into a
 *  deterministic cut at an exact journal/COW barrier. */
struct KillAtCrashPoint : envy::CrashSink
{
    const char *point = nullptr;
    std::uint64_t at = 0;
    std::uint64_t seen = 0;
    void onCrashPoint(const char *name) override
    {
        if (std::strcmp(name, point) != 0)
            return;
        if (++seen == at)
            ::raise(SIGKILL);
    }
};

/**
 * Child body for the crash-point sweep: serve *distinct* keys (the
 * trees keep growing, so leaf and root splits keep happening for the
 * whole run) until the scheduled crash point fires.  Exits 5 if the
 * point never fired often enough — the parent skips that case.
 */
[[noreturn]] void
serveUntilCrashPoint(const std::string &path, int ackFd,
                     const char *point, std::uint64_t occurrence)
{
    static KillAtCrashPoint sink;
    sink.point = point;
    sink.at = occurrence;
    crash_points::setGlobalSink(&sink);

    EnvyStore store(persistentConfig(path));
    KvEngineConfig engCfg;
    engCfg.numShards = 4;
    KvEngine engine(store, engCfg);
    store.persistFlush();

    ServeConfig cfg;
    cfg.workers = 0;
    cfg.durableAcks = true;
    Server server(store, engine, cfg);
    LoopbackPair pair = loopbackPair();
    server.attach(std::move(pair.server));
    KvClient client(std::move(pair.client));

    for (std::uint64_t key = 0; key < 4096; key++) {
        client.sendPut(key, valueFor(key));
        server.pump();
        Response resp;
        if (!client.recv(resp, false) || resp.status != Status::Ok)
            ::_exit(3);
        ssize_t n;
        do {
            n = ::write(ackFd, &key, sizeof(key));
        } while (n < 0 && errno == EINTR);
        if (n != static_cast<ssize_t>(sizeof(key)))
            ::_exit(4);
    }
    ::_exit(5); // the point never fired @p occurrence times
}

TEST(ServeRestart, AckedPutsSurviveCrashPointSweep)
{
    // Regression for the crash-ordered B-tree/engine write protocol
    // (db/btree.hh): a cut between a split's half-writes used to
    // truncate a published leaf before its right sibling became
    // reachable, silently dropping acked keys.  Killing at exact
    // occurrences of the journal-flush and COW barriers lands cuts
    // inside many split windows of a growing tree; every acked key
    // must still be readable after recovery.
    struct Case
    {
        const char *point;
        std::uint64_t occurrence;
    };
    const Case cases[] = {
        {"persist.journal.after_flush", 25},
        {"persist.journal.after_flush", 150},
        {"persist.journal.after_flush", 400},
        {"persist.journal.after_flush", 700},
        {"persist.journal.after_flush", 1000},
        {"persist.journal.after_flush", 1400},
        {"ctl.cow.after_push", 300},
        {"ctl.cow.after_map", 600},
        {"ctl.cow.done", 900},
    };
    int verified = 0;
    for (const Case &c : cases) {
        const std::string path =
            tempStore("serve_restart_cp.store");
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);

        const pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            ::close(fds[0]);
            serveUntilCrashPoint(path, fds[1], c.point,
                                 c.occurrence);
        }
        ::close(fds[1]);
        std::vector<std::uint64_t> acked;
        for (;;) {
            std::uint64_t key;
            const ssize_t n = ::read(fds[0], &key, sizeof(key));
            if (n == static_cast<ssize_t>(sizeof(key))) {
                acked.push_back(key);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        ::close(fds[0]);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
            // The point never reached this occurrence count on this
            // code path; nothing was claimed, nothing to verify.
            cleanup(path);
            continue;
        }
        if (acked.empty()) {
            cleanup(path);
            continue;
        }

        EnvyStore store(persistentConfig(path));
        auto engine = KvEngine::open(store);
        for (const std::uint64_t key : acked) {
            KvEngine::GetResult got = engine->get(key);
            ASSERT_EQ(got.status, Status::Ok)
                << "acked key " << key << " lost at " << c.point
                << " occurrence " << c.occurrence << " (of "
                << acked.size() << " acked)";
            EXPECT_EQ(got.value, valueFor(key)) << "key " << key;
        }
        ++verified;
        cleanup(path);
    }
    // Most cases must actually land their kill: a sweep that skips
    // everything is measuring nothing.
    ASSERT_GE(verified, 5);
}

TEST(ServeRestart, CleanShutdownReopensIntact)
{
    const std::string path = tempStore("serve_clean.store");
    {
        EnvyStore store(persistentConfig(path));
        KvEngineConfig engCfg;
        engCfg.numShards = 4;
        KvEngine engine(store, engCfg);
        ServeConfig cfg;
        cfg.workers = 0;
        cfg.durableAcks = true;
        Server server(store, engine, cfg);
        LoopbackPair pair = loopbackPair();
        server.attach(std::move(pair.server));
        KvClient client(std::move(pair.client));
        for (std::uint64_t key = 0; key < 200; key++) {
            client.sendPut(key, valueFor(key));
            server.pump();
            Response resp;
            ASSERT_TRUE(client.recv(resp, false));
            ASSERT_EQ(resp.status, Status::Ok);
        }
        client.sendDel(7);
        server.pump();
        Response resp;
        ASSERT_TRUE(client.recv(resp, false));
        ASSERT_EQ(resp.status, Status::Ok);
        server.stop();
        store.persistCommit();
    }
    EnvyStore store(persistentConfig(path));
    auto engine = KvEngine::open(store);
    EXPECT_EQ(engine->keyCount(), 199u);
    EXPECT_EQ(engine->get(7).status, Status::NotFound);
    for (std::uint64_t key = 100; key < 110; key++)
        EXPECT_EQ(engine->get(key).value, valueFor(key));
    cleanup(path);
}

} // namespace
} // namespace serve
} // namespace envy
