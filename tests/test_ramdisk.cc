/**
 * @file
 * Tests for the block-device adapter (paper §1's RAM-disk
 * compatibility path).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ramdisk/ram_disk.hh"

namespace envy {
namespace {

EnvyConfig
diskConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    return cfg;
}

TEST(RamDisk, GeometryDerivesFromStore)
{
    EnvyStore store(diskConfig());
    RamDisk disk(store);
    EXPECT_EQ(disk.numSectors(), store.size() / 512);
    EXPECT_LE(disk.capacityBytes(), store.size());
}

TEST(RamDisk, SectorRoundTrip)
{
    EnvyStore store(diskConfig());
    RamDisk disk(store);
    std::vector<std::uint8_t> sector(512);
    std::iota(sector.begin(), sector.end(), 0);
    disk.writeSector(5, sector);

    std::vector<std::uint8_t> back(512);
    disk.readSector(5, back);
    EXPECT_EQ(back, sector);
}

TEST(RamDisk, SectorsDoNotOverlap)
{
    EnvyStore store(diskConfig());
    RamDisk disk(store);
    std::vector<std::uint8_t> a(512, 0xAA), b(512, 0xBB);
    disk.writeSector(0, a);
    disk.writeSector(1, b);
    std::vector<std::uint8_t> back(512);
    disk.readSector(0, back);
    EXPECT_EQ(back[511], 0xAA);
    disk.readSector(1, back);
    EXPECT_EQ(back[0], 0xBB);
}

TEST(RamDisk, MultiSectorTransfer)
{
    EnvyStore store(diskConfig());
    RamDisk disk(store);
    std::vector<std::uint8_t> data(4 * 512);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 13);
    disk.write(3, 4, data);

    std::vector<std::uint8_t> back(4 * 512);
    disk.read(3, 4, back);
    EXPECT_EQ(back, data);
    EXPECT_EQ(disk.sectorWrites(), 4u);
    EXPECT_EQ(disk.sectorReads(), 4u);
}

TEST(RamDisk, SharesTheStoreWithMappedAccess)
{
    // The two interfaces see the same bytes — a file system could
    // run next to memory-mapped structures.
    EnvyStore store(diskConfig());
    RamDisk disk(store);
    std::vector<std::uint8_t> sector(512, 0x5A);
    disk.writeSector(2, sector);
    EXPECT_EQ(store.readU8(2 * 512 + 17), 0x5A);
    store.writeU8(2 * 512 + 17, 0x99);
    std::vector<std::uint8_t> back(512);
    disk.readSector(2, back);
    EXPECT_EQ(back[17], 0x99);
}

TEST(RamDiskDeathTest, OutOfRangeSectorPanics)
{
    EnvyStore store(diskConfig());
    RamDisk disk(store);
    std::vector<std::uint8_t> sector(512);
    EXPECT_DEATH(disk.readSector(disk.numSectors(), sector),
                 "out of range");
}

} // namespace
} // namespace envy
