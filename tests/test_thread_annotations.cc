/**
 * @file
 * envy::Mutex / envy::MutexLock and the ENVY_* thread-safety macros
 * (src/common/thread_annotations.hh).
 *
 * The annotations themselves are checked by clang's -Wthread-safety
 * in CI (and by the try_compile negative harness in
 * tests/CMakeLists.txt, which proves a guarded-member violation
 * fails to compile).  This test covers what must hold under ANY
 * compiler: the macros expand benignly, and the annotated Mutex is a
 * real mutex -- concurrent increments through MutexLock never lose
 * an update.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "common/thread_annotations.hh"
#include "envysim/parallel.hh"

namespace envy {
namespace {

/** The repo's annotation idiom, in miniature. */
class GuardedCounter
{
  public:
    void add(std::uint64_t n)
    {
        MutexLock lock(mu_);
        value_ += n;
    }

    std::uint64_t value() const
    {
        MutexLock lock(mu_);
        return value_;
    }

    /** *Locked() + ENVY_REQUIRES naming convention. */
    void addTwiceLocked(std::uint64_t n) ENVY_REQUIRES(mu_)
    {
        value_ += n;
        value_ += n;
    }

    void addTwice(std::uint64_t n)
    {
        MutexLock lock(mu_);
        addTwiceLocked(n);
    }

  private:
    mutable Mutex mu_;
    std::uint64_t value_ ENVY_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, MacrosExpandBenignly)
{
    // Under GCC every ENVY_* macro must vanish; under clang they
    // must still produce a default-constructible, lockable type.
    Mutex mu;
    mu.lock();
    mu.unlock();
    {
        MutexLock lock(mu);
    }
    GuardedCounter c;
    c.add(1);
    c.addTwice(2);
    EXPECT_EQ(c.value(), 5u);
}

TEST(ThreadAnnotations, MutexLockExcludesConcurrentWriters)
{
    // Hammer one guarded counter from every worker; a Mutex that
    // failed to exclude would lose increments.
    constexpr std::uint64_t tasks = 32;
    constexpr std::uint64_t perTask = 2000;
    GuardedCounter c;
    ParallelRunner runner(4);
    for (std::uint64_t t = 0; t < tasks; ++t) {
        runner.submit([&c] {
            for (std::uint64_t i = 0; i < perTask; ++i)
                c.add(1);
        });
    }
    runner.wait();
    EXPECT_EQ(c.value(), tasks * perTask);
}

TEST(ThreadAnnotations, MutexIsBasicLockable)
{
    // condition_variable_any requires BasicLockable; this is the
    // contract ParallelRunner's waits lean on.
    Mutex mu;
    MutexLock lock(mu);
    SUCCEED();
}

} // namespace
} // namespace envy
