/**
 * @file
 * Tests for the typed views (envy/mapped.hh): MappedValue,
 * MappedArray and MappedArena on top of the word interface.
 */

#include <gtest/gtest.h>

#include "envy/mapped.hh"

namespace envy {
namespace {

EnvyConfig
cfg()
{
    EnvyConfig c;
    c.geom = Geometry::tiny();
    return c;
}

struct Point
{
    std::int32_t x;
    std::int32_t y;
    bool operator==(const Point &) const = default;
};

TEST(MappedValue, GetSetRoundTrip)
{
    EnvyStore store(cfg());
    MappedValue<std::uint64_t> v(store, 0x200);
    v = 12345;
    EXPECT_EQ(v.get(), 12345u);
    EXPECT_EQ(static_cast<std::uint64_t>(v), 12345u);
}

TEST(MappedValue, StructsWork)
{
    EnvyStore store(cfg());
    MappedValue<Point> p(store, 0x300);
    p = Point{3, -4};
    EXPECT_EQ(p.get(), (Point{3, -4}));
}

TEST(MappedValue, UpdateIsReadModifyWrite)
{
    EnvyStore store(cfg());
    MappedValue<std::uint32_t> counter(store, 0x400);
    counter = 10;
    const std::uint32_t result =
        counter.update([](std::uint32_t &v) { v += 5; });
    EXPECT_EQ(result, 15u);
    EXPECT_EQ(counter.get(), 15u);
}

TEST(MappedValue, SurvivesPowerFailure)
{
    EnvyStore store(cfg());
    MappedValue<double> v(store, 0x500);
    v = 2.71828;
    store.powerFailAndRecover();
    EXPECT_DOUBLE_EQ(v.get(), 2.71828);
}

TEST(MappedArray, ElementAccess)
{
    EnvyStore store(cfg());
    MappedArray<std::uint32_t> arr(store, 0x1000, 100);
    EXPECT_EQ(arr.size(), 100u);
    for (std::uint64_t i = 0; i < arr.size(); ++i)
        arr.put(i, static_cast<std::uint32_t>(i * i));
    for (std::uint64_t i = 0; i < arr.size(); ++i)
        EXPECT_EQ(arr.at(i), i * i);
}

TEST(MappedArray, ElementsSpanPages)
{
    // 12-byte structs in 64-byte pages: elements straddle pages.
    struct Wide
    {
        std::uint32_t a, b, c;
        bool operator==(const Wide &) const = default;
    };
    EnvyStore store(cfg());
    MappedArray<Wide> arr(store, 0x1000, 50);
    for (std::uint32_t i = 0; i < 50; ++i)
        arr.put(i, Wide{i, i + 1, i + 2});
    for (std::uint32_t i = 0; i < 50; ++i)
        EXPECT_EQ(arr.at(i), (Wide{i, i + 1, i + 2}));
}

TEST(MappedArray, Fill)
{
    EnvyStore store(cfg());
    MappedArray<std::uint16_t> arr(store, 0x2000, 64);
    arr.fill(0xBEEF);
    for (std::uint64_t i = 0; i < arr.size(); ++i)
        EXPECT_EQ(arr.at(i), 0xBEEF);
}

TEST(MappedArena, LaysOutAligned)
{
    EnvyStore store(cfg());
    MappedArena arena(store, 0x1001, 4096); // deliberately unaligned
    auto v8 = arena.value<std::uint64_t>();
    EXPECT_EQ(v8.address() % alignof(std::uint64_t), 0u);
    auto arr = arena.array<std::uint32_t>(10);
    EXPECT_EQ(arr.address() % alignof(std::uint32_t), 0u);
    EXPECT_GE(arr.address(), v8.address() + 8);

    v8 = 7;
    arr.put(9, 99);
    EXPECT_EQ(v8.get(), 7u);
    EXPECT_EQ(arr.at(9), 99u);
}

TEST(MappedArenaDeathTest, ExhaustionIsFatal)
{
    EnvyStore store(cfg());
    MappedArena arena(store, 0, 64);
    arena.take(60);
    EXPECT_DEATH(arena.take(8), "exhausted");
}

} // namespace
} // namespace envy
