/**
 * @file
 * Tests for battery-backed SRAM and the FIFO write buffer (§3.2).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sram/sram_array.hh"
#include "sram/write_buffer.hh"

namespace envy {
namespace {

TEST(SramArray, ByteAndBlockAccess)
{
    SramArray sram(1024);
    sram.writeByte(10, 0xAB);
    EXPECT_EQ(sram.readByte(10), 0xAB);

    std::vector<std::uint8_t> in{1, 2, 3, 4};
    sram.write(100, in);
    std::vector<std::uint8_t> out(4);
    sram.read(100, out);
    EXPECT_EQ(out, in);
}

TEST(SramArray, UintHelpersAreLittleEndian)
{
    SramArray sram(64);
    sram.writeUint(0, 0x123456789ABCull, 6);
    EXPECT_EQ(sram.readUint(0, 6), 0x123456789ABCull);
    EXPECT_EQ(sram.readByte(0), 0xBC); // little end first
    EXPECT_EQ(sram.readByte(5), 0x12);
}

TEST(SramArray, BatteryBackedSurvivesPowerFail)
{
    SramArray sram(64, true);
    sram.writeUint(0, 0xDEAD, 4);
    sram.powerFail();
    EXPECT_EQ(sram.readUint(0, 4), 0xDEADull);
}

TEST(SramArray, UnbackedLosesContents)
{
    SramArray sram(64, false);
    sram.writeUint(0, 0xDEAD, 4);
    sram.writeUint(8, 0xDEAD, 4);
    sram.powerFail();
    // Deterministic garbage, but certainly not both words intact.
    EXPECT_FALSE(sram.readUint(0, 4) == 0xDEAD &&
                 sram.readUint(8, 4) == 0xDEAD);
}

class WriteBufferTest : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t cap = 8;
    static constexpr std::uint32_t pageSize = 32;

    WriteBufferTest()
        : sram(WriteBuffer::bytesNeeded(cap, pageSize, true)),
          buf(sram, 0, cap, pageSize, true, 6)
    {
    }

    SramArray sram;
    WriteBuffer buf;
};

TEST_F(WriteBufferTest, StartsEmpty)
{
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_FALSE(buf.aboveThreshold());
    EXPECT_EQ(buf.capacity(), cap);
}

TEST_F(WriteBufferTest, PushPopIsFifo)
{
    for (std::uint32_t i = 0; i < 5; ++i)
        buf.push(LogicalPageId(100 + i), i);
    EXPECT_EQ(buf.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        const auto t = buf.tail();
        EXPECT_EQ(t.logical, LogicalPageId(100 + i));
        EXPECT_EQ(t.origin, i);
        buf.popTail();
    }
    EXPECT_TRUE(buf.empty());
}

TEST_F(WriteBufferTest, SlotsStayStableWhileResident)
{
    const BufferSlotId s0 = buf.push(LogicalPageId(1), 0);
    buf.push(LogicalPageId(2), 0);
    EXPECT_EQ(buf.slotOwner(s0), LogicalPageId(1));
    buf.popTail(); // drops page 1
    EXPECT_FALSE(buf.slotResident(s0));
}

TEST_F(WriteBufferTest, RingWrapsAround)
{
    // Fill and drain twice the capacity to force wrapping.
    std::uint32_t pushed = 0, popped = 0;
    for (int round = 0; round < 4; ++round) {
        while (!buf.full())
            buf.push(LogicalPageId(pushed++), 7);
        while (!buf.empty()) {
            EXPECT_EQ(buf.tail().logical, LogicalPageId(popped++));
            buf.popTail();
        }
    }
    EXPECT_EQ(pushed, popped);
    EXPECT_EQ(pushed, 4 * cap);
}

TEST_F(WriteBufferTest, ThresholdSignalsBackgroundFlush)
{
    for (std::uint32_t i = 0; i < 5; ++i)
        buf.push(LogicalPageId(i), 0);
    EXPECT_FALSE(buf.aboveThreshold()); // threshold is 6
    buf.push(LogicalPageId(5), 0);
    EXPECT_TRUE(buf.aboveThreshold());
}

TEST_F(WriteBufferTest, SlotDataIsWritable)
{
    const BufferSlotId slot = buf.push(LogicalPageId(3), 0);
    auto data = buf.slotData(slot);
    ASSERT_EQ(data.size(), pageSize);
    data[0] = 0x5A;
    data[pageSize - 1] = 0xA5;
    EXPECT_EQ(buf.slotData(slot)[0], 0x5A);
    EXPECT_EQ(buf.slotData(slot)[pageSize - 1], 0xA5);
}

TEST_F(WriteBufferTest, MetadataLivesInSramAndRecovers)
{
    buf.push(LogicalPageId(11), 3);
    buf.push(LogicalPageId(22), 4);

    // Simulate the controller restarting: a new WriteBuffer object
    // would clobber SRAM, so recovery uses recover() on a mirror
    // whose in-core fields are stale.
    buf.recover();
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.tail().logical, LogicalPageId(11));
    EXPECT_EQ(buf.tail().origin, 3u);
}

TEST_F(WriteBufferTest, ResetEmptiesEverything)
{
    buf.push(LogicalPageId(1), 0);
    buf.push(LogicalPageId(2), 0);
    buf.reset();
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.slotResident(BufferSlotId(0)));
    EXPECT_FALSE(buf.slotResident(BufferSlotId(1)));
}

TEST_F(WriteBufferTest, StatsCountInsertsAndFlushes)
{
    buf.push(LogicalPageId(1), 0);
    buf.push(LogicalPageId(2), 0);
    buf.popTail();
    EXPECT_EQ(buf.statInserts.value(), 2u);
    EXPECT_EQ(buf.statFlushes.value(), 1u);
}

TEST(WriteBufferDeathTest, PushWhenFullPanics)
{
    SramArray sram(WriteBuffer::bytesNeeded(2, 16, false));
    WriteBuffer buf(sram, 0, 2, 16, false);
    buf.push(LogicalPageId(0), 0);
    buf.push(LogicalPageId(1), 0);
    EXPECT_DEATH(buf.push(LogicalPageId(2), 0), "full");
}

TEST(WriteBufferDeathTest, TailOfEmptyPanics)
{
    SramArray sram(WriteBuffer::bytesNeeded(2, 16, false));
    WriteBuffer buf(sram, 0, 2, 16, false);
    EXPECT_DEATH(buf.tail(), "empty");
}

} // namespace
} // namespace envy
