/**
 * @file
 * Differential verification of the observability layer: every figure
 * the metrics registry reports is recomputed from an independent
 * source — the gem5-style StatGroup counters (bumped on the same
 * code paths but flowing through a separate mechanism), brute-force
 * recounts over the flash array's actual state, and cross-component
 * conservation identities — and the two must agree exactly.
 *
 * The identities under a plain (transaction-free, fault-free) churn:
 *
 *   flash.programs  == buf.flushes + cleaner.pages_copied
 *                      (every program is a host flush or a cleaner
 *                      copy — nothing else touches flash)
 *   flash.programs  == flash.invalidations + sum(liveCount(seg))
 *                      (every programmed slot is either still live
 *                      or was invalidated; recounted from the array)
 *   flash.erases    == sum(eraseCycles(seg))   (brute-force recount)
 *   cleaner.segments_cleaned == erase-count delta   (wear off: the
 *                      cleaner is the only client of eraseSegment)
 *   buf.inserts     == buf.flushes + occupancy gauge == buffer.size()
 *
 * Plus: snapshots from `--jobs 1` and `--jobs 4` sweeps are
 * byte-identical (the parallel determinism contract extends to the
 * observability layer), and the Fig 6 bench's printed cleaning-cost
 * cells provably equal the `sim.cleaning_cost` gauge embedded in its
 * JSON metrics block.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "envysim/crash_explorer.hh"
#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"
#include "sim/random.hh"
#include "txn/shadow.hh"
#include "db/tpca_db.hh"

namespace envy {
namespace {

/** Σ liveCount over every segment, recounted from the array. */
std::uint64_t
recountLive(FlashArray &flash)
{
    std::uint64_t live = 0;
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s)
        live += flash.liveCount(SegmentId{s}).value();
    return live;
}

/** Σ eraseCycles over every segment, recounted from the array. */
std::uint64_t
recountErases(FlashArray &flash)
{
    std::uint64_t erases = 0;
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s)
        erases += flash.eraseCycles(SegmentId{s});
    return erases;
}

std::uint64_t
countShadows(FlashArray &flash)
{
    std::uint64_t shadows = 0;
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s)
        flash.forEachShadow(SegmentId{s}, [&](SlotId) { ++shadows; });
    return shadows;
}

/** Every metric must equal its same-path gem5-style stat twin. */
void
expectMetricsMatchStats(EnvyStore &store,
                        const obs::MetricsSnapshot &snap)
{
    EXPECT_EQ(snap.counter("flash.programs"),
              store.flash().statPagesProgrammed.value());
    EXPECT_EQ(snap.counter("flash.invalidations"),
              store.flash().statPagesInvalidated.value());
    EXPECT_EQ(snap.counter("flash.erases"),
              store.flash().statSegmentErases.value());
    EXPECT_EQ(snap.counter("flash.page_reads"),
              store.flash().statPageReads.value());
    EXPECT_EQ(snap.counter("flash.slots_retired"),
              store.flash().statSlotsRetired.value());
    EXPECT_EQ(snap.counter("buf.inserts"),
              store.writeBuffer().statInserts.value());
    EXPECT_EQ(snap.counter("buf.flushes"),
              store.writeBuffer().statFlushes.value());
    EXPECT_EQ(snap.counter("cleaner.segments_cleaned"),
              store.cleanerRef().statCleans.value());
    EXPECT_EQ(snap.counter("cleaner.pages_copied"),
              store.cleanerRef().statCleanerPrograms.value());
    EXPECT_EQ(snap.counter("ctl.host_reads"),
              store.controller().statHostReads.value());
    EXPECT_EQ(snap.counter("ctl.host_writes"),
              store.controller().statHostWrites.value());
    EXPECT_EQ(snap.counter("ctl.cows"),
              store.controller().statCows.value());
    EXPECT_EQ(snap.counter("ctl.buffer_hits"),
              store.controller().statBufferHits.value());
    EXPECT_EQ(snap.counter("ctl.foreground_flushes"),
              store.controller().statForegroundFlushes.value());
    EXPECT_EQ(snap.counter("ctl.flush_retries"),
              store.controller().statFlushRetries.value());
}

/**
 * The conservation identities, against brute-force recounts.
 * @p base is a snapshot taken right after construction: populate()
 * programs the initial image without buffer flushes, so the
 * programs-breakdown identity holds on deltas from there.
 */
void
expectConservation(EnvyStore &store, const obs::MetricsSnapshot &base,
                   const obs::MetricsSnapshot &snap)
{
    ASSERT_EQ(countShadows(store.flash()), 0u);
    // Write amplification's numerator, recounted two ways.
    EXPECT_EQ(snap.counterDelta(base, "flash.programs"),
              snap.counterDelta(base, "buf.flushes") +
                  snap.counterDelta(base, "cleaner.pages_copied"));
    EXPECT_EQ(snap.counter("flash.programs"),
              snap.counter("flash.invalidations") +
                  recountLive(store.flash()));
    EXPECT_EQ(snap.counter("flash.erases"),
              recountErases(store.flash()));
    EXPECT_EQ(snap.counter("buf.inserts"),
              snap.counter("buf.flushes") +
                  store.writeBuffer().size());
    EXPECT_EQ(snap.gauge("buf.occupancy"),
              static_cast<double>(store.writeBuffer().size()));
}

TEST(ObsDifferential, ChurnMetricsMatchGroundTruth)
{
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    EnvyStore store(cfg);
    const obs::MetricsSnapshot base = store.metrics().snapshot();
    Rng rng(0xD1FFull);

    const std::uint64_t size = store.size();
    const std::uint32_t page = cfg.geom.pageSize;
    std::vector<std::uint8_t> buf;
    std::uint64_t host_writes = 0, host_reads = 0;
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = rng.chance(0.7) ? rng.below(size / 4)
                                          : rng.below(size);
        std::uint64_t len = rng.between(1, 2 * page);
        len = std::min<std::uint64_t>(len, size - addr);
        buf.resize(len);
        // The controller counts host accesses per page touched.
        const std::uint64_t pages_touched =
            (addr + len - 1) / page - addr / page + 1;
        if (rng.chance(0.8)) {
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            store.write(addr, buf);
            host_writes += pages_touched;
        } else {
            store.read(addr, buf);
            host_reads += pages_touched;
        }
    }

    const obs::MetricsSnapshot snap = store.metrics().snapshot();
    EXPECT_EQ(snap.counter("ctl.host_writes"), host_writes);
    EXPECT_EQ(snap.counter("ctl.host_reads"), host_reads);
    EXPECT_GT(snap.counter("cleaner.segments_cleaned"), 0u)
        << "churn too small to exercise the cleaner";
    expectMetricsMatchStats(store, snap);
    expectConservation(store, base, snap);

    // segments_cleaned vs the erase count: with wear rotation
    // effectively off (wearThreshold = 0 rotates through the reserve
    // only, which still erases once per clean... so measure by
    // *delta* against a second churn burst) the cleaner is the only
    // erase client.
    const std::uint64_t erases0 = recountErases(store.flash());
    const std::uint64_t cleaned0 =
        snap.counter("cleaner.segments_cleaned");
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.below(size / 4);
        buf.resize(page);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next());
        store.write(addr, buf);
    }
    const obs::MetricsSnapshot snap2 = store.metrics().snapshot();
    expectMetricsMatchStats(store, snap2);
    expectConservation(store, base, snap2);
    EXPECT_EQ(snap2.counter("cleaner.segments_cleaned") - cleaned0 +
                  2 * snap2.counterDelta(snap, "wear.rotations"),
              recountErases(store.flash()) - erases0)
        << "every erase is a clean (1 erase) or a rotation (2)";
}

TEST(ObsDifferential, TpcaMetricsMatchGroundTruth)
{
    EnvyConfig cfg = CrashExplorerConfig::tpcaStore();
    EnvyStore store(cfg);
    ShadowManager txns(store);

    TpcaDatabase::Params params;
    params.accounts = 200;
    params.accountsPerTeller = 50;
    params.tellersPerBranch = 2;
    params.recordBytes = cfg.geom.pageSize;
    TpcaDatabase db(store, params);

    Rng rng(0x7CA5ull);
    for (int i = 0; i < 600; ++i) {
        const std::uint64_t a = rng.below(db.accounts());
        const std::int64_t amount =
            static_cast<std::int64_t>(rng.between(1, 500)) - 250;
        db.runAtomic(txns, a, amount);
    }
    store.flushAll();

    const obs::MetricsSnapshot snap = store.metrics().snapshot();
    EXPECT_GT(snap.counter("ctl.host_writes"), 0u);
    expectMetricsMatchStats(store, snap);
    // Committed transactions release every shadow, so the same
    // conservation identities hold (shadow programs are cleaner /
    // flush programs like any other page write here: TpcaDatabase
    // writes records through the controller, shadows through the
    // transaction manager which appends + invalidates in pairs).
    ASSERT_EQ(countShadows(store.flash()), 0u);
    EXPECT_EQ(snap.counter("flash.programs"),
              snap.counter("flash.invalidations") +
                  recountLive(store.flash()));
    EXPECT_EQ(snap.counter("flash.erases"),
              recountErases(store.flash()));
}

TEST(ObsDifferential, PolicySimCostGaugeMatchesCounterDeltas)
{
    PolicySimParams p;
    p.numSegments = 32;
    p.pagesPerSegment = 256;
    p.utilization = 0.8;
    p.policy = PolicyKind::LocalityGathering;
    p.locality = LocalitySpec{0.5, 0.5};
    p.warmupChunks = 4;
    p.measureChunks = 2;
    const PolicySimResult r = runPolicySim(p);

    // The published gauge must equal the cost recomputed from the
    // windowed counter deltas of two *other* components' metrics.
    const std::uint64_t copied = r.finalMetrics.counterDelta(
        r.warmupMetrics, "cleaner.pages_copied");
    const std::uint64_t flushes = r.finalMetrics.counterDelta(
        r.warmupMetrics, "space.flushes");
    ASSERT_GT(flushes, 0u);
    EXPECT_DOUBLE_EQ(r.finalMetrics.gauge("sim.cleaning_cost"),
                     static_cast<double>(copied) /
                         static_cast<double>(flushes));
    EXPECT_DOUBLE_EQ(r.finalMetrics.gauge("sim.cleaning_cost"),
                     r.cleaningCost);
    EXPECT_EQ(r.finalMetrics.gauge("sim.measured_writes"),
              static_cast<double>(r.writes));
    EXPECT_EQ(r.finalMetrics.gauge("sim.measured_cleans"),
              static_cast<double>(r.cleans));
}

TEST(ObsDifferential, Fig06TableCellEqualsEmbeddedSnapshotGauge)
{
    // Exactly the smoke-mode sweep bench_fig06_cleaning_cost runs;
    // the bench prints ResultTable::num(gauge, 2), so table cell and
    // JSON metrics block agree if and only if this holds.
    for (const double u : {0.3, 0.8}) {
        PolicySimParams p;
        p.numSegments = 128;
        p.pagesPerSegment = 2048;
        p.utilization = u;
        p.policy = PolicyKind::LocalityGathering;
        p.locality = LocalitySpec{0.5, 0.5};
        p.warmupChunks = 4;
        p.measureChunks = 2;
        const PolicySimResult r = runPolicySim(p);
        EXPECT_EQ(
            ResultTable::num(r.finalMetrics.gauge("sim.cleaning_cost"),
                             2),
            ResultTable::num(r.cleaningCost, 2));
        EXPECT_DOUBLE_EQ(r.finalMetrics.gauge("sim.cleaning_cost"),
                         r.cleaningCost);
    }
}

TEST(ObsDifferential, SnapshotsIdenticalAcrossJobCounts)
{
    auto sweep = [](unsigned jobs) {
        std::vector<std::function<PolicySimResult()>> tasks;
        for (const double u : {0.3, 0.5, 0.8}) {
            tasks.push_back([u] {
                PolicySimParams p;
                p.numSegments = 32;
                p.pagesPerSegment = 256;
                p.utilization = u;
                p.policy = PolicyKind::Hybrid;
                p.warmupChunks = 4;
                p.measureChunks = 2;
                return runPolicySim(p);
            });
        }
        std::string all;
        for (const PolicySimResult &r :
             parallelMap<PolicySimResult>(jobs, std::move(tasks))) {
            all += r.warmupMetrics.toJson();
            all += r.finalMetrics.toJson();
        }
        return all;
    };

    const std::string serial = sweep(1);
    const std::string parallel4 = sweep(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel4);
}

} // namespace
} // namespace envy
