/**
 * @file
 * Tests for the §6 event-driven bank concurrency model.
 */

#include <gtest/gtest.h>

#include "envysim/bank_model.hh"

namespace envy {
namespace {

BankModelParams
base()
{
    BankModelParams p;
    p.numBanks = 8;
    p.pages = 2048;
    return p;
}

TEST(BankModel, SerialIssueMatchesProgramTime)
{
    BankModelParams p = base();
    p.issueDepth = 1;
    const auto r = runBankModel(p);
    // One at a time: every page costs a full program (plus the
    // transfer cycle hidden inside it).
    EXPECT_NEAR(r.effectivePageTimeNs, 4000.0, 150.0);
}

TEST(BankModel, PaperClaimFourToEightConcurrentOps)
{
    // §6: "with the cleaner executing 4 to 8 concurrent programming
    // operations, the average time to flush a page can drop from
    // 4us to less than 1us."
    for (const std::uint32_t depth : {4u, 8u}) {
        BankModelParams p = base();
        p.issueDepth = depth;
        const auto r = runBankModel(p);
        EXPECT_LT(r.effectivePageTimeNs, 1100.0)
            << "depth " << depth;
    }
    BankModelParams p8 = base();
    p8.issueDepth = 8;
    EXPECT_LT(runBankModel(p8).effectivePageTimeNs, 1000.0);
}

TEST(BankModel, MoreDepthNeverSlower)
{
    double prev = 1e18;
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
        BankModelParams p = base();
        p.issueDepth = depth;
        const double t = runBankModel(p).effectivePageTimeNs;
        EXPECT_LE(t, prev * 1.02) << "depth " << depth;
        prev = t;
    }
}

TEST(BankModel, DepthBeyondBanksHitsTheBankLimit)
{
    BankModelParams p = base();
    p.numBanks = 4;
    p.issueDepth = 64; // more outstanding ops than banks
    const auto r = runBankModel(p);
    // Bound: 4 banks of 4us programs -> >= 1us per page.
    EXPECT_GE(r.effectivePageTimeNs, 990.0);
    EXPECT_GT(r.avgBankUtilization, 0.9);
}

TEST(BankModel, BusIsNeverTheBottleneckAtTheseSizes)
{
    BankModelParams p = base();
    p.issueDepth = 8;
    const auto r = runBankModel(p);
    // 100ns transfer vs 4us program: bus utilization stays low.
    EXPECT_LT(r.busUtilization, 0.3);
}

TEST(BankModel, ErasesOverlapWithPrograms)
{
    // An erase parks one bank for 50ms; with concurrency the other
    // banks keep programming, so the makespan grows far less than
    // the serial sum of erase times.
    BankModelParams serial = base();
    serial.pages = 1024;
    serial.eraseEvery = 256;
    serial.issueDepth = 1;
    BankModelParams par = serial;
    par.issueDepth = 8;
    const auto rs = runBankModel(serial);
    const auto rp = runBankModel(par);
    EXPECT_LT(rp.makespan, rs.makespan / 2);
}

TEST(BankModel, Deterministic)
{
    BankModelParams p = base();
    p.issueDepth = 4;
    EXPECT_EQ(runBankModel(p).makespan, runBankModel(p).makespan);
}

} // namespace
} // namespace envy
