/**
 * @file
 * Geometry-parameterized property suite: the full store must satisfy
 * its invariants on *any* legal geometry, not just the two presets —
 * wide pages, tiny pages, many small segments, few huge ones, deep
 * and shallow chips.
 */

#include <gtest/gtest.h>

#include <vector>

#include "envy/envy_store.hh"
#include "sim/random.hh"

namespace envy {
namespace {

struct GeomCase
{
    const char *name;
    std::uint32_t pageSize;
    std::uint32_t blockBytes;
    std::uint32_t blocksPerChip;
    std::uint32_t numBanks;
    double utilization;
};

class GeometrySweep : public ::testing::TestWithParam<GeomCase>
{
  protected:
    EnvyConfig
    makeConfig() const
    {
        const GeomCase &c = GetParam();
        EnvyConfig cfg;
        cfg.geom.pageSize = c.pageSize;
        cfg.geom.blockBytes = c.blockBytes;
        cfg.geom.blocksPerChip = c.blocksPerChip;
        cfg.geom.numBanks = c.numBanks;
        cfg.geom.targetUtilization = c.utilization;
        cfg.geom.writeBufferPages = 16;
        cfg.partitionSize = 4;
        return cfg;
    }
};

TEST_P(GeometrySweep, GeometryIsLegal)
{
    EXPECT_EQ(makeConfig().geom.validate(), nullptr);
}

TEST_P(GeometrySweep, FuzzAgainstReference)
{
    EnvyConfig cfg = makeConfig();
    EnvyStore store(cfg);
    std::vector<std::uint8_t> ref(store.size(), 0);
    Rng rng(77);

    for (int op = 0; op < 8000; ++op) {
        const std::uint64_t len = rng.between(1, 32);
        const std::uint64_t addr = rng.below(store.size() - len);
        std::uint8_t buf[32];
        if (rng.chance(0.6)) {
            for (std::uint64_t i = 0; i < len; ++i) {
                buf[i] = static_cast<std::uint8_t>(rng.next());
                ref[addr + i] = buf[i];
            }
            store.write(addr, {buf, len});
        } else {
            store.read(addr, {buf, len});
            for (std::uint64_t i = 0; i < len; ++i)
                ASSERT_EQ(buf[i], ref[addr + i]);
        }
    }

    // Invariants after churn.
    store.flushAll();
    EXPECT_EQ(store.flash().totalLive(),
              cfg.geom.effectiveLogicalPages());
    EXPECT_EQ(store.flash().usedSlots(store.space().reserve()),
              PageCount(0));

    // Recovery works on every geometry.
    store.powerFailAndRecover();
    std::vector<std::uint8_t> buf(1024);
    for (std::uint64_t a = 0; a < store.size(); a += 4096) {
        const std::uint64_t n =
            std::min<std::uint64_t>(buf.size(), store.size() - a);
        store.read(a, {buf.data(), n});
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], ref[a + i]);
    }
}

TEST_P(GeometrySweep, MetadataOnlyChurn)
{
    EnvyConfig cfg = makeConfig();
    cfg.storeData = false;
    EnvyStore store(cfg);
    const std::uint32_t ps = cfg.geom.pageSize;
    Rng rng(5);
    for (int i = 0; i < 30000; ++i) {
        std::uint8_t b = 0;
        store.write(rng.below(store.size() / ps) * ps, {&b, 1});
    }
    EXPECT_GT(store.cleanerRef().statCleans.value(), 0u);
    EXPECT_LT(store.cleaningCost(), 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(
        // Wide pages, few big segments (paper-proportioned).
        GeomCase{"wide", 256, 1024, 4, 2, 0.8},
        // Narrow pages, many small segments.
        GeomCase{"narrow", 32, 512, 16, 4, 0.8},
        // Deep chips (many blocks), single-digit segments per bank.
        GeomCase{"deep", 64, 1024, 32, 1, 0.8},
        // Minimum legal segment count.
        GeomCase{"minimal", 64, 2048, 4, 1, 0.6},
        // Low utilization (cleaning nearly free).
        GeomCase{"roomy", 64, 1024, 8, 2, 0.4},
        // High utilization (cleaning expensive but legal).
        GeomCase{"tight", 64, 1024, 8, 2, 0.9}),
    [](const auto &param_info) { return param_info.param.name; });

} // namespace
} // namespace envy
