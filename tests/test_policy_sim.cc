/**
 * @file
 * Band tests for the §4 cleaning-cost experiments: the qualitative
 * results of Figures 6 and 8 must hold at reduced scale.
 */

#include <gtest/gtest.h>

#include "envysim/policy_sim.hh"

namespace envy {
namespace {

PolicySimParams
quick(PolicyKind kind, const char *locality)
{
    PolicySimParams p;
    p.numSegments = 32;
    p.pagesPerSegment = 1024;
    p.policy = kind;
    p.partitionSize = 4;
    p.locality = LocalitySpec::parse(locality);
    p.warmupChunks = 8;
    p.measureChunks = 3;
    return p;
}

TEST(PolicySim, UniformLocalityGatheringCostIsFour)
{
    // §4.3: under uniform access, locality gathering pins every
    // segment at the array utilization, so the cost is exactly
    // u/(1-u) — "a fixed cleaning cost of 4" at 80%.  The data
    // segments run slightly above the nominal utilization because
    // one segment is always the erased reserve.
    auto p = quick(PolicyKind::LocalityGathering, "50/50");
    const double u_eff = p.utilization *
                         static_cast<double>(p.numSegments) /
                         (p.numSegments - 1);
    const double expect = u_eff / (1.0 - u_eff);
    const auto r = runPolicySim(p);
    EXPECT_NEAR(r.cleaningCost, expect, expect * 0.12);
}

TEST(PolicySim, CostFollowsUtilizationCurve)
{
    // Fig 6: cost = u/(1-u).  Check two points on the curve.
    for (const double u : {0.5, 0.7}) {
        auto p = quick(PolicyKind::LocalityGathering, "50/50");
        p.utilization = u;
        const auto r = runPolicySim(p);
        const double u_eff =
            u * p.numSegments / (p.numSegments - 1.0);
        const double expect = u_eff / (1.0 - u_eff);
        EXPECT_NEAR(r.cleaningCost, expect, expect * 0.15 + 0.1)
            << "at utilization " << u;
    }
}

TEST(PolicySim, GreedyDegradesWithLocality)
{
    const auto uniform =
        runPolicySim(quick(PolicyKind::Greedy, "50/50"));
    auto hot = quick(PolicyKind::Greedy, "5/95");
    hot.warmupChunks = 24;
    const auto skewed = runPolicySim(hot);
    EXPECT_GT(skewed.cleaningCost, uniform.cleaningCost);
}

TEST(PolicySim, HybridBeatsGreedyAtHighLocality)
{
    auto g = quick(PolicyKind::Greedy, "5/95");
    g.warmupChunks = 24;
    auto h = quick(PolicyKind::Hybrid, "5/95");
    h.warmupChunks = 24;
    const auto greedy = runPolicySim(g);
    const auto hybrid = runPolicySim(h);
    EXPECT_LT(hybrid.cleaningCost, greedy.cleaningCost);
}

TEST(PolicySim, HybridNearGreedyAtUniform)
{
    // Fig 8: "the hybrid approach comes close to the performance of
    // the greedy algorithm for uniform access distributions."
    const auto greedy =
        runPolicySim(quick(PolicyKind::Greedy, "50/50"));
    const auto hybrid =
        runPolicySim(quick(PolicyKind::Hybrid, "50/50"));
    EXPECT_LT(hybrid.cleaningCost, greedy.cleaningCost + 1.0);
}

TEST(PolicySim, HybridBeatsPureLocalityGathering)
{
    // Fig 8: hybrid "consistently beats pure locality gathering."
    for (const char *loc : {"50/50", "10/90"}) {
        auto h = quick(PolicyKind::Hybrid, loc);
        auto l = quick(PolicyKind::LocalityGathering, loc);
        h.warmupChunks = l.warmupChunks = 16;
        EXPECT_LT(runPolicySim(h).cleaningCost,
                  runPolicySim(l).cleaningCost)
            << "at locality " << loc;
    }
}

TEST(PolicySim, ResultsAreDeterministic)
{
    const auto a = runPolicySim(quick(PolicyKind::Hybrid, "20/80"));
    const auto b = runPolicySim(quick(PolicyKind::Hybrid, "20/80"));
    EXPECT_DOUBLE_EQ(a.cleaningCost, b.cleaningCost);
    EXPECT_EQ(a.cleans, b.cleans);
}

TEST(PolicySim, HybridAdaptsToAMovingHotSet)
{
    // With the hot region drifting, costs rise but must stay sane:
    // the decaying write-rate tracker re-learns the new region
    // instead of pinning free space to the stale one.
    auto still = quick(PolicyKind::Hybrid, "5/95");
    auto moving = still;
    still.warmupChunks = moving.warmupChunks = 16;
    still.measureChunks = moving.measureChunks = 6;
    moving.shiftPerChunk = still.pagesPerSegment; // 1 segment/chunk
    const auto r_still = runPolicySim(still);
    const auto r_moving = runPolicySim(moving);
    EXPECT_GT(r_moving.cleaningCost, r_still.cleaningCost);
    EXPECT_LT(r_moving.cleaningCost, 8.0);
}

TEST(PolicySim, WearLevelingBoundsTheSpread)
{
    auto p = quick(PolicyKind::LocalityGathering, "5/95");
    p.wearThreshold = 8;
    p.warmupChunks = 24;
    const auto r = runPolicySim(p);
    EXPECT_GT(r.wearRotations, 0u);
    EXPECT_LT(r.wearSpread, 3 * 8 + 4);
}

} // namespace
} // namespace envy
