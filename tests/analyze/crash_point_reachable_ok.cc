// self-test-crash-inventory
// Near-miss fixture: crash points reached through a private helper,
// a virtual-looking policy hop, and a lambda body -- all fine.  No
// findings expected.

#include <cstdint>

namespace envy {

class Worker
{
  public:
    void relocate()
    {
        ENVY_CRASH_POINT("w.relocate.step");
    }
};

class Controller
{
  public:
    void flushOne() { doFlush(); }

  private:
    void doFlush()
    {
        auto hook = [this] { worker_.relocate(); };
        hook();
        ENVY_CRASH_POINT("ctl.fixture.done");
    }

    Worker worker_;
};

} // namespace envy
