// Near-miss fixture: the same calls arranged legally -- lock scopes
// closed before the syscall, member functions that merely *look*
// like syscalls, deferred lambda bodies, condition-variable waits.
// No findings expected.

#include <cstdint>

namespace envy {

class JournalishOk
{
  public:
    // The inner block releases the lock before the sync.
    void flushOutsideLock()
    {
        {
            MutexLock lock(mu_);
            dirty_ = false;
        }
        ::fdatasync(fd_);
    }

    // SramArray::write is a memory copy, not write(2): member calls
    // named read/write are not syscalls.
    void copyUnderLock()
    {
        MutexLock lock(mu_);
        sram_.write(0, staged_);
        count_ = sram_.read(0);
    }

    // A lambda built under the lock runs later, outside it.
    void armUnderLock()
    {
        MutexLock lock(mu_);
        callback_ = [this] { ::fdatasync(fd_); };
    }

    // cv_ is the cleaner doze cv: waiting on it with the scope open
    // is the contract (the doze mutex guards nothing else and sits
    // at the bottom of the lock order).
    void waitUnderLock()
    {
        MutexLock lock(mu_);
        while (busy_)
            cv_.wait(mu_);
    }

    // Same exemption for the backpressure cv in the controller.
    void dozeForRoom()
    {
        MutexLock wait(waitMu_);
        roomCv_.wait_for(wait, timeout_);
    }

    // Flash programming under the *structural* lock is the design:
    // ExclusiveLock is not a shard lock, so this is legal.
    void programUnderStructuralLock()
    {
        ExclusiveLock s(structMu_);
        flash_.appendPage(seg_, page_, staged_);
    }

    // The shard scope closes before the device op starts.
    void programAfterShardScope()
    {
        {
            ShardLock shard(shardMuFor(page_));
            dirty_ = false;
        }
        flash_.appendPage(seg_, page_, staged_);
    }

    // Submission with no lock held at all.
    void submitUnlocked() { runner_.submit(task_); }

    // journalMu_ is a journal *leaf* lock (docs/INTERNALS.md):
    // covering the append write and its fdatasync is the lock's
    // documented job, and nothing nests below it, so the blocking
    // syscall check stays silent.
    void appendUnderJournalLeafLock()
    {
        MutexLock lock(journalMu_);
        ::pwrite(fd_, staged_.data(), staged_.size(), off_);
        ::fdatasync(fd_);
    }

    // Same through std::lock_guard, the serial-store spelling.
    void syncUnderJournalLeafLock()
    {
        std::lock_guard<std::mutex> lock(journalMu_);
        ::fdatasync(fd_);
    }

    // The commit pipeline's epoch cvs: doneCv_ parks persistFlush()
    // callers on the pipeline's own leaf mutex until their epoch
    // lands, workCv_ wakes the epoch thread -- both exempt, like the
    // cleaner doze cvs.
    void waitForEpoch()
    {
        MutexLock lock(mu_);
        while (flushDone_ <= my_)
            doneCv_.wait(lock);
    }

    // The server's durable-ack commit queue follows the same classic
    // protocol on commitCv_.
    void waitForAcks()
    {
        MutexLock lock(mu_);
        while (!stopRequested_)
            commitCv_.wait(lock);
    }

  private:
    int fd_ = -1;
    bool dirty_ = false;
    bool busy_ = false;
    std::uint64_t count_ = 0;
};

} // namespace envy
