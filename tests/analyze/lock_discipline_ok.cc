// Near-miss fixture: the same calls arranged legally -- lock scopes
// closed before the syscall, member functions that merely *look*
// like syscalls, deferred lambda bodies, condition-variable waits.
// No findings expected.

#include <cstdint>

namespace envy {

class JournalishOk
{
  public:
    // The inner block releases the lock before the sync.
    void flushOutsideLock()
    {
        {
            MutexLock lock(mu_);
            dirty_ = false;
        }
        ::fdatasync(fd_);
    }

    // SramArray::write is a memory copy, not write(2): member calls
    // named read/write are not syscalls.
    void copyUnderLock()
    {
        MutexLock lock(mu_);
        sram_.write(0, staged_);
        count_ = sram_.read(0);
    }

    // A lambda built under the lock runs later, outside it.
    void armUnderLock()
    {
        MutexLock lock(mu_);
        callback_ = [this] { ::fdatasync(fd_); };
    }

    // Condition-variable waits release the lock by construction.
    void waitUnderLock()
    {
        MutexLock lock(mu_);
        while (busy_)
            cv_.wait(mu_);
    }

    // Submission with no lock held at all.
    void submitUnlocked() { runner_.submit(task_); }

  private:
    int fd_ = -1;
    bool dirty_ = false;
    bool busy_ = false;
    std::uint64_t count_ = 0;
};

} // namespace envy
