// Firing fixture: raw integer parameters named page/slot/seg in
// function definitions, in the spellings the old regex rule could
// not see (const, references, multi-line parameter lists).
//
// expect-finding: typed-id
// expect-finding: typed-id
// expect-finding: typed-id
// expect-finding: typed-id

#include <cstdint>

namespace envy {

class Mapper
{
  public:
    void lookup(std::uint32_t page) { last_ = page; }

    void scan(const std::uint64_t seg,
              std::size_t slot)
    {
        last_ = seg + slot;
    }

    void pin(std::uint32_t &page) { page = 0; }

  private:
    std::uint64_t last_ = 0;
};

} // namespace envy
