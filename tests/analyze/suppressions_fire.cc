// Firing fixture for the suppression machinery itself: an allow()
// that suppresses nothing and an allow() naming a rule that does not
// exist are both findings -- stale suppressions hide future bugs.
//
// expect-finding: unused-allow
// expect-finding: unused-allow

#include <cstdint>

namespace envy {

class Tidy
{
  public:
    // envy-analyze: allow(typed-id) nothing here actually fires
    void clean(LogicalPageId page) { last_ = page.value(); }

    // envy-analyze: allow(not-a-rule) typo'd rule id
    void other() { last_ = 0; }

  private:
    std::uint64_t last_ = 0;
};

} // namespace envy
