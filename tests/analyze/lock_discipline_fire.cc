// Firing fixture: blocking syscalls and a ParallelRunner submission
// inside a locked region.
//
// expect-finding: lock-discipline
// expect-finding: lock-discipline
// expect-finding: lock-discipline

#include <cstdint>

namespace envy {

class Journalish
{
  public:
    // fdatasync while holding the mutex: every other thread that
    // touches this lock now waits on the disk.
    void flushUnderLock()
    {
        MutexLock lock(mu_);
        dirty_ = false;
        ::fdatasync(fd_);
    }

    // Same for msync, via std::lock_guard.
    void syncUnderLock()
    {
        std::lock_guard<std::mutex> lock(stdMu_);
        msync(base_, len_, 4);
    }

    // Submitting to the runner can block on a full queue -- with the
    // lock held that is a lock-ordering accident waiting to happen.
    void submitUnderLock()
    {
        MutexLock lock(mu_);
        runner_.submit(task_);
    }

  private:
    int fd_ = -1;
    bool dirty_ = false;
};

} // namespace envy
