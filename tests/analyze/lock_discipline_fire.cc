// Firing fixture: blocking syscalls and a ParallelRunner submission
// inside a locked region, flash program/erase under a shard lock,
// and a condition-variable wait on a non-cleaner cv while locked.
//
// expect-finding: lock-discipline
// expect-finding: lock-discipline
// expect-finding: lock-discipline
// expect-finding: lock-discipline
// expect-finding: lock-discipline
// expect-finding: lock-discipline

#include <cstdint>

namespace envy {

class Journalish
{
  public:
    // fdatasync while holding the mutex: every other thread that
    // touches this lock now waits on the disk.
    void flushUnderLock()
    {
        MutexLock lock(mu_);
        dirty_ = false;
        ::fdatasync(fd_);
    }

    // Same for msync, via std::lock_guard.
    void syncUnderLock()
    {
        std::lock_guard<std::mutex> lock(stdMu_);
        msync(base_, len_, 4);
    }

    // Submitting to the runner can block on a full queue -- with the
    // lock held that is a lock-ordering accident waiting to happen.
    void submitUnderLock()
    {
        MutexLock lock(mu_);
        runner_.submit(task_);
    }

    // A shard lock serializes one page's host-facing translation;
    // programming the array under it stalls every writer hashing to
    // the same shard behind device latency (and inverts the lock
    // order against the structural lock).
    void programUnderShardLock()
    {
        ShardLock shard(shardMuFor(page_));
        flash_.appendPage(seg_, page_, staged_);
    }

    // Worse still for an erase: 50 ms of device time inside a shard
    // scope.
    void eraseUnderShardLock()
    {
        ShardLock shard(shardMuFor(page_));
        flash_.eraseSegment(victim_);
    }

    // Waiting on an arbitrary cv with a scope open parks the thread
    // with the lock's invariants half-established; only the cleaner
    // wakeup cvs (cv_, roomCv_), the serve cvs and the commit
    // pipeline's epoch cvs are exempt by contract.
    void waitOnForeignCv()
    {
        MutexLock lock(mu_);
        while (busy_)
            barrierCv_.wait_for(lock, timeout_);
    }

  private:
    int fd_ = -1;
    bool dirty_ = false;
};

} // namespace envy
