// self-test-crash-inventory
// Firing fixture: a crash point declared in a function no
// EnvyStore/Controller/ShadowManager entry point can reach, plus an
// inventory entry declared nowhere at all.
//
// inventory: ghost.never_declared
//
// expect-finding: crash-point-reachable
// expect-finding: crash-point-reachable

#include <cstdint>

namespace envy {

class Orphan
{
  public:
    // Nothing calls this: the explorer can never cut here, so the
    // coverage the inventory promises is a lie.
    void deadHelper()
    {
        ENVY_CRASH_POINT("orphan.dead.point");
    }
};

class Controller
{
  public:
    void flushOne() { ticks_ += 1; }

  private:
    std::uint64_t ticks_ = 0;
};

} // namespace envy
