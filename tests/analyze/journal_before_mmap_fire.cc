// Firing fixture: FlashMetaView mutators that reach the mapped
// store-file region on a path where no MetaJournal append happened.
// envy_analyze must flag both store writes below.
//
// expect-finding: journal-before-mmap
// expect-finding: journal-before-mmap
// expect-finding: journal-before-mmap

#include <cstdint>

namespace envy {
namespace persist {

class FlashMetaView
{
  public:
    // No barrier anywhere: the guarded early return does not help
    // the path that falls through to the write.
    void setWritePtr(SegmentId seg, std::uint32_t ptr)
    {
        if (!mapped_)
            return;
        storeU32(meta(seg).data(), ptr);
    }

    // Journaled on the fast path only: the analyzer joins the two
    // branches and sees the else path writing unjournaled.
    void setSpecFailed(SegmentId seg, bool fast)
    {
        if (fast)
            barrier();
        meta(seg)[4] = 1;
    }

  private:
    bool mapped_ = false;
};

class PersistBackend
{
  public:
    // Epoch pipeline ordered backwards: the mapping is poked BEFORE
    // the group flush lands, so a crash between the two leaves flash
    // metadata newer than the journal.
    void markThenEpochFlush(SegmentId seg)
    {
        meta(seg)[0] = 1;
        journal_.flush();
    }
};

} // namespace persist
} // namespace envy
