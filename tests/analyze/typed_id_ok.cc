// Near-miss fixture: strong id types, documented local-index names
// and an allow()ed legacy parameter.  No findings expected.

#include <cstdint>

namespace envy {

class MapperOk
{
  public:
    // Strong types are the point of the rule.
    void lookup(LogicalPageId page, SlotId slot, SegmentId seg)
    {
        last_ = page.value() + slot.value() + seg.value();
    }

    // The documented local-index names are not reserved.
    void scan(std::uint32_t page_off, std::uint32_t ring_slot,
              std::uint64_t segment_count)
    {
        last_ = page_off + ring_slot + segment_count;
    }

    // A suppressed occurrence: the allow() is consumed, so it is
    // neither a finding nor an unused-allow.
    void legacySweep(
        // envy-analyze: allow(typed-id) sweep index predates SlotId
        std::uint32_t slot)
    {
        last_ = slot;
    }

  private:
    std::uint64_t last_ = 0;
};

} // namespace envy
