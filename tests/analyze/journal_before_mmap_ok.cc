// Near-miss fixture: every FlashMetaView/PersistBackend path that
// reaches the mapping journals first, and the documented exemptions
// (BankBacking's bytes-before-map contract) stay silent.  No
// findings expected.

#include <cstdint>

namespace envy {
namespace persist {

class FlashMetaView
{
  public:
    // Early return BEFORE any store write is fine; the surviving
    // path barriers first.
    void setWritePtr(SegmentId seg, std::uint32_t ptr)
    {
        if (!mapped_)
            return;
        barrier();
        storeU32(meta(seg).data(), ptr);
    }

    // Both branches write, but the barrier dominates them.
    void setEither(SegmentId seg, bool wide)
    {
        barrier();
        if (wide)
            storeU64(meta(seg).data(), 1);
        else
            storeU32(meta(seg).data(), 1);
    }

  private:
    bool mapped_ = false;
};

class PersistBackend
{
  public:
    // checkpointNow() provably journals on every path, so calling it
    // counts as the journal append for finishFresh().
    void finishFresh()
    {
        checkpointNow();
        markValid();
    }

    // Epoch pipeline (PR 10): a group flush is a journal append, so
    // an epoch that flushes before the store-file sync touches the
    // mapping is barriered exactly like the serial opEnd() path.
    void epochFlushThenMark(SegmentId seg)
    {
        journal_.flush();
        meta(seg)[0] = 1;
    }

    // checkpointFromImage rewrites the journal wholesale -- also a
    // journal append for ordering purposes.
    void epochCheckpointThenMark(SegmentId seg)
    {
        journal_.checkpointFromImage(image_);
        meta(seg)[0] = 1;
    }

    // And syncOnly(), the pipeline's sync-epoch half.
    void epochSyncThenMark(SegmentId seg)
    {
        journal_.syncOnly();
        meta(seg)[0] = 1;
    }

    // epochFlush() itself joins the fixpoint like checkpointNow():
    // callers inside the class count it as the barrier.
    void epochThenMark(SegmentId seg)
    {
        epochFlush();
        meta(seg)[0] = 1;
    }

  private:
    void checkpointNow() { journal_.checkpoint(); }
    void epochFlush() { journal_.flush(); }
};

// Exempt by contract: the map byte and the cell bytes order each
// other; the journal is not part of this protocol.
class BankBacking
{
  public:
    void materialize(std::uint32_t block)
    {
        memset(blockData(block), 0xFF, blockSize_);
        setMapByte(block, 1);
    }

  private:
    std::uint64_t blockSize_ = 0;
};

} // namespace persist
} // namespace envy
