/**
 * @file
 * Tests for the fixed-size record tables (db/records.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "db/records.hh"

namespace envy {
namespace {

EnvyConfig
storeConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    return cfg;
}

TEST(RecordTable, Addressing)
{
    EnvyStore store(storeConfig());
    RecordTable t(store, 1000, 100, 50);
    EXPECT_EQ(t.addrOf(0), 1000u);
    EXPECT_EQ(t.addrOf(1), 1100u);
    EXPECT_EQ(t.regionBytes(), 5000u);
}

TEST(RecordTable, RecordRoundTrip)
{
    EnvyStore store(storeConfig());
    RecordTable t(store, 0, 100, 10);
    std::vector<std::uint8_t> rec(100);
    for (int i = 0; i < 100; ++i)
        rec[i] = static_cast<std::uint8_t>(i);
    t.writeRecord(3, rec);

    std::vector<std::uint8_t> back(100);
    t.readRecord(3, back);
    EXPECT_EQ(back, rec);
    // Neighbours untouched.
    t.readRecord(2, back);
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST(RecordTable, RecordsStraddlePageBoundaries)
{
    // 100-byte records in 64-byte pages (tiny geometry): every
    // record crosses at least one boundary — the memory-mapped
    // interface must not care.
    EnvyStore store(storeConfig());
    RecordTable t(store, 0, 100, 20);
    for (std::uint64_t id = 0; id < 20; ++id) {
        std::vector<std::uint8_t> rec(100,
                                      static_cast<std::uint8_t>(id));
        t.writeRecord(id, rec);
    }
    for (std::uint64_t id = 0; id < 20; ++id) {
        std::vector<std::uint8_t> back(100);
        t.readRecord(id, back);
        for (auto b : back)
            ASSERT_EQ(b, static_cast<std::uint8_t>(id));
    }
}

TEST(RecordTable, BalanceHelpers)
{
    EnvyStore store(storeConfig());
    RecordTable t(store, 0, 100, 5);
    t.setBalance(2, 1000);
    EXPECT_EQ(t.balance(2), 1000);
    t.addToBalance(2, -300);
    EXPECT_EQ(t.balance(2), 700);
    t.addToBalance(2, -1400);
    EXPECT_EQ(t.balance(2), -700); // negative balances are fine
}

TEST(RecordTableDeathTest, OutOfRangeIdPanics)
{
    EnvyStore store(storeConfig());
    RecordTable t(store, 0, 100, 5);
    EXPECT_DEATH(t.balance(5), "out of range");
}

TEST(RecordTableDeathTest, TableMustFitStore)
{
    EnvyStore store(storeConfig());
    EXPECT_DEATH(RecordTable(store, 0, 100, store.size()),
                 "fit");
}

} // namespace
} // namespace envy
