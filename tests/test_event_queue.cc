/**
 * @file
 * Tests for the discrete-event engine (sim/event_queue.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace envy {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenEmpty)
{
    EventQueue q;
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleIn(10, chain);
    };
    q.schedule(0, chain);
    q.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(1, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

} // namespace
} // namespace envy
