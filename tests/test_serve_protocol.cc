/**
 * @file
 * Protocol conformance for the envy-serve wire format
 * (serve/protocol.hh): round-trips for every opcode in both
 * directions, incremental decoding under arbitrary fragmentation,
 * typed errors for every malformed-frame class, and a seeded
 * mutation fuzz — a decoder fed corrupted or random bytes must
 * return FrameErrors, never crash (the sanitize CI job runs this
 * under ASan/UBSan).  Ends with end-to-end loopback runs against a
 * pump-mode server, so every opcode's server-side execution path is
 * covered without a single thread.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "serve/loopback.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/random.hh"

namespace envy {
namespace serve {
namespace {

Request
makeGet(std::uint64_t id, std::uint64_t key)
{
    Request req;
    req.op = Op::Get;
    req.requestId = id;
    req.key = key;
    return req;
}

Request
makePut(std::uint64_t id, std::uint64_t key, std::string value)
{
    Request req;
    req.op = Op::Put;
    req.requestId = id;
    req.key = key;
    req.value = std::move(value);
    return req;
}

/** Decode one request frame from @p bytes, which must hold exactly
 *  one valid frame. */
Request
decodeRequest(const std::vector<std::uint8_t> &bytes)
{
    FrameDecoder dec;
    dec.feed(bytes);
    auto frame = dec.next();
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(dec.error(), FrameError::None);
    EXPECT_EQ(dec.pending(), 0u);
    Request out;
    EXPECT_EQ(parseRequest(*frame, out), FrameError::None);
    return out;
}

Response
decodeResponse(const std::vector<std::uint8_t> &bytes)
{
    FrameDecoder dec;
    dec.feed(bytes);
    auto frame = dec.next();
    EXPECT_TRUE(frame.has_value());
    Response out;
    EXPECT_EQ(parseResponse(*frame, out), FrameError::None);
    return out;
}

TEST(ServeProtocol, GetRoundTrip)
{
    const Request in = makeGet(7, 0xDEADBEEFull);
    const Request out = decodeRequest(encodeRequest(in));
    EXPECT_EQ(out.op, Op::Get);
    EXPECT_EQ(out.requestId, 7u);
    EXPECT_EQ(out.key, 0xDEADBEEFull);
}

TEST(ServeProtocol, PutRoundTripIncludingEmptyValue)
{
    for (const std::string &v :
         {std::string(), std::string("hello"),
          std::string(1000, 'x')}) {
        const Request out =
            decodeRequest(encodeRequest(makePut(1, 42, v)));
        EXPECT_EQ(out.op, Op::Put);
        EXPECT_EQ(out.key, 42u);
        EXPECT_EQ(out.value, v);
    }
}

TEST(ServeProtocol, DelAndStatRoundTrip)
{
    Request del;
    del.op = Op::Del;
    del.requestId = 9;
    del.key = 5;
    EXPECT_EQ(decodeRequest(encodeRequest(del)).op, Op::Del);

    Request stat;
    stat.op = Op::Stat;
    stat.requestId = 10;
    EXPECT_EQ(decodeRequest(encodeRequest(stat)).op, Op::Stat);
}

TEST(ServeProtocol, BatchRoundTrip)
{
    Request req;
    req.op = Op::Batch;
    req.requestId = 11;
    req.ops.push_back({Op::Put, 1, "one"});
    req.ops.push_back({Op::Get, 2, ""});
    req.ops.push_back({Op::Del, 3, ""});
    const Request out = decodeRequest(encodeRequest(req));
    ASSERT_EQ(out.ops.size(), 3u);
    EXPECT_EQ(out.ops[0].op, Op::Put);
    EXPECT_EQ(out.ops[0].value, "one");
    EXPECT_EQ(out.ops[1].op, Op::Get);
    EXPECT_EQ(out.ops[2].key, 3u);
}

TEST(ServeProtocol, ResponseRoundTrips)
{
    Response resp;
    resp.op = Op::Get;
    resp.requestId = 3;
    resp.status = Status::Ok;
    resp.admission = Admission::Queued;
    resp.value = "payload";
    Response out = decodeResponse(encodeResponse(resp));
    EXPECT_EQ(out.op, Op::Get);
    EXPECT_EQ(out.status, Status::Ok);
    EXPECT_EQ(out.admission, Admission::Queued);
    EXPECT_EQ(out.value, "payload");

    Response batch;
    batch.op = Op::Batch;
    batch.requestId = 4;
    batch.status = Status::Ok;
    batch.ops.push_back({Status::Ok, "got"});
    batch.ops.push_back({Status::NotFound, ""});
    out = decodeResponse(encodeResponse(batch));
    ASSERT_EQ(out.ops.size(), 2u);
    EXPECT_EQ(out.ops[0].value, "got");
    EXPECT_EQ(out.ops[1].status, Status::NotFound);

    Response stat;
    stat.op = Op::Stat;
    stat.requestId = 5;
    stat.status = Status::Ok;
    stat.stats = {1, 2, 3, 4};
    out = decodeResponse(encodeResponse(stat));
    EXPECT_EQ(out.stats, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(ServeProtocol, DecoderHandlesArbitraryFragmentation)
{
    std::vector<std::uint8_t> bytes;
    for (std::uint64_t i = 0; i < 20; i++) {
        const auto one = encodeRequest(
            makePut(i, i * 3, std::string(i * 7, 'p')));
        bytes.insert(bytes.end(), one.begin(), one.end());
    }
    // Feed in every chunk size from 1 byte up; always 20 frames out.
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3},
                              std::size_t{17}, bytes.size()}) {
        FrameDecoder dec;
        std::size_t frames = 0;
        for (std::size_t off = 0; off < bytes.size(); off += chunk) {
            const std::size_t n =
                std::min(chunk, bytes.size() - off);
            dec.feed({bytes.data() + off, n});
            while (auto frame = dec.next()) {
                Request out;
                EXPECT_EQ(parseRequest(*frame, out),
                          FrameError::None);
                EXPECT_EQ(out.requestId, frames);
                frames++;
            }
        }
        EXPECT_EQ(frames, 20u);
        EXPECT_EQ(dec.error(), FrameError::None);
    }
}

TEST(ServeProtocol, TypedErrorsAndPoisoning)
{
    const auto good = encodeRequest(makeGet(1, 2));

    struct Case
    {
        std::size_t offset;
        std::uint8_t value;
        FrameError expect;
    };
    const Case cases[] = {
        {0, 0x00, FrameError::BadMagic},
        {2, 0x7F, FrameError::BadVersion},
        {15, 0xFF, FrameError::Oversized}, // payloadLen high byte
        {4, 0xAA, FrameError::BadChecksum}, // requestId flipped
    };
    for (const Case &c : cases) {
        auto bytes = good;
        bytes[c.offset] = c.value;
        FrameDecoder dec;
        dec.feed(bytes);
        EXPECT_FALSE(dec.next().has_value());
        EXPECT_EQ(dec.error(), c.expect);
        // Poisoned for good: valid bytes after the error stay dead.
        dec.feed(good);
        EXPECT_FALSE(dec.next().has_value());
        EXPECT_EQ(dec.error(), c.expect);
    }
}

TEST(ServeProtocol, BadOpcodeAndBadPayload)
{
    // Unknown opcode survives framing (checksum is over the real
    // bytes) and fails at parse time.
    Request req = makeGet(1, 2);
    auto bytes = encodeRequest(req);
    // Rebuild with a hostile opcode by re-encoding manually: flip
    // the opcode and fix the checksum through the decoder's eyes by
    // computing a fresh frame.  Easiest correct route: craft via
    // encode then patch opcode + recompute checksum.
    bytes[3] = 0x7F;
    // Zero the stored checksum, recompute over patched bytes.
    bytes[16] = bytes[17] = bytes[18] = bytes[19] = 0;
    const std::uint32_t sum = fnv1a({bytes.data(), bytes.size()});
    bytes[16] = static_cast<std::uint8_t>(sum);
    bytes[17] = static_cast<std::uint8_t>(sum >> 8);
    bytes[18] = static_cast<std::uint8_t>(sum >> 16);
    bytes[19] = static_cast<std::uint8_t>(sum >> 24);
    FrameDecoder dec;
    dec.feed(bytes);
    auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    Request out;
    EXPECT_EQ(parseRequest(*frame, out), FrameError::BadOpcode);

    // A Get whose payload is one byte short of a key: truncate the
    // payload but keep the header honest about it.
    Request getreq = makeGet(3, 4);
    auto gb = encodeRequest(getreq);
    gb.resize(gb.size() - 1);
    gb[12] = 7; // payloadLen 7 < 8
    gb[16] = gb[17] = gb[18] = gb[19] = 0;
    const std::uint32_t sum2 = fnv1a({gb.data(), gb.size()});
    gb[16] = static_cast<std::uint8_t>(sum2);
    gb[17] = static_cast<std::uint8_t>(sum2 >> 8);
    gb[18] = static_cast<std::uint8_t>(sum2 >> 16);
    gb[19] = static_cast<std::uint8_t>(sum2 >> 24);
    FrameDecoder dec2;
    dec2.feed(gb);
    auto frame2 = dec2.next();
    ASSERT_TRUE(frame2.has_value());
    EXPECT_EQ(parseRequest(*frame2, out), FrameError::BadPayload);
}

TEST(ServeProtocol, SeededMutationFuzzNeverCrashes)
{
    Rng rng(0xF00D);
    std::size_t decoded = 0, rejected = 0;
    for (int round = 0; round < 2000; round++) {
        // Build a small stream of valid frames...
        std::vector<std::uint8_t> bytes;
        const int frames = static_cast<int>(rng.between(1, 3));
        for (int f = 0; f < frames; f++) {
            Request req;
            switch (rng.below(5)) {
              case 0:
                req = makeGet(rng.next(), rng.next());
                break;
              case 1:
                req = makePut(rng.next(), rng.next(),
                              std::string(rng.below(200), 'v'));
                break;
              case 2:
                req.op = Op::Del;
                req.key = rng.next();
                break;
              case 3:
                req.op = Op::Stat;
                break;
              default: {
                req.op = Op::Batch;
                const std::uint64_t n = rng.between(1, 5);
                for (std::uint64_t i = 0; i < n; i++) {
                    SubOp sub;
                    sub.op = rng.chance(0.5) ? Op::Get : Op::Put;
                    sub.key = rng.next();
                    if (sub.op == Op::Put)
                        sub.value.assign(rng.below(50), 's');
                    req.ops.push_back(sub);
                }
                break;
              }
            }
            const auto one = encodeRequest(req);
            bytes.insert(bytes.end(), one.begin(), one.end());
        }
        // ...then corrupt a few bytes (or none) and decode it all.
        const std::uint64_t flips = rng.below(4);
        for (std::uint64_t i = 0; i < flips; i++)
            bytes[rng.below(bytes.size())] =
                static_cast<std::uint8_t>(rng.next());
        FrameDecoder dec;
        dec.feed(bytes);
        while (auto frame = dec.next()) {
            Request out;
            const FrameError err = parseRequest(*frame, out);
            if (err == FrameError::None)
                decoded++;
            else
                rejected++;
        }
        if (dec.error() != FrameError::None)
            rejected++;
    }
    // The fuzz must exercise both the accept and the reject path.
    EXPECT_GT(decoded, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(ServeProtocol, PureRandomBytesNeverCrash)
{
    Rng rng(0xBEEF);
    for (int round = 0; round < 500; round++) {
        std::vector<std::uint8_t> bytes(rng.below(400) + 1);
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.next());
        FrameDecoder dec;
        dec.feed(bytes);
        while (auto frame = dec.next()) {
            Request r;
            Response p;
            parseRequest(*frame, r);
            parseResponse(*frame, p);
        }
    }
}

TEST(ServeProtocol, OversizedValueRejectedAtEncodeBoundary)
{
    // Values above kMaxValueBytes never make it onto the wire as a
    // parseable Put: the payload parser rejects them.
    Request req = makePut(1, 2, std::string(kMaxValueBytes + 1, 'x'));
    const auto bytes = encodeRequest(req);
    FrameDecoder dec;
    dec.feed(bytes);
    auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    Request out;
    EXPECT_EQ(parseRequest(*frame, out), FrameError::BadPayload);
}

// ---- end to end over the loopback, pump mode ----------------------

struct PumpRig
{
    PumpRig()
        : store(config()), engine(store, engineConfig()),
          server(store, engine, serveConfig())
    {
        LoopbackPair pair = loopbackPair();
        server.attach(std::move(pair.server));
        client.emplace(std::move(pair.client));
    }

    static EnvyConfig
    config()
    {
        EnvyConfig cfg;
        cfg.geom = Geometry::tiny();
        cfg.geom.writeBufferPages = 32;
        return cfg;
    }
    static KvEngineConfig
    engineConfig()
    {
        KvEngineConfig cfg;
        cfg.numShards = 4;
        return cfg;
    }
    static ServeConfig
    serveConfig()
    {
        ServeConfig cfg;
        cfg.workers = 0;
        return cfg;
    }

    Response
    call(std::uint64_t id)
    {
        server.pump();
        Response resp;
        EXPECT_TRUE(client->recv(resp, false));
        EXPECT_EQ(resp.requestId, id);
        return resp;
    }

    EnvyStore store;
    KvEngine engine;
    Server server;
    std::optional<KvClient> client;
};

TEST(ServeLoopback, GetPutDelEndToEnd)
{
    PumpRig rig;
    Response resp = rig.call(rig.client->sendGet(1));
    EXPECT_EQ(resp.status, Status::NotFound);

    resp = rig.call(rig.client->sendPut(1, "value-1"));
    EXPECT_EQ(resp.status, Status::Ok);

    resp = rig.call(rig.client->sendGet(1));
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.value, "value-1");

    resp = rig.call(rig.client->sendDel(1));
    EXPECT_EQ(resp.status, Status::Ok);
    resp = rig.call(rig.client->sendDel(1));
    EXPECT_EQ(resp.status, Status::NotFound);

    resp = rig.call(rig.client->sendGet(1));
    EXPECT_EQ(resp.status, Status::NotFound);

    // Tombstone resurrect.
    resp = rig.call(rig.client->sendPut(1, "value-2"));
    EXPECT_EQ(resp.status, Status::Ok);
    resp = rig.call(rig.client->sendGet(1));
    EXPECT_EQ(resp.value, "value-2");
}

TEST(ServeLoopback, BatchAndStatEndToEnd)
{
    PumpRig rig;
    std::vector<SubOp> ops;
    ops.push_back({Op::Put, 10, "ten"});
    ops.push_back({Op::Put, 11, "eleven"});
    ops.push_back({Op::Get, 10, ""});
    ops.push_back({Op::Get, 999, ""});
    ops.push_back({Op::Del, 11, ""});
    Response resp = rig.call(rig.client->sendBatch(ops));
    EXPECT_EQ(resp.status, Status::Ok);
    ASSERT_EQ(resp.ops.size(), 5u);
    EXPECT_EQ(resp.ops[0].status, Status::Ok);
    EXPECT_EQ(resp.ops[2].status, Status::Ok);
    EXPECT_EQ(resp.ops[2].value, "ten");
    EXPECT_EQ(resp.ops[3].status, Status::NotFound);
    EXPECT_EQ(resp.ops[4].status, Status::Ok);

    resp = rig.call(rig.client->sendStat());
    EXPECT_EQ(resp.status, Status::Ok);
    ASSERT_EQ(resp.stats.size(),
              static_cast<std::size_t>(StatField::NumFields));
    EXPECT_EQ(resp.stats[static_cast<std::size_t>(StatField::Keys)],
              1u); // key 10 lives, key 11 deleted
    EXPECT_EQ(resp.stats[static_cast<std::size_t>(
                  StatField::BatchOps)],
              5u);
}

TEST(ServeLoopback, OversizedPutGetsTooLarge)
{
    PumpRig rig;
    // Larger than the engine's 100-byte slot but wire-legal.
    Response resp =
        rig.call(rig.client->sendPut(5, std::string(500, 'x')));
    EXPECT_EQ(resp.status, Status::TooLarge);
}

TEST(ServeLoopback, MalformedFrameTearsConnectionDown)
{
    PumpRig rig;
    const std::vector<std::uint8_t> garbage = {0x00, 0x01, 0x02,
                                               0x03, 0x04};
    rig.client->stream().write(garbage);
    rig.server.pump();
    const auto snap = rig.store.metrics().snapshot();
    EXPECT_EQ(snap.counter("serve.protocol_errors"), 1u);
    // The stream is closed server-side; the client sees EOF.
    Response resp;
    EXPECT_FALSE(rig.client->recv(resp, true));
}

TEST(ServeLoopback, PipelinedRequestsAllAcked)
{
    PumpRig rig;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 100; i++)
        ids.push_back(
            rig.client->sendPut(i, "v" + std::to_string(i)));
    rig.server.pump();
    std::map<std::uint64_t, Status> acks;
    Response resp;
    while (rig.client->recv(resp, false))
        acks[resp.requestId] = resp.status;
    EXPECT_EQ(acks.size(), ids.size());
    for (const std::uint64_t id : ids)
        EXPECT_EQ(acks[id], Status::Ok);
}

} // namespace
} // namespace serve
} // namespace envy
