/**
 * @file
 * Fault-injection subsystem: slot retirement from program
 * spec-failures (§5.1 status check), flush retries, transient bad
 * blocks, and recovery from power loss inside the wear-leveler's
 * segment swap and a shadow-transaction commit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "envy/envy_store.hh"
#include "faults/fault_injector.hh"
#include "faults/invariant_checker.hh"
#include "sim/random.hh"
#include "txn/shadow.hh"

namespace envy {
namespace {

/** Tiny store: 8 segments of 128 64-byte pages, plenty of slack. */
EnvyConfig
tinyStore()
{
    EnvyConfig cfg;
    cfg.geom.pageSize = 64;
    cfg.geom.blockBytes = 128;
    cfg.geom.blocksPerChip = 4;
    cfg.geom.numBanks = 2;
    cfg.geom.logicalPages = 640;
    cfg.geom.writeBufferPages = 16;
    cfg.partitionSize = 4;
    return cfg;
}

Geometry
tinyGeom()
{
    return tinyStore().geom;
}

// ---- slot retirement at the flash level --------------------------

TEST(Faults, ProgramSpecFailureRetiresTheSlotAndRetries)
{
    FlashArray flash(tinyGeom(), FlashTiming{}, true);
    const SegmentId seg{0};
    std::vector<std::uint8_t> data(flash.geom().pageSize, 0xAB);

    // Fail exactly the first program attempt.
    int calls = 0;
    flash.programFaultHook = [&](SegmentId, SlotId) {
        return ++calls == 1;
    };

    const auto r1 = flash.tryAppendPage(seg, LogicalPageId(7), data);
    EXPECT_TRUE(r1.failed);
    EXPECT_TRUE(flash.slotRetired(FlashPageAddr{seg, SlotId(0)}));
    EXPECT_EQ(flash.retiredCount(seg), PageCount(1));
    EXPECT_EQ(flash.statSlotsRetired.value(), 1u);
    EXPECT_EQ(flash.statProgramSpecFailures.value(), 1u);

    // The retry lands in the next slot and the data is intact.
    const auto r2 = flash.tryAppendPage(seg, LogicalPageId(7), data);
    ASSERT_FALSE(r2.failed);
    EXPECT_EQ(r2.addr.slot, SlotId(1));
    std::vector<std::uint8_t> got(flash.geom().pageSize);
    flash.readPage(r2.addr, got);
    EXPECT_EQ(got, data);

    // live + invalid + free + retired always covers the segment.
    EXPECT_EQ(flash.liveCount(seg) + flash.invalidCount(seg) +
                  flash.freeSlots(seg) + flash.retiredCount(seg),
              flash.pagesPerSegment());
}

TEST(Faults, RetirementSurvivesEraseAndIsSkippedAfterwards)
{
    FlashArray flash(tinyGeom(), FlashTiming{}, false);
    const SegmentId seg{3};

    flash.programFaultHook = [&](SegmentId, SlotId slot) {
        return slot == SlotId(0); // kill physical slot 0 for good
    };
    const auto fail = flash.tryAppendPage(seg, LogicalPageId(1));
    EXPECT_TRUE(fail.failed);
    const auto ok = flash.tryAppendPage(seg, LogicalPageId(1));
    ASSERT_FALSE(ok.failed);
    flash.programFaultHook = nullptr;

    flash.invalidatePage(ok.addr);
    flash.eraseSegment(seg);

    // The damage is physical: the slot is still retired, and the
    // next append skips straight over it.
    EXPECT_TRUE(flash.slotRetired(FlashPageAddr{seg, SlotId(0)}));
    EXPECT_EQ(flash.retiredCount(seg), PageCount(1));
    EXPECT_EQ(flash.freeSlots(seg), flash.pagesPerSegment() - PageCount(1));
    const auto after = flash.tryAppendPage(seg, LogicalPageId(2));
    ASSERT_FALSE(after.failed);
    EXPECT_EQ(after.addr.slot, SlotId(1));
}

TEST(Faults, SpecFailuresAreVisibleInTheStatusRegisters)
{
    FlashArray flash(tinyGeom(), FlashTiming{}, false);
    const SegmentId seg{5};
    EXPECT_FALSE(flash.segmentSpecFailed(seg));
    EXPECT_TRUE(flash.specFailedSegments().empty());

    flash.programFaultHook = [&](SegmentId, SlotId) {
        return true;
    };
    (void)flash.tryAppendPage(seg, LogicalPageId(1));
    flash.programFaultHook = nullptr;

    EXPECT_TRUE(flash.segmentSpecFailed(seg));
    const auto failed = flash.specFailedSegments();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], seg);
}

TEST(Faults, TransientEraseFailureRetriesAndIsCounted)
{
    FlashArray flash(tinyGeom(), FlashTiming{}, false);
    const SegmentId seg{2};
    const auto a = flash.appendPage(seg, LogicalPageId(9));
    flash.invalidatePage(a);

    int failures = 2;
    flash.eraseFaultHook = [&](SegmentId) { return failures-- > 0; };
    flash.eraseSegment(seg);
    flash.eraseFaultHook = nullptr;

    EXPECT_EQ(flash.statEraseRetries.value(), 2u);
    // Each attempt burns a real erase cycle.
    EXPECT_EQ(flash.eraseCycles(seg), 3u);
    EXPECT_EQ(flash.freeSlots(seg), flash.pagesPerSegment());
}

// ---- the controller's flush path ---------------------------------

TEST(Faults, FlushRetriesPastSpecFailureWithoutLosingData)
{
    EnvyStore store(tinyStore());

    FaultPlan plan;
    plan.failProgramOps = {2, 5}; // two flush programs spec-fail
    FaultInjector inj(plan);
    inj.arm();
    inj.attachFlash(store.flash());

    // Write enough distinct pages to push the buffer through many
    // flushes, crossing both failing program ordinals.
    const std::uint32_t page = store.config().geom.pageSize;
    for (std::uint64_t p = 0; p < 64; ++p)
        store.writeU64(p * page, 0xFEED0000ull + p);
    inj.disarm();

    EXPECT_EQ(inj.programFailuresInjected(), 2u);
    EXPECT_EQ(store.controller().statFlushRetries.value(), 2u);
    EXPECT_EQ(store.flash().statSlotsRetired.value(), 2u);
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_EQ(store.readU64(p * page), 0xFEED0000ull + p);

    const auto rep = InvariantChecker::check(store);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.retiredSlots, 2u);
}

// ---- power loss inside the wear-leveler's segment swap -----------

TEST(Faults, RecoveryFinishesAnInterruptedWearRotation)
{
    const char *points[] = {
        "wear.rotate.begin",
        "wear.rotate.after_first_move",
        "wear.rotate.after_first_erase",
        "wear.rotate.after_second_move",
        "wear.rotate.after_second_erase",
        "wear.rotate.after_commit",
    };
    for (const char *point : points) {
        EnvyConfig cfg = tinyStore();
        cfg.wearThreshold = 0; // rotate at the slightest imbalance
        EnvyStore store(cfg);
        std::vector<std::uint8_t> ref(store.size(), 0);
        Rng rng(23);

        FaultPlan plan;
        plan.crashPoint = point;
        FaultInjector inj(plan);
        inj.arm();

        bool crashed = false;
        for (int op = 0; op < 20000 && !crashed; ++op) {
            const std::uint64_t addr = rng.below(store.size() - 8);
            const std::uint64_t v = rng.next();
            std::uint8_t buf[8];
            for (int i = 0; i < 8; ++i) {
                buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
                ref[addr + i] = buf[i];
            }
            try {
                store.write(addr, buf);
            } catch (const PowerLoss &) {
                crashed = true;
            }
        }
        ASSERT_TRUE(crashed) << "no rotation reached " << point;
        inj.disarm();

        const RecoveryReport rep = store.powerFailAndRecover();
        EXPECT_TRUE(rep.wearResumed) << point;
        EXPECT_EQ(store.space().wearRecord().stage, 0u) << point;

        const auto inv = InvariantChecker::check(store);
        EXPECT_TRUE(inv.ok()) << point << ": " << inv.summary();

        std::vector<std::uint8_t> got(store.size());
        store.read(0, got);
        EXPECT_EQ(got, ref) << "data lost crashing at " << point;
    }
}

// ---- power loss inside a shadow-transaction commit ---------------

TEST(Faults, CrashDuringTxnCommitKeepsTheNewValues)
{
    EnvyStore store(tinyStore());
    ShadowManager txns(store);
    const std::uint32_t page = store.config().geom.pageSize;

    store.writeU64(0 * page, 1);
    store.writeU64(3 * page, 2);
    // Push both pages out of the write buffer: only flash copies are
    // pinned as shadows, and only those take the mid-release path.
    for (std::uint64_t p = 100; p < 120; ++p)
        store.writeU64(p * page, p);

    const auto id = txns.begin();
    std::uint8_t buf[8] = {0x11, 0, 0, 0, 0, 0, 0, 0};
    txns.write(id, 0 * page, buf);
    buf[0] = 0x22;
    txns.write(id, 3 * page, buf);

    // Commit releases the pinned shadows one by one; the power
    // failure lands between the two releases.
    FaultPlan plan;
    plan.crashPoint = "txn.commit.mid_release";
    FaultInjector inj(plan);
    inj.arm();
    EXPECT_THROW(txns.commit(id), PowerLoss);
    inj.disarm();
    txns.powerLost();

    store.powerFailAndRecover();

    // The page table made the writes durable long before commit();
    // the sweep only had leftover shadows to reclaim.
    EXPECT_EQ(store.readU64(0 * page), 0x11u);
    EXPECT_EQ(store.readU64(3 * page), 0x22u);

    InvariantChecker::Options opts;
    opts.expectNoShadows = true;
    const auto inv = InvariantChecker::check(store, opts);
    EXPECT_TRUE(inv.ok()) << inv.summary();

    // The store keeps working.
    store.writeU64(7 * page, 3);
    EXPECT_EQ(store.readU64(7 * page), 3u);
}

TEST(Faults, CrashDuringTxnAbortLeavesEachPagePreOrPost)
{
    EnvyStore store(tinyStore());
    ShadowManager txns(store);
    const std::uint32_t page = store.config().geom.pageSize;

    store.writeU64(1 * page, 100);
    store.writeU64(4 * page, 200);

    const auto id = txns.begin();
    std::uint8_t buf[8] = {0x33, 0, 0, 0, 0, 0, 0, 0};
    txns.write(id, 1 * page, buf);
    buf[0] = 0x44;
    txns.write(id, 4 * page, buf);

    FaultPlan plan;
    plan.crashPoint = "txn.abort.mid_restore";
    FaultInjector inj(plan);
    inj.arm();
    EXPECT_THROW(txns.abort(id), PowerLoss);
    inj.disarm();
    txns.powerLost();

    store.powerFailAndRecover();

    // Each touched page independently rolled back or kept the
    // transaction's value; no third state exists.
    const std::uint64_t a = store.readU64(1 * page);
    const std::uint64_t b = store.readU64(4 * page);
    EXPECT_TRUE(a == 100u || a == 0x33u) << a;
    EXPECT_TRUE(b == 200u || b == 0x44u) << b;

    InvariantChecker::Options opts;
    opts.expectNoShadows = true;
    const auto inv = InvariantChecker::check(store, opts);
    EXPECT_TRUE(inv.ok()) << inv.summary();
}

// ---- injector plumbing -------------------------------------------

TEST(Faults, InjectorIsDeterministicForAGivenPlan)
{
    auto runOnce = [](std::map<std::string, std::uint64_t> &hits,
                      std::uint64_t &program_failures) {
        EnvyStore store(tinyStore());
        FaultPlan plan;
        plan.seed = 77;
        plan.programFailureRate = 0.01;
        FaultInjector inj(plan);
        inj.arm();
        inj.attachFlash(store.flash());
        Rng rng(5);
        for (int op = 0; op < 2000; ++op) {
            store.writeU32(rng.below(store.size() - 4),
                           static_cast<std::uint32_t>(rng.next()));
        }
        inj.disarm();
        hits = inj.hitCounts();
        program_failures = inj.programFailuresInjected();
    };

    std::map<std::string, std::uint64_t> h1, h2;
    std::uint64_t f1 = 0, f2 = 0;
    runOnce(h1, f1);
    runOnce(h2, f2);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(f1, f2);
    EXPECT_FALSE(h1.empty());
}

TEST(Faults, DisarmRestoresThePreviousSink)
{
    FaultInjector outer(FaultPlan{});
    outer.arm();
    {
        FaultInjector inner(FaultPlan{});
        inner.arm();
        EXPECT_EQ(crash_points::currentSink(), &inner);
        inner.disarm();
    }
    EXPECT_EQ(crash_points::currentSink(), &outer);
    outer.disarm();
    EXPECT_EQ(crash_points::currentSink(), nullptr);
}

TEST(Faults, EveryCanonicalCrashPointIsRegisteredAtStartup)
{
    const auto points = crash_points::allPoints();
    EXPECT_GE(points.size(), 27u);
    const char *expect[] = {
        "ctl.cow.after_push", "ctl.flush.after_program_failure",
        "cleaner.relocate.done", "cleaner.clean.before_erase",
        "cleaner.shadow.after_program", "wear.rotate.after_first_move",
        "txn.commit.mid_release", "txn.abort.mid_restore",
    };
    for (const char *p : expect) {
        EXPECT_TRUE(std::find(points.begin(), points.end(), p) !=
                    points.end())
            << p << " is not registered";
    }
}

} // namespace
} // namespace envy
