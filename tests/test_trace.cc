/**
 * @file
 * Structured event tracing: the ENVY_TRACE macro, ring-buffer
 * wraparound, JSONL escaping, thread-local sink isolation and the
 * compiled-out configuration (this file still builds and links
 * against the sinks when ENVY_OBS_NO_TRACE is defined — CI has a
 * -DENVY_TRACE=OFF job that proves it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_util.hh"
#include "obs/trace.hh"

namespace envy {
namespace obs {
namespace {

/** Emit through the real macro so the registrar + guard run too. */
void
emitOne([[maybe_unused]] std::uint64_t n)
{
    ENVY_TRACE("test.trace.one", tv("n", n), tv("flag", true),
               tv("who", "unit-test"));
}

#ifndef ENVY_OBS_NO_TRACE

TEST(Trace, MacroDeliversTypedFieldsToTheSink)
{
    RingBufferSink ring(8);
    trace::ScopedTraceSink scope(&ring);
    emitOne(7);

    const std::vector<StoredTraceEvent> events = ring.events();
    ASSERT_EQ(events.size(), 1u);
    const StoredTraceEvent &e = events[0];
    EXPECT_EQ(e.name, "test.trace.one");
    EXPECT_EQ(e.seq, 1u);
    EXPECT_EQ(e.num("n"), 7u);
    EXPECT_EQ(e.num("flag"), 1u);
    EXPECT_EQ(e.text("who"), "unit-test");
    EXPECT_TRUE(e.has("n"));
    EXPECT_FALSE(e.has("missing"));
}

TEST(Trace, NoSinkMeansNoEmissionAndNoFieldEvaluation)
{
    ASSERT_EQ(trace::currentTraceSink(), nullptr);
    bool evaluated = false;
    auto touch = [&]() -> std::uint64_t {
        evaluated = true;
        return 1;
    };
    ENVY_TRACE("test.trace.lazy", tv("n", touch()));
    EXPECT_FALSE(evaluated);

    RingBufferSink ring(4);
    {
        trace::ScopedTraceSink scope(&ring);
        ENVY_TRACE("test.trace.lazy", tv("n", touch()));
    }
    EXPECT_TRUE(evaluated);
    EXPECT_EQ(ring.totalEvents(), 1u);
}

TEST(Trace, RingBufferKeepsTheMostRecentEvents)
{
    RingBufferSink ring(3);
    trace::ScopedTraceSink scope(&ring);
    for (std::uint64_t i = 1; i <= 10; ++i)
        emitOne(i);

    EXPECT_EQ(ring.totalEvents(), 10u);
    const std::vector<StoredTraceEvent> events = ring.events();
    ASSERT_EQ(events.size(), 3u); // wrapped: only the last three
    EXPECT_EQ(events[0].num("n"), 8u);
    EXPECT_EQ(events[1].num("n"), 9u);
    EXPECT_EQ(events[2].num("n"), 10u);

    ring.clear();
    EXPECT_TRUE(ring.events().empty());
}

TEST(Trace, SequenceNumbersAreMonotonicPerThread)
{
    RingBufferSink ring(8);
    trace::ScopedTraceSink scope(&ring);
    emitOne(1);
    emitOne(2);
    const std::vector<StoredTraceEvent> events = ring.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].seq, events[0].seq + 1);
}

TEST(Trace, SinksAreThreadLocal)
{
    RingBufferSink mine(8);
    trace::ScopedTraceSink scope(&mine);

    // A worker thread starts with NO sink — its events vanish rather
    // than interleaving into ours (the parallel determinism contract).
    std::uint64_t other_total = ~0ull;
    std::thread worker([&] {
        EXPECT_EQ(trace::currentTraceSink(), nullptr);
        emitOne(99);
        RingBufferSink theirs(4);
        trace::ScopedTraceSink inner(&theirs);
        emitOne(1);
        other_total = theirs.totalEvents();
    });
    worker.join();

    EXPECT_EQ(other_total, 1u);
    EXPECT_EQ(mine.totalEvents(), 0u);
}

TEST(Trace, ScopedSinkRestoresThePreviousSink)
{
    RingBufferSink outer(4);
    trace::ScopedTraceSink a(&outer);
    {
        RingBufferSink inner(4);
        trace::ScopedTraceSink b(&inner);
        emitOne(1);
        EXPECT_EQ(inner.totalEvents(), 1u);
    }
    emitOne(2);
    EXPECT_EQ(outer.totalEvents(), 1u);
    EXPECT_EQ(outer.events()[0].num("n"), 2u);
}

TEST(Trace, JsonlFileSinkWritesOneEscapedObjectPerLine)
{
    const std::string path =
        testing::TempDir() + "trace_jsonl_test.jsonl";
    {
        JsonlFileSink sink(path);
        trace::ScopedTraceSink scope(&sink);
        ENVY_TRACE("test.trace.jsonl", tv("n", 5),
                   tv("s", "quote\" slash\\ tab\t"));
        emitOne(6);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line1, line2, extra;
    ASSERT_TRUE(std::getline(in, line1));
    ASSERT_TRUE(std::getline(in, line2));
    EXPECT_FALSE(std::getline(in, extra));

    EXPECT_EQ(line1,
              "{\"seq\":1,\"event\":\"test.trace.jsonl\",\"n\":5,"
              "\"s\":\"quote\\\" slash\\\\ tab\\t\"}");
    EXPECT_NE(line2.find("\"event\":\"test.trace.one\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, EventNamesAreRegisteredOnFirstHit)
{
    // The macro's static Registrar has run by now (emitOne above in
    // this process, but be self-contained: hit it once with no sink).
    emitOne(0);
    const std::vector<std::string> names = trace::allEvents();
    EXPECT_NE(std::find(names.begin(), names.end(),
                        std::string("test.trace.one")),
              names.end());
    // The canonical inventory is pre-registered even before any hit.
    EXPECT_NE(std::find(names.begin(), names.end(),
                        std::string("cleaner.clean.start")),
              names.end());
}

#else // ENVY_OBS_NO_TRACE

TEST(Trace, CompiledOutMacroEmitsNothingButSinksStillLink)
{
    RingBufferSink ring(4);
    trace::ScopedTraceSink scope(&ring);
    bool evaluated = false;
    [[maybe_unused]] auto touch = [&]() -> std::uint64_t {
        evaluated = true;
        return 1;
    };
    ENVY_TRACE("test.trace.compiled_out", tv("n", touch()));
    emitOne(1);
    EXPECT_FALSE(evaluated);
    EXPECT_EQ(ring.totalEvents(), 0u);
}

#endif // ENVY_OBS_NO_TRACE

TEST(Trace, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string{'a', '\x01', 'b'}), "a\\u0001b");
}

} // namespace
} // namespace obs
} // namespace envy
