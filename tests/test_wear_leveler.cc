/**
 * @file
 * Tests for wear leveling (§4.3): when the erase-cycle spread between
 * the oldest and youngest segments exceeds the threshold (100 in the
 * paper), their data is rotated through the reserve.
 */

#include <gtest/gtest.h>

#include "envy/cleaner.hh"
#include "envy/envy_store.hh"
#include "envy/wear_leveler.hh"
#include "sim/random.hh"

namespace envy {
namespace {

TEST(WearLeveler, NoRotationBelowThreshold)
{
    FlashArray flash(Geometry::tiny(), FlashTiming{}, false);
    SramArray sram(
        PageTable::bytesNeeded(flash.geom().physicalPages().value()) +
        SegmentSpace::bytesNeeded(flash.numSegments()).value());
    PageTable table(sram, 0, flash.geom().physicalPages().value());
    Mmu mmu(table, 64);
    SegmentSpace space(
        flash, sram,
        PageTable::bytesNeeded(
            flash.geom().physicalPages().value()));
    WearLeveler wear(10);
    Cleaner cleaner(space, mmu, &wear);

    EXPECT_EQ(wear.spread(space), 0u);
    EXPECT_FALSE(wear.maybeRotate(space, cleaner));
}

TEST(WearLeveler, RotatesWhenSpreadExceedsThreshold)
{
    FlashArray flash(Geometry::tiny(), FlashTiming{}, false);
    SramArray sram(
        PageTable::bytesNeeded(flash.geom().physicalPages().value()) +
        SegmentSpace::bytesNeeded(flash.numSegments()).value());
    PageTable table(sram, 0, flash.geom().physicalPages().value());
    Mmu mmu(table, 64);
    SegmentSpace space(
        flash, sram,
        PageTable::bytesNeeded(
            flash.geom().physicalPages().value()));
    WearLeveler wear(5);
    Cleaner cleaner(space, mmu, &wear);

    // Put a page into segment 0 (the "hot" data) and age its
    // physical segment far past the threshold.
    const FlashPageAddr a =
        flash.appendPage(space.physOf(0), LogicalPageId(42));
    mmu.mapToFlash(LogicalPageId(42), a);
    // Put data in the youngest-candidate segment too.
    const FlashPageAddr b =
        flash.appendPage(space.physOf(5), LogicalPageId(43));
    mmu.mapToFlash(LogicalPageId(43), b);

    const SegmentId worn = space.physOf(0);
    for (int i = 0; i < 7; ++i) {
        // Age by erase/refill cycles.
        flash.invalidatePage(
            {worn, SlotId(static_cast<std::uint32_t>(
                              flash.usedSlots(worn).value() - 1))});
        flash.eraseSegment(worn);
        flash.appendPage(worn, LogicalPageId(42));
    }
    mmu.mapToFlash(LogicalPageId(42), {worn, SlotId(0)});
    EXPECT_GT(wear.spread(space), 5u);

    EXPECT_TRUE(wear.maybeRotate(space, cleaner));
    EXPECT_EQ(wear.statRotations.value(), 1u);

    // Logical segment 0 no longer lives on the worn segment.
    EXPECT_NE(space.physOf(0), worn);
    // Data still reachable.
    const auto loc42 = table.lookup(LogicalPageId(42));
    ASSERT_EQ(loc42.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(flash.pageOwner(loc42.flash), LogicalPageId(42));
    const auto loc43 = table.lookup(LogicalPageId(43));
    EXPECT_EQ(flash.pageOwner(loc43.flash), LogicalPageId(43));
    // Spread reduced or at least bounded; rotation happened through
    // the reserve, which must be erased again.
    EXPECT_EQ(flash.usedSlots(space.reserve()), PageCount(0));
}

TEST(WearLeveler, EndToEndSpreadStaysBounded)
{
    // Hammer a tiny hot set through the full store with a tight
    // wear threshold; the spread must stay in the same ballpark as
    // the threshold instead of growing with the write count.
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 16;
    cfg.storeData = false;
    cfg.policy = PolicyKind::LocalityGathering;
    // Sequential placement puts the whole hot set in segment 0, the
    // worst case for wear.
    cfg.placement = Controller::Placement::Sequential;
    cfg.wearThreshold = 6;
    EnvyStore store(cfg);

    const std::uint32_t ps = cfg.geom.pageSize;
    Rng rng(5);
    for (int i = 0; i < 300000; ++i) {
        // 95% of writes to 16 pages.
        const std::uint64_t page =
            rng.chance(0.95) ? rng.below(16)
                             : rng.below(store.size() / ps);
        std::uint8_t b = 0;
        store.controller().write(page * ps, {&b, 1});
    }

    EXPECT_GT(store.wearLeveler().statRotations.value(), 0u);
    EXPECT_LT(store.wearLeveler().spread(store.space()),
              3 * cfg.wearThreshold + 4);
}

} // namespace
} // namespace envy
