/**
 * @file
 * Tests for the functional TPC-A database on the eNVy store:
 * the per-branch balance invariant must survive arbitrary
 * transaction mixes, cleaning churn and power failure.
 */

#include <gtest/gtest.h>

#include "db/tpca_db.hh"
#include "sim/random.hh"

namespace envy {
namespace {

EnvyConfig
dbConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 64;
    cfg.prePopulate = true;
    return cfg;
}

TpcaDatabase::Params
smallDb()
{
    TpcaDatabase::Params p;
    p.accounts = 2000;
    p.accountsPerTeller = 100;
    p.tellersPerBranch = 4;
    return p;
}

TEST(TpcaDb, RatiosFollowTheConfig)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    EXPECT_EQ(db.accounts(), 2000u);
    EXPECT_EQ(db.tellers(), 20u);
    EXPECT_EQ(db.branches(), 5u);
}

TEST(TpcaDb, FreshDatabaseIsConsistent)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    EXPECT_TRUE(db.consistent());
    EXPECT_EQ(db.accountBalance(0), 1000);
    EXPECT_EQ(db.branchBalance(0), 0);
}

TEST(TpcaDb, SingleTransactionMovesAllThreeBalances)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    db.run(250, 75); // account 250 -> teller 2 -> branch 0
    EXPECT_EQ(db.accountBalance(250), 1075);
    EXPECT_EQ(db.tellerBalance(2), 75);
    EXPECT_EQ(db.branchBalance(0), 75);
    EXPECT_TRUE(db.consistent());
}

TEST(TpcaDb, ThousandsOfTransactionsStayConsistent)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    Rng rng(31);
    for (int i = 0; i < 20000; ++i) {
        db.run(rng.below(db.accounts()),
               static_cast<std::int64_t>(rng.between(1, 500)) - 250);
    }
    // The churn must have exercised the cleaner.
    EXPECT_GT(store.cleanerRef().statCleans.value(), 0u);
    EXPECT_TRUE(db.consistent());
}

TEST(TpcaDb, SurvivesPowerFailureMidWorkload)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    Rng rng(37);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3000; ++i)
            db.run(rng.below(db.accounts()), 10);
        store.powerFailAndRecover();
        EXPECT_TRUE(db.consistent());
    }
}

TEST(TpcaDb, AtomicTransactionsCommit)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    ShadowManager txns(store);
    db.runAtomic(txns, 100, 500);
    EXPECT_EQ(db.accountBalance(100), 1500);
    EXPECT_TRUE(db.consistent());
    EXPECT_EQ(txns.activeTransactions(), 0u);
}

TEST(TpcaDb, AbortedTransactionLeavesNoTrace)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    ShadowManager txns(store);
    // Abort after updating the account but not teller/branch — the
    // classic torn TPC-A update.
    db.runAtomic(txns, 100, 500, 1);
    EXPECT_EQ(db.accountBalance(100), 1000);
    EXPECT_EQ(db.tellerBalance(1), 0);
    EXPECT_TRUE(db.consistent());
}

TEST(TpcaDb, MixedAtomicAndFailingTransactions)
{
    EnvyStore store(dbConfig());
    TpcaDatabase db(store, smallDb());
    ShadowManager txns(store);
    Rng rng(41);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t acct = rng.below(db.accounts());
        const int fail = rng.chance(0.2)
                             ? static_cast<int>(rng.below(3))
                             : -1;
        db.runAtomic(txns, acct, 25, fail);
    }
    EXPECT_TRUE(db.consistent());
    EXPECT_EQ(txns.shadowCount(), 0u);
}

} // namespace
} // namespace envy
