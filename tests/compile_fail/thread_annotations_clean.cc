// Positive control for the try_compile harness in
// tests/CMakeLists.txt: correctly-locked code that MUST compile
// under -Wthread-safety -Werror=thread-safety-analysis.  If this
// fails, the negative test next door proves nothing.

#include <cstdint>

#include "common/thread_annotations.hh"

namespace {

class Guarded
{
  public:
    void add(std::uint64_t n)
    {
        envy::MutexLock lock(mu_);
        addLocked(n);
    }

    std::uint64_t value() const
    {
        envy::MutexLock lock(mu_);
        return value_;
    }

  private:
    void addLocked(std::uint64_t n) ENVY_REQUIRES(mu_)
    {
        value_ += n;
    }

    mutable envy::Mutex mu_;
    std::uint64_t value_ ENVY_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Guarded g;
    g.add(1);
    return g.value() == 1 ? 0 : 1;
}
