// Negative fixture for the try_compile harness in
// tests/CMakeLists.txt: reads and writes a guarded member with no
// lock held.  Under clang -Wthread-safety
// -Werror=thread-safety-analysis this MUST NOT compile; if it ever
// does, the repo-wide annotations have stopped being enforced.

#include <cstdint>

#include "common/thread_annotations.hh"

namespace {

class Broken
{
  public:
    // Unlocked access to a guarded member: the whole point.
    void add(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    mutable envy::Mutex mu_;
    std::uint64_t value_ ENVY_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Broken b;
    b.add(1);
    return b.value() == 1 ? 0 : 1;
}
