/**
 * @file
 * The crash-point explorer itself: exhaustive coverage of every
 * registered crash point on a tiny store, reproducibility from one
 * seed, and the TPC-A atomic-transaction workload.
 */

#include <gtest/gtest.h>

#include <string>

#include "envysim/crash_explorer.hh"

namespace envy {
namespace {

/**
 * The exploration config the coverage and reproducibility tests
 * share.  Tuned (deterministically) so the probe run reaches all
 * five crash-point classes: COW, flush (including the spec-failure
 * retry), cleaning + shadow relocation, wear rotation, and both
 * transaction paths.
 */
CrashExplorerConfig
coveringConfig()
{
    CrashExplorerConfig cfg;
    cfg.seed = 1;
    cfg.opsPerCase = 300;
    cfg.failProgramOps = {40, 90, 140, 190};
    cfg.failEraseOps = {3, 9};
    return cfg;
}

TEST(CrashExplorer, ExhaustiveRunCoversEveryPointAndAllPass)
{
    CrashExplorerConfig cfg = coveringConfig();
    cfg.maxCasesPerPoint = 0; // every occurrence of every point

    CrashPointExplorer explorer(cfg);
    const CrashExplorerResult res = explorer.run();

    // The workload reaches every registered crash point...
    EXPECT_TRUE(res.pointsNeverHit.empty())
        << "unreached: " << res.pointsNeverHit.front();

    // ...including at least one in each class.
    const char *classes[] = {
        "ctl.cow.after_push",
        "ctl.flush.after_program_failure",
        "cleaner.relocate.done",
        "cleaner.shadow.after_program",
        "wear.rotate.after_first_move",
        "txn.commit.mid_release",
        "txn.abort.mid_restore",
    };
    for (const char *p : classes)
        EXPECT_GT(res.probeHits.count(p), 0u) << p;

    // One case per occurrence, and every one of them recovered with
    // all invariants and all data intact.
    std::uint64_t total = 0;
    for (const auto &[point, hits] : res.probeHits)
        total += hits;
    EXPECT_EQ(res.cases.size(), total);
    EXPECT_GT(res.cases.size(), 1000u);
    EXPECT_TRUE(res.allPassed()) << res.firstFailure();
}

TEST(CrashExplorer, SampledRunIsReproducibleFromTheSeed)
{
    CrashExplorerConfig cfg = coveringConfig();
    cfg.maxCasesPerPoint = 2;

    CrashPointExplorer a(cfg);
    CrashPointExplorer b(cfg);
    const CrashExplorerResult ra = a.run();
    const CrashExplorerResult rb = b.run();

    EXPECT_EQ(ra.probeHits, rb.probeHits);
    EXPECT_EQ(ra.pointsNeverHit, rb.pointsNeverHit);
    EXPECT_EQ(ra.failures, rb.failures);
    ASSERT_EQ(ra.cases.size(), rb.cases.size());
    for (std::size_t i = 0; i < ra.cases.size(); ++i) {
        const CrashCaseResult &ca = ra.cases[i];
        const CrashCaseResult &cb = rb.cases[i];
        EXPECT_EQ(ca.point, cb.point);
        EXPECT_EQ(ca.occurrence, cb.occurrence);
        EXPECT_EQ(ca.crashed, cb.crashed);
        EXPECT_EQ(ca.violations, cb.violations);
        EXPECT_EQ(ca.recovery.staleFlashReclaimed,
                  cb.recovery.staleFlashReclaimed);
        EXPECT_EQ(ca.recovery.shadowsSwept, cb.recovery.shadowsSwept);
        EXPECT_EQ(ca.recovery.bufferEntriesKept,
                  cb.recovery.bufferEntriesKept);
        EXPECT_EQ(ca.recovery.cleanResumed, cb.recovery.cleanResumed);
        EXPECT_EQ(ca.recovery.wearResumed, cb.recovery.wearResumed);
    }
    EXPECT_TRUE(ra.allPassed()) << ra.firstFailure();
}

TEST(CrashExplorer, SingleCaseIsRepeatable)
{
    CrashExplorerConfig cfg = coveringConfig();
    CrashPointExplorer explorer(cfg);
    const CrashCaseResult a =
        explorer.runCase("cleaner.relocate.after_program", 17);
    const CrashCaseResult b =
        explorer.runCase("cleaner.relocate.after_program", 17);
    EXPECT_TRUE(a.crashed);
    EXPECT_TRUE(a.ok()) << a.violations.front();
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.recovery.staleFlashReclaimed,
              b.recovery.staleFlashReclaimed);
}

TEST(CrashExplorer, MetricsStayConsistentThroughCrashAndRecovery)
{
    // runCase itself cross-checks the post-recovery metrics against
    // the RecoveryReport and the injector (any disagreement is a
    // violation), so a clean sampled run doubles as a registry
    // consistency sweep across every crash point.
    CrashExplorerConfig cfg = coveringConfig();
    cfg.maxCasesPerPoint = 2;
    CrashPointExplorer explorer(cfg);
    const CrashExplorerResult res = explorer.run();
    EXPECT_TRUE(res.allPassed()) << res.firstFailure();

    for (const CrashCaseResult &c : res.cases) {
        ASSERT_FALSE(c.metricsAfter.entries.empty());
        EXPECT_EQ(c.metricsAfter.counter("recovery.runs"), 1u);
        EXPECT_EQ(c.metricsAfter.counter("recovery.pages_repaired"),
                  c.recovery.staleFlashReclaimed +
                      c.recovery.shadowsSwept +
                      c.recovery.bufferOrphansDropped);
        EXPECT_EQ(c.metricsAfter.counter("fault.power_losses"), 1u);
    }
}

TEST(CrashExplorer, RecoveryCountersAccumulateAcrossRepeatedCrashes)
{
    // Recovery re-registers its counters on every run (registration
    // is idempotent): crashing the SAME store repeatedly must append
    // to the same cells, summing the individual reports.
    EnvyConfig cfg = CrashExplorerConfig::churnStore();
    EnvyStore store(cfg);
    Rng rng(11);
    std::vector<std::uint8_t> data(cfg.geom.pageSize);

    std::uint64_t stale = 0, kept = 0;
    for (int round = 1; round <= 3; ++round) {
        for (int i = 0; i < 200; ++i) {
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            store.write(rng.below(store.size() - data.size()), data);
        }
        const RecoveryReport rep = store.powerFailAndRecover();
        stale += rep.staleFlashReclaimed;
        kept += rep.bufferEntriesKept;

        const obs::MetricsSnapshot snap = store.metrics().snapshot();
        EXPECT_EQ(snap.counter("recovery.runs"),
                  static_cast<std::uint64_t>(round));
        EXPECT_EQ(snap.counter("recovery.stale_reclaimed"), stale);
        EXPECT_EQ(snap.counter("recovery.buffer_kept"), kept);
    }
}

TEST(CrashExplorer, TpcaTransactionsAreAtomicAcrossCrashes)
{
    CrashExplorerConfig cfg;
    cfg.seed = 7;
    cfg.workload = CrashExplorerConfig::Workload::Tpca;
    cfg.store = CrashExplorerConfig::tpcaStore();
    cfg.opsPerCase = 120;
    cfg.maxCasesPerPoint = 2;
    cfg.failProgramOps = {40, 90};

    CrashPointExplorer explorer(cfg);
    const CrashExplorerResult res = explorer.run();

    // TPC-A commits every transaction, so the abort and shadow-
    // relocation points stay cold; everything it reaches must pass.
    EXPECT_GT(res.probeHits.count("txn.commit.mid_release"), 0u);
    EXPECT_GT(res.probeHits.count("cleaner.relocate.done"), 0u);
    EXPECT_GT(res.probeHits.count("wear.rotate.begin"), 0u);
    EXPECT_GT(res.cases.size(), 20u);
    EXPECT_TRUE(res.allPassed()) << res.firstFailure();
}

} // namespace
} // namespace envy
