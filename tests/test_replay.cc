/**
 * @file
 * Tests for trace replay (envysim/replay.hh).
 */

#include <gtest/gtest.h>

#include "envysim/replay.hh"
#include "workload/bimodal.hh"
#include "workload/tpca.hh"

namespace envy {
namespace {

EnvyConfig
replayConfig(PolicyKind policy)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    cfg.storeData = false;
    cfg.policy = policy;
    cfg.partitionSize = 4;
    // Sequential placement: traces address a loaded database, not a
    // shuffled one (see DESIGN.md on placement).
    cfg.placement = Controller::Placement::Sequential;
    return cfg;
}

Trace
bimodalTrace(const char *locality, std::uint64_t writes)
{
    // One write per 64-byte page (the tiny geometry's page size) so
    // the locality structure lands in the store unscrambled.
    Trace t;
    BimodalWriteWorkload w(16384, LocalitySpec::parse(locality), 9);
    for (std::uint64_t i = 0; i < writes; ++i)
        t.append(w.nextPage().value() * 64, 4, true);
    return t;
}

TEST(Replay, CountsMatchTheTrace)
{
    Trace t;
    t.append(0, 4, true);
    t.append(4, 4, false);
    t.append(8, 4, false);
    EnvyStore store(replayConfig(PolicyKind::Hybrid));
    const ReplayResult r = replayTrace(store, t);
    EXPECT_EQ(r.writes, 1u);
    EXPECT_EQ(r.reads, 2u);
}

TEST(Replay, DrivesCleaningOnWriteHeavyTraces)
{
    const Trace t = bimodalTrace("50/50", 60000);
    EnvyStore store(replayConfig(PolicyKind::Hybrid));
    const ReplayResult r = replayTrace(store, t);
    EXPECT_GT(r.cows, 0u);
    EXPECT_GT(r.flushes, 0u);
    EXPECT_GT(r.cleans, 0u);
    EXPECT_GT(r.cleaningCost, 0.0);
}

TEST(Replay, WrapsAddressesBeyondTheStore)
{
    Trace t;
    t.append(1ull << 40, 4, true); // far beyond a tiny store
    EnvyStore store(replayConfig(PolicyKind::Hybrid));
    const ReplayResult r = replayTrace(store, t);
    EXPECT_EQ(r.writes, 1u);
}

TEST(Replay, SameTraceComparesPoliciesApplesToApples)
{
    // The whole point of replay: one byte stream, two
    // configurations, comparable costs.  At high locality the
    // hybrid policy must beat greedy on the identical trace.
    const Trace t = bimodalTrace("5/95", 400000);

    EnvyStore greedy(replayConfig(PolicyKind::Greedy));
    EnvyStore hybrid(replayConfig(PolicyKind::Hybrid));
    const ReplayResult rg = replayTrace(greedy, t);
    const ReplayResult rh = replayTrace(hybrid, t);

    ASSERT_GT(rg.cleans, 0u);
    ASSERT_GT(rh.cleans, 0u);
    EXPECT_LT(rh.cleaningCost, rg.cleaningCost);
}

TEST(Replay, DeterministicAcrossRuns)
{
    const Trace t = bimodalTrace("20/80", 30000);
    EnvyStore a(replayConfig(PolicyKind::Hybrid));
    EnvyStore b(replayConfig(PolicyKind::Hybrid));
    const ReplayResult ra = replayTrace(a, t);
    const ReplayResult rb = replayTrace(b, t);
    EXPECT_EQ(ra.cows, rb.cows);
    EXPECT_EQ(ra.flushes, rb.flushes);
    EXPECT_EQ(ra.cleans, rb.cleans);
    EXPECT_DOUBLE_EQ(ra.cleaningCost, rb.cleaningCost);
}

TEST(Replay, TpcaTraceThroughTheFunctionalPath)
{
    Trace t;
    TpcaConfig cfg;
    cfg.numAccounts = 50000;
    TpcaWorkload w(cfg, 4);
    std::vector<StorageAccess> txn;
    for (int i = 0; i < 3000; ++i) {
        w.nextTransaction(txn);
        for (const auto &a : txn)
            t.append(a);
    }

    EnvyStore store(replayConfig(PolicyKind::Hybrid));
    const ReplayResult r = replayTrace(store, t);
    EXPECT_EQ(r.reads + r.writes, t.size());
    // Teller/branch coalescing: far fewer flushes than writes.
    EXPECT_LT(r.flushes, r.writes / 2);
}

} // namespace
} // namespace envy
