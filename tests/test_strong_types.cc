/**
 * @file
 * Compile-time proof that the strong id/count types do not
 * interconvert, plus runtime checks on the crash-point registry.
 *
 * The static_asserts are the real test: if any of them stops holding
 * this file no longer compiles, which is exactly the regression the
 * types exist to prevent (`SlotId s = pageId;` must never build).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <type_traits>

#include "common/types.hh"
#include "common/units.hh"
#include "faults/crash_point.hh"

namespace envy {
namespace {

// ---- id families never interconvert ------------------------------

static_assert(!std::is_constructible_v<SlotId, LogicalPageId>,
              "a logical page number must not become a slot");
static_assert(!std::is_constructible_v<LogicalPageId, SlotId>,
              "a slot must not become a logical page number");
static_assert(!std::is_constructible_v<SegmentId, LogicalPageId>,
              "a logical page number must not become a segment");
static_assert(!std::is_constructible_v<SegmentId, SlotId>,
              "a slot must not become a segment");
static_assert(!std::is_constructible_v<BufferSlotId, SlotId>,
              "a flash slot must not become a buffer slot");
static_assert(!std::is_constructible_v<SlotId, BufferSlotId>,
              "a buffer slot must not become a flash slot");
static_assert(!std::is_constructible_v<BankId, SegmentId>,
              "a segment must not become a bank");
static_assert(!std::is_constructible_v<PartitionId, SegmentId>,
              "a segment must not become a partition");

static_assert(!std::is_convertible_v<LogicalPageId, SlotId>);
static_assert(!std::is_convertible_v<SlotId, LogicalPageId>);
static_assert(!std::is_convertible_v<SegmentId, BankId>);
static_assert(!std::is_convertible_v<BufferSlotId, SlotId>);

static_assert(!std::is_assignable_v<SlotId &, LogicalPageId>,
              "SlotId s; s = pageId; must not compile");
static_assert(!std::is_assignable_v<LogicalPageId &, SegmentId>);
static_assert(!std::is_assignable_v<BufferSlotId &, SlotId>);

// ---- raw integers convert only explicitly ------------------------

static_assert(!std::is_convertible_v<std::uint64_t, LogicalPageId>,
              "raw integers must not implicitly become ids");
static_assert(!std::is_convertible_v<std::uint32_t, SlotId>);
static_assert(std::is_constructible_v<LogicalPageId, std::uint64_t>,
              "explicit construction from the representation stays");
static_assert(std::is_constructible_v<SlotId, std::uint32_t>);
static_assert(!std::is_convertible_v<LogicalPageId, std::uint64_t>,
              "ids must not silently decay to integers");

// ---- counts of different units never mix -------------------------

static_assert(!std::is_constructible_v<ByteCount, PageCount>,
              "pages are not bytes without a page size");
static_assert(!std::is_constructible_v<PageCount, ByteCount>);
static_assert(!std::is_convertible_v<PageCount, ByteCount>);
static_assert(!std::is_assignable_v<ByteCount &, PageCount>);
static_assert(!std::is_convertible_v<std::uint64_t, PageCount>);

// ---- typed arithmetic only where meaningful ----------------------

static_assert(LogicalPageId(5) + PageCount(3) == LogicalPageId(8));
static_assert(LogicalPageId(8) - LogicalPageId(5) == PageCount(3));
static_assert(PageCount(2) + PageCount(3) == PageCount(5));
static_assert(SlotId(1) < SlotId(2));
static_assert(!LogicalPageId::invalid().valid());
static_assert(LogicalPageId().value() ==
              std::numeric_limits<std::uint64_t>::max());
static_assert(PageCount().value() == 0, "counts default to zero");

TEST(StrongTypes, InvalidIdPrintsReadably)
{
    std::ostringstream os;
    os << LogicalPageId::invalid() << " " << LogicalPageId(7);
    EXPECT_EQ(os.str(), "<invalid> 7");
}

TEST(StrongTypes, FlashPageAddrEqualityAndValidity)
{
    const FlashPageAddr a{SegmentId(3), SlotId(9)};
    const FlashPageAddr b{SegmentId(3), SlotId(9)};
    const FlashPageAddr c{SegmentId(3), SlotId(10)};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(FlashPageAddr{}.valid());
}

TEST(StrongTypes, HashDistinguishesValues)
{
    const std::hash<LogicalPageId> h;
    EXPECT_NE(h(LogicalPageId(1)), h(LogicalPageId(2)));
    EXPECT_EQ(h(LogicalPageId(1)), h(LogicalPageId(1)));
}

// ---- crash-point registry ----------------------------------------

TEST(CrashPointRegistry, HasNoDuplicateNames)
{
    const auto points = crash_points::allPoints();
    const std::set<std::string> unique(points.begin(), points.end());
    EXPECT_EQ(unique.size(), points.size())
        << "allPoints() returned a duplicated crash-point name";
}

TEST(CrashPointRegistry, NamesFollowTheDottedConvention)
{
    // component.operation.moment, all lowercase.
    for (const auto &name : crash_points::allPoints()) {
        const auto dots =
            std::count(name.begin(), name.end(), '.');
        EXPECT_EQ(dots, 2) << name;
        for (const char c : name) {
            EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '.' || c == '_')
                << name;
        }
    }
}

} // namespace
} // namespace envy
