/**
 * @file
 * Tests for the FlashArray page/segment bookkeeping that the whole
 * copy-on-write and cleaning machinery rests on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "flash/flash_array.hh"

namespace envy {
namespace {

Geometry
tinyGeom()
{
    Geometry g = Geometry::tiny(); // 16 segments, 2048 pages each
    return g;
}

class FlashArrayTest : public ::testing::Test
{
  protected:
    FlashArrayTest() : array(tinyGeom(), FlashTiming{}, true) {}

    std::vector<std::uint8_t>
    pattern(std::uint8_t seed)
    {
        std::vector<std::uint8_t> v(array.geom().pageSize);
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = static_cast<std::uint8_t>(seed + i);
        return v;
    }

    FlashArray array;
};

TEST_F(FlashArrayTest, FreshSegmentsAreEmpty)
{
    for (std::uint32_t s = 0; s < array.numSegments(); ++s) {
        const SegmentId seg{s};
        EXPECT_EQ(array.liveCount(seg), PageCount(0));
        EXPECT_EQ(array.invalidCount(seg), PageCount(0));
        EXPECT_EQ(array.freeSlots(seg), array.pagesPerSegment());
        EXPECT_EQ(array.eraseCycles(seg), 0u);
    }
    EXPECT_EQ(array.totalLive(), PageCount(0));
}

TEST_F(FlashArrayTest, AppendAssignsSequentialSlots)
{
    const SegmentId seg{3};
    for (std::uint32_t i = 0; i < 5; ++i) {
        const FlashPageAddr a =
            array.appendPage(seg, LogicalPageId(100 + i),
                             pattern(static_cast<std::uint8_t>(i)));
        EXPECT_EQ(a.segment, seg);
        EXPECT_EQ(a.slot, SlotId(i));
    }
    EXPECT_EQ(array.liveCount(seg), PageCount(5));
    EXPECT_EQ(array.usedSlots(seg), PageCount(5));
    EXPECT_EQ(array.freeSlots(seg), array.pagesPerSegment() - PageCount(5));
}

TEST_F(FlashArrayTest, DataRoundTrip)
{
    const SegmentId seg{0};
    const auto in = pattern(42);
    const FlashPageAddr a =
        array.appendPage(seg, LogicalPageId(7), in);
    std::vector<std::uint8_t> out(array.geom().pageSize);
    array.readPage(a, out);
    EXPECT_EQ(out, in);
}

TEST_F(FlashArrayTest, OwnerTracking)
{
    const SegmentId seg{1};
    const FlashPageAddr a =
        array.appendPage(seg, LogicalPageId(55), pattern(1));
    EXPECT_EQ(array.pageOwner(a), LogicalPageId(55));
    EXPECT_TRUE(array.pageLive(a));

    array.invalidatePage(a);
    EXPECT_FALSE(array.pageLive(a));
    EXPECT_FALSE(array.pageOwner(a).valid());
    EXPECT_EQ(array.liveCount(seg), PageCount(0));
    EXPECT_EQ(array.invalidCount(seg), PageCount(1));
    // Dead slots are not writable: used count stays.
    EXPECT_EQ(array.usedSlots(seg), PageCount(1));
}

TEST_F(FlashArrayTest, UtilizationIsLiveOverCapacity)
{
    const SegmentId seg{2};
    const std::uint64_t cap = array.pagesPerSegment().value();
    for (std::uint64_t i = 0; i < cap / 2; ++i)
        array.appendPage(seg, LogicalPageId(i), pattern(0));
    EXPECT_DOUBLE_EQ(array.utilization(seg), 0.5);
}

TEST_F(FlashArrayTest, ForEachLiveSkipsDeadAndPreservesOrder)
{
    const SegmentId seg{4};
    std::vector<FlashPageAddr> addrs;
    for (std::uint32_t i = 0; i < 6; ++i)
        addrs.push_back(
            array.appendPage(seg, LogicalPageId(i), pattern(0)));
    array.invalidatePage(addrs[1]);
    array.invalidatePage(addrs[4]);

    std::vector<std::uint64_t> seen;
    array.forEachLive(seg, [&](SlotId slot, LogicalPageId p) {
        seen.push_back(p.value());
        EXPECT_EQ(slot.value(), p.value()); // slot == logical here
    });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 2, 3, 5}));
}

TEST_F(FlashArrayTest, EraseRecyclesSegment)
{
    const SegmentId seg{5};
    const FlashPageAddr a =
        array.appendPage(seg, LogicalPageId(9), pattern(9));
    array.invalidatePage(a);
    array.eraseSegment(seg);
    EXPECT_EQ(array.usedSlots(seg), PageCount(0));
    EXPECT_EQ(array.freeSlots(seg), array.pagesPerSegment());
    EXPECT_EQ(array.eraseCycles(seg), 1u);
    // Slots are writable again.
    const FlashPageAddr b =
        array.appendPage(seg, LogicalPageId(10), pattern(1));
    EXPECT_EQ(b.slot, SlotId(0));
}

TEST_F(FlashArrayTest, StatsCount)
{
    const SegmentId seg{6};
    const FlashPageAddr a =
        array.appendPage(seg, LogicalPageId(1), pattern(0));
    array.invalidatePage(a);
    array.eraseSegment(seg);
    EXPECT_EQ(array.statPagesProgrammed.value(), 1u);
    EXPECT_EQ(array.statPagesInvalidated.value(), 1u);
    EXPECT_EQ(array.statSegmentErases.value(), 1u);
}

TEST_F(FlashArrayTest, ShadowLifecycle)
{
    const SegmentId seg{7};
    const FlashPageAddr a =
        array.appendPage(seg, LogicalPageId(3), pattern(3));
    array.convertToShadow(a);
    EXPECT_TRUE(array.pageIsShadow(a));
    EXPECT_FALSE(array.pageOwner(a).valid());
    // Shadows count live: they occupy space the cleaner must carry.
    EXPECT_EQ(array.liveCount(seg), PageCount(1));

    int shadows = 0;
    array.forEachShadow(seg, [&](SlotId) { ++shadows; });
    EXPECT_EQ(shadows, 1);
    // forEachLive must skip them.
    array.forEachLive(seg, [&](SlotId, LogicalPageId) {
        FAIL() << "shadow visited as live";
    });

    array.invalidatePage(a);
    EXPECT_FALSE(array.pageIsShadow(a));
    EXPECT_EQ(array.liveCount(seg), PageCount(0));
}

TEST_F(FlashArrayTest, AppendShadowDirectly)
{
    const SegmentId seg{8};
    const auto data = pattern(77);
    const FlashPageAddr a = array.appendShadow(seg, data);
    EXPECT_TRUE(array.pageIsShadow(a));
    std::vector<std::uint8_t> out(array.geom().pageSize);
    array.readPage(a, out);
    EXPECT_EQ(out, data);
}

TEST(FlashArrayMetadataOnly, WorksWithoutData)
{
    FlashArray array(Geometry::tiny(), FlashTiming{}, false);
    const SegmentId seg{0};
    const FlashPageAddr a = array.appendPage(seg, LogicalPageId(1));
    EXPECT_TRUE(array.pageLive(a));
    array.invalidatePage(a);
    array.eraseSegment(seg);
    EXPECT_EQ(array.eraseCycles(seg), 1u);
}

using FlashArrayDeathTest = FlashArrayTest;

TEST_F(FlashArrayDeathTest, ErasingLiveDataPanics)
{
    const SegmentId seg{0};
    array.appendPage(seg, LogicalPageId(1), pattern(0));
    EXPECT_DEATH(array.eraseSegment(seg), "live");
}

TEST_F(FlashArrayDeathTest, DoubleInvalidatePanics)
{
    const SegmentId seg{0};
    const FlashPageAddr a =
        array.appendPage(seg, LogicalPageId(1), pattern(0));
    array.invalidatePage(a);
    EXPECT_DEATH(array.invalidatePage(a), "double invalidate");
}

TEST_F(FlashArrayDeathTest, AppendToFullSegmentPanics)
{
    Geometry g = Geometry::tiny();
    FlashArray small(g, FlashTiming{}, false);
    const SegmentId seg{0};
    for (std::uint64_t i = 0; i < g.pagesPerSegment().value(); ++i)
        small.appendPage(seg, LogicalPageId(i));
    EXPECT_DEATH(small.appendPage(seg, LogicalPageId(0)), "full");
}

} // namespace
} // namespace envy
