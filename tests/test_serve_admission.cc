/**
 * @file
 * Admission control (docs/SERVING.md §3): the pure decision function
 * pinned case by case, the backpressure hook chain (controller ->
 * server -> cleaner pool) exercised deterministically in pump mode,
 * and a threaded overload run proving the contract that matters:
 * every request gets a response (shed, not silently stalled), and
 * the serve.shed / serve.queued counters match what clients actually
 * observed (the obs-differential idiom).
 */

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/loopback.hh"
#include "serve/server.hh"

namespace envy {
namespace serve {
namespace {

TEST(ServeAdmission, DecisionFunctionContract)
{
    // Below soft, no pressure: direct.
    EXPECT_EQ(admitRequest(0, 4, 8, false), AdmitDecision::Direct);
    EXPECT_EQ(admitRequest(3, 4, 8, false), AdmitDecision::Direct);
    // At/above soft: queued.
    EXPECT_EQ(admitRequest(4, 4, 8, false), AdmitDecision::Queued);
    EXPECT_EQ(admitRequest(7, 4, 8, false), AdmitDecision::Queued);
    // Backpressure flips direct to queued at any depth.
    EXPECT_EQ(admitRequest(0, 4, 8, true), AdmitDecision::Queued);
    EXPECT_EQ(admitRequest(3, 4, 8, true), AdmitDecision::Queued);
    // At/above hard: shed, pressure or not.
    EXPECT_EQ(admitRequest(8, 4, 8, false), AdmitDecision::Shed);
    EXPECT_EQ(admitRequest(8, 4, 8, true), AdmitDecision::Shed);
    EXPECT_EQ(admitRequest(100, 4, 8, false), AdmitDecision::Shed);
    // Degenerate config: soft == hard == 1 sheds everything queued.
    EXPECT_EQ(admitRequest(0, 1, 1, false), AdmitDecision::Direct);
    EXPECT_EQ(admitRequest(1, 1, 1, false), AdmitDecision::Shed);
}

EnvyConfig
tinyConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 32;
    return cfg;
}

KvEngineConfig
engineConfig()
{
    KvEngineConfig cfg;
    cfg.numShards = 4;
    return cfg;
}

TEST(ServeAdmission, BackpressureSignalTurnsIntoQueuedAdmission)
{
    EnvyStore store(tinyConfig());
    KvEngine engine(store, engineConfig());
    ServeConfig cfg;
    cfg.workers = 0;
    Server server(store, engine, cfg);
    LoopbackPair pair = loopbackPair();
    server.attach(std::move(pair.server));
    KvClient client(std::move(pair.client));

    // No pressure: direct.
    client.sendPut(1, "a");
    server.pump();
    Response resp;
    ASSERT_TRUE(client.recv(resp, false));
    EXPECT_EQ(resp.admission, Admission::Direct);

    // The controller signals backpressure (this is exactly the call
    // makeRoomBlocking makes when the buffer is full and the policy
    // has no ready destination); the next request is admitted but
    // flagged Queued.
    store.controller().backpressureHook();
    EXPECT_TRUE(server.backpressureActive());
    client.sendPut(2, "b");
    server.pump();
    ASSERT_TRUE(client.recv(resp, false));
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.admission, Admission::Queued);

    // The pump drained everything: pressure is considered absorbed
    // until the controller signals again.
    EXPECT_FALSE(server.backpressureActive());
    client.sendPut(3, "c");
    server.pump();
    ASSERT_TRUE(client.recv(resp, false));
    EXPECT_EQ(resp.admission, Admission::Direct);

    const auto snap = store.metrics().snapshot();
    EXPECT_EQ(snap.counter("serve.backpressure_signals"), 1u);
    EXPECT_EQ(snap.counter("serve.queued"), 1u);
    EXPECT_EQ(snap.counter("serve.admitted"), 2u);
    EXPECT_EQ(snap.counter("serve.shed"), 0u);
}

TEST(ServeAdmission, HookChainRestoredOnDestruction)
{
    EnvyStore store(tinyConfig());
    KvEngine engine(store, engineConfig());
    int pokes = 0;
    store.controller().backpressureHook = [&pokes] { pokes++; };
    {
        ServeConfig cfg;
        cfg.workers = 0;
        Server server(store, engine, cfg);
        // The server chains, not replaces: the original hook still
        // fires through the server's wrapper.
        store.controller().backpressureHook();
        EXPECT_EQ(pokes, 1);
        EXPECT_TRUE(server.backpressureActive());
    }
    // Destruction restores the original hook verbatim.
    store.controller().backpressureHook();
    EXPECT_EQ(pokes, 2);
}

TEST(ServeAdmission, OverloadShedsExplicitlyAndCountsMatch)
{
    // Concurrent store under a threaded server: many connections
    // feed one worker through a tiny queue, so the queue runs past
    // both watermarks.  The contract: nothing stalls silently —
    // responses == requests — and the counters agree with what the
    // clients saw.
    EnvyConfig storeCfg = tinyConfig();
    storeCfg.numWorkers = 2;
    storeCfg.numCleaners = 1;
    EnvyStore store(storeCfg);
    KvEngine engine(store, engineConfig());
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueSoft = 2;
    cfg.queueHard = 8;
    Server server(store, engine, cfg);

    constexpr unsigned kConns = 8;
    constexpr std::uint64_t kPerConn = 2000;
    std::vector<std::unique_ptr<KvClient>> clients;
    for (unsigned c = 0; c < kConns; c++) {
        LoopbackPair pair = loopbackPair();
        server.attach(std::move(pair.server));
        clients.push_back(
            std::make_unique<KvClient>(std::move(pair.client)));
    }

    std::atomic<std::uint64_t> shed{0}, queued{0}, responses{0};
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kConns; c++) {
        threads.emplace_back([&, c] {
            KvClient &cli = *clients[c];
            // Pipeline the whole flood, then collect every ack.
            for (std::uint64_t i = 0; i < kPerConn; i++)
                cli.sendPut(c * kPerConn + i, "overload");
            for (std::uint64_t i = 0; i < kPerConn; i++) {
                Response resp;
                ASSERT_TRUE(cli.recv(resp, true))
                    << "stream closed with acks outstanding";
                responses.fetch_add(1);
                if (resp.status == Status::Shed)
                    shed.fetch_add(1);
                else if (resp.admission == Admission::Queued)
                    queued.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    server.stop();

    // Every single request was answered: shed is explicit, never a
    // silent stall.
    EXPECT_EQ(responses.load(), kConns * kPerConn);

    // The server's counters match the client-observed outcomes.
    const auto snap = store.metrics().snapshot();
    EXPECT_EQ(snap.counter("serve.shed"), shed.load());
    EXPECT_EQ(snap.counter("serve.queued"), queued.load());
    EXPECT_EQ(snap.counter("serve.requests") +
                  snap.counter("serve.shed"),
              kConns * kPerConn);
    // 8 producers against 1 consumer through an 8-deep queue must
    // overflow it.
    EXPECT_GT(shed.load(), 0u);
    EXPECT_GT(queued.load(), 0u);
}

TEST(ServeAdmission, QueueDepthGaugeAndStatVisibility)
{
    EnvyStore store(tinyConfig());
    KvEngine engine(store, engineConfig());
    ServeConfig cfg;
    cfg.workers = 0;
    Server server(store, engine, cfg);
    LoopbackPair pair = loopbackPair();
    server.attach(std::move(pair.server));
    KvClient client(std::move(pair.client));

    store.controller().backpressureHook();
    client.sendPut(1, "x");
    client.sendStat();
    server.pump();
    Response put, stat;
    ASSERT_TRUE(client.recv(put, false));
    ASSERT_TRUE(client.recv(stat, false));
    ASSERT_EQ(stat.stats.size(),
              static_cast<std::size_t>(StatField::NumFields));
    // The Stat snapshot is taken mid-pump: both the PUT and the STAT
    // itself were admitted Queued (the signal stays latched until the
    // pump pass completes), and both are already visible in it.
    EXPECT_EQ(stat.admission, Admission::Queued);
    EXPECT_EQ(
        stat.stats[static_cast<std::size_t>(StatField::Queued)], 2u);
    EXPECT_EQ(stat.stats[static_cast<std::size_t>(StatField::Keys)],
              1u);
}

} // namespace
} // namespace serve
} // namespace envy
