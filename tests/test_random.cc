/**
 * @file
 * Tests for the deterministic RNG and the bimodal access
 * distribution of paper §4.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hh"
#include "workload/bimodal.hh"

namespace envy {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                (1ull << 40) + 7}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.between(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(11);
    const int buckets = 10, n = 100000;
    std::vector<int> hist(buckets, 0);
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        hist[static_cast<int>(u * buckets)]++;
    }
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(hist[b], n / buckets, n / buckets * 0.1);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(13);
    const double mean = 250.0;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

struct LocalityCase
{
    const char *spec;
    double hot_fraction;
    double hot_access;
};

class BimodalTest : public ::testing::TestWithParam<LocalityCase>
{
};

TEST_P(BimodalTest, ParsesSpec)
{
    const auto &c = GetParam();
    const LocalitySpec s = LocalitySpec::parse(c.spec);
    EXPECT_DOUBLE_EQ(s.hotFraction, c.hot_fraction);
    EXPECT_DOUBLE_EQ(s.hotAccess, c.hot_access);
}

TEST_P(BimodalTest, HotRegionGetsItsShare)
{
    const auto &c = GetParam();
    const std::uint64_t pages = 100000;
    BimodalWriteWorkload w(pages,
                           LocalitySpec{c.hot_fraction, c.hot_access},
                           99);
    const std::uint64_t hot_limit =
        static_cast<std::uint64_t>(pages * c.hot_fraction);
    const int n = 200000;
    int hot = 0;
    for (int i = 0; i < n; ++i) {
        const LogicalPageId p = w.nextPage();
        ASSERT_LT(p.value(), pages);
        hot += p.value() < hot_limit ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hot) / n, c.hot_access, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    PaperLocalities, BimodalTest,
    ::testing::Values(LocalityCase{"50/50", 0.5, 0.5},
                      LocalityCase{"40/60", 0.4, 0.6},
                      LocalityCase{"30/70", 0.3, 0.7},
                      LocalityCase{"20/80", 0.2, 0.8},
                      LocalityCase{"10/90", 0.1, 0.9},
                      LocalityCase{"5/95", 0.05, 0.95}));

TEST(Bimodal, UniformSpreadsEvenly)
{
    const std::uint64_t pages = 1000;
    BimodalWriteWorkload w(pages, LocalitySpec{0.5, 0.5}, 3);
    std::vector<int> hits(pages, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        hits[w.nextPage().value()]++;
    int max = 0, min = n;
    for (int h : hits) {
        max = std::max(max, h);
        min = std::min(min, h);
    }
    // Poisson with mean 200: 5-sigma band.
    EXPECT_GT(min, 120);
    EXPECT_LT(max, 280);
}

TEST(Bimodal, LabelRoundTrip)
{
    EXPECT_EQ(LocalitySpec::parse("10/90").label(), "10/90");
    EXPECT_EQ(LocalitySpec::parse("5/95").label(), "5/95");
}

} // namespace
} // namespace envy
