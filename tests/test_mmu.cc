/**
 * @file
 * Tests for the MMU mapping cache (§5.1).
 */

#include <gtest/gtest.h>

#include "envy/mmu.hh"

namespace envy {
namespace {

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest()
        : sram(PageTable::bytesNeeded(4096)),
          table(sram, 0, 4096),
          mmu(table, 16)
    {
    }

    SramArray sram;
    PageTable table;
    Mmu mmu;
};

TEST_F(MmuTest, MissThenHit)
{
    table.mapToSram(LogicalPageId(1), BufferSlotId(7));
    EXPECT_EQ(mmu.lookup(LogicalPageId(1)).sramSlot.value(), 7u);
    EXPECT_EQ(mmu.statMisses.value(), 1u);
    EXPECT_EQ(mmu.statHits.value(), 0u);

    EXPECT_EQ(mmu.lookup(LogicalPageId(1)).sramSlot.value(), 7u);
    EXPECT_EQ(mmu.statHits.value(), 1u);
}

TEST_F(MmuTest, WriteThroughUpdatesBothTlbAndTable)
{
    mmu.mapToFlash(LogicalPageId(2), {SegmentId(3), SlotId(4)});
    // Table sees it...
    EXPECT_EQ(table.lookup(LogicalPageId(2)).kind,
              PageTable::LocKind::Flash);
    // ...and the TLB serves it without a miss.
    const auto loc = mmu.lookup(LogicalPageId(2));
    EXPECT_EQ(loc.flash.slot.value(), 4u);
    EXPECT_EQ(mmu.statMisses.value(), 0u);
}

TEST_F(MmuTest, DirectMappedConflictEvicts)
{
    // Pages 5 and 5+16 collide in a 16-entry direct-mapped TLB.
    table.mapToSram(LogicalPageId(5), BufferSlotId(1));
    table.mapToSram(LogicalPageId(21), BufferSlotId(2));
    mmu.lookup(LogicalPageId(5));
    mmu.lookup(LogicalPageId(21));
    mmu.lookup(LogicalPageId(5));
    EXPECT_EQ(mmu.statMisses.value(), 3u);
    EXPECT_EQ(mmu.statHits.value(), 0u);
}

TEST_F(MmuTest, FlushTlbForcesWalks)
{
    table.mapToSram(LogicalPageId(3), BufferSlotId(9));
    mmu.lookup(LogicalPageId(3));
    mmu.flushTlb();
    mmu.lookup(LogicalPageId(3));
    EXPECT_EQ(mmu.statMisses.value(), 2u);
}

TEST_F(MmuTest, StaleTlbNeverSurvivesWriteThrough)
{
    table.mapToSram(LogicalPageId(6), BufferSlotId(1));
    mmu.lookup(LogicalPageId(6)); // cached as SRAM slot 1
    mmu.mapToFlash(LogicalPageId(6), {SegmentId(2), SlotId(8)});
    const auto loc = mmu.lookup(LogicalPageId(6));
    ASSERT_EQ(loc.kind, PageTable::LocKind::Flash);
    EXPECT_EQ(loc.flash.slot.value(), 8u);
}

TEST_F(MmuTest, UnmappedLookupsWork)
{
    EXPECT_EQ(mmu.lookup(LogicalPageId(100)).kind,
              PageTable::LocKind::Unmapped);
}

TEST(MmuDeathTest, NonPowerOfTwoTlbPanics)
{
    SramArray sram(PageTable::bytesNeeded(16));
    PageTable table(sram, 0, 16);
    EXPECT_DEATH(Mmu(table, 15), "power of two");
}

} // namespace
} // namespace envy
