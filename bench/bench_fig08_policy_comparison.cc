/**
 * @file
 * Figure 8: cleaning cost of the greedy, locality-gathering and
 * hybrid (16 segments/partition) policies across the paper's
 * localities of reference, on a 128-segment array at 80%
 * utilization.
 *
 * Expected shape (paper): greedy is best under uniform access and
 * degrades as locality rises; locality gathering is pinned at cost 4
 * under uniform access and improves with locality; hybrid tracks
 * greedy at the uniform end, beats locality gathering everywhere,
 * and drops toward 1 at 5/95.
 */

#include "envysim/experiment.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

int
main()
{
    const bool full = fullScaleRequested();
    const char *localities[] = {"50/50", "40/60", "30/70",
                                "20/80", "10/90", "5/95"};

    ResultTable t("Figure 8: Comparison of Cleaning Algorithms "
                  "(128 segments, 80% utilization)");
    t.setColumns({"locality", "greedy", "locality gathering",
                  "hybrid (16/partition)"});

    for (const char *loc : localities) {
        std::string row[3];
        const PolicyKind kinds[3] = {PolicyKind::Greedy,
                                     PolicyKind::LocalityGathering,
                                     PolicyKind::Hybrid};
        for (int i = 0; i < 3; ++i) {
            PolicySimParams p;
            p.numSegments = 128;
            p.pagesPerSegment = full ? 16384 : 4096;
            p.policy = kinds[i];
            p.partitionSize = 16;
            p.locality = LocalitySpec::parse(loc);
            const PolicySimResult r = runPolicySim(p);
            row[i] = ResultTable::num(r.cleaningCost, 2);
        }
        t.addRow({loc, row[0], row[1], row[2]});
    }
    t.addNote("paper's qualitative claims: greedy rises with "
              "locality; locality gathering flat at 4 until ~30/70 "
              "then falls; hybrid close to greedy at uniform and "
              "consistently beats pure locality gathering");
    if (!full)
        t.addNote("quick scale (4096 pages/segment); "
                  "ENVY_SCALE=full uses 16384");
    t.print();
    return 0;
}
