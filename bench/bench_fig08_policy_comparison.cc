/**
 * @file
 * Figure 8: cleaning cost of the greedy, locality-gathering and
 * hybrid (16 segments/partition) policies across the paper's
 * localities of reference, on a 128-segment array at 80%
 * utilization.
 *
 * Expected shape (paper): greedy is best under uniform access and
 * degrades as locality rises; locality gathering is pinned at cost 4
 * under uniform access and improves with locality; hybrid tracks
 * greedy at the uniform end, beats locality gathering everywhere,
 * and drops toward 1 at 5/95.
 */

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig08_policy_comparison", opt);

    const bool full = fullScaleRequested();
    std::vector<const char *> localities = {"50/50", "40/60", "30/70",
                                            "20/80", "10/90", "5/95"};
    if (opt.smoke)
        localities = {"50/50", "10/90"};
    const PolicyKind kinds[3] = {PolicyKind::Greedy,
                                 PolicyKind::LocalityGathering,
                                 PolicyKind::Hybrid};

    SweepRunner sweep(opt.jobs);
    for (const char *loc : localities) {
        for (const PolicyKind kind : kinds) {
            sweep.defer([=] {
                PolicySimParams p;
                p.numSegments = 128;
                p.pagesPerSegment = full ? 16384 : 4096;
                p.policy = kind;
                p.partitionSize = 16;
                p.locality = LocalitySpec::parse(loc);
                const PolicySimResult r = runPolicySim(p);
                return ResultTable::num(r.cleaningCost, 2);
            });
        }
    }
    const std::vector<std::string> cells = sweep.run();

    ResultTable t("Figure 8: Comparison of Cleaning Algorithms "
                  "(128 segments, 80% utilization)");
    t.setColumns({"locality", "greedy", "locality gathering",
                  "hybrid (16/partition)"});
    std::size_t cell = 0;
    for (const char *loc : localities) {
        t.addRow({loc, cells[cell], cells[cell + 1], cells[cell + 2]});
        cell += 3;
    }
    t.addNote("paper's qualitative claims: greedy rises with "
              "locality; locality gathering flat at 4 until ~30/70 "
              "then falls; hybrid close to greedy at uniform and "
              "consistently beats pure locality gathering");
    if (!full)
        t.addNote("quick scale (4096 pages/segment); "
                  "ENVY_SCALE=full uses 16384");
    report.add(t);
    return report.finish();
}
