/**
 * @file
 * Figure 13 (+ the §5.3 busy breakdown): TPC-A throughput as a
 * function of the transaction request rate.  The paper's simulated
 * 2 GB system keeps up with the offered load until roughly 30,000
 * TPS, where the cleaning system's bandwidth becomes the ceiling; at
 * that point the controller is almost never idle and spends ~40% of
 * its time servicing reads, ~30% cleaning, ~15% flushing and ~15%
 * erasing.
 */

#include <functional>

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig13_throughput", opt);

    const double scale = defaultScale();
    std::vector<double> rates = {5000,  10000, 15000, 20000, 25000,
                                 30000, 35000, 40000, 50000};
    if (opt.smoke)
        rates = {5000, 30000};

    // The knee detection below walks the results in rate order, so
    // the sweep returns structured results rather than cell strings.
    std::vector<std::function<TimedResult()>> tasks;
    for (const double rate : rates) {
        tasks.push_back([=] {
            TimedParams p = paperTimedParams(rate, 0.8, scale);
            return runTimedSim(p);
        });
    }
    const std::vector<TimedResult> results =
        parallelMap<TimedResult>(opt.jobs, std::move(tasks));

    ResultTable t("Figure 13: Throughput for Increasing Request "
                  "Rates (TPC-A)");
    t.setColumns({"request rate (TPS)", "completed TPS",
                  "flush pages/s", "cleaning cost", "idle"});

    TimedResult peak;
    bool have_knee = false;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const TimedResult &r = results[i];
        t.addRow({ResultTable::integer(
                      static_cast<std::uint64_t>(rates[i])),
                  ResultTable::num(r.completedTps, 0),
                  ResultTable::num(r.flushPagesPerSec, 0),
                  ResultTable::num(r.cleaningCost, 2),
                  ResultTable::percent(r.fracIdle, 0)});
        // The §5.3 breakdown is quoted at peak load: the first rate
        // where the controller runs out of idle time.
        if (!have_knee &&
            (r.fracIdle < 0.05 || r.completedTps > peak.completedTps))
            peak = r;
        have_knee = have_knee || r.fracIdle < 0.05;
    }
    t.addNote("paper: throughput tracks the request rate up to a "
              "peak of about 30,000 TPS");
    if (scale < 1.0)
        t.addNote("quick scale (" +
                  ResultTable::num(scale * 2, 2) +
                  " GB array); ENVY_SCALE=full for the 2 GB system");
    report.add(t);

    ResultTable b("Section 5.3: controller busy breakdown at peak "
                  "load, 80% utilization");
    b.setColumns({"activity", "paper", "measured"});
    b.addRow({"servicing reads", "~40%",
              ResultTable::percent(peak.fracRead, 0)});
    b.addRow({"cleaning", "~30%",
              ResultTable::percent(peak.fracClean, 0)});
    b.addRow({"flushing", "~15%",
              ResultTable::percent(peak.fracFlush, 0)});
    b.addRow({"erasing", "~15%",
              ResultTable::percent(peak.fracErase, 0)});
    b.addRow({"idle", "~0%",
              ResultTable::percent(peak.fracIdle, 0)});
    const double nonread =
        peak.fracFlush + peak.fracClean + peak.fracErase;
    const double speedup =
        peak.fracRead > 0.0
            ? (peak.fracRead + nonread + peak.fracIdle) /
                  (peak.fracRead + peak.fracIdle)
            : 0.0;
    b.addRow({"SRAM-only speedup bound", "~2.5x",
              ResultTable::num(speedup, 1) + "x"});
    report.add(b);
    return report.finish();
}
