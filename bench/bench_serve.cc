/**
 * @file
 * envy-loadgen: latency-throughput curves for the serve front end
 * (docs/SERVING.md §6).
 *
 * For each workload (zipf single-op traffic, TPC-A batch
 * transactions) the harness stands up a threaded Server over a
 * concurrent-mode store, prefills the key population, then drives the
 * Loadgen curve: one closed-loop capacity point followed by open-loop
 * points at fixed fractions of that capacity, with
 * coordinated-omission-safe percentiles (latency from the *scheduled*
 * arrival).  Every row lands in BENCH_serve.json (envy-bench-v2);
 * check_bench_json.py's serve rule holds the committed full run to
 * >= 2 workloads x >= 3 open-loop points with sane percentiles.
 *
 * Unlike the simulator benches, these numbers are host wall-clock:
 * they measure the serve stack (protocol, admission, worker handoff,
 * engine, COW controller) on whatever machine runs the bench, so
 * absolute throughput varies by host while the *shape* — p99 rising
 * toward capacity, shed appearing past saturation — is the subject.
 */

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "envysim/experiment.hh"
#include "serve/kv_engine.hh"
#include "serve/loadgen.hh"
#include "serve/loopback.hh"
#include "serve/server.hh"

using namespace envy;
using namespace envy::serve;

namespace {

struct WorkloadRun
{
    std::vector<LoadPoint> points;
    obs::MetricsSnapshot snapshot;
};

WorkloadRun
runWorkload(const LoadgenConfig &cfg)
{
    EnvyConfig storeCfg;
    storeCfg.geom = kvGeometryFor(cfg.keys + cfg.keys / 4);
    storeCfg.numWorkers = 4;
    storeCfg.numCleaners = 1;
    EnvyStore store(storeCfg);
    KvEngineConfig engCfg;
    engCfg.numShards = 8;
    KvEngine engine(store, engCfg);

    ServeConfig serveCfg;
    serveCfg.workers = 4;
    Server server(store, engine, serveCfg);

    Loadgen gen(
        &engine,
        [&server] {
            LoopbackPair pair = loopbackPair();
            server.attach(std::move(pair.server));
            return std::move(pair.client);
        },
        cfg);
    WorkloadRun run;
    run.points = gen.run();
    server.stop();
    run.snapshot = store.metrics().snapshot();
    return run;
}

void
removeStoreFiles(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    std::remove((path + ".journal.tmp").c_str());
}

/**
 * One durable-acks capacity point (closed loop only).  @p group
 * selects the PR 10 batched path — concurrent store, 4 server
 * workers, acks riding the commit thread's shared flush epochs and
 * one fdatasync per batch — against the per-request baseline:
 * serial persistent store, one worker, one journal append +
 * fdatasync inline in every mutated response (syncAcks on both
 * sides, so the device barrier is amortised, not dropped).
 */
WorkloadRun
runDurable(const LoadgenConfig &cfg, bool group)
{
    const std::string path = "/tmp/envy_bench_serve_durable.store";
    removeStoreFiles(path);
    // Both rows push tens of MB/s of journal through the filesystem;
    // drain the previous row's writeback backlog so each row meets
    // the same device state and the comparison is not an artifact of
    // run order.
    ::sync();

    EnvyConfig storeCfg;
    storeCfg.geom = kvGeometryFor(cfg.keys + cfg.keys / 4);
    storeCfg.persistPath = path;
    if (group) {
        storeCfg.numWorkers = 4;
        storeCfg.numCleaners = 1;
    }
    WorkloadRun run;
    {
        EnvyStore store(storeCfg);
        KvEngineConfig engCfg;
        engCfg.numShards = 8;
        KvEngine engine(store, engCfg);

        ServeConfig serveCfg;
        serveCfg.workers = group ? 4 : 1;
        serveCfg.durableAcks = true;
        // Both rows carry the power-loss barrier (fdatasync), so
        // batching is the only variable: the flush row pays one
        // device barrier per mutated request, the group row one per
        // commit-thread batch.
        serveCfg.syncAcks = true;
        Server server(store, engine, serveCfg);

        Loadgen gen(
            &engine,
            [&server] {
                LoopbackPair pair = loopbackPair();
                server.attach(std::move(pair.server));
                return std::move(pair.client);
            },
            cfg);
        run.points = gen.run();
        server.stop();
        run.snapshot = store.metrics().snapshot();
    }
    removeStoreFiles(path);
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    // --durable (ours, stripped before BenchOptions sees it) runs
    // only the durable-acks comparison — the fast loop while tuning
    // the commit pipeline.  The default run includes everything.
    bool durableOnly = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::string(argv[i]) == "--durable")
            durableOnly = true;
        else
            args.push_back(argv[i]);
    }
    const BenchOptions opt =
        BenchOptions::parse(static_cast<int>(args.size()),
                            args.data());
    BenchReport report("serve", opt);

    LoadgenConfig base;
    if (opt.smoke) {
        base.keys = 20'000;
        base.clients = 4;
        base.warmupSeconds = 0.1;
        base.measureSeconds = 0.25;
        base.loadFractions = {0.5, 0.9};
    }

    std::vector<std::pair<std::string, obs::MetricsSnapshot>> snaps;
    if (!durableOnly) {
        ResultTable t("Serve: latency-throughput curves over the "
                      "loopback transport");
        t.setColumns({"workload", "mode", "clients", "offered_rps",
                      "achieved_rps", "p50_us", "p99_us", "p999_us",
                      "shed", "queued"});
        for (const std::string workload : {"zipf", "tpca"}) {
            LoadgenConfig cfg = base;
            cfg.workload = workload;
            WorkloadRun run = runWorkload(cfg);
            for (const LoadPoint &p : run.points)
                t.addRow({p.workload, p.mode,
                          ResultTable::integer(p.clients),
                          ResultTable::num(p.offeredRps, 0),
                          ResultTable::num(p.achievedRps, 0),
                          ResultTable::integer(p.p50Us),
                          ResultTable::integer(p.p99Us),
                          ResultTable::integer(p.p999Us),
                          ResultTable::integer(p.shed),
                          ResultTable::integer(p.queued)});
            snaps.emplace_back(workload, std::move(run.snapshot));
        }
        t.addNote("closed loop measures capacity; open-loop points "
                  "offer fixed fractions of it with exponential "
                  "arrivals");
        t.addNote("latency is measured from the scheduled arrival "
                  "(coordinated-omission-safe); host wall-clock, so "
                  "absolute rates are machine-dependent");
        t.addNote("zipf: single GET/PUT, theta=" +
                  ResultTable::num(base.theta, 2) + ", " +
                  ResultTable::integer(base.keys) + " keys; tpca: "
                  "one 6-op BATCH per transaction "
                  "(account/teller/branch read+update)");
        report.add(t);
    }

    // Durable acks: the PR 10 group-commit path vs one journal
    // append per request, same zipf traffic, capacity point only.
    // check_bench_json.py holds the committed full run to
    // group >= 5x flush (SERVE_DURABLE_MIN_SPEEDUP).
    {
        LoadgenConfig cfg = base;
        cfg.workload = "zipf";
        // The subject is ack batching, not key-space scale or value
        // bandwidth: a small key population and small records keep
        // both rows sync-bound (the classic group-commit regime)
        // instead of COW/cleaner-bound, so the same store size holds
        // in smoke and full runs.
        cfg.keys = 10'000;
        cfg.valueBytes = 16;
        cfg.loadFractions = {};
        // Every request mutates (the durable path is the subject),
        // and enough closed-loop clients that batching has a batch:
        // per-request flush is pinned near one worker's serial
        // append+fdatasync rate regardless of client count, while
        // group commit amortizes the journal epoch and its single
        // device barrier over the whole in-flight window.
        cfg.readFraction = 0.0;
        cfg.clients = 64;
        // The flush row is one worker issuing one fdatasync per
        // request, so a scheduling hiccup or a slow device barrier
        // lands directly in its rate; a longer window averages that
        // noise below the acceptance floor's margin.
        if (!opt.smoke) {
            cfg.warmupSeconds = 1.0;
            cfg.measureSeconds = 2.0;
        }

        ResultTable t("Serve: durable acks — group commit vs "
                      "per-request journal flush");
        t.setColumns({"workload", "ack_mode", "clients",
                      "achieved_rps", "p50_us", "p99_us",
                      "p999_us"});
        double rps[2] = {0, 0}; // [flush, group]
        for (const bool group : {false, true}) {
            WorkloadRun run = runDurable(cfg, group);
            const LoadPoint &p = run.points.front();
            rps[group ? 1 : 0] = p.achievedRps;
            t.addRow({"zipf-durable", group ? "group" : "flush",
                      ResultTable::integer(p.clients),
                      ResultTable::num(p.achievedRps, 0),
                      ResultTable::integer(p.p50Us),
                      ResultTable::integer(p.p99Us),
                      ResultTable::integer(p.p999Us)});
            snaps.emplace_back(group ? "zipf-durable-group"
                                     : "zipf-durable-flush",
                               std::move(run.snapshot));
        }
        t.addNote("flush: serial persistent store, 1 worker, one "
                  "journal append + fdatasync inline per mutated "
                  "response; group: concurrent store, 4 workers, "
                  "acks batched through the commit thread — one "
                  "shared flush epoch and ONE fdatasync per batch "
                  "(syncAcks on both sides; batching is the only "
                  "variable)");
        t.addNote("100% PUT, " +
                  ResultTable::integer(cfg.keys) + " keys, " +
                  ResultTable::integer(cfg.valueBytes) +
                  "-byte values: small sync-bound records, the "
                  "workload group commit exists for");
        if (rps[0] > 0)
            t.addNote("group-commit speedup: " +
                      ResultTable::num(rps[1] / rps[0], 2) + "x");
        report.add(t);
    }

    for (auto &[label, snap] : snaps)
        report.addMetrics(label, snap);
    return report.finish();
}
