/**
 * @file
 * envy-loadgen: latency-throughput curves for the serve front end
 * (docs/SERVING.md §6).
 *
 * For each workload (zipf single-op traffic, TPC-A batch
 * transactions) the harness stands up a threaded Server over a
 * concurrent-mode store, prefills the key population, then drives the
 * Loadgen curve: one closed-loop capacity point followed by open-loop
 * points at fixed fractions of that capacity, with
 * coordinated-omission-safe percentiles (latency from the *scheduled*
 * arrival).  Every row lands in BENCH_serve.json (envy-bench-v2);
 * check_bench_json.py's serve rule holds the committed full run to
 * >= 2 workloads x >= 3 open-loop points with sane percentiles.
 *
 * Unlike the simulator benches, these numbers are host wall-clock:
 * they measure the serve stack (protocol, admission, worker handoff,
 * engine, COW controller) on whatever machine runs the bench, so
 * absolute throughput varies by host while the *shape* — p99 rising
 * toward capacity, shed appearing past saturation — is the subject.
 */

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "envysim/experiment.hh"
#include "serve/kv_engine.hh"
#include "serve/loadgen.hh"
#include "serve/loopback.hh"
#include "serve/server.hh"

using namespace envy;
using namespace envy::serve;

namespace {

struct WorkloadRun
{
    std::vector<LoadPoint> points;
    obs::MetricsSnapshot snapshot;
};

WorkloadRun
runWorkload(const LoadgenConfig &cfg)
{
    EnvyConfig storeCfg;
    storeCfg.geom = kvGeometryFor(cfg.keys + cfg.keys / 4);
    storeCfg.numWorkers = 4;
    storeCfg.numCleaners = 1;
    EnvyStore store(storeCfg);
    KvEngineConfig engCfg;
    engCfg.numShards = 8;
    KvEngine engine(store, engCfg);

    ServeConfig serveCfg;
    serveCfg.workers = 4;
    Server server(store, engine, serveCfg);

    Loadgen gen(
        &engine,
        [&server] {
            LoopbackPair pair = loopbackPair();
            server.attach(std::move(pair.server));
            return std::move(pair.client);
        },
        cfg);
    WorkloadRun run;
    run.points = gen.run();
    server.stop();
    run.snapshot = store.metrics().snapshot();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("serve", opt);

    LoadgenConfig base;
    if (opt.smoke) {
        base.keys = 20'000;
        base.clients = 4;
        base.warmupSeconds = 0.1;
        base.measureSeconds = 0.25;
        base.loadFractions = {0.5, 0.9};
    }

    ResultTable t("Serve: latency-throughput curves over the "
                  "loopback transport");
    t.setColumns({"workload", "mode", "clients", "offered_rps",
                  "achieved_rps", "p50_us", "p99_us", "p999_us",
                  "shed", "queued"});
    std::vector<std::pair<std::string, obs::MetricsSnapshot>> snaps;
    for (const std::string workload : {"zipf", "tpca"}) {
        LoadgenConfig cfg = base;
        cfg.workload = workload;
        WorkloadRun run = runWorkload(cfg);
        for (const LoadPoint &p : run.points)
            t.addRow({p.workload, p.mode,
                      ResultTable::integer(p.clients),
                      ResultTable::num(p.offeredRps, 0),
                      ResultTable::num(p.achievedRps, 0),
                      ResultTable::integer(p.p50Us),
                      ResultTable::integer(p.p99Us),
                      ResultTable::integer(p.p999Us),
                      ResultTable::integer(p.shed),
                      ResultTable::integer(p.queued)});
        snaps.emplace_back(workload, std::move(run.snapshot));
    }
    t.addNote("closed loop measures capacity; open-loop points "
              "offer fixed fractions of it with exponential "
              "arrivals");
    t.addNote("latency is measured from the scheduled arrival "
              "(coordinated-omission-safe); host wall-clock, so "
              "absolute rates are machine-dependent");
    t.addNote("zipf: single GET/PUT, theta=" +
              ResultTable::num(base.theta, 2) + ", " +
              ResultTable::integer(base.keys) + " keys; tpca: one "
              "6-op BATCH per transaction (account/teller/branch "
              "read+update)");
    report.add(t);
    for (auto &[label, snap] : snaps)
        report.addMetrics(label, snap);
    return report.finish();
}
