/**
 * @file
 * Figures 1 and 12 of the paper: the storage-technology comparison
 * and the simulation-parameter tables.  Printed from the same
 * headers/structs the simulator actually uses, so the tables cannot
 * drift from the implementation.
 */

#include "common/geometry.hh"
#include "common/units.hh"
#include "envysim/experiment.hh"
#include "envysim/system.hh"
#include "flash/flash_timing.hh"
#include "workload/tpca.hh"

using namespace envy;

namespace {

/** Paper Figure 1 (1994 values, reproduced verbatim as constants). */
void
figure1(BenchReport &report)
{
    ResultTable t("Figure 1: Feature Comparison of Storage "
                  "Technologies (1994 values)");
    t.setColumns({"feature", "disk", "DRAM", "SRAM(lp)", "Flash"});
    t.addRow({"read access", "8.3ms", "60ns", "85ns", "85ns"});
    t.addRow({"write access", "8.3ms", "60ns", "85ns", "4-10us"});
    t.addRow({"cost/MByte", "$1.00", "$35.00", "$120", "$30.00"});
    t.addRow({"retention current/GB", "0A", "1A", "2mA", "0A"});
    t.addNote("historic prices quoted from the paper; used only for "
              "the cost ratios in section 5.1");
    report.add(t);

    // The paper's cost arithmetic (§3.3, §5.1) from these numbers.
    ResultTable c("Derived cost figures (paper section 3.3 / 5.1)");
    c.setColumns({"quantity", "paper", "computed"});
    const Geometry g = Geometry::paperSystem();
    const double flash_cost =
        30.0 * (asDouble(g.flashBytes()) / double(MiB));
    const double pt_sram_mb = asDouble(g.pageTableBytes()) / double(MiB);
    const double buf_sram_mb =
        asDouble(g.effectiveWriteBufferPages()) * g.pageSize /
        double(MiB);
    const double sram_cost = 120.0 * (pt_sram_mb + buf_sram_mb);
    c.addRow({"page table SRAM / GB flash", "24 MB",
              ResultTable::num(pt_sram_mb / 2.0, 0) + " MB"});
    c.addRow({"total system cost", "~$70,000",
              "$" + ResultTable::integer(static_cast<std::uint64_t>(
                        flash_cost + sram_cost))});
    c.addRow({"pure SRAM system of same size", "~$250,000",
              "$" + ResultTable::integer(static_cast<std::uint64_t>(
                        120.0 * (asDouble(g.flashBytes()) / double(MiB))))});
    report.add(c);
}

/** Paper Figure 12: simulation parameters actually in force. */
void
figure12(BenchReport &report)
{
    const Geometry g = Geometry::paperSystem();
    const FlashTiming ft;
    ResultTable t("Figure 12: eNVy Simulation Parameters");
    t.setColumns({"parameter", "paper", "this simulator"});
    auto row = [&t](const char *name, const char *paper,
                    std::string mine) {
        t.addRow({name, paper, std::move(mine)});
    };
    row("flash array size", "2 GBytes",
        ResultTable::integer(g.flashBytes().value() / GiB) + " GiB");
    row("flash chip type", "1 MByte x 8 bits",
        ResultTable::integer(g.chipBytes().value() / MiB) + " MiB x 8");
    row("# of flash chips", "2048",
        ResultTable::integer(g.numChips()));
    row("# of flash banks", "8", ResultTable::integer(g.numBanks));
    row("chips per bank", "256", ResultTable::integer(g.pageSize));
    row("read time", "100ns",
        ResultTable::integer(ft.readTime) + "ns");
    row("program time", "4000ns",
        ResultTable::integer(ft.programTime) + "ns");
    row("erase time", "50ms",
        ResultTable::integer(ft.eraseTime / 1000000) + "ms");
    row("erase blocks/chip", "16",
        ResultTable::integer(g.blocksPerChip));
    row("segments", "128 x 16 MB",
        ResultTable::integer(g.numSegments()) + " x " +
            ResultTable::integer(g.segmentBytes().value() / MiB) +
            " MB");
    row("SRAM write buffer", "16 MBytes",
        ResultTable::integer(g.effectiveWriteBufferPages().value() *
                             g.pageSize / MiB) +
            " MiB");
    row("page table SRAM", "48 MBytes",
        ResultTable::integer(g.pageTableBytes().value() / MiB) +
        " MiB");
    report.add(t);

    const TpcaConfig tpc =
        TpcaConfig::forStoreBytes(g.logicalBytes().value());
    TpcaWorkload w(tpc, 1);
    ResultTable tp("Figure 12 (cont.): TPC Parameters");
    tp.setColumns({"parameter", "paper", "this simulator"});
    tp.addRow({"BTree fanout", "32 pointers/node",
               ResultTable::integer(tpc.treeFanout)});
    tp.addRow({"branch records / index levels", "155 / 2",
               ResultTable::integer(tpc.numBranches()) + " / " +
                   ResultTable::integer(w.branchLevels())});
    tp.addRow({"teller records / index levels", "1550 / 3",
               ResultTable::integer(tpc.numTellers()) + " / " +
                   ResultTable::integer(w.tellerLevels())});
    tp.addRow({"account records / index levels", "15.5 million / 5",
               ResultTable::integer(tpc.numAccounts) + " / " +
                   ResultTable::integer(w.accountLevels())});
    report.add(tp);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("tables", opt);
    figure1(report);
    figure12(report);
    return report.finish();
}
