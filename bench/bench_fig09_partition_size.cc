/**
 * @file
 * Figure 9: hybrid cleaning cost as a function of partition size on
 * a 128-segment array.
 *
 * The extremes reproduce the component algorithms: one segment per
 * partition is (near) pure locality gathering; one partition of 128
 * segments is pure FIFO.  The paper finds the sweet spot at 16
 * segments per partition — small enough for the gathering layer to
 * separate temperatures, large enough for FIFO to work well inside a
 * uniform band.
 */

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig09_partition_size", opt);

    const bool full = fullScaleRequested();
    std::vector<std::uint32_t> sizes = {1, 2, 4, 8, 16, 32, 64, 128};
    if (opt.smoke)
        sizes = {1, 16, 128};
    const char *localities[] = {"50/50", "30/70", "20/80", "10/90",
                                "5/95"};

    SweepRunner sweep(opt.jobs);
    for (const std::uint32_t size : sizes) {
        for (const char *loc : localities) {
            sweep.defer([=] {
                PolicySimParams p;
                p.numSegments = 128;
                p.pagesPerSegment = full ? 8192 : 2048;
                p.policy = PolicyKind::Hybrid;
                p.partitionSize = size;
                p.locality = LocalitySpec::parse(loc);
                const PolicySimResult r = runPolicySim(p);
                return ResultTable::num(r.cleaningCost, 2);
            });
        }
    }
    const std::vector<std::string> cells = sweep.run();

    ResultTable t("Figure 9: Cleaning Costs vs Partition Size "
                  "(hybrid, 128 segments, 80% utilization)");
    t.setColumns({"segments/partition", "50/50", "30/70", "20/80",
                  "10/90", "5/95"});
    std::size_t cell = 0;
    for (const std::uint32_t size : sizes) {
        std::vector<std::string> row{ResultTable::integer(size)};
        for (std::size_t l = 0; l < std::size(localities); ++l)
            row.push_back(cells[cell++]);
        t.addRow(row);
    }
    t.addNote("paper: \"the lowest overall cleaning cost occurs "
              "with a partition size of 16\"");
    report.add(t);
    return report.finish();
}
