/**
 * @file
 * Figure 6: flash cleaning cost as a function of array utilization.
 *
 * The analytic curve is u/(1-u) programs per recovered page; the
 * measured column runs the real cleaner under a uniform workload
 * with locality gathering, which pins every segment at the array
 * utilization (§4.3) and therefore traces the same curve.  The knee
 * after 80% is the paper's justification for capping live data at
 * 80% of the array.
 */

#include <cstdlib>
#include <functional>
#include <vector>

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig06_cleaning_cost", opt);

    const bool full = fullScaleRequested();
    std::vector<double> utils = {0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 0.95};
    if (opt.smoke)
        utils = {0.3, 0.8};

    ResultTable t("Figure 6: Cleaning Costs for Various Flash "
                  "Utilizations");
    t.setColumns({"utilization", "analytic u/(1-u)",
                  "measured (uniform, locality gathering)"});

    std::vector<std::function<PolicySimResult()>> tasks;
    for (const double u : utils) {
        tasks.push_back([=] {
            PolicySimParams p;
            p.numSegments = 128;
            p.pagesPerSegment = full ? 65536 : 2048;
            p.utilization = u;
            p.policy = PolicyKind::LocalityGathering;
            p.locality = LocalitySpec{0.5, 0.5}; // uniform
            p.warmupChunks = full ? 8 : 4;
            p.measureChunks = 2;
            return runPolicySim(p);
        });
    }
    const std::vector<PolicySimResult> results =
        parallelMap<PolicySimResult>(opt.jobs, std::move(tasks));

    constexpr double segs = 128;
    std::size_t cell = 0;
    for (const double u : utils) {
        // Data segments run at u * N/(N-1) (one segment is reserve).
        const double u_eff = u * segs / (segs - 1.0);
        const PolicySimResult &r = results[cell++];
        // The measured cell is read back from the metrics snapshot's
        // sim.cleaning_cost gauge, so the `metrics` block of the JSON
        // report provably matches the printed table
        // (tests/test_obs_differential.cc asserts this).
        t.addRow({ResultTable::percent(u, 0),
                  ResultTable::num(u_eff / (1.0 - u_eff), 2),
                  ResultTable::num(
                      r.finalMetrics.gauge("sim.cleaning_cost"), 2)});
        report.addMetrics("u=" + ResultTable::percent(u, 0),
                          r.finalMetrics);
    }
    t.addNote("paper: cost 4 at 80%; \"after about 80% utilization "
              "the cleaning cost quickly reaches unreasonable "
              "levels\"");
    if (!full)
        t.addNote("quick scale (2048 pages/segment); set "
                  "ENVY_SCALE=full for paper-size segments");
    report.add(t);
    return report.finish();
}
