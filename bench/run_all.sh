#!/usr/bin/env sh
# Run every bench harness and collect their JSON reports.
#
#   bench/run_all.sh [--smoke] [--json DIR] [--jobs N] [--build DIR]
#                    [--list]
#
#   --smoke      pass --smoke to every bench (reduced sweeps, for CI)
#   --json DIR   write one <bench>.json per harness into DIR
#                (default: no JSON, console tables only)
#   --jobs N     worker threads per bench (default: each bench's own
#                default, i.e. ENVY_JOBS or hardware concurrency)
#   --build DIR  build tree holding the bench binaries
#                (default: ./build)
#   --list       print the bench names this script would run, one per
#                line, and exit
#
# All binaries are checked up front: if any are missing, the full
# list is printed and nothing runs.  Exit status is nonzero if any
# bench fails.  bench_micro_ops (google benchmark, its own CLI) is
# excluded; run it directly.

set -eu

smoke=""
json_dir=""
jobs=""
build="build"
list=""

while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) smoke="--smoke" ;;
        --json) json_dir="$2"; shift ;;
        --jobs) jobs="$2"; shift ;;
        --build) build="$2"; shift ;;
        --list) list="yes" ;;
        *) echo "run_all.sh: unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

benches="
bench_tables
bench_fig06_cleaning_cost
bench_fig08_policy_comparison
bench_fig09_partition_size
bench_fig10_segment_count
bench_fig13_throughput
bench_fig14_utilization
bench_fig15_latency
bench_lifetime
bench_ext_parallel
bench_ablation_policy
bench_ablation_tradeoffs
bench_endurance
bench_fault_recovery
bench_dataplane
bench_concurrency
bench_serve
"

if [ -n "$list" ]; then
    for b in $benches; do
        echo "$b"
    done
    exit 0
fi

# Pre-scan: refuse to run anything until EVERY binary is present, and
# name all the missing ones at once rather than failing one at a time.
missing=""
for b in $benches; do
    [ -x "$build/bench/$b" ] || missing="$missing $b"
done
if [ -n "$missing" ]; then
    echo "run_all.sh: missing bench binaries in $build/bench:" >&2
    for b in $missing; do
        echo "  $b" >&2
    done
    echo "run_all.sh: build the tree first" \
         "(cmake --build $build --target$missing)" >&2
    exit 1
fi

[ -n "$json_dir" ] && mkdir -p "$json_dir"

status=0
for b in $benches; do
    bin="$build/bench/$b"
    echo "### $b"
    set -- $smoke
    [ -n "$jobs" ] && set -- "$@" --jobs "$jobs"
    [ -n "$json_dir" ] && set -- "$@" --json "$json_dir/${b#bench_}.json"
    if ! "$bin" "$@"; then
        echo "run_all.sh: $b FAILED" >&2
        status=1
    fi
    echo
done
exit $status
