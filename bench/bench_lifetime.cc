/**
 * @file
 * Section 5.5: estimated eNVy lifetime.
 *
 * The paper's worked example: at 10,000 TPS the simulator reports
 * 10,376 pages/s flushed at a cleaning cost of 1.97; with 1M-cycle
 * parts a 2 GB array lasts
 *
 *   2,048 MB * 4,096 pages/MB * 1e6 cycles
 *   --------------------------------------- = 3,151 days (8.63 yr)
 *        10,376 * (1 + 1.97) * 86,400
 *
 * This harness reproduces both halves: the measured flush rate and
 * cleaning cost at 10k TPS, and the resulting lifetime, plus the
 * paper-arithmetic check with their exact numbers.
 */

#include "envysim/experiment.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("lifetime", opt);

    const double scale = defaultScale();
    TimedParams p = paperTimedParams(10000, 0.8, scale);
    p.warmupSeconds *= 2; // steadier cleaning-cost estimate
    if (opt.smoke)
        p.warmupSeconds /= 4;
    const TimedResult r = runTimedSim(p);

    // The measured flush rate scales with the workload, but the
    // lifetime formula uses the full 2 GB geometry either way (the
    // paper's per-array write capacity).
    const Geometry full_geom = Geometry::paperSystem();
    const double scaled_rate =
        r.flushPagesPerSec * (scale < 1.0 ? 1.0 : 1.0);

    TimedResult scaled = r;
    scaled.flushPagesPerSec = scaled_rate;
    const double days = scaled.lifetimeDays(full_geom, 1000000);

    ResultTable t("Section 5.5: Estimated eNVy Lifetime at "
                  "10,000 TPS (1M-cycle parts)");
    t.setColumns({"quantity", "paper", "measured"});
    t.addRow({"pages flushed per second", "10,376",
              ResultTable::num(r.flushPagesPerSec, 0)});
    t.addRow({"cleaning cost", "1.97",
              ResultTable::num(r.cleaningCost, 2)});
    t.addRow({"lifetime (days)", "3,151",
              ResultTable::num(days, 0)});
    t.addRow({"lifetime (years)", "8.63",
              ResultTable::num(days / 365.0, 2)});

    // Cross-check the formula itself on the paper's own numbers.
    TimedResult paper;
    paper.flushPagesPerSec = 10376;
    paper.cleaningCost = 1.97;
    t.addRow({"formula check w/ paper inputs", "3,151",
              ResultTable::num(paper.lifetimeDays(full_geom, 1000000),
                               0)});
    if (scale < 1.0)
        t.addNote("measured on the scaled-down array; flush rate "
                  "per TPS matches the 2 GB system (the account "
                  "working set dwarfs the buffer either way)");
    report.add(t);
    return report.finish();
}
