/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. FIFO vs greedy as the within-band cleaner (§4.4 claims FIFO
 *     "produces the same cleaning cost" as greedy).
 *  2. Flush-to-origin on/off: what locality preservation is worth —
 *     greedy is exactly "hybrid minus flush-to-origin minus
 *     redistribution", so the 3-way comparison isolates it.
 *  3. Initial placement: sequential (a loaded database, the regime
 *     §4.3 maintains) vs striped (gathering must build the sort from
 *     scratch).
 *  4. Wear-leveling threshold: leveling overhead vs achieved wear
 *     spread (§4.3 uses 100 cycles).
 *  5. Moving hot set: how each policy copes when the locality the
 *     paper assumes stationary drifts over time.
 */

#include <vector>

#include "envysim/experiment.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

namespace {

PolicySimParams
base(PolicyKind kind, const char *loc)
{
    PolicySimParams p;
    p.numSegments = 128;
    p.pagesPerSegment = 2048;
    p.policy = kind;
    p.partitionSize = 16;
    p.locality = LocalitySpec::parse(loc);
    return p;
}

void
fifoVsGreedy()
{
    ResultTable t("Ablation 1: FIFO vs greedy victim selection");
    t.setColumns({"locality", "greedy", "fifo"});
    for (const char *loc : {"50/50", "20/80", "5/95"}) {
        const auto g = runPolicySim(base(PolicyKind::Greedy, loc));
        const auto f = runPolicySim(base(PolicyKind::Fifo, loc));
        t.addRow({loc, ResultTable::num(g.cleaningCost, 2),
                  ResultTable::num(f.cleaningCost, 2)});
    }
    t.addNote("paper §4.4: FIFO was chosen over greedy inside "
              "partitions because it is simpler and costs the same");
    t.print();
}

void
localityComponents()
{
    ResultTable t("Ablation 2: what each hybrid ingredient buys "
                  "(cleaning cost at 10/90)");
    t.setColumns({"configuration", "cost"});
    const auto greedy =
        runPolicySim(base(PolicyKind::Greedy, "10/90"));
    const auto lg =
        runPolicySim(base(PolicyKind::LocalityGathering, "10/90"));
    const auto hybrid =
        runPolicySim(base(PolicyKind::Hybrid, "10/90"));
    t.addRow({"greedy (no locality machinery)",
              ResultTable::num(greedy.cleaningCost, 2)});
    t.addRow({"locality gathering (per-segment origins)",
              ResultTable::num(lg.cleaningCost, 2)});
    t.addRow({"hybrid (origins per partition + FIFO inside)",
              ResultTable::num(hybrid.cleaningCost, 2)});
    t.print();
}

void
placement()
{
    ResultTable t("Ablation 3: initial placement (locality "
                  "gathering, 10/90)");
    t.setColumns({"placement", "cost", "cleans"});
    for (const auto placement :
         {PolicySimParams::Placement::Sequential,
          PolicySimParams::Placement::Striped}) {
        auto p = base(PolicyKind::LocalityGathering, "10/90");
        p.placement = placement;
        const auto r = runPolicySim(p);
        t.addRow({placement ==
                          PolicySimParams::Placement::Sequential
                      ? "sequential (sorted load)"
                      : "striped (unsorted; gathering from scratch)",
                  ResultTable::num(r.cleaningCost, 2),
                  ResultTable::integer(r.cleans)});
    }
    t.addNote("gathering maintains a temperature sort cheaply; "
              "building one from a fully mixed array is slow, which "
              "is why load order matters");
    t.print();
}

void
workloadShift()
{
    ResultTable t("Ablation 5: moving hot set (5/95; hot region "
                  "rotates by the given pages per chunk)");
    t.setColumns({"shift/chunk", "greedy", "locality gathering",
                  "hybrid"});
    const std::uint64_t pages =
        static_cast<std::uint64_t>(128 * 2048 * 0.8);
    for (const double frac : {0.0, 0.01, 0.05, 0.25}) {
        std::vector<std::string> row{
            frac == 0.0 ? "0 (stationary)"
                        : ResultTable::percent(frac, 0) +
                              " of pages"};
        for (const PolicyKind kind :
             {PolicyKind::Greedy, PolicyKind::LocalityGathering,
              PolicyKind::Hybrid}) {
            auto p = base(kind, "5/95");
            p.shiftPerChunk =
                static_cast<std::uint64_t>(pages * frac);
            p.measureChunks = 8;
            const auto r = runPolicySim(p);
            row.push_back(ResultTable::num(r.cleaningCost, 2));
        }
        t.addRow({row[0], row[1], row[2], row[3]});
    }
    t.addNote("the write-rate trackers decay exponentially, so the "
              "locality policies re-learn a drifting hot set instead "
              "of pinning free space to stale regions");
    t.print();
}

void
wearThreshold()
{
    ResultTable t("Ablation 4: wear-leveling threshold (locality "
                  "gathering, 5/95)");
    t.setColumns({"threshold", "cleaning cost", "wear spread",
                  "rotations"});
    for (const std::uint64_t thr : {8ull, 32ull, 100ull, 1ull << 60}) {
        auto p = base(PolicyKind::LocalityGathering, "5/95");
        p.wearThreshold = thr;
        const auto r = runPolicySim(p);
        t.addRow({thr == 1ull << 60 ? "off"
                                    : ResultTable::integer(thr),
                  ResultTable::num(r.cleaningCost, 2),
                  ResultTable::integer(r.wearSpread),
                  ResultTable::integer(r.wearRotations)});
    }
    t.addNote("paper §4.3 swaps data when the spread exceeds 100 "
              "cycles; tighter thresholds level harder for a little "
              "more cleaning work");
    t.print();
}

} // namespace

int
main()
{
    fifoVsGreedy();
    localityComponents();
    placement();
    workloadShift();
    wearThreshold();
    return 0;
}
