/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. FIFO vs greedy as the within-band cleaner (§4.4 claims FIFO
 *     "produces the same cleaning cost" as greedy).
 *  2. Flush-to-origin on/off: what locality preservation is worth —
 *     greedy is exactly "hybrid minus flush-to-origin minus
 *     redistribution", so the 3-way comparison isolates it.
 *  3. Initial placement: sequential (a loaded database, the regime
 *     §4.3 maintains) vs striped (gathering must build the sort from
 *     scratch).
 *  4. Wear-leveling threshold: leveling overhead vs achieved wear
 *     spread (§4.3 uses 100 cycles).
 *  5. Moving hot set: how each policy copes when the locality the
 *     paper assumes stationary drifts over time.
 */

#include <vector>

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

namespace {

PolicySimParams
base(PolicyKind kind, const char *loc)
{
    PolicySimParams p;
    p.numSegments = 128;
    p.pagesPerSegment = 2048;
    p.policy = kind;
    p.partitionSize = 16;
    p.locality = LocalitySpec::parse(loc);
    return p;
}

/** Run one sim per params entry, in parallel; costs in entry order. */
std::vector<PolicySimResult>
runAll(const BenchOptions &opt, std::vector<PolicySimParams> params)
{
    std::vector<std::function<PolicySimResult()>> tasks;
    tasks.reserve(params.size());
    for (const PolicySimParams &p : params)
        tasks.push_back([p] { return runPolicySim(p); });
    return parallelMap<PolicySimResult>(opt.jobs, std::move(tasks));
}

void
fifoVsGreedy(const BenchOptions &opt, BenchReport &report)
{
    std::vector<const char *> locs = {"50/50", "20/80", "5/95"};
    if (opt.smoke)
        locs = {"20/80"};
    std::vector<PolicySimParams> params;
    for (const char *loc : locs) {
        params.push_back(base(PolicyKind::Greedy, loc));
        params.push_back(base(PolicyKind::Fifo, loc));
    }
    const auto results = runAll(opt, std::move(params));

    ResultTable t("Ablation 1: FIFO vs greedy victim selection");
    t.setColumns({"locality", "greedy", "fifo"});
    for (std::size_t i = 0; i < locs.size(); ++i) {
        t.addRow({locs[i],
                  ResultTable::num(results[2 * i].cleaningCost, 2),
                  ResultTable::num(results[2 * i + 1].cleaningCost,
                                   2)});
    }
    t.addNote("paper §4.4: FIFO was chosen over greedy inside "
              "partitions because it is simpler and costs the same");
    report.add(t);
}

void
localityComponents(const BenchOptions &opt, BenchReport &report)
{
    const auto results =
        runAll(opt, {base(PolicyKind::Greedy, "10/90"),
                     base(PolicyKind::LocalityGathering, "10/90"),
                     base(PolicyKind::Hybrid, "10/90")});

    ResultTable t("Ablation 2: what each hybrid ingredient buys "
                  "(cleaning cost at 10/90)");
    t.setColumns({"configuration", "cost"});
    t.addRow({"greedy (no locality machinery)",
              ResultTable::num(results[0].cleaningCost, 2)});
    t.addRow({"locality gathering (per-segment origins)",
              ResultTable::num(results[1].cleaningCost, 2)});
    t.addRow({"hybrid (origins per partition + FIFO inside)",
              ResultTable::num(results[2].cleaningCost, 2)});
    report.add(t);
}

void
placement(const BenchOptions &opt, BenchReport &report)
{
    const PolicySimParams::Placement placements[] = {
        PolicySimParams::Placement::Sequential,
        PolicySimParams::Placement::Striped};
    std::vector<PolicySimParams> params;
    for (const auto placement : placements) {
        auto p = base(PolicyKind::LocalityGathering, "10/90");
        p.placement = placement;
        params.push_back(p);
    }
    const auto results = runAll(opt, std::move(params));

    ResultTable t("Ablation 3: initial placement (locality "
                  "gathering, 10/90)");
    t.setColumns({"placement", "cost", "cleans"});
    for (std::size_t i = 0; i < std::size(placements); ++i) {
        t.addRow({placements[i] ==
                          PolicySimParams::Placement::Sequential
                      ? "sequential (sorted load)"
                      : "striped (unsorted; gathering from scratch)",
                  ResultTable::num(results[i].cleaningCost, 2),
                  ResultTable::integer(results[i].cleans)});
    }
    t.addNote("gathering maintains a temperature sort cheaply; "
              "building one from a fully mixed array is slow, which "
              "is why load order matters");
    report.add(t);
}

void
workloadShift(const BenchOptions &opt, BenchReport &report)
{
    std::vector<double> fracs = {0.0, 0.01, 0.05, 0.25};
    if (opt.smoke)
        fracs = {0.0, 0.05};
    const PolicyKind kinds[] = {PolicyKind::Greedy,
                                PolicyKind::LocalityGathering,
                                PolicyKind::Hybrid};
    const std::uint64_t pages =
        static_cast<std::uint64_t>(128 * 2048 * 0.8);

    std::vector<PolicySimParams> params;
    for (const double frac : fracs) {
        for (const PolicyKind kind : kinds) {
            auto p = base(kind, "5/95");
            p.shiftPerChunk =
                static_cast<std::uint64_t>(pages * frac);
            p.measureChunks = 8;
            params.push_back(p);
        }
    }
    const auto results = runAll(opt, std::move(params));

    ResultTable t("Ablation 5: moving hot set (5/95; hot region "
                  "rotates by the given pages per chunk)");
    t.setColumns({"shift/chunk", "greedy", "locality gathering",
                  "hybrid"});
    std::size_t cell = 0;
    for (const double frac : fracs) {
        std::vector<std::string> row{
            frac == 0.0 ? "0 (stationary)"
                        : ResultTable::percent(frac, 0) +
                              " of pages"};
        for (std::size_t k = 0; k < std::size(kinds); ++k)
            row.push_back(
                ResultTable::num(results[cell++].cleaningCost, 2));
        t.addRow(row);
    }
    t.addNote("the write-rate trackers decay exponentially, so the "
              "locality policies re-learn a drifting hot set instead "
              "of pinning free space to stale regions");
    report.add(t);
}

void
wearThreshold(const BenchOptions &opt, BenchReport &report)
{
    std::vector<std::uint64_t> thresholds = {8, 32, 100, 1ull << 60};
    if (opt.smoke)
        thresholds = {100, 1ull << 60};
    std::vector<PolicySimParams> params;
    for (const std::uint64_t thr : thresholds) {
        auto p = base(PolicyKind::LocalityGathering, "5/95");
        p.wearThreshold = thr;
        params.push_back(p);
    }
    const auto results = runAll(opt, std::move(params));

    ResultTable t("Ablation 4: wear-leveling threshold (locality "
                  "gathering, 5/95)");
    t.setColumns({"threshold", "cleaning cost", "wear spread",
                  "rotations"});
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        t.addRow({thresholds[i] == 1ull << 60
                      ? "off"
                      : ResultTable::integer(thresholds[i]),
                  ResultTable::num(results[i].cleaningCost, 2),
                  ResultTable::integer(results[i].wearSpread),
                  ResultTable::integer(results[i].wearRotations)});
    }
    t.addNote("paper §4.3 swaps data when the spread exceeds 100 "
              "cycles; tighter thresholds level harder for a little "
              "more cleaning work");
    report.add(t);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("ablation_policy", opt);
    fifoVsGreedy(opt, report);
    localityComponents(opt, report);
    placement(opt, report);
    workloadShift(opt, report);
    wearThreshold(opt, report);
    return report.finish();
}
