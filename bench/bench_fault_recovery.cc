/**
 * @file
 * Recovery cost by crash-point class.
 *
 * For every registered crash point, power is cut at a few of its
 * occurrences inside a deterministic churn-plus-transactions
 * workload; Recovery::run then rebuilds the store.  The table
 * reports, per class of crash point, how expensive that rebuild was
 * (host wall-clock) and how much repair work it did: stale flash
 * copies reclaimed, pinned shadows swept, buffered pages kept, and
 * how often an interrupted clean or wear rotation had to be resumed.
 *
 * The paper's recovery story (§3.4) is "switch on and go" — the
 * interesting part is that the cost is dominated by the page-table
 * scan, not by which operation the failure interrupted.
 *
 * Every (point, occurrence) case builds its own store and injector
 * (the crash-point sink is thread-local), so the cases fan out
 * across --jobs workers; only the aggregation runs serially, in
 * schedule order.
 */

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "envy/envy_store.hh"
#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "faults/fault_injector.hh"
#include "sim/random.hh"
#include "txn/shadow.hh"

using namespace envy;

namespace {

EnvyConfig
benchStore()
{
    EnvyConfig cfg;
    cfg.geom.pageSize = 64;
    cfg.geom.blockBytes = 128;
    cfg.geom.blocksPerChip = 4;
    cfg.geom.numBanks = 2;
    cfg.geom.logicalPages = 640;
    cfg.geom.writeBufferPages = 16;
    cfg.partitionSize = 4;
    cfg.wearThreshold = 0; // rotate eagerly so wear points are hit
    return cfg;
}

/** Churn with a shadow transaction every few ops; may throw PowerLoss. */
void
workload(EnvyStore &store, std::uint64_t ops)
{
    Rng rng(41);
    ShadowManager txns(store);
    std::vector<std::uint8_t> data(2 * store.config().geom.pageSize);
    const std::uint64_t size = store.size();

    try {
        for (std::uint64_t op = 0; op < ops; ++op) {
            const Addr addr = rng.chance(0.7) ? rng.below(size / 4)
                                              : rng.below(size);
            const std::uint64_t len =
                std::min<std::uint64_t>(rng.between(1, data.size()),
                                        size - addr);
            for (std::uint64_t i = 0; i < len; ++i)
                data[i] = static_cast<std::uint8_t>(rng.next());
            if (rng.chance(0.25)) {
                const auto id = txns.begin();
                txns.write(id, addr, {data.data(), len});
                if (rng.chance(0.4))
                    txns.abort(id);
                else
                    txns.commit(id);
            } else {
                store.write(addr, {data.data(), len});
            }
        }
    } catch (const PowerLoss &) {
        // The machine died: the manager must not write rollbacks
        // through the dead store from its destructor.
        txns.powerLost();
        throw;
    }
}

/** Class of a crash point: its name up to the second dot. */
std::string
classOf(const std::string &point)
{
    const auto first = point.find('.');
    const auto second = point.find('.', first + 1);
    return point.substr(0, second);
}

struct CaseOutcome
{
    std::string point;
    bool crashed = false;
    double us = 0;
    RecoveryReport rep;
};

CaseOutcome
runCase(const std::string &point, std::uint64_t occ, std::uint64_t ops)
{
    CaseOutcome out;
    out.point = point;

    FaultPlan plan;
    plan.crashPoint = point;
    plan.crashOccurrence = occ;
    FaultInjector inj(plan);
    inj.arm();
    EnvyStore store(benchStore());
    inj.attachFlash(store.flash());
    try {
        workload(store, ops);
    } catch (const PowerLoss &) {
        out.crashed = true;
    }
    inj.disarm();
    if (!out.crashed)
        return out;

    const auto t0 = std::chrono::steady_clock::now();
    out.rep = store.powerFailAndRecover();
    const auto t1 = std::chrono::steady_clock::now();
    out.us = std::chrono::duration<double, std::micro>(t1 - t0)
                 .count();
    return out;
}

struct ClassStats
{
    std::uint64_t cases = 0;
    double totalUs = 0, maxUs = 0;
    std::uint64_t stale = 0, shadows = 0, kept = 0, orphans = 0;
    std::uint64_t cleansResumed = 0, wearResumed = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fault_recovery", opt);
    const std::uint64_t ops = opt.smoke ? 120 : 300;

    // Probe: how often does each point fire in this workload?
    std::map<std::string, std::uint64_t> hits;
    {
        FaultInjector probe(FaultPlan{});
        probe.arm();
        EnvyStore store(benchStore());
        probe.attachFlash(store.flash());
        workload(store, ops);
        probe.disarm();
        hits = probe.hitCounts();
    }

    // One task per scheduled (point, occurrence) case.
    std::vector<std::function<CaseOutcome()>> tasks;
    for (const auto &[point, count] : hits) {
        // First, middle and last occurrence of every point.
        std::vector<std::uint64_t> occs{1};
        if (count > 2)
            occs.push_back(count / 2);
        if (count > 1)
            occs.push_back(count);
        for (const std::uint64_t occ : occs) {
            tasks.push_back([point = point, occ, ops] {
                return runCase(point, occ, ops);
            });
        }
    }
    const std::vector<CaseOutcome> outcomes =
        parallelMap<CaseOutcome>(opt.jobs, std::move(tasks));

    std::map<std::string, ClassStats> classes;
    for (const CaseOutcome &out : outcomes) {
        if (!out.crashed)
            continue;
        ClassStats &c = classes[classOf(out.point)];
        ++c.cases;
        c.totalUs += out.us;
        c.maxUs = std::max(c.maxUs, out.us);
        c.stale += out.rep.staleFlashReclaimed;
        c.shadows += out.rep.shadowsSwept;
        c.kept += out.rep.bufferEntriesKept;
        c.orphans += out.rep.bufferOrphansDropped;
        c.cleansResumed += out.rep.cleanResumed ? 1 : 0;
        c.wearResumed += out.rep.wearResumed ? 1 : 0;
    }

    ResultTable t("Recovery cost by crash-point class (8 segments x "
                  "128 pages x 64 B, " +
                  ResultTable::integer(ops) +
                  "-op churn/txn workload)");
    t.setColumns({"class", "cases", "mean_us", "max_us", "stale",
                  "shadows", "kept", "orphans", "clean", "wear"});
    for (const auto &[name, c] : classes) {
        const double cases = static_cast<double>(c.cases);
        t.addRow({name, ResultTable::integer(c.cases),
                  ResultTable::num(c.totalUs / cases, 1),
                  ResultTable::num(c.maxUs, 1),
                  ResultTable::num(
                      static_cast<double>(c.stale) / cases, 1),
                  ResultTable::num(
                      static_cast<double>(c.shadows) / cases, 2),
                  ResultTable::num(
                      static_cast<double>(c.kept) / cases, 1),
                  ResultTable::num(
                      static_cast<double>(c.orphans) / cases, 2),
                  ResultTable::integer(c.cleansResumed),
                  ResultTable::integer(c.wearResumed)});
    }
    t.addNote("mean_us/max_us are host wall-clock and vary run to "
              "run; the repair-work columns are deterministic");
    report.add(t);
    return report.finish();
}
