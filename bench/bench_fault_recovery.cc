/**
 * @file
 * Recovery cost by crash-point class.
 *
 * For every registered crash point, power is cut at a few of its
 * occurrences inside a deterministic churn-plus-transactions
 * workload; Recovery::run then rebuilds the store.  The table
 * reports, per class of crash point, how expensive that rebuild was
 * (host wall-clock) and how much repair work it did: stale flash
 * copies reclaimed, pinned shadows swept, buffered pages kept, and
 * how often an interrupted clean or wear rotation had to be resumed.
 *
 * The paper's recovery story (§3.4) is "switch on and go" — the
 * interesting part is that the cost is dominated by the page-table
 * scan, not by which operation the failure interrupted.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "envy/envy_store.hh"
#include "faults/fault_injector.hh"
#include "sim/random.hh"
#include "txn/shadow.hh"

using namespace envy;

namespace {

EnvyConfig
benchStore()
{
    EnvyConfig cfg;
    cfg.geom.pageSize = 64;
    cfg.geom.blockBytes = 128;
    cfg.geom.blocksPerChip = 4;
    cfg.geom.numBanks = 2;
    cfg.geom.logicalPages = 640;
    cfg.geom.writeBufferPages = 16;
    cfg.partitionSize = 4;
    cfg.wearThreshold = 0; // rotate eagerly so wear points are hit
    return cfg;
}

/** Churn with a shadow transaction every few ops; may throw PowerLoss. */
void
workload(EnvyStore &store, std::uint64_t ops)
{
    Rng rng(41);
    ShadowManager txns(store);
    std::vector<std::uint8_t> data(2 * store.config().geom.pageSize);
    const std::uint64_t size = store.size();

    try {
        for (std::uint64_t op = 0; op < ops; ++op) {
            const Addr addr = rng.chance(0.7) ? rng.below(size / 4)
                                              : rng.below(size);
            const std::uint64_t len =
                std::min<std::uint64_t>(rng.between(1, data.size()),
                                        size - addr);
            for (std::uint64_t i = 0; i < len; ++i)
                data[i] = static_cast<std::uint8_t>(rng.next());
            if (rng.chance(0.25)) {
                const auto id = txns.begin();
                txns.write(id, addr, {data.data(), len});
                if (rng.chance(0.4))
                    txns.abort(id);
                else
                    txns.commit(id);
            } else {
                store.write(addr, {data.data(), len});
            }
        }
    } catch (const PowerLoss &) {
        // The machine died: the manager must not write rollbacks
        // through the dead store from its destructor.
        txns.powerLost();
        throw;
    }
}

/** Class of a crash point: its name up to the second dot. */
std::string
classOf(const std::string &point)
{
    const auto first = point.find('.');
    const auto second = point.find('.', first + 1);
    return point.substr(0, second);
}

struct ClassStats
{
    std::uint64_t cases = 0;
    double totalUs = 0, maxUs = 0;
    std::uint64_t stale = 0, shadows = 0, kept = 0, orphans = 0;
    std::uint64_t cleansResumed = 0, wearResumed = 0;
};

} // namespace

int
main()
{
    constexpr std::uint64_t ops = 300;

    // Probe: how often does each point fire in this workload?
    std::map<std::string, std::uint64_t> hits;
    {
        FaultInjector probe(FaultPlan{});
        probe.arm();
        EnvyStore store(benchStore());
        probe.attachFlash(store.flash());
        workload(store, ops);
        probe.disarm();
        hits = probe.hitCounts();
    }

    std::map<std::string, ClassStats> classes;
    for (const auto &[point, count] : hits) {
        // First, middle and last occurrence of every point.
        std::vector<std::uint64_t> occs{1};
        if (count > 2)
            occs.push_back(count / 2);
        if (count > 1)
            occs.push_back(count);
        for (const std::uint64_t occ : occs) {
            FaultPlan plan;
            plan.crashPoint = point;
            plan.crashOccurrence = occ;
            FaultInjector inj(plan);
            inj.arm();
            EnvyStore store(benchStore());
            inj.attachFlash(store.flash());
            bool crashed = false;
            try {
                workload(store, ops);
            } catch (const PowerLoss &) {
                crashed = true;
            }
            inj.disarm();
            if (!crashed)
                continue;

            const auto t0 = std::chrono::steady_clock::now();
            const RecoveryReport rep = store.powerFailAndRecover();
            const auto t1 = std::chrono::steady_clock::now();
            const double us =
                std::chrono::duration<double, std::micro>(t1 - t0)
                    .count();

            ClassStats &c = classes[classOf(point)];
            ++c.cases;
            c.totalUs += us;
            c.maxUs = std::max(c.maxUs, us);
            c.stale += rep.staleFlashReclaimed;
            c.shadows += rep.shadowsSwept;
            c.kept += rep.bufferEntriesKept;
            c.orphans += rep.bufferOrphansDropped;
            c.cleansResumed += rep.cleanResumed ? 1 : 0;
            c.wearResumed += rep.wearResumed ? 1 : 0;
        }
    }

    std::printf("# Recovery cost by crash-point class\n");
    std::printf("# store: 8 segments x 128 pages x 64 B, %llu-op "
                "churn/txn workload\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-18s %5s %9s %9s %7s %8s %6s %7s %6s %5s\n",
                "class", "cases", "mean_us", "max_us", "stale",
                "shadows", "kept", "orphans", "clean", "wear");
    for (const auto &[name, c] : classes) {
        std::printf(
            "%-18s %5llu %9.1f %9.1f %7.1f %8.2f %6.1f %7.2f "
            "%6llu %5llu\n",
            name.c_str(), static_cast<unsigned long long>(c.cases),
            c.totalUs / static_cast<double>(c.cases), c.maxUs,
            static_cast<double>(c.stale) /
                static_cast<double>(c.cases),
            static_cast<double>(c.shadows) /
                static_cast<double>(c.cases),
            static_cast<double>(c.kept) /
                static_cast<double>(c.cases),
            static_cast<double>(c.orphans) /
                static_cast<double>(c.cases),
            static_cast<unsigned long long>(c.cleansResumed),
            static_cast<unsigned long long>(c.wearResumed));
    }
    return 0;
}
