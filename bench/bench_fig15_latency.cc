/**
 * @file
 * Figure 15: host-visible read and write latencies as a function of
 * the transaction request rate.  Below saturation both are nearly
 * constant (paper: ~180 ns reads, ~200 ns writes — raw access is
 * 160 ns; the write premium is the copy-on-write transfer).  Past
 * saturation the write buffer is perpetually full, each copy-on-write
 * stalls behind a flush (and often a clean), and the average write
 * latency jumps into the microseconds while reads stay fast thanks
 * to operation suspension.
 */

#include "envysim/experiment.hh"
#include "envysim/system.hh"

using namespace envy;

int
main()
{
    const double scale = defaultScale();
    const double rates[] = {5000,  10000, 15000, 20000, 25000,
                            30000, 35000, 40000, 50000};

    ResultTable t("Figure 15: I/O Latency for Increasing Request "
                  "Rates");
    t.setColumns({"request rate (TPS)", "read latency",
                  "write latency", "write p99", "stalled writes"});

    for (const double rate : rates) {
        TimedParams p = paperTimedParams(rate, 0.8, scale);
        const TimedResult r = runTimedSim(p);
        t.addRow({ResultTable::integer(
                      static_cast<std::uint64_t>(rate)),
                  ResultTable::num(r.readLatencyNs, 0) + "ns",
                  ResultTable::num(r.writeLatencyNs, 0) + "ns",
                  ResultTable::num(r.writeLatencyP99Ns, 0) + "ns",
                  ResultTable::integer(r.foregroundStalls)});
    }
    t.addNote("paper: ~180ns reads / ~200ns writes until "
              "saturation, then write latency jumps to 7.2us and "
              "climbs to 7.6us while reads stay flat");
    if (scale < 1.0)
        t.addNote("quick scale; ENVY_SCALE=full for the 2 GB "
                  "system");
    t.print();
    return 0;
}
