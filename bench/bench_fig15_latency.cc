/**
 * @file
 * Figure 15: host-visible read and write latencies as a function of
 * the transaction request rate.  Below saturation both are nearly
 * constant (paper: ~180 ns reads, ~200 ns writes — raw access is
 * 160 ns; the write premium is the copy-on-write transfer).  Past
 * saturation the write buffer is perpetually full, each copy-on-write
 * stalls behind a flush (and often a clean), and the average write
 * latency jumps into the microseconds while reads stay fast thanks
 * to operation suspension.
 */

#include <functional>

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig15_latency", opt);

    const double scale = defaultScale();
    std::vector<double> rates = {5000,  10000, 15000, 20000, 25000,
                                 30000, 35000, 40000, 50000};
    if (opt.smoke)
        rates = {5000, 40000};

    std::vector<std::function<TimedResult()>> tasks;
    for (const double rate : rates) {
        tasks.push_back([=] {
            TimedParams p = paperTimedParams(rate, 0.8, scale);
            return runTimedSim(p);
        });
    }
    const std::vector<TimedResult> results =
        parallelMap<TimedResult>(opt.jobs, std::move(tasks));

    ResultTable t("Figure 15: I/O Latency for Increasing Request "
                  "Rates");
    t.setColumns({"request rate (TPS)", "read latency",
                  "write latency", "write p99", "stalled writes"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const TimedResult &r = results[i];
        t.addRow({ResultTable::integer(
                      static_cast<std::uint64_t>(rates[i])),
                  ResultTable::num(r.readLatencyNs, 0) + "ns",
                  ResultTable::num(r.writeLatencyNs, 0) + "ns",
                  ResultTable::num(r.writeLatencyP99Ns, 0) + "ns",
                  ResultTable::integer(r.foregroundStalls)});
    }
    t.addNote("paper: ~180ns reads / ~200ns writes until "
              "saturation, then write latency jumps to 7.2us and "
              "climbs to 7.6us while reads stay flat");
    if (scale < 1.0)
        t.addNote("quick scale; ENVY_SCALE=full for the 2 GB "
                  "system");
    report.add(t);
    return report.finish();
}
