/**
 * @file
 * Figure 10: hybrid cleaning cost as a function of the number of
 * segments the (fixed-size) array is divided into, with a fixed
 * number of partitions (8, matching the paper's 128/16).
 *
 * Smaller segments let the cleaner work at a finer granularity;
 * beyond the point where each segment is less than ~1% of the array
 * the gains are marginal (the paper's argument for why its huge
 * 16 MB segments are acceptable).
 */

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig10_segment_count", opt);

    const bool full = fullScaleRequested();
    // Fixed array size: pages = segments x pagesPerSegment constant.
    const std::uint64_t array_pages = full ? 2097152 : 524288;
    std::vector<std::uint32_t> counts = {32, 64, 128, 256, 512, 1024};
    if (opt.smoke)
        counts = {32, 64, 128};
    const char *localities[] = {"50/50", "20/80", "10/90", "5/95"};

    // One closure per cell, row-major; the sweep fans them out.
    SweepRunner sweep(opt.jobs);
    for (const std::uint32_t segments : counts) {
        for (const char *loc : localities) {
            sweep.defer([=] {
                PolicySimParams p;
                p.numSegments = segments;
                p.pagesPerSegment = array_pages / segments;
                p.policy = PolicyKind::Hybrid;
                p.partitionSize = segments / 8;
                p.locality = LocalitySpec::parse(loc);
                const PolicySimResult r = runPolicySim(p);
                return ResultTable::num(r.cleaningCost, 2);
            });
        }
    }
    const std::vector<std::string> cells = sweep.run();

    ResultTable t("Figure 10: Cleaning Costs vs Number of Segments "
                  "(hybrid, fixed array size, 8 partitions)");
    t.setColumns(
        {"segments", "50/50", "20/80", "10/90", "5/95"});
    std::size_t cell = 0;
    for (const std::uint32_t segments : counts) {
        std::vector<std::string> row{ResultTable::integer(segments)};
        for (std::size_t l = 0; l < std::size(localities); ++l)
            row.push_back(cells[cell++]);
        t.addRow(row);
    }
    t.addNote("paper: \"cleaning efficiency does get better as the "
              "system is divided into more and more segments... "
              "after each segment represents less than 1% of the "
              "array, further gains are marginal\"");
    report.add(t);
    return report.finish();
}
