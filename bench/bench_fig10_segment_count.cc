/**
 * @file
 * Figure 10: hybrid cleaning cost as a function of the number of
 * segments the (fixed-size) array is divided into, with a fixed
 * number of partitions (8, matching the paper's 128/16).
 *
 * Smaller segments let the cleaner work at a finer granularity;
 * beyond the point where each segment is less than ~1% of the array
 * the gains are marginal (the paper's argument for why its huge
 * 16 MB segments are acceptable).
 */

#include "envysim/experiment.hh"
#include "envysim/policy_sim.hh"
#include "envysim/system.hh"

using namespace envy;

int
main()
{
    const bool full = fullScaleRequested();
    // Fixed array size: pages = segments x pagesPerSegment constant.
    const std::uint64_t array_pages = full ? 2097152 : 524288;
    const std::uint32_t counts[] = {32, 64, 128, 256, 512, 1024};
    const char *localities[] = {"50/50", "20/80", "10/90", "5/95"};

    ResultTable t("Figure 10: Cleaning Costs vs Number of Segments "
                  "(hybrid, fixed array size, 8 partitions)");
    t.setColumns(
        {"segments", "50/50", "20/80", "10/90", "5/95"});

    for (const std::uint32_t segments : counts) {
        std::vector<std::string> row{ResultTable::integer(segments)};
        for (const char *loc : localities) {
            PolicySimParams p;
            p.numSegments = segments;
            p.pagesPerSegment = array_pages / segments;
            p.policy = PolicyKind::Hybrid;
            p.partitionSize = segments / 8;
            p.locality = LocalitySpec::parse(loc);
            const PolicySimResult r = runPolicySim(p);
            row.push_back(ResultTable::num(r.cleaningCost, 2));
        }
        t.addRow({row[0], row[1], row[2], row[3], row[4]});
    }
    t.addNote("paper: \"cleaning efficiency does get better as the "
              "system is divided into more and more segments... "
              "after each segment represents less than 1% of the "
              "array, further gains are marginal\"");
    t.print();
    return 0;
}
