/**
 * @file
 * Section 6 hardware extension: multiple program and erase
 * operations issued to different flash banks concurrently.  The
 * paper: "with the cleaner executing 4 to 8 concurrent programming
 * operations, the average time to flush a page can drop from 4us to
 * less than 1us", and parallel erasures let multiple cleans overlap.
 * This sweep shows the effective per-page flush time and the effect
 * on the saturated throughput ceiling.
 */

#include <functional>

#include "envysim/bank_model.hh"
#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/system.hh"
#include "flash/flash_timing.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("ext_parallel", opt);

    const double scale = defaultScale();
    const FlashTiming ft;
    std::vector<std::uint32_t> pars = {1, 2, 4, 8};
    if (opt.smoke)
        pars = {1, 8};

    std::vector<std::function<TimedResult()>> tasks;
    for (const std::uint32_t par : pars) {
        tasks.push_back([=] {
            TimedParams p = paperTimedParams(50000, 0.8, scale);
            p.parallelOps = par;
            return runTimedSim(p);
        });
    }
    const std::vector<TimedResult> results =
        parallelMap<TimedResult>(opt.jobs, std::move(tasks));

    ResultTable t("Section 6: concurrent bank operations "
                  "(overloaded at 50,000 TPS, 80% utilization)");
    t.setColumns({"parallel ops", "effective flush time",
                  "completed TPS", "write latency", "idle"});
    for (std::size_t i = 0; i < pars.size(); ++i) {
        const TimedResult &r = results[i];
        t.addRow({ResultTable::integer(pars[i]),
                  ResultTable::num(
                      static_cast<double>(ft.programTime) /
                          double(pars[i]) / 1000.0, 2) +
                      "us",
                  ResultTable::num(r.completedTps, 0),
                  ResultTable::num(r.writeLatencyNs, 0) + "ns",
                  ResultTable::percent(r.fracIdle, 0)});
    }
    t.addNote("paper: 4-8 concurrent programs cut the average page "
              "flush from 4us to under 1us");
    report.add(t);

    // The finer event-driven model: a flush batch over 8 banks with
    // a shared one-cycle bus, issue depth K.  (Sub-millisecond runs:
    // not worth fanning out.)
    ResultTable m("Section 6 (bank-level model): effective per-page "
                  "flush time vs issue depth");
    m.setColumns({"issue depth", "per-page time", "bus util",
                  "bank util"});
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
        BankModelParams bp;
        bp.issueDepth = depth;
        bp.pages = 16384;
        const BankModelResult r = runBankModel(bp);
        m.addRow({ResultTable::integer(depth),
                  ResultTable::num(r.effectivePageTimeNs / 1000.0,
                                   2) +
                      "us",
                  ResultTable::percent(r.busUtilization, 0),
                  ResultTable::percent(r.avgBankUtilization, 0)});
    }
    m.addNote("depth is capped by the 8 banks; the bus (100ns per "
              "page) only matters at much higher widths");
    report.add(m);
    return report.finish();
}
