/**
 * @file
 * Host-side throughput of the flash data plane: the bulk
 * programPage/readPage/eraseSegment fast paths against the
 * byte-at-a-time CUI oracle (ENVY_SLOW_DATAPLANE / slow_dataplane).
 *
 * Both paths are bit-exact (tests/test_dataplane.cc proves it); this
 * harness quantifies what the page-granular rework buys on the host:
 * one wear/timing computation and one contiguous copy per page
 * instead of pageSize per-chip round trips.  Four tables:
 *
 *   BM_PageProgram   bank program of erased pages
 *   BM_PageRead      bank wide-path read of programmed pages
 *   BM_SegmentErase  bank erase of a materialized segment
 *   BM_SegmentClean  whole-stack cleans (EnvyStore, FIFO policy)
 *
 * Each table has a fast and a slow row plus a speedup column
 * (slow ns / fast ns).  BM_PageProgram adds a persist row — the same
 * fast path writing through a MAP_SHARED store file
 * (docs/PERSISTENCE.md) — to quantify what durability costs on the
 * program path; the acceptance bar is within 2x of anonymous.  All cells except the op counts are host
 * wall-clock and vary run to run — this bench is about the
 * simulator's own speed, not modelled hardware latencies, so it is
 * deliberately excluded from the determinism suite and from
 * BENCH_baseline.json; its reports land in BENCH_wallclock.json.
 */

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <cstdio>

#include <unistd.h>

#include "envy/envy_store.hh"
#include "envysim/experiment.hh"
#include "flash/flash_bank.hh"
#include "flash/flash_timing.hh"
#include "persist/flash_backing.hh"
#include "persist/store_file.hh"
#include "sim/random.hh"

using namespace envy;

namespace {

// Bank geometry for the device-level tables: 256 B pages (256 chips
// wide), 512-page erase blocks, 4 blocks per chip.  The slow path
// pays 256 per-chip CUI round trips per page on this geometry.
constexpr std::uint32_t bankPageSize = 256;
constexpr std::uint32_t bankBlockBytes = 512;
constexpr std::uint32_t bankBlocks = 4;

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

FlashBank
makeBank(bool slow)
{
    return FlashBank(bankPageSize, bankBlockBytes, bankBlocks,
                     FlashTiming{}, true, slow);
}

/** Fill @p page with a cheap per-page pattern (no all-0xFF pages, so
 *  every program actually moves data). */
void
fillPage(std::vector<std::uint8_t> &page, std::uint32_t salt)
{
    for (std::uint32_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<std::uint8_t>((salt * 31 + i * 7) | 1);
}

struct Measurement
{
    std::uint64_t ops = 0;
    double wallMs = 0;

    double nsPerOp() const
    {
        return wallMs * 1e6 / static_cast<double>(ops);
    }
    double opsPerSec() const
    {
        return static_cast<double>(ops) / (wallMs * 1e-3);
    }
};

/** The timed body shared by the program rows: program every page of
 *  every block, @p reps times; erases between reps are untimed so
 *  the cells measure programs only. */
Measurement
programLoop(FlashBank &bank, std::uint32_t reps)
{
    std::vector<std::uint8_t> page(bankPageSize);
    Measurement m;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        for (std::uint32_t b = 0; b < bankBlocks; ++b) {
            for (std::uint32_t p = 0; p < bankBlockBytes; ++p) {
                fillPage(page, rep + b * bankBlockBytes + p);
                bank.programPage(b, p, page);
                ++m.ops;
            }
        }
        m.wallMs += msBetween(t0, Clock::now());
        for (std::uint32_t b = 0; b < bankBlocks; ++b)
            bank.eraseSegment(b);
    }
    return m;
}

Measurement
runProgram(bool slow, std::uint32_t reps)
{
    FlashBank bank = makeBank(slow);
    return programLoop(bank, reps);
}

/** Fast-path programs writing through a MAP_SHARED store file: the
 *  durable-mode cost of the same loop (docs/PERSISTENCE.md). */
Measurement
runProgramPersist(std::uint32_t reps)
{
    const std::string path = "/tmp/bench_dataplane_persist." +
                             std::to_string(::getpid()) + ".envy";
    std::remove(path.c_str());
    persist::StoreParams params;
    params.pageSize = bankPageSize;
    params.blockBytes = bankBlockBytes;
    params.blocksPerChip = bankBlocks;
    params.numBanks = 1;
    params.logicalPages = 1; // unused by the bank-level path
    params.writeBufferPages = 1;
    params.storeData = 1;
    params.sramBytes = 64;
    Measurement m;
    {
        persist::StoreFile file(path, params);
        persist::BankBacking backing(file, 0);
        FlashBank bank(bankPageSize, bankBlockBytes, bankBlocks,
                       FlashTiming{}, true, false, nullptr, &backing);
        m = programLoop(bank, reps);
    }
    std::remove(path.c_str());
    return m;
}

/** Read every page of every block, @p reps times, after one untimed
 *  populate pass. */
Measurement
runRead(bool slow, std::uint32_t reps)
{
    FlashBank bank = makeBank(slow);
    std::vector<std::uint8_t> page(bankPageSize);
    for (std::uint32_t b = 0; b < bankBlocks; ++b) {
        for (std::uint32_t p = 0; p < bankBlockBytes; ++p) {
            fillPage(page, b * bankBlockBytes + p);
            bank.programPage(b, p, page);
        }
    }
    Measurement m;
    volatile std::uint8_t sink = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        for (std::uint32_t b = 0; b < bankBlocks; ++b) {
            for (std::uint32_t p = 0; p < bankBlockBytes; ++p) {
                bank.readPage(b, p, page);
                ++m.ops;
            }
        }
        m.wallMs += msBetween(t0, Clock::now());
        sink = static_cast<std::uint8_t>(sink ^ page[0]);
    }
    return m;
}

/** Erase a materialized segment @p reps times; the one-page program
 *  that re-materializes the block between erases is untimed. */
Measurement
runErase(bool slow, std::uint32_t reps)
{
    FlashBank bank = makeBank(slow);
    std::vector<std::uint8_t> page(bankPageSize);
    Measurement m;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        const std::uint32_t b = rep % bankBlocks;
        fillPage(page, rep);
        bank.programPage(b, 0, page);
        const auto t0 = Clock::now();
        bank.eraseSegment(b);
        m.wallMs += msBetween(t0, Clock::now());
        ++m.ops;
    }
    return m;
}

/** Whole-stack cleans: drive fresh-page writes through an EnvyStore
 *  until @p cleans segment cleans have run. */
Measurement
runClean(bool slow, std::uint64_t cleans)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 64;
    cfg.policy = PolicyKind::Fifo;
    cfg.slowDataplane = slow;
    EnvyStore store(cfg);
    const std::uint32_t ps = cfg.geom.pageSize;
    Rng rng(7);

    Measurement m;
    const auto t0 = Clock::now();
    const std::uint64_t target =
        store.cleanerRef().statCleans.value() + cleans;
    while (store.cleanerRef().statCleans.value() < target) {
        std::uint8_t byte = 1;
        store.write(rng.below(store.size() / ps) * ps, {&byte, 1});
    }
    m.wallMs = msBetween(t0, Clock::now());
    m.ops = cleans;
    return m;
}

/** One table: labelled rows, speedup relative to the last (the slow
 *  baseline, whose speedup prints exactly 1.00x). */
void
addTable(BenchReport &report, const std::string &title,
         const std::string &op_name,
         const std::vector<std::pair<std::string, Measurement>> &rows)
{
    ResultTable t(title);
    t.setColumns({"path", op_name, "wall_ms", "ns/op", op_name + "/s",
                  "speedup"});
    const Measurement &base = rows.back().second;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measurement &m = rows[i].second;
        const std::string speedup =
            i + 1 == rows.size()
                ? "1.00x"
                : ResultTable::num(base.nsPerOp() / m.nsPerOp(), 2) +
                      "x";
        t.addRow({rows[i].first, ResultTable::integer(m.ops),
                  ResultTable::num(m.wallMs, 2),
                  ResultTable::num(m.nsPerOp(), 1),
                  ResultTable::integer(
                      static_cast<std::uint64_t>(m.opsPerSec())),
                  speedup});
    }
    t.addNote("host wall-clock; every cell but the op counts varies "
              "run to run");
    report.add(t);
}

void
addTable(BenchReport &report, const std::string &title,
         const std::string &op_name, const Measurement &fast,
         const Measurement &slow)
{
    addTable(report, title, op_name, {{"fast", fast}, {"slow", slow}});
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("dataplane", opt);

    const std::uint32_t reps = opt.smoke ? 4 : 24;
    const std::uint32_t eraseReps = opt.smoke ? 16 : 128;
    const std::uint64_t cleans = opt.smoke ? 8 : 64;

    const std::string bankGeom =
        ResultTable::integer(bankPageSize) + " B pages x " +
        ResultTable::integer(bankBlockBytes) + " pages/segment";

    addTable(report, "BM_PageProgram: bank program (" + bankGeom + ")",
             "pages",
             {{"fast", runProgram(false, reps)},
              {"persist", runProgramPersist(reps)},
              {"slow", runProgram(true, reps)}});
    addTable(report, "BM_PageRead: bank wide-path read (" + bankGeom +
                     ")",
             "pages", runRead(false, reps), runRead(true, reps));
    addTable(report, "BM_SegmentErase: bank erase (" + bankGeom + ")",
             "erases", runErase(false, eraseReps),
             runErase(true, eraseReps));
    addTable(report,
             "BM_SegmentClean: whole-stack FIFO cleans "
             "(tiny geometry, functional)",
             "cleans", runClean(false, cleans), runClean(true, cleans));
    return report.finish();
}
