/**
 * @file
 * Figure 14: TPC-A throughput as a function of flash array
 * utilization, for offered loads of 10k/20k/30k/40k TPS.  As
 * utilization rises the cleaner does more work per flushed page and
 * throughput collapses past ~80% — the paper's justification for
 * keeping at least 20% of the array free.
 */

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/system.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("fig14_utilization", opt);

    const double scale = defaultScale();
    std::vector<double> utils = {0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95};
    if (opt.smoke)
        utils = {0.5, 0.8};
    const double rates[] = {10000, 20000, 30000, 40000};

    SweepRunner sweep(opt.jobs);
    for (const double u : utils) {
        for (const double rate : rates) {
            sweep.defer([=] {
                TimedParams p = paperTimedParams(rate, u, scale);
                // The workload rescales with the store: "the database
                // can be scaled to fit any storage system".
                const TimedResult r = runTimedSim(p);
                return ResultTable::num(r.completedTps, 0);
            });
        }
    }
    const std::vector<std::string> cells = sweep.run();

    ResultTable t("Figure 14: Throughput for Various Levels of "
                  "Utilization (completed TPS)");
    t.setColumns({"utilization", "10,000 TPS", "20,000 TPS",
                  "30,000 TPS", "40,000 TPS"});
    std::size_t cell = 0;
    for (const double u : utils) {
        std::vector<std::string> row{ResultTable::percent(u, 0)};
        for (std::size_t r = 0; r < std::size(rates); ++r)
            row.push_back(cells[cell++]);
        t.addRow(row);
    }
    t.addNote("paper: \"after about 80% utilization, performance "
              "drops off steeply\"");
    if (scale < 1.0)
        t.addNote("quick scale; ENVY_SCALE=full for the 2 GB "
                  "system");
    report.add(t);
    return report.finish();
}
