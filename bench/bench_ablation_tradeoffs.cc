/**
 * @file
 * Ablations of the two §3.2/§3.3 sizing decisions the paper argues
 * qualitatively:
 *
 *  1. Page size.  "Larger pages lead to a smaller page table and
 *     lower SRAM requirements.  On the other hand, since an entire
 *     page has to be written to Flash with every flush, larger pages
 *     cause more unmodified data to be written for every word
 *     changed."  The sweep runs the TPC-A shape at several page
 *     sizes and reports both sides: page-table SRAM per GB and the
 *     flash bytes programmed per byte the host actually wrote.
 *
 *  2. Write-buffer size.  "The ability to retain pages in SRAM for
 *     some time helps to reduce traffic to the Flash array since
 *     multiple writes to the same page do not require additional
 *     copy-on-write operations."  The sweep shows the flush rate per
 *     transaction collapsing as the buffer grows to hold the hot
 *     teller/branch working set (the paper chose one segment's
 *     worth, 16 MB).
 */

#include <functional>

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/system.hh"
#include "workload/tpca.hh"

using namespace envy;

namespace {

/** Drive the TPC-A write stream through a functional-path store. */
struct Outcome
{
    double flushesPerTxn;
    double amplification; //!< flash bytes programmed / bytes written
    double bufferHitRate;
};

Outcome
runShape(std::uint32_t page_size, std::uint32_t buffer_pages,
         std::uint64_t txns)
{
    EnvyConfig cfg;
    cfg.geom.pageSize = page_size;
    cfg.geom.blockBytes = 16 * KiB / (page_size / 64); // ~fixed segs
    cfg.geom.blocksPerChip = 8;
    cfg.geom.numBanks = 4;
    cfg.geom.writeBufferPages = buffer_pages;
    cfg.storeData = false;
    cfg.policy = PolicyKind::Hybrid;
    cfg.partitionSize = 8;
    cfg.placement = Controller::Placement::Aged;
    cfg.agedStride = 8;
    EnvyStore store(cfg);

    TpcaConfig tpc = TpcaConfig::forStoreBytes(store.size());
    TpcaWorkload workload(tpc, 7);

    Controller &ctl = store.controller();
    std::vector<StorageAccess> txn;
    std::uint64_t bytes_written = 0;
    for (std::uint64_t i = 0; i < txns; ++i) {
        workload.nextTransaction(txn);
        for (const StorageAccess &a : txn) {
            if (!a.isWrite)
                continue;
            std::uint8_t word[8] = {};
            ctl.write(a.addr, {word, a.bytes});
            bytes_written += a.bytes;
        }
    }

    Outcome o;
    const double flushes =
        static_cast<double>(store.writeBuffer().statFlushes.value());
    o.flushesPerTxn = flushes / static_cast<double>(txns);
    o.amplification = flushes * page_size /
                      static_cast<double>(bytes_written);
    const double writes = static_cast<double>(
        ctl.statHostWrites.value());
    o.bufferHitRate =
        static_cast<double>(ctl.statBufferHits.value()) / writes;
    return o;
}

std::vector<Outcome>
runShapes(const BenchOptions &opt,
          std::vector<std::function<Outcome()>> tasks)
{
    return parallelMap<Outcome>(opt.jobs, std::move(tasks));
}

void
pageSizeSweep(const BenchOptions &opt, BenchReport &report)
{
    std::vector<std::uint32_t> sizes = {64, 128, 256, 512, 1024};
    if (opt.smoke)
        sizes = {64, 256};
    const std::uint64_t txns = opt.smoke ? 8000 : 40000;

    std::vector<std::function<Outcome()>> tasks;
    for (const std::uint32_t ps : sizes)
        tasks.push_back([=] { return runShape(ps, 2048, txns); });
    const std::vector<Outcome> outcomes =
        runShapes(opt, std::move(tasks));

    ResultTable t("Ablation: page size (paper §3.3 chose 256 "
                  "bytes)");
    t.setColumns({"page size", "PT SRAM / GB flash",
                  "flash bytes per written byte",
                  "flushes per txn"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const std::uint32_t ps = sizes[i];
        // 6-byte entries per page: table bytes per GB of flash.
        const double pt_mb_per_gb =
            (double(GiB) / ps) * 6.0 / double(MiB);
        t.addRow({ResultTable::integer(ps) + " B",
                  ResultTable::num(pt_mb_per_gb, 1) + " MB",
                  ResultTable::num(outcomes[i].amplification, 1),
                  ResultTable::num(outcomes[i].flushesPerTxn, 2)});
    }
    t.addNote("paper: 256 B costs 24 MB of SRAM per GB (~10% of "
              "system cost) while keeping the write amplification "
              "tolerable");
    report.add(t);
}

void
bufferSizeSweep(const BenchOptions &opt, BenchReport &report)
{
    std::vector<std::uint32_t> sizes = {16, 64, 256, 1024, 4096,
                                        16384};
    if (opt.smoke)
        sizes = {16, 1024};
    const std::uint64_t txns = opt.smoke ? 8000 : 40000;

    std::vector<std::function<Outcome()>> tasks;
    for (const std::uint32_t pages : sizes)
        tasks.push_back([=] { return runShape(256, pages, txns); });
    const std::vector<Outcome> outcomes =
        runShapes(opt, std::move(tasks));

    ResultTable t("Ablation: write-buffer size (paper §3.2/Fig 12 "
                  "chose one segment = 64Ki pages)");
    t.setColumns({"buffer pages", "flushes per txn",
                  "buffer hit rate"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        t.addRow({ResultTable::integer(sizes[i]),
                  ResultTable::num(outcomes[i].flushesPerTxn, 2),
                  ResultTable::percent(outcomes[i].bufferHitRate,
                                       1)});
    }
    t.addNote("once the buffer holds the teller/branch working set, "
              "only the uniformly random account page per "
              "transaction still flushes (~1 page/txn, §5.5's "
              "10,376 pages/s at 10 kTPS)");
    report.add(t);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("ablation_tradeoffs", opt);
    pageSizeSweep(opt, report);
    bufferSizeSweep(opt, report);
    return report.finish();
}
