/**
 * @file
 * google-benchmark micro-benchmarks of the core data paths: page
 * table walks, MMU-cached translations, host word reads/writes,
 * copy-on-write, flush and a full segment clean.  These quantify the
 * simulator's own costs (useful when sizing paper-scale runs), not
 * the modelled hardware latencies.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "envy/envy_store.hh"
#include "envy/segment_space.hh"
#include "flash/flash_bank.hh"
#include "flash/flash_timing.hh"
#include "serve/protocol.hh"
#include "sim/random.hh"

namespace {

using namespace envy;

EnvyConfig
benchConfig(bool store_data)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 64;
    cfg.storeData = store_data;
    return cfg;
}

// Bank geometry for the data-plane micro-benches: 256 B pages,
// 512-page segments.  Arg(0)=1 is the bulk fast path, Arg(0)=0 the
// byte-at-a-time CUI oracle, so `--benchmark_filter=BM_Page` prints
// the speedup pair side by side (bench_dataplane has the same
// comparison as a ResultTable harness).
constexpr std::uint32_t dpPageSize = 256;
constexpr std::uint32_t dpBlockBytes = 512;
constexpr std::uint32_t dpBlocks = 4;

FlashBank
dataplaneBank(bool slow)
{
    return FlashBank(dpPageSize, dpBlockBytes, dpBlocks,
                     FlashTiming{}, true, slow);
}

void
BM_PageProgram(benchmark::State &state)
{
    FlashBank bank = dataplaneBank(state.range(0) == 0);
    std::vector<std::uint8_t> page(dpPageSize);
    for (std::uint32_t i = 0; i < dpPageSize; ++i)
        page[i] = static_cast<std::uint8_t>(i * 7 + 3);
    std::uint32_t b = 0, p = 0;
    for (auto _ : state) {
        bank.programPage(b, p, page);
        if (++p == dpBlockBytes) {
            p = 0;
            // Erase outside the timed region before re-programming.
            state.PauseTiming();
            bank.eraseSegment(b);
            state.ResumeTiming();
            b = (b + 1) % dpBlocks;
        }
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * dpPageSize);
    state.SetLabel(state.range(0) ? "fast" : "slow");
}
BENCHMARK(BM_PageProgram)->Arg(1)->Arg(0);

void
BM_PageRead(benchmark::State &state)
{
    FlashBank bank = dataplaneBank(state.range(0) == 0);
    std::vector<std::uint8_t> page(dpPageSize);
    for (std::uint32_t p = 0; p < dpBlockBytes; ++p) {
        for (std::uint32_t i = 0; i < dpPageSize; ++i)
            page[i] = static_cast<std::uint8_t>(p + i);
        bank.programPage(0, p, page);
    }
    std::uint32_t p = 0;
    for (auto _ : state) {
        bank.readPage(0, p, page);
        benchmark::DoNotOptimize(page.data());
        p = (p + 1) % dpBlockBytes;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * dpPageSize);
    state.SetLabel(state.range(0) ? "fast" : "slow");
}
BENCHMARK(BM_PageRead)->Arg(1)->Arg(0);

void
BM_SegmentErase(benchmark::State &state)
{
    FlashBank bank = dataplaneBank(state.range(0) == 0);
    std::vector<std::uint8_t> page(dpPageSize, 0x5A);
    std::uint32_t b = 0;
    for (auto _ : state) {
        // Materialize the block so the erase has cells to reset.
        state.PauseTiming();
        bank.programPage(b, 0, page);
        state.ResumeTiming();
        bank.eraseSegment(b);
        b = (b + 1) % dpBlocks;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(state.range(0) ? "fast" : "slow");
}
BENCHMARK(BM_SegmentErase)->Arg(1)->Arg(0);

void
BM_PageTableLookup(benchmark::State &state)
{
    SramArray sram(PageTable::bytesNeeded(1 << 16));
    PageTable table(sram, 0, 1 << 16);
    for (std::uint64_t p = 0; p < (1 << 16); ++p)
        table.mapToFlash(LogicalPageId(p),
                         {SegmentId(p % 15),
                          SlotId(static_cast<std::uint32_t>(p))});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(LogicalPageId(rng.below(1 << 16))));
    }
}
BENCHMARK(BM_PageTableLookup);

void
BM_MmuHit(benchmark::State &state)
{
    SramArray sram(PageTable::bytesNeeded(1 << 16));
    PageTable table(sram, 0, 1 << 16);
    Mmu mmu(table, 1024);
    table.mapToSram(LogicalPageId(7), BufferSlotId(3));
    mmu.lookup(LogicalPageId(7));
    for (auto _ : state)
        benchmark::DoNotOptimize(mmu.lookup(LogicalPageId(7)));
}
BENCHMARK(BM_MmuHit);

void
BM_HostRead(benchmark::State &state)
{
    EnvyStore store(benchConfig(true));
    Rng rng(2);
    std::uint8_t buf[8];
    for (auto _ : state)
        store.read(rng.below(store.size() - 8), buf);
}
BENCHMARK(BM_HostRead);

void
BM_HostWriteBufferHit(benchmark::State &state)
{
    EnvyStore store(benchConfig(true));
    store.writeU64(0, 1); // resident page
    std::uint64_t v = 0;
    for (auto _ : state)
        store.writeU64(0, ++v);
}
BENCHMARK(BM_HostWriteBufferHit);

void
BM_CopyOnWriteChurn(benchmark::State &state)
{
    // Every write touches a fresh page: worst-case COW + flush +
    // cleaning mix (the paper's whole write path).
    EnvyStore store(benchConfig(state.range(0) != 0));
    const std::uint32_t ps = store.config().geom.pageSize;
    Rng rng(3);
    for (auto _ : state) {
        std::uint8_t b = 1;
        store.write(rng.below(store.size() / ps) * ps, {&b, 1});
    }
    state.SetLabel(state.range(0) ? "functional" : "metadata-only");
}
BENCHMARK(BM_CopyOnWriteChurn)->Arg(1)->Arg(0);

void
BM_VictimSelection(benchmark::State &state)
{
    // Victim selection + roomiest-segment lookup through the
    // SegmentSpace indexes, with one append/invalidate per iteration
    // keeping the index maintenance in the measured path.  ns/op
    // should stay flat from 128 to 8192 segments (the pre-index
    // implementation rescanned every segment per query).
    const auto segments =
        static_cast<std::uint32_t>(state.range(0));
    Geometry g;
    g.pageSize = 64;
    g.blockBytes = 64; // 64 pages per segment: cheap erase cycles
    g.numBanks = 8;
    g.blocksPerChip = segments / 8;
    const FlashTiming ft;
    FlashArray flash(g, ft, false);
    SramArray sram(
        SegmentSpace::bytesNeeded(g.numSegments()).value());
    SegmentSpace space(flash, sram, 0);

    // Uneven prefill so the queries have real work to distinguish:
    // per-segment free and invalid counts both vary with l.  Every
    // page is dead so the churn loop below may erase any segment.
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId phys = space.physOf(l);
        for (std::uint32_t j = 0; j < l % 48; ++j) {
            const FlashPageAddr a = flash.appendPage(
                phys, LogicalPageId(std::uint64_t{l} * 64 + j));
            flash.invalidatePage(a);
        }
    }

    std::uint64_t it = 0;
    for (auto _ : state) {
        const SegmentId churn =
            space.physOf(static_cast<std::uint32_t>(
                it++ % space.numLogical()));
        if (flash.freeSlots(churn) == PageCount(0))
            flash.eraseSegment(churn);
        const FlashPageAddr a =
            flash.appendPage(churn, LogicalPageId(1));
        flash.invalidatePage(a);
        benchmark::DoNotOptimize(space.mostInvalidLogical());
        benchmark::DoNotOptimize(space.roomiestLogical());
    }
    state.SetLabel(std::to_string(segments) + " segments");
}
BENCHMARK(BM_VictimSelection)->RangeMultiplier(4)->Range(128, 8192);

void
BM_EncodeDecode(benchmark::State &state)
{
    // Wire-protocol round trip for one Ok Get response (the serve
    // front end's per-request encode + the client's decode).
    // Arg(0)=1 is the hot path — encodeResponseInto() reusing one
    // scratch buffer, as Server::respond does per connection — and
    // Arg(0)=0 the allocating encodeResponse() wrapper, so the pair
    // prints what the scratch buffer buys per response.
    serve::Response resp;
    resp.op = serve::Op::Get;
    resp.requestId = 42;
    resp.status = serve::Status::Ok;
    resp.value.assign(64, 'v');

    std::vector<std::uint8_t> scratch;
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        serve::FrameDecoder dec;
        if (state.range(0)) {
            serve::encodeResponseInto(resp, scratch);
            dec.feed(scratch);
            bytes += scratch.size();
        } else {
            const std::vector<std::uint8_t> frame =
                serve::encodeResponse(resp);
            dec.feed(frame);
            bytes += frame.size();
        }
        auto raw = dec.next();
        ENVY_ASSERT(raw.has_value(), "encode/decode round trip lost");
        serve::Response out;
        const serve::FrameError err = serve::parseResponse(*raw, out);
        ENVY_ASSERT(err == serve::FrameError::None, "bad frame");
        benchmark::DoNotOptimize(out.value.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    state.SetLabel(state.range(0) ? "scratch" : "alloc");
}
BENCHMARK(BM_EncodeDecode)->Arg(1)->Arg(0);

void
BM_SegmentClean(benchmark::State &state)
{
    EnvyConfig cfg = benchConfig(false);
    cfg.policy = PolicyKind::Fifo;
    EnvyStore store(cfg);
    const std::uint32_t ps = cfg.geom.pageSize;
    Rng rng(4);
    std::uint64_t cleans = 0;
    for (auto _ : state) {
        // Drive writes until one more clean has happened.
        const std::uint64_t target =
            store.cleanerRef().statCleans.value() + 1;
        while (store.cleanerRef().statCleans.value() < target) {
            std::uint8_t b = 1;
            store.write(rng.below(store.size() / ps) * ps, {&b, 1});
        }
        ++cleans;
    }
    state.counters["pages/clean"] = benchmark::Counter(
        static_cast<double>(
            store.cleanerRef().statCleanerPrograms.value()) /
        static_cast<double>(cleans));
}
BENCHMARK(BM_SegmentClean);

} // namespace

BENCHMARK_MAIN();
