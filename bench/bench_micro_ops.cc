/**
 * @file
 * google-benchmark micro-benchmarks of the core data paths: page
 * table walks, MMU-cached translations, host word reads/writes,
 * copy-on-write, flush and a full segment clean.  These quantify the
 * simulator's own costs (useful when sizing paper-scale runs), not
 * the modelled hardware latencies.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "common/logging.hh"
#include "envy/envy_store.hh"
#include "envy/segment_space.hh"
#include "flash/flash_timing.hh"
#include "sim/random.hh"

namespace {

using namespace envy;

EnvyConfig
benchConfig(bool store_data)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 64;
    cfg.storeData = store_data;
    return cfg;
}

void
BM_PageTableLookup(benchmark::State &state)
{
    SramArray sram(PageTable::bytesNeeded(1 << 16));
    PageTable table(sram, 0, 1 << 16);
    for (std::uint64_t p = 0; p < (1 << 16); ++p)
        table.mapToFlash(LogicalPageId(p),
                         {SegmentId(p % 15),
                          SlotId(static_cast<std::uint32_t>(p))});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(LogicalPageId(rng.below(1 << 16))));
    }
}
BENCHMARK(BM_PageTableLookup);

void
BM_MmuHit(benchmark::State &state)
{
    SramArray sram(PageTable::bytesNeeded(1 << 16));
    PageTable table(sram, 0, 1 << 16);
    Mmu mmu(table, 1024);
    table.mapToSram(LogicalPageId(7), BufferSlotId(3));
    mmu.lookup(LogicalPageId(7));
    for (auto _ : state)
        benchmark::DoNotOptimize(mmu.lookup(LogicalPageId(7)));
}
BENCHMARK(BM_MmuHit);

void
BM_HostRead(benchmark::State &state)
{
    EnvyStore store(benchConfig(true));
    Rng rng(2);
    std::uint8_t buf[8];
    for (auto _ : state)
        store.read(rng.below(store.size() - 8), buf);
}
BENCHMARK(BM_HostRead);

void
BM_HostWriteBufferHit(benchmark::State &state)
{
    EnvyStore store(benchConfig(true));
    store.writeU64(0, 1); // resident page
    std::uint64_t v = 0;
    for (auto _ : state)
        store.writeU64(0, ++v);
}
BENCHMARK(BM_HostWriteBufferHit);

void
BM_CopyOnWriteChurn(benchmark::State &state)
{
    // Every write touches a fresh page: worst-case COW + flush +
    // cleaning mix (the paper's whole write path).
    EnvyStore store(benchConfig(state.range(0) != 0));
    const std::uint32_t ps = store.config().geom.pageSize;
    Rng rng(3);
    for (auto _ : state) {
        std::uint8_t b = 1;
        store.write(rng.below(store.size() / ps) * ps, {&b, 1});
    }
    state.SetLabel(state.range(0) ? "functional" : "metadata-only");
}
BENCHMARK(BM_CopyOnWriteChurn)->Arg(1)->Arg(0);

void
BM_VictimSelection(benchmark::State &state)
{
    // Victim selection + roomiest-segment lookup through the
    // SegmentSpace indexes, with one append/invalidate per iteration
    // keeping the index maintenance in the measured path.  ns/op
    // should stay flat from 128 to 8192 segments (the pre-index
    // implementation rescanned every segment per query).
    const auto segments =
        static_cast<std::uint32_t>(state.range(0));
    Geometry g;
    g.pageSize = 64;
    g.blockBytes = 64; // 64 pages per segment: cheap erase cycles
    g.numBanks = 8;
    g.blocksPerChip = segments / 8;
    const FlashTiming ft;
    FlashArray flash(g, ft, false);
    SramArray sram(
        SegmentSpace::bytesNeeded(g.numSegments()).value());
    SegmentSpace space(flash, sram, 0);

    // Uneven prefill so the queries have real work to distinguish:
    // per-segment free and invalid counts both vary with l.  Every
    // page is dead so the churn loop below may erase any segment.
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId phys = space.physOf(l);
        for (std::uint32_t j = 0; j < l % 48; ++j) {
            const FlashPageAddr a = flash.appendPage(
                phys, LogicalPageId(std::uint64_t{l} * 64 + j));
            flash.invalidatePage(a);
        }
    }

    std::uint64_t it = 0;
    for (auto _ : state) {
        const SegmentId churn =
            space.physOf(static_cast<std::uint32_t>(
                it++ % space.numLogical()));
        if (flash.freeSlots(churn) == PageCount(0))
            flash.eraseSegment(churn);
        const FlashPageAddr a =
            flash.appendPage(churn, LogicalPageId(1));
        flash.invalidatePage(a);
        benchmark::DoNotOptimize(space.mostInvalidLogical());
        benchmark::DoNotOptimize(space.roomiestLogical());
    }
    state.SetLabel(std::to_string(segments) + " segments");
}
BENCHMARK(BM_VictimSelection)->RangeMultiplier(4)->Range(128, 8192);

void
BM_SegmentClean(benchmark::State &state)
{
    EnvyConfig cfg = benchConfig(false);
    cfg.policy = PolicyKind::Fifo;
    EnvyStore store(cfg);
    const std::uint32_t ps = cfg.geom.pageSize;
    Rng rng(4);
    std::uint64_t cleans = 0;
    for (auto _ : state) {
        // Drive writes until one more clean has happened.
        const std::uint64_t target =
            store.cleanerRef().statCleans.value() + 1;
        while (store.cleanerRef().statCleans.value() < target) {
            std::uint8_t b = 1;
            store.write(rng.below(store.size() / ps) * ps, {&b, 1});
        }
        ++cleans;
    }
    state.counters["pages/clean"] = benchmark::Counter(
        static_cast<double>(
            store.cleanerRef().statCleanerPrograms.value()) /
        static_cast<double>(cleans));
}
BENCHMARK(BM_SegmentClean);

} // namespace

BENCHMARK_MAIN();
