/**
 * @file
 * Endurance: writing a store to death, the §2/§4.3/§5.5 story end
 * to end.
 *
 * §2: flash "failure" means an operation overran its specified
 * window — data stays readable.  §4.3: without leveling, a hot
 * region concentrates erases on a couple of physical segments and
 * the array goes out of spec early; with leveling the whole array
 * wears together.  §5.5: lifetime = write capacity / page write
 * rate, where the write rate includes the cleaning overhead.
 *
 * This harness runs a deliberately fragile device (few rated
 * cycles, aggressive wear-induced slow-down) under a hot workload
 * until the first chip goes out of spec, with wear leveling on and
 * off, and checks the measured life against the §5.5 formula.
 */

#include <functional>

#include "envysim/experiment.hh"
#include "envysim/parallel.hh"
#include "envysim/system.hh"
#include "sim/random.hh"

using namespace envy;

namespace {

struct EnduranceResult
{
    std::uint64_t hostWrites = 0;
    std::uint64_t pagesFlushed = 0;
    std::uint64_t erases = 0;
    std::uint64_t wearSpread = 0;
    double cleaningCost = 0.0;
};

EnduranceResult
writeToDeath(bool leveling, std::uint64_t rated_cycles)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages = 16;
    cfg.storeData = false;
    cfg.policy = PolicyKind::LocalityGathering;
    cfg.placement = Controller::Placement::Sequential;
    cfg.wearThreshold = leveling ? 16 : (1ull << 60);
    // The device overruns its specified erase window after
    // rated_cycles erases of any one block.
    cfg.timing.wearSlowdownPerCycle =
        1.0 / static_cast<double>(rated_cycles);
    cfg.timing.maxEraseTime =
        cfg.timing.eraseTime * 2; // 2x base = rated_cycles cycles
    EnvyStore store(cfg);

    const std::uint32_t ps = cfg.geom.pageSize;
    const std::uint64_t pages = store.size() / ps;
    Rng rng(11);
    EnduranceResult r;
    while (!store.flash().outOfSpec() &&
           r.hostWrites < 100000000ull) {
        // Every write lands in 2% of the pages — no cold traffic at
        // all, so nothing but the §4.3 swap ever touches the cold
        // segments' physical homes.  This is the worst case for
        // wear: without leveling, the hot segment and the rotating
        // reserve absorb every erase.
        const std::uint64_t page = rng.below(pages / 50);
        std::uint8_t b = 0;
        store.controller().write(page * ps, {&b, 1});
        ++r.hostWrites;
    }
    r.pagesFlushed = store.writeBuffer().statFlushes.value();
    r.erases = store.flash().statSegmentErases.value();
    r.wearSpread = store.wearLeveler().spread(store.space());
    r.cleaningCost = store.cleaningCost();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("endurance", opt);

    const std::uint64_t rated = 512; // cycles before out-of-spec

    // Both runs feed the cross-check table, so fan them out and
    // collect before building either table.
    std::vector<std::function<EnduranceResult()>> tasks;
    for (const bool leveling : {false, true})
        tasks.push_back([=] { return writeToDeath(leveling, rated); });
    const std::vector<EnduranceResult> results =
        parallelMap<EnduranceResult>(opt.jobs, std::move(tasks));

    ResultTable t("Endurance: writes until the first chip overruns "
                  "its spec (rated ~512 cycles, all writes to 2% of pages)");
    t.setColumns({"wear leveling", "host writes", "pages flushed",
                  "segment erases", "final wear spread",
                  "cleaning cost"});
    for (std::size_t i = 0; i < 2; ++i) {
        const EnduranceResult &r = results[i];
        t.addRow({i == 1 ? "on (threshold 16)" : "off",
                  ResultTable::integer(r.hostWrites),
                  ResultTable::integer(r.pagesFlushed),
                  ResultTable::integer(r.erases),
                  ResultTable::integer(r.wearSpread),
                  ResultTable::num(r.cleaningCost, 2)});
    }
    t.addNote("§2: the failure is an out-of-spec operation; all "
              "data remains readable");
    report.add(t);

    // §5.5 cross-check: with even wear, life should approach the
    // write-capacity bound.
    const Geometry g = Geometry::tiny();
    const double capacity_erases =
        static_cast<double>(g.numSegments()) * rated;
    ResultTable c("Section 5.5 cross-check (erase budget)");
    c.setColumns({"quantity", "value"});
    c.addRow({"array erase budget (segments x rated)",
              ResultTable::num(capacity_erases, 0)});
    c.addRow({"erases consumed, leveling off",
              ResultTable::integer(results[0].erases)});
    c.addRow({"erases consumed, leveling on",
              ResultTable::integer(results[1].erases)});
    c.addRow({"budget used at death, leveling on",
              ResultTable::percent(
                  static_cast<double>(results[1].erases) /
                      static_cast<double>(capacity_erases), 0)});
    c.addRow({"life extension from leveling",
              ResultTable::num(
                  static_cast<double>(results[1].hostWrites) /
                      static_cast<double>(results[0].hostWrites),
                  1) + "x"});
    report.add(c);
    return report.finish();
}
