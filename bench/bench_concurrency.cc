/**
 * @file
 * PR 8 thread-scaling bench: aggregate write throughput of the
 * sharded controller under 1/2/4/8 client threads and 0/1/2
 * background cleaner threads, on a uniform full-page churn at
 * moderate utilization.
 *
 * Timing model (the machine running this may have one core; the
 * paper's device does not): every actor keeps a simulated device
 * timeline.  A worker's timeline is its host cost per page write
 * (SRAM buffer insert over the wide path) plus the device time its
 * own flush calls consumed (Controller::threadDeviceBusy(), which
 * includes any inline cleaning it was charged).  A cleaner thread's
 * timeline is its published busy clock (CleanerPool::busyTimes()).
 * The run's makespan is the longest timeline, and throughput is
 * total bytes written over that makespan — so scaling comes from
 * spreading flush work across workers and cleaning across cleaners,
 * never from wall-clock parallelism.
 *
 * The headline acceptance row: 8 workers + 2 cleaners must clear
 * 3x the single-thread inline-cleaning baseline.
 */

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "envy/cleaner_pool.hh"
#include "envy/envy_store.hh"
#include "envysim/experiment.hh"
#include "sim/random.hh"

using namespace envy;

namespace {

/** Host cost of one full-page write into the battery-backed SRAM
 *  buffer over the 256-bit-wide path (§3.3): a few memory cycles
 *  per 32-byte beat, call it 500 ns per page. */
constexpr Tick hostWritePageTicks = 500;

struct CellResult
{
    unsigned workers = 0;
    unsigned cleaners = 0;
    Tick makespan = 0;       //!< longest actor timeline, ticks
    double mbPerSec = 0.0;   //!< total bytes / makespan
    obs::MetricsSnapshot snapshot;
};

EnvyConfig
benchConfig(unsigned workers, unsigned cleaners)
{
    EnvyConfig cfg;
    cfg.geom.pageSize = 64;
    cfg.geom.blockBytes = 32768; // 32768 pages per segment
    cfg.geom.blocksPerChip = 2;
    cfg.geom.numBanks = 4; // 8 segments, 262144 physical pages
    // Moderate (~36%) utilization and big segments: each clean
    // frees most of a 32768-page segment, so the 50 ms erase
    // amortises to ~2 us per reclaimed page and a whole run needs
    // only a handful of cleans — the makespan is then insensitive
    // to how the (indivisible, erase-dominated) cleans happen to
    // land on the cleaner clocks, which keeps the grid reproducible
    // across thread schedules.  At high utilization cleaning
    // dominates and every configuration converges on cleaner
    // bandwidth — that regime is bench_fig14_utilization's subject,
    // not this one's.
    cfg.geom.logicalPages = 81920;
    cfg.geom.writeBufferPages = 64;
    cfg.partitionSize = 4;
    cfg.numWorkers = workers;
    cfg.numCleaners = cleaners;
    // Clean ahead only below a 2048-page cushion per partition:
    // the auto watermark (half a segment) would keep the pool
    // cleaning far past what the run consumes, and that surplus
    // would be charged to the cleaner timelines as if needed.
    cfg.cleanerWatermark = 2048;
    return cfg;
}

CellResult
runCell(unsigned workers, unsigned cleaners,
        std::uint64_t total_writes)
{
    EnvyStore store(benchConfig(workers, cleaners));
    const std::uint32_t page_size = store.config().geom.pageSize;
    const std::uint64_t pages = store.size() / page_size;
    const std::uint64_t per_worker = total_writes / workers;

    // Worker w owns pages where page % workers == w: uniform churn,
    // disjoint stripes, so the run is also a valid differential
    // history (tests/test_concurrency.cc checks that property).
    std::vector<Tick> timelines(workers, 0);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            const Tick dev0 = Controller::threadDeviceBusy();
            Rng rng(0xBE7C41ull + w);
            std::vector<std::uint8_t> buf(page_size);
            for (std::uint64_t i = 0; i < per_worker; ++i) {
                const std::uint64_t page =
                    rng.below(pages / workers) * workers + w;
                for (auto &b : buf)
                    b = static_cast<std::uint8_t>(rng.next());
                store.write(page * page_size, buf);
            }
            const Tick dev = Controller::threadDeviceBusy() - dev0;
            timelines[w] = per_worker * hostWritePageTicks + dev;
        });
    }
    for (auto &t : threads)
        t.join();

    if (store.cleanerPool()) {
        store.cleanerPool()->stop();
        for (const Tick busy : store.cleanerPool()->busyTimes())
            timelines.push_back(busy);
    }

    CellResult r;
    r.workers = workers;
    r.cleaners = cleaners;
    for (const Tick t : timelines)
        r.makespan = std::max(r.makespan, t);
    const double bytes =
        static_cast<double>(per_worker * workers) * page_size;
    r.mbPerSec = bytes / (static_cast<double>(r.makespan) / 1e9) / 1e6;
    r.snapshot = store.metrics().snapshot();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    BenchReport report("concurrency", opt);

    std::vector<unsigned> workers = {1, 2, 4, 8};
    std::vector<unsigned> cleaners = {0, 1, 2};
    std::uint64_t total_writes = 240000;
    if (opt.smoke) {
        workers = {1, 8};
        cleaners = {0, 2};
        total_writes = 24000;
    }

    // The grid runs serially: each cell's threads are real, and on a
    // small host running cells side by side would only add noise to
    // the simulated clocks' charging.
    std::vector<CellResult> results;
    for (const unsigned w : workers)
        for (const unsigned c : cleaners)
            results.push_back(runCell(w, c, total_writes));

    ResultTable t("Concurrency: aggregate write throughput, uniform "
                  "churn at moderate utilization");
    t.setColumns({"workers", "cleaners", "makespan (ms)",
                  "write MB/s", "speedup"});
    const double base = results.front().mbPerSec;
    double headline = 0.0;
    for (const CellResult &r : results) {
        const double speedup = base > 0.0 ? r.mbPerSec / base : 0.0;
        if (r.workers == workers.back() &&
            r.cleaners == cleaners.back())
            headline = speedup;
        t.addRow({ResultTable::integer(r.workers),
                  ResultTable::integer(r.cleaners),
                  ResultTable::num(
                      static_cast<double>(r.makespan) / 1e6, 2),
                  ResultTable::num(r.mbPerSec, 1),
                  ResultTable::num(speedup, 2) + "x"});
    }
    t.addNote("speedup is against the 1-worker/0-cleaner serial "
              "baseline (inline cleaning on the writer's timeline)");
    t.addNote("acceptance: 8 workers + 2 cleaners >= 3x; this run: " +
              ResultTable::num(headline, 2) + "x");
    report.add(t);

    report.addMetrics("1w0c", results.front().snapshot);
    report.addMetrics(
        std::to_string(workers.back()) + "w" +
            std::to_string(cleaners.back()) + "c",
        results.back().snapshot);
    return report.finish();
}
