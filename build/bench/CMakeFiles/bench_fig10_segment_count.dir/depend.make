# Empty dependencies file for bench_fig10_segment_count.
# This may be replaced when dependencies are built.
