# Empty dependencies file for bench_fig09_partition_size.
# This may be replaced when dependencies are built.
