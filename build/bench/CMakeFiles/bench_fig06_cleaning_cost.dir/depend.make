# Empty dependencies file for bench_fig06_cleaning_cost.
# This may be replaced when dependencies are built.
