file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tradeoffs.dir/bench_ablation_tradeoffs.cc.o"
  "CMakeFiles/bench_ablation_tradeoffs.dir/bench_ablation_tradeoffs.cc.o.d"
  "bench_ablation_tradeoffs"
  "bench_ablation_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
