# Empty dependencies file for bench_ablation_tradeoffs.
# This may be replaced when dependencies are built.
