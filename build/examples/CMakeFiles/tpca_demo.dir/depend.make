# Empty dependencies file for tpca_demo.
# This may be replaced when dependencies are built.
