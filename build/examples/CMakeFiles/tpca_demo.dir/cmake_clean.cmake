file(REMOVE_RECURSE
  "CMakeFiles/tpca_demo.dir/tpca_demo.cpp.o"
  "CMakeFiles/tpca_demo.dir/tpca_demo.cpp.o.d"
  "tpca_demo"
  "tpca_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpca_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
