file(REMOVE_RECURSE
  "CMakeFiles/ramdisk_tool.dir/ramdisk_tool.cpp.o"
  "CMakeFiles/ramdisk_tool.dir/ramdisk_tool.cpp.o.d"
  "ramdisk_tool"
  "ramdisk_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramdisk_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
