# Empty dependencies file for ramdisk_tool.
# This may be replaced when dependencies are built.
