file(REMOVE_RECURSE
  "CMakeFiles/envy_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/envy_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/envy_sim.dir/sim/random.cc.o"
  "CMakeFiles/envy_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/envy_sim.dir/sim/stats.cc.o"
  "CMakeFiles/envy_sim.dir/sim/stats.cc.o.d"
  "libenvy_sim.a"
  "libenvy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
