# Empty dependencies file for envy_sim.
# This may be replaced when dependencies are built.
