file(REMOVE_RECURSE
  "libenvy_sim.a"
)
