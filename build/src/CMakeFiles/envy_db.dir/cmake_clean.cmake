file(REMOVE_RECURSE
  "CMakeFiles/envy_db.dir/db/btree.cc.o"
  "CMakeFiles/envy_db.dir/db/btree.cc.o.d"
  "CMakeFiles/envy_db.dir/db/records.cc.o"
  "CMakeFiles/envy_db.dir/db/records.cc.o.d"
  "CMakeFiles/envy_db.dir/db/tpca_db.cc.o"
  "CMakeFiles/envy_db.dir/db/tpca_db.cc.o.d"
  "libenvy_db.a"
  "libenvy_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
