file(REMOVE_RECURSE
  "libenvy_db.a"
)
