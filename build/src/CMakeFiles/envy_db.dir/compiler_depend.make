# Empty compiler generated dependencies file for envy_db.
# This may be replaced when dependencies are built.
