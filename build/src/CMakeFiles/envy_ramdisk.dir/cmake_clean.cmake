file(REMOVE_RECURSE
  "CMakeFiles/envy_ramdisk.dir/ramdisk/ram_disk.cc.o"
  "CMakeFiles/envy_ramdisk.dir/ramdisk/ram_disk.cc.o.d"
  "libenvy_ramdisk.a"
  "libenvy_ramdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_ramdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
