file(REMOVE_RECURSE
  "libenvy_ramdisk.a"
)
