# Empty compiler generated dependencies file for envy_ramdisk.
# This may be replaced when dependencies are built.
