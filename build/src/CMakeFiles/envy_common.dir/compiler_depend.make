# Empty compiler generated dependencies file for envy_common.
# This may be replaced when dependencies are built.
