file(REMOVE_RECURSE
  "libenvy_common.a"
)
