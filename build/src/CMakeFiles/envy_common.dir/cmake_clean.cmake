file(REMOVE_RECURSE
  "CMakeFiles/envy_common.dir/common/geometry.cc.o"
  "CMakeFiles/envy_common.dir/common/geometry.cc.o.d"
  "CMakeFiles/envy_common.dir/common/logging.cc.o"
  "CMakeFiles/envy_common.dir/common/logging.cc.o.d"
  "libenvy_common.a"
  "libenvy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
