file(REMOVE_RECURSE
  "libenvy_workload.a"
)
