# Empty compiler generated dependencies file for envy_workload.
# This may be replaced when dependencies are built.
