file(REMOVE_RECURSE
  "CMakeFiles/envy_workload.dir/workload/bimodal.cc.o"
  "CMakeFiles/envy_workload.dir/workload/bimodal.cc.o.d"
  "CMakeFiles/envy_workload.dir/workload/tpca.cc.o"
  "CMakeFiles/envy_workload.dir/workload/tpca.cc.o.d"
  "CMakeFiles/envy_workload.dir/workload/trace.cc.o"
  "CMakeFiles/envy_workload.dir/workload/trace.cc.o.d"
  "libenvy_workload.a"
  "libenvy_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
