file(REMOVE_RECURSE
  "libenvy_core.a"
)
