# Empty compiler generated dependencies file for envy_core.
# This may be replaced when dependencies are built.
