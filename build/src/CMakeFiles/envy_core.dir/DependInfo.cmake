
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/envy/cleaner.cc" "src/CMakeFiles/envy_core.dir/envy/cleaner.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/cleaner.cc.o.d"
  "/root/repo/src/envy/controller.cc" "src/CMakeFiles/envy_core.dir/envy/controller.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/controller.cc.o.d"
  "/root/repo/src/envy/envy_store.cc" "src/CMakeFiles/envy_core.dir/envy/envy_store.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/envy_store.cc.o.d"
  "/root/repo/src/envy/image.cc" "src/CMakeFiles/envy_core.dir/envy/image.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/image.cc.o.d"
  "/root/repo/src/envy/mmu.cc" "src/CMakeFiles/envy_core.dir/envy/mmu.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/mmu.cc.o.d"
  "/root/repo/src/envy/page_table.cc" "src/CMakeFiles/envy_core.dir/envy/page_table.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/page_table.cc.o.d"
  "/root/repo/src/envy/policy/cleaning_policy.cc" "src/CMakeFiles/envy_core.dir/envy/policy/cleaning_policy.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/policy/cleaning_policy.cc.o.d"
  "/root/repo/src/envy/policy/fifo.cc" "src/CMakeFiles/envy_core.dir/envy/policy/fifo.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/policy/fifo.cc.o.d"
  "/root/repo/src/envy/policy/greedy.cc" "src/CMakeFiles/envy_core.dir/envy/policy/greedy.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/policy/greedy.cc.o.d"
  "/root/repo/src/envy/policy/hybrid.cc" "src/CMakeFiles/envy_core.dir/envy/policy/hybrid.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/policy/hybrid.cc.o.d"
  "/root/repo/src/envy/policy/locality_gathering.cc" "src/CMakeFiles/envy_core.dir/envy/policy/locality_gathering.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/policy/locality_gathering.cc.o.d"
  "/root/repo/src/envy/recovery.cc" "src/CMakeFiles/envy_core.dir/envy/recovery.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/recovery.cc.o.d"
  "/root/repo/src/envy/segment_space.cc" "src/CMakeFiles/envy_core.dir/envy/segment_space.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/segment_space.cc.o.d"
  "/root/repo/src/envy/wear_leveler.cc" "src/CMakeFiles/envy_core.dir/envy/wear_leveler.cc.o" "gcc" "src/CMakeFiles/envy_core.dir/envy/wear_leveler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/envy_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
