file(REMOVE_RECURSE
  "CMakeFiles/envy_core.dir/envy/cleaner.cc.o"
  "CMakeFiles/envy_core.dir/envy/cleaner.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/controller.cc.o"
  "CMakeFiles/envy_core.dir/envy/controller.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/envy_store.cc.o"
  "CMakeFiles/envy_core.dir/envy/envy_store.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/image.cc.o"
  "CMakeFiles/envy_core.dir/envy/image.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/mmu.cc.o"
  "CMakeFiles/envy_core.dir/envy/mmu.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/page_table.cc.o"
  "CMakeFiles/envy_core.dir/envy/page_table.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/policy/cleaning_policy.cc.o"
  "CMakeFiles/envy_core.dir/envy/policy/cleaning_policy.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/policy/fifo.cc.o"
  "CMakeFiles/envy_core.dir/envy/policy/fifo.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/policy/greedy.cc.o"
  "CMakeFiles/envy_core.dir/envy/policy/greedy.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/policy/hybrid.cc.o"
  "CMakeFiles/envy_core.dir/envy/policy/hybrid.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/policy/locality_gathering.cc.o"
  "CMakeFiles/envy_core.dir/envy/policy/locality_gathering.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/recovery.cc.o"
  "CMakeFiles/envy_core.dir/envy/recovery.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/segment_space.cc.o"
  "CMakeFiles/envy_core.dir/envy/segment_space.cc.o.d"
  "CMakeFiles/envy_core.dir/envy/wear_leveler.cc.o"
  "CMakeFiles/envy_core.dir/envy/wear_leveler.cc.o.d"
  "libenvy_core.a"
  "libenvy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
