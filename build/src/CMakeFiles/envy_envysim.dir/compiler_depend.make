# Empty compiler generated dependencies file for envy_envysim.
# This may be replaced when dependencies are built.
