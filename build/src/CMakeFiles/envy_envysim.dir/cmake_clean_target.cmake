file(REMOVE_RECURSE
  "libenvy_envysim.a"
)
