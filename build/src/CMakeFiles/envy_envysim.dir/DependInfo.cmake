
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/envysim/bank_model.cc" "src/CMakeFiles/envy_envysim.dir/envysim/bank_model.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/bank_model.cc.o.d"
  "/root/repo/src/envysim/config.cc" "src/CMakeFiles/envy_envysim.dir/envysim/config.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/config.cc.o.d"
  "/root/repo/src/envysim/experiment.cc" "src/CMakeFiles/envy_envysim.dir/envysim/experiment.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/experiment.cc.o.d"
  "/root/repo/src/envysim/policy_sim.cc" "src/CMakeFiles/envy_envysim.dir/envysim/policy_sim.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/policy_sim.cc.o.d"
  "/root/repo/src/envysim/replay.cc" "src/CMakeFiles/envy_envysim.dir/envysim/replay.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/replay.cc.o.d"
  "/root/repo/src/envysim/system.cc" "src/CMakeFiles/envy_envysim.dir/envysim/system.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/system.cc.o.d"
  "/root/repo/src/envysim/timed_system.cc" "src/CMakeFiles/envy_envysim.dir/envysim/timed_system.cc.o" "gcc" "src/CMakeFiles/envy_envysim.dir/envysim/timed_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/envy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
