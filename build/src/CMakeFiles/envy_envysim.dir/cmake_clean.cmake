file(REMOVE_RECURSE
  "CMakeFiles/envy_envysim.dir/envysim/bank_model.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/bank_model.cc.o.d"
  "CMakeFiles/envy_envysim.dir/envysim/config.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/config.cc.o.d"
  "CMakeFiles/envy_envysim.dir/envysim/experiment.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/experiment.cc.o.d"
  "CMakeFiles/envy_envysim.dir/envysim/policy_sim.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/policy_sim.cc.o.d"
  "CMakeFiles/envy_envysim.dir/envysim/replay.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/replay.cc.o.d"
  "CMakeFiles/envy_envysim.dir/envysim/system.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/system.cc.o.d"
  "CMakeFiles/envy_envysim.dir/envysim/timed_system.cc.o"
  "CMakeFiles/envy_envysim.dir/envysim/timed_system.cc.o.d"
  "libenvy_envysim.a"
  "libenvy_envysim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_envysim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
