file(REMOVE_RECURSE
  "CMakeFiles/envy_txn.dir/txn/shadow.cc.o"
  "CMakeFiles/envy_txn.dir/txn/shadow.cc.o.d"
  "libenvy_txn.a"
  "libenvy_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
