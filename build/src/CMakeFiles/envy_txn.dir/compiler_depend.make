# Empty compiler generated dependencies file for envy_txn.
# This may be replaced when dependencies are built.
