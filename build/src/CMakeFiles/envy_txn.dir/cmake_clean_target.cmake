file(REMOVE_RECURSE
  "libenvy_txn.a"
)
