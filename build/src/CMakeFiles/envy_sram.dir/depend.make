# Empty dependencies file for envy_sram.
# This may be replaced when dependencies are built.
