
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sram/sram_array.cc" "src/CMakeFiles/envy_sram.dir/sram/sram_array.cc.o" "gcc" "src/CMakeFiles/envy_sram.dir/sram/sram_array.cc.o.d"
  "/root/repo/src/sram/write_buffer.cc" "src/CMakeFiles/envy_sram.dir/sram/write_buffer.cc.o" "gcc" "src/CMakeFiles/envy_sram.dir/sram/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/envy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
