file(REMOVE_RECURSE
  "CMakeFiles/envy_sram.dir/sram/sram_array.cc.o"
  "CMakeFiles/envy_sram.dir/sram/sram_array.cc.o.d"
  "CMakeFiles/envy_sram.dir/sram/write_buffer.cc.o"
  "CMakeFiles/envy_sram.dir/sram/write_buffer.cc.o.d"
  "libenvy_sram.a"
  "libenvy_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
