file(REMOVE_RECURSE
  "libenvy_sram.a"
)
