# Empty dependencies file for envy_flash.
# This may be replaced when dependencies are built.
