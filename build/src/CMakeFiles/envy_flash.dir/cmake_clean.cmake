file(REMOVE_RECURSE
  "CMakeFiles/envy_flash.dir/flash/flash_array.cc.o"
  "CMakeFiles/envy_flash.dir/flash/flash_array.cc.o.d"
  "CMakeFiles/envy_flash.dir/flash/flash_bank.cc.o"
  "CMakeFiles/envy_flash.dir/flash/flash_bank.cc.o.d"
  "CMakeFiles/envy_flash.dir/flash/flash_chip.cc.o"
  "CMakeFiles/envy_flash.dir/flash/flash_chip.cc.o.d"
  "libenvy_flash.a"
  "libenvy_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envy_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
