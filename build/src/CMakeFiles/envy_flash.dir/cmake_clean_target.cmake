file(REMOVE_RECURSE
  "libenvy_flash.a"
)
