file(REMOVE_RECURSE
  "CMakeFiles/test_ramdisk.dir/test_ramdisk.cc.o"
  "CMakeFiles/test_ramdisk.dir/test_ramdisk.cc.o.d"
  "test_ramdisk"
  "test_ramdisk.pdb"
  "test_ramdisk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
