# Empty compiler generated dependencies file for test_ramdisk.
# This may be replaced when dependencies are built.
