file(REMOVE_RECURSE
  "CMakeFiles/test_bank_model.dir/test_bank_model.cc.o"
  "CMakeFiles/test_bank_model.dir/test_bank_model.cc.o.d"
  "test_bank_model"
  "test_bank_model.pdb"
  "test_bank_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
