# Empty dependencies file for test_bank_model.
# This may be replaced when dependencies are built.
