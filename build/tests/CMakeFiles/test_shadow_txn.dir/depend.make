# Empty dependencies file for test_shadow_txn.
# This may be replaced when dependencies are built.
