file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_txn.dir/test_shadow_txn.cc.o"
  "CMakeFiles/test_shadow_txn.dir/test_shadow_txn.cc.o.d"
  "test_shadow_txn"
  "test_shadow_txn.pdb"
  "test_shadow_txn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
