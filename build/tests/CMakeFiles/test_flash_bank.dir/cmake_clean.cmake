file(REMOVE_RECURSE
  "CMakeFiles/test_flash_bank.dir/test_flash_bank.cc.o"
  "CMakeFiles/test_flash_bank.dir/test_flash_bank.cc.o.d"
  "test_flash_bank"
  "test_flash_bank.pdb"
  "test_flash_bank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flash_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
