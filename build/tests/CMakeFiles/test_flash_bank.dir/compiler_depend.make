# Empty compiler generated dependencies file for test_flash_bank.
# This may be replaced when dependencies are built.
