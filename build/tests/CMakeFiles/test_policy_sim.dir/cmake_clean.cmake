file(REMOVE_RECURSE
  "CMakeFiles/test_policy_sim.dir/test_policy_sim.cc.o"
  "CMakeFiles/test_policy_sim.dir/test_policy_sim.cc.o.d"
  "test_policy_sim"
  "test_policy_sim.pdb"
  "test_policy_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
