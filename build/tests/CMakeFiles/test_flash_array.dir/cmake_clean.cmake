file(REMOVE_RECURSE
  "CMakeFiles/test_flash_array.dir/test_flash_array.cc.o"
  "CMakeFiles/test_flash_array.dir/test_flash_array.cc.o.d"
  "test_flash_array"
  "test_flash_array.pdb"
  "test_flash_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flash_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
