# Empty dependencies file for test_mapped.
# This may be replaced when dependencies are built.
