file(REMOVE_RECURSE
  "CMakeFiles/test_mapped.dir/test_mapped.cc.o"
  "CMakeFiles/test_mapped.dir/test_mapped.cc.o.d"
  "test_mapped"
  "test_mapped.pdb"
  "test_mapped[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
