file(REMOVE_RECURSE
  "CMakeFiles/test_envy_store.dir/test_envy_store.cc.o"
  "CMakeFiles/test_envy_store.dir/test_envy_store.cc.o.d"
  "test_envy_store"
  "test_envy_store.pdb"
  "test_envy_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_envy_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
