# Empty compiler generated dependencies file for test_flash_chip.
# This may be replaced when dependencies are built.
