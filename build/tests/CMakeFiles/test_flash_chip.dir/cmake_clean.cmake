file(REMOVE_RECURSE
  "CMakeFiles/test_flash_chip.dir/test_flash_chip.cc.o"
  "CMakeFiles/test_flash_chip.dir/test_flash_chip.cc.o.d"
  "test_flash_chip"
  "test_flash_chip.pdb"
  "test_flash_chip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flash_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
