file(REMOVE_RECURSE
  "CMakeFiles/test_timed_system.dir/test_timed_system.cc.o"
  "CMakeFiles/test_timed_system.dir/test_timed_system.cc.o.d"
  "test_timed_system"
  "test_timed_system.pdb"
  "test_timed_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
