
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_timed_system.cc" "tests/CMakeFiles/test_timed_system.dir/test_timed_system.cc.o" "gcc" "tests/CMakeFiles/test_timed_system.dir/test_timed_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/envy_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_ramdisk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_envysim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/envy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
