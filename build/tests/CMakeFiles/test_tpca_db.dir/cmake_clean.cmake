file(REMOVE_RECURSE
  "CMakeFiles/test_tpca_db.dir/test_tpca_db.cc.o"
  "CMakeFiles/test_tpca_db.dir/test_tpca_db.cc.o.d"
  "test_tpca_db"
  "test_tpca_db.pdb"
  "test_tpca_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpca_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
