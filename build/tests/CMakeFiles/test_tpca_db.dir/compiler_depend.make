# Empty compiler generated dependencies file for test_tpca_db.
# This may be replaced when dependencies are built.
