#!/usr/bin/env python3
"""Validate bench JSON reports against the envy-bench schemas.

Usage: check_bench_json.py FILE_OR_DIR ...
       check_bench_json.py --self-test

A report must be a JSON object with:

  schema   "envy-bench-v1" or "envy-bench-v2"
  bench    non-empty string naming the harness
  smoke    boolean
  tables   non-empty list of table objects, each with:
             title    non-empty string
             columns  non-empty list of strings
             rows     list of lists of strings, every row exactly
                      len(columns) cells
             notes    list of strings
             wall_ms  (v2 only, optional) non-negative number: host
                      wall-clock spent producing the table (--time)
  metrics  (v2 only, optional) object mapping snapshot labels to
           lists of metric entries.  Every entry has name (non-empty
           string), kind ("counter" | "gauge" | "histogram") and
           unit (string), plus kind-specific fields:
             counter    value      non-negative integer
             gauge      value, high  numbers
             histogram  edges      list of non-decreasing integers
                        counts     list of len(edges)+1 non-negative
                                   integers
                        count      non-negative integer, == the sum
                                   of counts
                        sum        number

Bench-specific checks ride on top of the schema:

  - a full-run (smoke=false) "concurrency" report must contain the
    acceptance row -- 8 workers + 2 cleaners with a speedup of at
    least 3x over the serial baseline (the PR 8 scaling floor; see
    bench/bench_concurrency.cc);
  - a full-run "serve" report must carry the committed
    latency-throughput curves: a table with the
    workload/mode/offered_rps/p50_us/p99_us/p999_us columns covering
    at least SERVE_MIN_WORKLOADS workloads, each with at least
    SERVE_MIN_OPEN_POINTS open-loop rows plus a closed-loop capacity
    row, and p50 <= p99 <= p999 on every row (see
    bench/bench_serve.cc);
  - a full-run "serve" report must also carry the durable-acks
    comparison: a table with workload/ack_mode/achieved_rps columns
    holding a "flush" (per-request journal flush) and a "group"
    (commit-thread batching) row, with group at least
    SERVE_DURABLE_MIN_SPEEDUP x the flush throughput (the PR 10
    group-commit floor; see bench/bench_serve.cc).

Exit status: 0 when every file validates, 1 otherwise, 2 on usage
errors.  Directories are scanned for *.json (non-recursively).
"""

import json
import os
import sys

SCHEMAS = ("envy-bench-v1", "envy-bench-v2")

# The concurrency bench's acceptance floor: aggregate write
# throughput at 8 workers + 2 cleaners vs the 1-thread/inline-clean
# baseline.
CONCURRENCY_MIN_SPEEDUP = 3.0

# The serve bench's committed curve must cover this many workloads,
# each with this many open-loop offered-load points (plus the closed
# capacity point).
SERVE_MIN_WORKLOADS = 2
SERVE_MIN_OPEN_POINTS = 3

# The durable-acks acceptance floor: group-commit (one shared journal
# epoch + one fdatasync per commit-thread batch) vs one journal
# append + fdatasync inline per mutated request.
SERVE_DURABLE_MIN_SPEEDUP = 5.0


def fail(path, msg):
    print(f"{path}: {msg}")
    return False


def check_metric_entry(path, where, e):
    if not isinstance(e, dict):
        return fail(path, f"{where} is not an object")
    if not isinstance(e.get("name"), str) or not e["name"]:
        return fail(path, f"{where}.name must be a non-empty string")
    if not isinstance(e.get("unit"), str):
        return fail(path, f"{where}.unit must be a string")
    kind = e.get("kind")
    if kind == "counter":
        v = e.get("value")
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            return fail(path, f"{where}.value must be a non-negative "
                              "integer")
    elif kind == "gauge":
        for k in ("value", "high"):
            if (not isinstance(e.get(k), (int, float)) or
                    isinstance(e.get(k), bool)):
                return fail(path, f"{where}.{k} must be a number")
    elif kind == "histogram":
        edges = e.get("edges")
        if (not isinstance(edges, list) or
                not all(isinstance(x, int) and not isinstance(x, bool)
                        for x in edges)):
            return fail(path, f"{where}.edges must be a list of "
                              "integers")
        if any(a > b for a, b in zip(edges, edges[1:])):
            return fail(path, f"{where}.edges must be non-decreasing")
        counts = e.get("counts")
        if (not isinstance(counts, list) or
                not all(isinstance(x, int) and not isinstance(x, bool)
                        and x >= 0 for x in counts)):
            return fail(path, f"{where}.counts must be a list of "
                              "non-negative integers")
        if len(counts) != len(edges) + 1:
            return fail(path, f"{where}.counts has {len(counts)} "
                              f"buckets, expected {len(edges) + 1}")
        count = e.get("count")
        if (not isinstance(count, int) or isinstance(count, bool) or
                count != sum(counts)):
            return fail(path, f"{where}.count must equal the sum of "
                              "counts")
        if (not isinstance(e.get("sum"), (int, float)) or
                isinstance(e.get("sum"), bool)):
            return fail(path, f"{where}.sum must be a number")
    else:
        return fail(path, f"{where}.kind is {kind!r}, expected "
                          "counter, gauge, or histogram")
    return True


def check_metrics(path, metrics):
    if not isinstance(metrics, dict):
        return fail(path, "metrics must be an object")
    for label, entries in metrics.items():
        if not label:
            return fail(path, "metrics labels must be non-empty")
        if not isinstance(entries, list):
            return fail(path, f"metrics[{label!r}] must be a list")
        for i, e in enumerate(entries):
            if not check_metric_entry(
                    path, f"metrics[{label!r}][{i}]", e):
                return False
    return True


def check_concurrency_scaling(path, tables):
    """Full-run concurrency reports must carry the acceptance row:
    8 workers + 2 cleaners at >= CONCURRENCY_MIN_SPEEDUP x."""
    for t in tables:
        cols = t.get("columns", [])
        if not {"workers", "cleaners", "speedup"} <= set(cols):
            continue
        iw = cols.index("workers")
        ic = cols.index("cleaners")
        isp = cols.index("speedup")
        for j, row in enumerate(t.get("rows", [])):
            if row[iw] != "8" or row[ic] != "2":
                continue
            cell = row[isp]
            try:
                speedup = float(cell.rstrip("x"))
            except ValueError:
                return fail(path, f"concurrency acceptance row has "
                                  f"unparseable speedup {cell!r}")
            if speedup < CONCURRENCY_MIN_SPEEDUP:
                return fail(path, f"concurrency: 8-worker/2-cleaner "
                                  f"speedup {cell} is below the "
                                  f"{CONCURRENCY_MIN_SPEEDUP}x "
                                  "acceptance floor")
            return True
    return fail(path, "concurrency full run must include an "
                      "8-worker/2-cleaner row in a table with "
                      "workers/cleaners/speedup columns")


SERVE_COLUMNS = ("workload", "mode", "offered_rps", "p50_us",
                 "p99_us", "p999_us")


def check_serve_curves(path, tables):
    """Full-run serve reports must carry the latency-throughput
    curves: >= SERVE_MIN_WORKLOADS workloads, each with a closed
    capacity point and >= SERVE_MIN_OPEN_POINTS open-loop points,
    percentiles ordered on every row."""
    for t in tables:
        cols = t.get("columns", [])
        if not set(SERVE_COLUMNS) <= set(cols):
            continue
        iw = cols.index("workload")
        im = cols.index("mode")
        pct = [cols.index(c) for c in ("p50_us", "p99_us", "p999_us")]
        modes = {}  # workload -> {"closed": n, "open": n}
        for j, row in enumerate(t.get("rows", [])):
            if row[im] not in ("closed", "open"):
                return fail(path, f"serve row {j} has mode "
                                  f"{row[im]!r}, expected closed or "
                                  "open")
            try:
                p50, p99, p999 = (float(row[i]) for i in pct)
            except ValueError:
                return fail(path, f"serve row {j} has unparseable "
                                  "percentiles")
            if not p50 <= p99 <= p999:
                return fail(path, f"serve row {j} percentiles are "
                                  f"not ordered: p50={row[pct[0]]} "
                                  f"p99={row[pct[1]]} "
                                  f"p999={row[pct[2]]}")
            per = modes.setdefault(row[iw], {"closed": 0, "open": 0})
            per[row[im]] += 1
        if len(modes) < SERVE_MIN_WORKLOADS:
            return fail(path, f"serve curve covers {len(modes)} "
                              f"workload(s), needs "
                              f"{SERVE_MIN_WORKLOADS}")
        for w, per in modes.items():
            if per["closed"] < 1:
                return fail(path, f"serve workload {w!r} has no "
                                  "closed-loop capacity point")
            if per["open"] < SERVE_MIN_OPEN_POINTS:
                return fail(path, f"serve workload {w!r} has "
                                  f"{per['open']} open-loop point(s),"
                                  f" needs {SERVE_MIN_OPEN_POINTS}")
        return True
    return fail(path, "serve full run must include a table with the "
                      f"{'/'.join(SERVE_COLUMNS)} columns")


SERVE_DURABLE_COLUMNS = ("workload", "ack_mode", "achieved_rps")


def check_serve_durable(path, tables):
    """Full-run serve reports must carry the durable-acks comparison:
    one "flush" and one "group" row, with group throughput at least
    SERVE_DURABLE_MIN_SPEEDUP x flush."""
    for t in tables:
        cols = t.get("columns", [])
        if not set(SERVE_DURABLE_COLUMNS) <= set(cols):
            continue
        im = cols.index("ack_mode")
        ir = cols.index("achieved_rps")
        rps = {}
        for j, row in enumerate(t.get("rows", [])):
            if row[im] not in ("flush", "group"):
                return fail(path, f"serve durable row {j} has "
                                  f"ack_mode {row[im]!r}, expected "
                                  "flush or group")
            try:
                rps[row[im]] = float(row[ir])
            except ValueError:
                return fail(path, f"serve durable row {j} has "
                                  "unparseable achieved_rps "
                                  f"{row[ir]!r}")
        for mode in ("flush", "group"):
            if mode not in rps:
                return fail(path, f"serve durable table has no "
                                  f"{mode!r} row")
        if rps["flush"] <= 0:
            return fail(path, "serve durable flush throughput must "
                              "be positive")
        speedup = rps["group"] / rps["flush"]
        if speedup < SERVE_DURABLE_MIN_SPEEDUP:
            return fail(path, f"serve durable group-commit speedup "
                              f"{speedup:.2f}x is below the "
                              f"{SERVE_DURABLE_MIN_SPEEDUP}x "
                              "acceptance floor")
        return True
    return fail(path, "serve full run must include the durable-acks "
                      "table with the "
                      f"{'/'.join(SERVE_DURABLE_COLUMNS)} columns")


def check_report(path, doc=None):
    if doc is None:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            return fail(path, f"unreadable: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        return fail(path, f"schema is {schema!r}, expected one of "
                          f"{SCHEMAS}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "bench must be a non-empty string")
    if not isinstance(doc.get("smoke"), bool):
        return fail(path, "smoke must be a boolean")
    tables = doc.get("tables")
    if not isinstance(tables, list) or not tables:
        return fail(path, "tables must be a non-empty list")

    for i, t in enumerate(tables):
        where = f"tables[{i}]"
        if not isinstance(t, dict):
            return fail(path, f"{where} is not an object")
        if not isinstance(t.get("title"), str) or not t["title"]:
            return fail(path, f"{where}.title must be a non-empty "
                              "string")
        cols = t.get("columns")
        if (not isinstance(cols, list) or not cols or
                not all(isinstance(c, str) for c in cols)):
            return fail(path, f"{where}.columns must be a non-empty "
                              "list of strings")
        rows = t.get("rows")
        if not isinstance(rows, list):
            return fail(path, f"{where}.rows must be a list")
        for j, row in enumerate(rows):
            if (not isinstance(row, list) or
                    not all(isinstance(c, str) for c in row)):
                return fail(path, f"{where}.rows[{j}] must be a list "
                                  "of strings")
            if len(row) != len(cols):
                return fail(path, f"{where}.rows[{j}] has {len(row)} "
                                  f"cells, expected {len(cols)}")
        notes = t.get("notes")
        if (not isinstance(notes, list) or
                not all(isinstance(n, str) for n in notes)):
            return fail(path, f"{where}.notes must be a list of "
                              "strings")
        if "wall_ms" in t:
            if schema == "envy-bench-v1":
                return fail(path, f"{where}.wall_ms requires "
                                  "envy-bench-v2")
            wall = t["wall_ms"]
            if (not isinstance(wall, (int, float)) or
                    isinstance(wall, bool) or wall < 0):
                return fail(path, f"{where}.wall_ms must be a "
                                  "non-negative number")

    if "metrics" in doc:
        if schema == "envy-bench-v1":
            return fail(path, "metrics block requires envy-bench-v2")
        if not check_metrics(path, doc["metrics"]):
            return False

    if doc["bench"] == "concurrency" and not doc["smoke"]:
        if not check_concurrency_scaling(path, tables):
            return False
    if doc["bench"] == "serve" and not doc["smoke"]:
        if not check_serve_curves(path, tables):
            return False
        if not check_serve_durable(path, tables):
            return False

    nmetrics = len(doc.get("metrics", {}))
    suffix = f", {nmetrics} metrics label(s)" if nmetrics else ""
    print(f"{path}: OK ({len(tables)} table(s){suffix})")
    return True


def expand(arg):
    if os.path.isdir(arg):
        return sorted(
            os.path.join(arg, n) for n in os.listdir(arg)
            if n.endswith(".json"))
    return [arg]


def self_test():
    """Exercise the checker on canned good/bad documents."""
    table = {"title": "t", "columns": ["a"], "rows": [["1"]],
             "notes": []}
    counter = {"name": "flash.programs", "kind": "counter",
               "unit": "pages", "value": 3}
    gauge = {"name": "sim.cleaning_cost", "kind": "gauge",
             "unit": "programs/flush", "value": 1.5, "high": 2.0}
    hist = {"name": "ctl.write_len", "kind": "histogram",
            "unit": "bytes", "edges": [10, 100], "counts": [1, 2, 0],
            "count": 3, "sum": 120.0}

    def doc(**kw):
        base = {"schema": "envy-bench-v2", "bench": "b",
                "smoke": True, "tables": [table]}
        base.update(kw)
        return base

    def scaling(speedup):
        return {"title": "scaling",
                "columns": ["workers", "cleaners", "speedup"],
                "rows": [["1", "0", "1.00x"],
                         ["8", "2", speedup]],
                "notes": []}

    def serve_rows(workloads=("zipf", "tpca"), open_points=3,
                   p=("10", "50", "90")):
        rows = []
        for w in workloads:
            rows.append([w, "closed", "1000", *p])
            for k in range(open_points):
                rows.append([w, "open", str(300 * (k + 1)), *p])
        return rows

    def serve_table(rows):
        return {"title": "serve curves",
                "columns": ["workload", "mode", "offered_rps",
                            "p50_us", "p99_us", "p999_us"],
                "rows": rows, "notes": []}

    def durable_rows(flush="1000", group="6000", modes=("flush",
                                                        "group")):
        vals = {"flush": flush, "group": group}
        return [["zipf-durable", m, "64", vals[m], "1", "2", "3"]
                for m in modes]

    def durable_table(rows):
        return {"title": "serve durable",
                "columns": ["workload", "ack_mode", "clients",
                            "achieved_rps", "p50_us", "p99_us",
                            "p999_us"],
                "rows": rows, "notes": []}

    def serve_full(curve_rows=None, durable=None):
        return [serve_table(serve_rows() if curve_rows is None
                            else curve_rows),
                durable_table(durable_rows() if durable is None
                              else durable)]

    good = [
        ("v1 plain", doc(schema="envy-bench-v1")),
        ("v2 plain", doc()),
        ("v2 metrics", doc(metrics={"u=30%": [counter, gauge,
                                              hist]})),
        ("v2 empty label list", doc(metrics={"u=30%": []})),
        ("v2 wall_ms", doc(tables=[{**table, "wall_ms": 12.345}])),
        ("v2 wall_ms zero", doc(tables=[{**table, "wall_ms": 0}])),
        ("concurrency full run at floor",
         doc(bench="concurrency", smoke=False,
             tables=[scaling("3.00x")])),
        ("concurrency smoke skips the floor",
         doc(bench="concurrency", smoke=True,
             tables=[scaling("0.50x")])),
        ("serve full curves",
         doc(bench="serve", smoke=False, tables=serve_full())),
        ("serve durable at the floor",
         doc(bench="serve", smoke=False,
             tables=serve_full(durable=durable_rows(
                 flush="1000", group="5000")))),
        ("serve smoke skips the curve check",
         doc(bench="serve", smoke=True,
             tables=[serve_table(serve_rows(workloads=("zipf",),
                                            open_points=1))])),
    ]
    bad = [
        ("unknown schema", doc(schema="envy-bench-v3")),
        ("v1 with metrics", doc(schema="envy-bench-v1",
                                metrics={"u": [counter]})),
        ("metrics not object", doc(metrics=[counter])),
        ("empty label", doc(metrics={"": [counter]})),
        ("bad kind", doc(metrics={"u": [{**counter,
                                         "kind": "timer"}]})),
        ("negative counter", doc(metrics={"u": [{**counter,
                                                 "value": -1}]})),
        ("bool counter", doc(metrics={"u": [{**counter,
                                             "value": True}]})),
        ("gauge missing high", doc(metrics={"u": [
            {k: v for k, v in gauge.items() if k != "high"}]})),
        ("hist bucket count", doc(metrics={"u": [{**hist,
                                                  "counts": [1]}]})),
        ("hist count mismatch", doc(metrics={"u": [{**hist,
                                                    "count": 99}]})),
        ("hist edges decreasing", doc(metrics={"u": [
            {**hist, "edges": [100, 10]}]})),
        ("ragged row", doc(tables=[{**table, "rows": [["1", "2"]]}])),
        ("v1 with wall_ms", doc(schema="envy-bench-v1",
                                tables=[{**table, "wall_ms": 1.0}])),
        ("negative wall_ms", doc(tables=[{**table,
                                          "wall_ms": -0.5}])),
        ("bool wall_ms", doc(tables=[{**table, "wall_ms": True}])),
        ("string wall_ms", doc(tables=[{**table,
                                        "wall_ms": "3.5"}])),
        ("concurrency below floor",
         doc(bench="concurrency", smoke=False,
             tables=[scaling("2.41x")])),
        ("concurrency missing acceptance row",
         doc(bench="concurrency", smoke=False)),
        ("concurrency unparseable speedup",
         doc(bench="concurrency", smoke=False,
             tables=[scaling("fast")])),
        ("serve missing table",
         doc(bench="serve", smoke=False)),
        ("serve one workload",
         doc(bench="serve", smoke=False,
             tables=[serve_table(serve_rows(
                 workloads=("zipf",)))])),
        ("serve too few open points",
         doc(bench="serve", smoke=False,
             tables=[serve_table(serve_rows(open_points=2))])),
        ("serve missing closed point",
         doc(bench="serve", smoke=False,
             tables=[serve_table([r for r in serve_rows()
                                  if r[1] != "closed"])])),
        ("serve bad mode",
         doc(bench="serve", smoke=False,
             tables=[serve_table(serve_rows() +
                                 [["zipf", "sideways", "1",
                                   "1", "2", "3"]])])),
        ("serve unordered percentiles",
         doc(bench="serve", smoke=False,
             tables=[serve_table(serve_rows(
                 p=("90", "50", "10")))])),
        ("serve unparseable percentile",
         doc(bench="serve", smoke=False,
             tables=serve_full(curve_rows=serve_rows(
                 p=("fast", "50", "90"))))),
        ("serve missing durable table",
         doc(bench="serve", smoke=False,
             tables=[serve_table(serve_rows())])),
        ("serve durable below floor",
         doc(bench="serve", smoke=False,
             tables=serve_full(durable=durable_rows(
                 flush="1000", group="4990")))),
        ("serve durable missing group row",
         doc(bench="serve", smoke=False,
             tables=serve_full(durable=durable_rows(
                 modes=("flush",))))),
        ("serve durable bad ack_mode",
         doc(bench="serve", smoke=False,
             tables=serve_full(durable=durable_rows() +
                               [["zipf-durable", "inline", "64",
                                 "1", "1", "2", "3"]]))),
        ("serve durable unparseable rps",
         doc(bench="serve", smoke=False,
             tables=serve_full(durable=durable_rows(
                 group="fast")))),
    ]
    failures = 0
    for name, d in good:
        if not check_report(f"<self-test good: {name}>", d):
            failures += 1
    for name, d in bad:
        if check_report(f"<self-test bad: {name}>", d):
            print(f"<self-test bad: {name}>: WRONGLY ACCEPTED")
            failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: OK ({len(good)} good, {len(bad)} bad)")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = [f for arg in argv[1:] for f in expand(arg)]
    if not files:
        print("check_bench_json.py: no JSON files found",
              file=sys.stderr)
        return 2
    ok = True
    for f in files:
        ok = check_report(f) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
