#!/usr/bin/env python3
"""Validate bench JSON reports against the envy-bench-v1 schema.

Usage: check_bench_json.py FILE_OR_DIR ...

A report must be a JSON object with:

  schema   the literal string "envy-bench-v1"
  bench    non-empty string naming the harness
  smoke    boolean
  tables   non-empty list of table objects, each with:
             title    non-empty string
             columns  non-empty list of strings
             rows     list of lists of strings, every row exactly
                      len(columns) cells
             notes    list of strings

Exit status: 0 when every file validates, 1 otherwise, 2 on usage
errors.  Directories are scanned for *.json (non-recursively).
"""

import json
import os
import sys

SCHEMA = "envy-bench-v1"


def fail(path, msg):
    print(f"{path}: {msg}")
    return False


def check_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        return fail(path, f"schema is {doc.get('schema')!r}, "
                          f"expected {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "bench must be a non-empty string")
    if not isinstance(doc.get("smoke"), bool):
        return fail(path, "smoke must be a boolean")
    tables = doc.get("tables")
    if not isinstance(tables, list) or not tables:
        return fail(path, "tables must be a non-empty list")

    for i, t in enumerate(tables):
        where = f"tables[{i}]"
        if not isinstance(t, dict):
            return fail(path, f"{where} is not an object")
        if not isinstance(t.get("title"), str) or not t["title"]:
            return fail(path, f"{where}.title must be a non-empty "
                              "string")
        cols = t.get("columns")
        if (not isinstance(cols, list) or not cols or
                not all(isinstance(c, str) for c in cols)):
            return fail(path, f"{where}.columns must be a non-empty "
                              "list of strings")
        rows = t.get("rows")
        if not isinstance(rows, list):
            return fail(path, f"{where}.rows must be a list")
        for j, row in enumerate(rows):
            if (not isinstance(row, list) or
                    not all(isinstance(c, str) for c in row)):
                return fail(path, f"{where}.rows[{j}] must be a list "
                                  "of strings")
            if len(row) != len(cols):
                return fail(path, f"{where}.rows[{j}] has {len(row)} "
                                  f"cells, expected {len(cols)}")
        notes = t.get("notes")
        if (not isinstance(notes, list) or
                not all(isinstance(n, str) for n in notes)):
            return fail(path, f"{where}.notes must be a list of "
                              "strings")
    print(f"{path}: OK ({len(tables)} table(s))")
    return True


def expand(arg):
    if os.path.isdir(arg):
        return sorted(
            os.path.join(arg, n) for n in os.listdir(arg)
            if n.endswith(".json"))
    return [arg]


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = [f for arg in argv[1:] for f in expand(arg)]
    if not files:
        print("check_bench_json.py: no JSON files found",
              file=sys.stderr)
        return 2
    ok = True
    for f in files:
        ok = check_report(f) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
