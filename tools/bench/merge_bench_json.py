#!/usr/bin/env python3
"""Merge per-bench JSON reports into one baseline document.

Usage: merge_bench_json.py DIR > BENCH_baseline.json

Reads every *.json in DIR (as written by bench/run_all.sh --json),
accepting envy-bench-v1 and envy-bench-v2 inputs, sorts by bench
name, and emits a single envy-bench-v2 document whose tables list
concatenates all of them, each table title prefixed with its bench
name.  Metrics blocks are carried over with their labels prefixed
the same way ("[bench] label"); the metrics key is omitted when no
input had one.  The result still validates with check_bench_json.py,
which is how CI guards the committed baseline.
"""

import json
import os
import sys


def main(argv):
    if len(argv) != 2 or not os.path.isdir(argv[1]):
        print(__doc__, file=sys.stderr)
        return 2
    reports = []
    for name in sorted(os.listdir(argv[1])):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(argv[1], name),
                  encoding="utf-8") as f:
            reports.append(json.load(f))
    if not reports:
        print("merge_bench_json.py: no reports found",
              file=sys.stderr)
        return 2
    reports.sort(key=lambda r: r["bench"])
    merged = {
        "schema": "envy-bench-v2",
        "bench": "baseline",
        "smoke": all(r["smoke"] for r in reports),
        "tables": [
            {**t, "title": f"[{r['bench']}] {t['title']}"}
            for r in reports for t in r["tables"]
        ],
    }
    metrics = {
        f"[{r['bench']}] {label}": entries
        for r in reports
        for label, entries in r.get("metrics", {}).items()
    }
    if metrics:
        merged["metrics"] = metrics
    json.dump(merged, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
