#!/usr/bin/env python3
"""envy-analyze: AST-level protocol checks for the eNVy tree.

Where envy-lint works line-by-line with regexes, envy-analyze parses
every function into a statement-level control-flow tree and checks
*ordering* properties that no single line can show.  Rules (suppress
one occurrence with `// envy-analyze: allow(<rule>) reason` on the
same line or the line directly above; unused suppressions are
themselves findings):

  journal-before-mmap     every FlashMetaView / PersistBackend mutator
                          must reach a MetaJournal append (barrier(),
                          journal flush/commit/checkpoint, or a helper
                          proven to always journal) on ALL paths --
                          including early returns and error branches --
                          before its first write into the store-file
                          mapping.  BankBacking and the StoreFile
                          superblock are exempt by documented contract
                          (docs/PERSISTENCE.md).
  lock-discipline         no blocking syscall (fdatasync, fsync, msync,
                          ::read, ::write, pread, pwrite) and no
                          ParallelRunner submission inside a region
                          holding a MutexLock / std::lock_guard /
                          std::unique_lock.  Two concurrency-era
                          refinements (PR 8): condition-variable waits
                          while locked are flagged too, EXCEPT waits on
                          the cleaner wakeup cvs (cv_, roomCv_), which
                          by contract wait on a dedicated doze mutex at
                          the bottom of the lock order; and flash
                          program/erase calls (appendPage,
                          eraseSegment) inside a ShardLock scope are
                          flagged -- a shard lock serializes one page's
                          host-facing translation, device ops belong
                          under the structural lock
                          (docs/INTERNALS.md lock order).
  crash-point-reachable   every crash point in the canonical inventory
                          (src/faults/crash_point.cc) is reachable in
                          the call graph from a public entry point of
                          EnvyStore, Controller or ShadowManager; a
                          dead crash point means the crash explorer and
                          harness silently lost coverage.
  typed-id                no raw-integer parameter named page/slot/seg
                          in any function *definition* (use
                          LogicalPageId / SlotId / SegmentId).  AST
                          successor of envy-lint's typed-id-params:
                          sees through const, references, multi-line
                          parameter lists and std:: spelling variants.

Frontends (--frontend auto|internal|libclang):

  internal   a dependency-free C++ tokenizer + function extractor +
             statement-level CFG builder in this file.  Always
             available; what ctest runs.
  libclang   the same IR lowered from real clang ASTs via the
             `clang.cindex` python binding and compile_commands.json.
             Used in CI where a pinned libclang is installed; falls
             back to internal (with a note) when the binding or the
             compilation database is missing.

Both frontends lower to one FunctionIR, so every rule runs unchanged
on either.

Exit status: 0 clean, 1 findings, 2 usage or internal errors.
"""

import argparse
import json
import os
import re
import sys

RULES = (
    "journal-before-mmap",
    "lock-discipline",
    "crash-point-reachable",
    "typed-id",
)

# ---- rule configuration (the repo-specific protocol knowledge) -----

# Rule journal-before-mmap: classes whose methods write through to the
# store-file mapping and therefore owe the journal a barrier first.
JOURNAL_CLASSES = ("FlashMetaView", "PersistBackend")
# Calls that append to / sync the MetaJournal.  A bare barrier() is
# FlashMetaView's own journal hook; chains whose base mentions the
# journal cover PersistBackend (journal_.flush() etc.).
JOURNAL_CALL_NAMES = ("flush", "commit", "checkpoint", "appendRecord",
                      "createFresh", "replay",
                      # Epoch-pipeline entry points (PR 10): a group
                      # flush or an image checkpoint IS a journal
                      # append, so paths through them are barriered.
                      "syncOnly", "checkpointFromImage", "epochFlush")
JOURNAL_BARE_CALLS = ("barrier",)
# Calls / assignments that mutate the store-file mapping.
STORE_WRITE_CALLS = ("storeU32", "storeU64", "memset", "memcpy",
                     "markValid", "writeSuperblock")
# LHS chains that write the mapped segment-metadata span directly,
# e.g. `meta(seg)[StoreFile::segSpecFailedOff] = 1`.
STORE_WRITE_LHS = ("meta",)
# Exempt by the documented ordering contract (docs/PERSISTENCE.md):
# BankBacking orders map-byte vs cell-bytes internally, the superblock
# valid flag IS the commit record of store creation.
JOURNAL_EXEMPT_CLASSES = ("BankBacking", "StoreFile")

# Rule lock-discipline: how a locked region starts.  ShardLock is
# tracked separately from the plain mutex wrappers: it admits the
# usual blocking checks AND the flash-under-shard check below.
LOCK_DECL_TYPES = ("MutexLock", "lock_guard", "unique_lock",
                   "scoped_lock", "ShardLock")
SHARD_LOCK_TYPES = ("ShardLock",)
# ...and what must never run inside one.
BLOCKING_SYSCALLS = ("fdatasync", "fsync", "msync", "pread", "pwrite",
                     "read", "write", "sleep", "usleep", "nanosleep")
# read/write are only blocking syscalls when they are NOT member
# calls (SramArray::write is a memory copy); member calls named
# submit are ParallelRunner submissions.
BLOCKING_MEMBER_CALLS = ("submit",)
# Condition-variable waits release the mutex they are handed, but a
# wait while holding ANY scoped lock still parks the thread with that
# scope open.  The cleaner wakeup cvs are the contract exception:
# CleanerPool::cv_ (the doze cv) and Controller::roomCv_ (the
# backpressure cv) wait on dedicated doze mutexes that sit at the
# bottom of the lock order and guard nothing else.
CV_WAIT_CALLS = ("wait", "wait_for", "wait_until")
CLEANER_CV_BASES = ("cv_", "roomCv_")
# Journal leaf locks (docs/INTERNALS.md lock order): journalMu_ sits
# at the bottom of the order and *deliberately* covers write(2) /
# pwrite / fdatasync — sequencing of the journal file IS the lock's
# job, so serial stores, the commit pipeline and the flash
# write-through barrier all append through one ordered path.  A
# scoped lock whose constructor argument names one of these is exempt
# from the blocking-syscall check (docs/PERSISTENCE.md §group-commit).
JOURNAL_LEAF_LOCKS = ("journalMu_",)
# ParallelRunner's internal cvs predate this refinement and follow
# the classic protocol: each wait releases mutex_ itself, the only
# lock its scope holds (see the predicate-loop comment in
# src/envysim/parallel.cc).  Exempt by name, like the cleaner cvs.
RUNNER_CV_BASES = ("queueSpace_", "queueWork_", "allDone_")
# The serve layer's cvs follow the same classic protocol: the
# loopback pipe's dataCv_ waits on the pipe mutex (its scope's only
# lock), the server's workCv_ waits on the admission queue mutex and
# its commitCv_ on the commit-queue mutex (docs/SERVING.md §3);
# condition_variable_any releases that lock itself for the park.
SERVE_CV_BASES = ("dataCv_", "workCv_", "commitCv_")
# The commit pipeline's cvs (docs/PERSISTENCE.md §group-commit):
# workCv_ wakes the epoch thread, doneCv_ parks persistFlush()
# callers until their epoch lands; both wait on the pipeline's own
# leaf mutex mu_, which guards nothing the epoch body touches.
PIPELINE_CV_BASES = ("doneCv_",)
# Flash device entry points that program or erase the array.  Under a
# shard lock these deadlock-by-design: shard locks serialize one
# page's translation, device mutation runs under the structural lock
# (docs/INTERNALS.md lock-order table).
FLASH_DEVICE_CALLS = ("appendPage", "eraseSegment")

# Rule crash-point-reachable: public API surfaces a test or bench
# drives directly.  ShadowManager is the paper's transaction API and
# owns the txn.* points.
ENTRY_CLASSES = ("EnvyStore", "Controller", "ShadowManager")
CRASH_INVENTORY = os.path.join("src", "faults", "crash_point.cc")

# Rule typed-id: raw integer spellings and the reserved id names.
RAW_INT_TYPES = re.compile(
    r"^(?:const\s+)?(?:std::)?"
    r"(?:uint32_t|uint64_t|size_t|unsigned(?:\s+(?:int|long))?)"
    r"\s*&?$")
TYPED_ID_NAMES = ("page", "slot", "seg")

ALLOW = re.compile(r"//\s*envy-analyze:\s*allow\(([a-z-]+)\)\s*\S")

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "try", "catch", "throw",
    "new", "delete", "sizeof", "alignof", "static_cast",
    "dynamic_cast", "const_cast", "reinterpret_cast", "operator",
    "template", "typename", "using", "namespace", "class", "struct",
    "enum", "union", "public", "private", "protected", "static",
    "const", "constexpr", "inline", "virtual", "override", "final",
    "noexcept", "explicit", "friend", "typedef", "mutable", "auto",
    "void", "bool", "char", "int", "long", "short", "float", "double",
    "unsigned", "signed",
}


# ---- tokenizer -----------------------------------------------------

class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # "id", "num", "str", "punct"
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text!r}@{self.line}"


TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<lcomment>//[^\n]*)
  | (?P<bcomment>/\*.*?\*/)
  | (?P<str>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<num>(?:0[xX][0-9a-fA-F']+|\d[\d']*(?:\.\d+)?)
      (?:[uUlLfF]*))
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>::|->\*?|\+\+|--|<<=?|>>=?|<=|>=|==|!=|&&|\|\||
      [-+*/%&|^!~=<>]=?|[(){}\[\];,.?:#\\])
""", re.VERBOSE | re.DOTALL)


def tokenize(text):
    """C++ token stream with line numbers; comments and preprocessor
    lines dropped (but see scan_allows for the comments we keep)."""
    toks = []
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        m = TOKEN_RE.match(text, pos)
        if not m:
            pos += 1  # stray byte: skip
            continue
        kind = m.lastgroup
        s = m.group()
        if kind == "ws" or kind == "lcomment" or kind == "bcomment":
            line += s.count("\n")
        elif kind == "punct" and s == "#":
            # Preprocessor directive: swallow to end of (continued)
            # line.  Keeps #include / #if out of the token stream.
            j = pos
            while j < n:
                e = text.find("\n", j)
                if e < 0:
                    j = n
                    break
                if text[e - 1] == "\\":
                    line += 1
                    j = e + 1
                    continue
                j = e
                break
            line += text.count("\n", pos, j)
            pos = j
            continue
        else:
            toks.append(Tok(kind, s, line))
            line += s.count("\n")
        pos = m.end()
    return toks


def scan_allows(text):
    """line number -> set of rules allowed on that line."""
    allows = {}
    for num, line in enumerate(text.splitlines(), 1):
        for m in ALLOW.finditer(line):
            allows.setdefault(num, set()).add(m.group(1))
    return allows


# ---- statement IR --------------------------------------------------
#
# Every function body lowers to a list of nodes:
#
#   ("call", chain, name, line, member)   call op, evaluation order
#   ("assign", lhs_base, line)            assignment through a chain
#   ("lock", line, flavor)                a scoped-lock declaration;
#                                         flavor "shard" or "plain"
#   ("block", [nodes])                    explicit { } scope
#   ("if", [then_nodes], [else_nodes])    both branches analysed
#   ("loop", [body_nodes])                body may run zero times
#   ("return", line)                      path ends here
#
# Rules walk this tree; neither frontend leaks past it.


class FunctionIR:
    def __init__(self, cls, name, relpath, line, params, body):
        self.cls = cls        # enclosing class name or ""
        self.name = name      # unqualified function name
        self.relpath = relpath
        self.line = line      # definition line
        self.params = params  # list of (type_text, name, line)
        self.body = body      # statement IR list

    @property
    def qualname(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


# ---- internal frontend ---------------------------------------------

class InternalFrontend:
    """Extract FunctionIRs straight from the token stream.

    Handles the repo style (out-of-class definitions, opening brace
    on its own line) plus inline members inside class bodies, which
    the fixture corpus uses.
    """

    name = "internal"

    def parse_file(self, relpath, text):
        toks = tokenize(text)
        funcs = []
        self._scan(toks, 0, len(toks), "", relpath, funcs)
        return funcs

    # -- scope scanning ------------------------------------------

    def _scan(self, toks, i, end, cls, relpath, out):
        while i < end:
            t = toks[i]
            if t.kind == "id" and t.text in ("class", "struct"):
                i = self._scan_class(toks, i, end, relpath, out)
            elif t.kind == "id" and t.text == "namespace":
                i = self._skip_to(toks, i, end, "{")
                if i < end:
                    close = self._match_brace(toks, i, end)
                    self._scan(toks, i + 1, close, cls, relpath, out)
                    i = close + 1
            elif t.kind == "id" and t.text in ("using", "typedef",
                                               "template"):
                i = self._skip_decl(toks, i, end)
            else:
                f = self._try_function(toks, i, end, cls, relpath)
                if f:
                    out.append(f[0])
                    i = f[1]
                else:
                    i += 1
        return i

    def _scan_class(self, toks, i, end, relpath, out):
        # class NAME [final] [: bases] { ... } ;  -- or a forward
        # declaration `class NAME;`.
        j = i + 1
        name = ""
        while j < end and toks[j].kind == "id":
            name = toks[j].text
            j += 1
        while j < end and toks[j].text not in ("{", ";"):
            j += 1
        if j >= end or toks[j].text == ";":
            return j + 1
        close = self._match_brace(toks, j, end)
        self._scan(toks, j + 1, close, name, relpath, out)
        return close + 1

    def _skip_to(self, toks, i, end, text):
        while i < end and toks[i].text != text:
            i += 1
        return i

    def _skip_decl(self, toks, i, end):
        depth = 0
        while i < end:
            t = toks[i].text
            if t in "({[":
                depth += 1
            elif t in ")}]":
                depth -= 1
            elif t == ";" and depth <= 0:
                return i + 1
            elif t == "{" and depth == 0:
                return self._match_brace(toks, i, end) + 1
            i += 1
        return end

    def _match_brace(self, toks, i, end):
        """i points at '{'; return index of the matching '}'."""
        depth = 0
        while i < end:
            if toks[i].text == "{":
                depth += 1
            elif toks[i].text == "}":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return end - 1

    def _try_function(self, toks, i, end, cls, relpath):
        """Recognise `... [Cls::]name ( params ) [const...] [: init]
        {` starting the declarator at or after i.  Returns
        (FunctionIR, next_index) or None."""
        t = toks[i]
        if t.kind != "id" or t.text in KEYWORDS:
            return None
        # The candidate name is an identifier directly followed by
        # '(' -- possibly via Cls::name.
        name = t.text
        fn_cls = cls
        j = i + 1
        while j + 1 < end and toks[j].text == "::" and \
                toks[j + 1].kind == "id":
            fn_cls = name if not cls else name
            name = toks[j + 1].text
            j += 2
        if j >= end or toks[j].text != "(" or name in KEYWORDS:
            return None
        close_paren = self._match_paren(toks, j, end)
        if close_paren is None:
            return None
        # After ')': const/noexcept/override/final/attribute, then an
        # optional ctor-initialiser, then '{' for a definition.
        k = close_paren + 1
        while k < end and toks[k].kind == "id" and \
                toks[k].text in ("const", "noexcept", "override",
                                 "final", "mutable"):
            k += 1
        if k < end and toks[k].text == "(":  # noexcept(...)
            p = self._match_paren(toks, k, end)
            if p is None:
                return None
            k = p + 1
        if k < end and toks[k].text == ":":
            # ctor init list: skip balanced until '{' at depth 0
            k += 1
            depth = 0
            while k < end:
                tx = toks[k].text
                if tx in "([":
                    depth += 1
                elif tx in ")]":
                    depth -= 1
                elif tx == "{" and depth == 0:
                    break
                elif tx == ";" and depth == 0:
                    return None
                k += 1
        if k >= end or toks[k].text != "{":
            return None
        # Guard against control statements and calls: the token
        # before the declarator must not suggest an expression.
        if i > 0 and toks[i - 1].text in (".", "->", "::", "(", ",",
                                          "=", "return", "&&", "||",
                                          "!", "==", "!="):
            return None
        body_close = self._match_brace(toks, k, end)
        params = self._parse_params(toks, j + 1, close_paren)
        body = self._parse_block(toks, k + 1, body_close)
        ir = FunctionIR(fn_cls, name, relpath, t.line, params, body)
        return ir, body_close + 1

    def _match_paren(self, toks, i, end):
        """Strict matcher for declarator parameter lists: a brace or
        semicolon before the close means this was not a declarator."""
        depth = 0
        while i < end:
            if toks[i].text == "(":
                depth += 1
            elif toks[i].text == ")":
                depth -= 1
                if depth == 0:
                    return i
            elif toks[i].text in ("{", ";"):
                return None
            i += 1
        return None

    def _match_paren_any(self, toks, i, end):
        """Balance-only matcher for conditions: `for (;;)` headers
        and lambdas in conditions are legal there."""
        depth = 0
        while i < end:
            if toks[i].text == "(":
                depth += 1
            elif toks[i].text == ")":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return None

    def _parse_params(self, toks, i, end):
        """Split [i, end) on top-level commas; each piece is a
        parameter: all-but-last id is the type, last id the name."""
        params = []
        piece = []
        depth = 0
        for k in range(i, end):
            t = toks[k]
            if t.text in "(<[{":
                depth += 1
            elif t.text in ")>]}":
                depth -= 1
            if t.text == "," and depth == 0:
                params.append(piece)
                piece = []
            else:
                piece.append(t)
        if piece:
            params.append(piece)
        out = []
        for piece in params:
            # drop default argument
            for k, t in enumerate(piece):
                if t.text == "=":
                    piece = piece[:k]
                    break
            ids = [t for t in piece if t.kind == "id"]
            if len(ids) < 2:
                continue  # unnamed or `void`
            pname = ids[-1]
            type_text = " ".join(
                t.text for t in piece
                if t is not pname).replace(" :: ", "::")
            out.append((type_text, pname.text, pname.line))
        return out

    # -- statement parsing ---------------------------------------

    def _parse_block(self, toks, i, end):
        """Parse statements in [i, end) (inside braces)."""
        nodes = []
        while i < end:
            t = toks[i]
            if t.text == "{":
                close = self._match_brace(toks, i, end)
                nodes.append(("block",
                              self._parse_block(toks, i + 1, close)))
                i = close + 1
            elif t.kind == "id" and t.text == "if":
                i = self._parse_if(toks, i, end, nodes)
            elif t.kind == "id" and t.text in ("for", "while",
                                               "switch"):
                i = self._parse_loop(toks, i, end, nodes)
            elif t.kind == "id" and t.text == "do":
                # do { body } while (cond); body runs at least once.
                if i + 1 < end and toks[i + 1].text == "{":
                    close = self._match_brace(toks, i + 1, end)
                    nodes.append(("block", self._parse_block(
                        toks, i + 2, close)))
                    i = self._skip_statement(toks, close + 1, end,
                                             nodes, emit=True)
                else:
                    i += 1
            elif t.kind == "id" and t.text == "return":
                i = self._skip_statement(toks, i + 1, end, nodes,
                                         emit=True)
                nodes.append(("return", t.line))
            elif t.kind == "id" and t.text == "else":
                i += 1  # handled by _parse_if; stray safety
            else:
                i = self._skip_statement(toks, i, end, nodes,
                                         emit=True)
        return nodes

    def _parse_paren_ops(self, toks, i, end, nodes):
        """i at '('; emit ops for the condition, return index past
        ')'."""
        close = self._match_paren_any(toks, i, end)
        if close is None:
            return end
        self._emit_ops(toks, i + 1, close, nodes)
        return close + 1

    def _parse_if(self, toks, i, end, nodes):
        line = toks[i].line
        i += 1
        if i < end and toks[i].kind == "id" and \
                toks[i].text == "constexpr":
            i += 1
        if i >= end or toks[i].text != "(":
            return i
        i = self._parse_paren_ops(toks, i, end, nodes)
        then_nodes, i = self._parse_substmt(toks, i, end)
        else_nodes = []
        if i < end and toks[i].kind == "id" and toks[i].text == "else":
            i += 1
            if i < end and toks[i].kind == "id" and \
                    toks[i].text == "if":
                sub = []
                i = self._parse_if(toks, i, end, sub)
                else_nodes = sub
            else:
                else_nodes, i = self._parse_substmt(toks, i, end)
        nodes.append(("if", then_nodes, else_nodes, line))
        return i

    def _parse_loop(self, toks, i, end, nodes):
        i += 1
        if i >= end or toks[i].text != "(":
            return i
        i = self._parse_paren_ops(toks, i, end, nodes)
        body, i = self._parse_substmt(toks, i, end)
        nodes.append(("loop", body))
        return i

    def _parse_substmt(self, toks, i, end):
        """One statement or block after if(...)/loop(...)."""
        if i < end and toks[i].text == "{":
            close = self._match_brace(toks, i, end)
            return self._parse_block(toks, i + 1, close), close + 1
        sub = []
        if i < end and toks[i].kind == "id" and toks[i].text == "if":
            i = self._parse_if(toks, i, end, sub)
            return sub, i
        if i < end and toks[i].kind == "id" and \
                toks[i].text == "return":
            line = toks[i].line
            i = self._skip_statement(toks, i + 1, end, sub, emit=True)
            sub.append(("return", line))
            return sub, i
        i = self._skip_statement(toks, i, end, sub, emit=True)
        return sub, i

    def _skip_statement(self, toks, i, end, nodes, emit):
        """Consume one `...;` statement, emitting its ops."""
        start = i
        depth = 0
        while i < end:
            t = toks[i].text
            if t in "([":
                depth += 1
            elif t in ")]":
                depth -= 1
            elif t == "{":
                # brace inside a statement: lambda body or braced
                # init.  Lambda bodies are deferred code -- their ops
                # are attributed to the function for the call graph
                # but excluded from the ordering/lock walks, which
                # "call"-op consumers do via the member flag... we
                # keep it simpler: emit them as ops inside a
                # ("defer", [...]) node.
                close = self._match_brace(toks, i, end)
                if emit:
                    inner = self._parse_block(toks, i + 1, close)
                    nodes.append(("defer", inner))
                i = close + 1
                continue
            elif t == ";" and depth <= 0:
                if emit:
                    self._emit_ops(toks, start, i, nodes)
                return i + 1
            i += 1
        if emit:
            self._emit_ops(toks, start, end, nodes)
        return end

    def _emit_ops(self, toks, i, end, nodes):
        """Scan [i, end) (one expression/declaration, braces already
        removed) for call, assignment and lock-declaration ops, in
        textual order."""
        # Lock declaration: TYPE name ( ... )   with TYPE in
        # LOCK_DECL_TYPES (possibly std:: / template-argumented).
        k = i
        while k < end:
            t = toks[k]
            if t.kind == "id" and t.text in LOCK_DECL_TYPES:
                # skip template args
                j = k + 1
                if j < end and toks[j].text == "<":
                    depth = 0
                    while j < end:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                        j += 1
                if j < end and toks[j].kind == "id" and \
                        j + 1 < end and toks[j + 1].text in ("(", "{"):
                    if t.text in SHARD_LOCK_TYPES:
                        flavor = "shard"
                    else:
                        flavor = "plain"
                        # Constructor argument naming a journal leaf
                        # lock -> the exempt "leaf" flavor.
                        a = j + 2
                        depth2 = 1
                        while a < end and depth2 > 0:
                            tt = toks[a]
                            if tt.text in "([{":
                                depth2 += 1
                            elif tt.text in ")]}":
                                depth2 -= 1
                            elif tt.kind == "id" and \
                                    tt.text in JOURNAL_LEAF_LOCKS:
                                flavor = "leaf"
                            a += 1
                    nodes.append(("lock", t.line, flavor))
                    k = j
                    break
            k += 1
        # Calls and assignments.  Brace groups (lambda bodies) were
        # already lowered to defer nodes by the caller; skip them.
        k = i
        while k < end:
            t = toks[k]
            if t.text == "{":
                depth = 0
                while k < end:
                    if toks[k].text == "{":
                        depth += 1
                    elif toks[k].text == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                k += 1
                continue
            if t.kind == "id" and k + 1 < end and \
                    toks[k + 1].text == "(" and t.text not in KEYWORDS:
                # reconstruct the chain behind the call
                chain = []
                b = k - 1
                member = False
                while b >= 0:
                    tx = toks[b].text
                    if tx in (".", "->", "::"):
                        if tx in (".", "->"):
                            member = True
                        chain.append(tx)
                        b -= 1
                    elif toks[b].kind == "id" and chain and \
                            chain[-1] in (".", "->", "::"):
                        chain.append(toks[b].text)
                        b -= 1
                    elif tx == ")" or tx == "]":
                        # meta(seg)[x].foo() style base: fold the
                        # bracketed group into the chain head.
                        depth = 0
                        while b >= 0:
                            bx = toks[b].text
                            if bx in ")]":
                                depth += 1
                            elif bx in "([":
                                depth -= 1
                                if depth == 0:
                                    b -= 1
                                    break
                            b -= 1
                        if b >= 0 and toks[b].kind == "id" and \
                                toks[b].text not in KEYWORDS:
                            chain.append(toks[b].text)
                            b -= 1
                    else:
                        break
                base = "".join(reversed(chain))
                nodes.append(("call", base, t.text, t.line, member))
            elif t.text == "=" and k > i:
                prev = toks[k - 1]
                if prev.text in ("]", ")") or prev.kind == "id":
                    # walk back to the base identifier of the LHS
                    b = k - 1
                    depth = 0
                    base = None
                    while b >= i:
                        tx = toks[b].text
                        if tx in ")]":
                            depth += 1
                        elif tx in "([":
                            depth -= 1
                        elif toks[b].kind == "id" and depth == 0:
                            base = toks[b].text
                            if b > i and toks[b - 1].text in (
                                    ".", "->", "::"):
                                b -= 1
                                continue
                            break
                        b -= 1
                    if base:
                        nodes.append(("assign", base, t.line))
            k += 1


# ---- libclang frontend ---------------------------------------------

class LibclangFrontend:
    """Lower real clang ASTs to the same FunctionIR.

    Requires the `clang.cindex` binding and a compile_commands.json;
    main() falls back to the internal frontend when either is
    missing.
    """

    name = "libclang"

    def __init__(self, root, compdb_dir):
        import clang.cindex as ci
        self.ci = ci
        self.root = root
        self.index = ci.Index.create()
        self.compdb = ci.CompilationDatabase.fromDirectory(compdb_dir)

    def parse_file(self, relpath, text):
        ci = self.ci
        path = os.path.join(self.root, relpath)
        args = []
        cmds = self.compdb.getCompileCommands(path)
        if cmds:
            raw = list(cmds[0].arguments)[1:-1]
            skip = False
            for a in raw:
                if skip:
                    skip = False
                    continue
                if a in ("-o", "-c"):
                    skip = a == "-o"
                    continue
                if a == path or a.endswith(relpath):
                    continue
                args.append(a)
        tu = self.index.parse(path, args=args)
        funcs = []
        self._walk_decls(tu.cursor, relpath, funcs)
        return funcs

    def _walk_decls(self, cursor, relpath, out):
        ci = self.ci
        for c in cursor.get_children():
            if c.location.file and not str(
                    c.location.file).endswith(relpath):
                continue
            k = c.kind
            if k in (ci.CursorKind.NAMESPACE,
                     ci.CursorKind.CLASS_DECL,
                     ci.CursorKind.STRUCT_DECL,
                     ci.CursorKind.UNEXPOSED_DECL,
                     ci.CursorKind.LINKAGE_SPEC):
                self._walk_decls(c, relpath, out)
            elif k in (ci.CursorKind.CXX_METHOD,
                       ci.CursorKind.FUNCTION_DECL,
                       ci.CursorKind.CONSTRUCTOR,
                       ci.CursorKind.DESTRUCTOR,
                       ci.CursorKind.FUNCTION_TEMPLATE) and \
                    c.is_definition():
                cls = ""
                if c.semantic_parent and c.semantic_parent.kind in (
                        ci.CursorKind.CLASS_DECL,
                        ci.CursorKind.STRUCT_DECL):
                    cls = c.semantic_parent.spelling
                params = []
                for p in c.get_arguments():
                    params.append((p.type.spelling, p.spelling,
                                   p.location.line))
                body = []
                for child in c.get_children():
                    if child.kind == ci.CursorKind.COMPOUND_STMT:
                        body = self._lower_stmt(child)
                out.append(FunctionIR(cls, c.spelling, relpath,
                                      c.location.line, params, body))

    def _lower_stmt(self, cursor):
        ci = self.ci
        nodes = []
        for c in cursor.get_children():
            k = c.kind
            if k == ci.CursorKind.COMPOUND_STMT:
                nodes.append(("block", self._lower_stmt(c)))
            elif k == ci.CursorKind.IF_STMT:
                kids = list(c.get_children())
                self._lower_expr(kids[0], nodes)
                then = self._lower_one(kids[1]) if len(kids) > 1 \
                    else []
                els = self._lower_one(kids[2]) if len(kids) > 2 \
                    else []
                nodes.append(("if", then, els, c.location.line))
            elif k in (ci.CursorKind.FOR_STMT,
                       ci.CursorKind.WHILE_STMT,
                       ci.CursorKind.CXX_FOR_RANGE_STMT,
                       ci.CursorKind.SWITCH_STMT,
                       ci.CursorKind.DO_STMT):
                body = []
                for kid in c.get_children():
                    if kid.kind == ci.CursorKind.COMPOUND_STMT:
                        body = self._lower_stmt(kid)
                    else:
                        self._lower_expr(kid, body)
                nodes.append(("loop", body))
            elif k == ci.CursorKind.RETURN_STMT:
                for kid in c.get_children():
                    self._lower_expr(kid, nodes)
                nodes.append(("return", c.location.line))
            elif k == ci.CursorKind.DECL_STMT:
                for kid in c.get_children():
                    if kid.kind == ci.CursorKind.VAR_DECL:
                        tname = kid.type.spelling
                        if any(lt in tname
                               for lt in LOCK_DECL_TYPES):
                            if any(st in tname
                                   for st in SHARD_LOCK_TYPES):
                                flavor = "shard"
                            elif any(
                                    t.spelling in JOURNAL_LEAF_LOCKS
                                    for t in kid.get_tokens()):
                                flavor = "leaf"
                            else:
                                flavor = "plain"
                            nodes.append(("lock",
                                          kid.location.line,
                                          flavor))
                            continue
                    self._lower_expr(kid, nodes)
            else:
                self._lower_expr(c, nodes)
        return nodes

    def _lower_one(self, cursor):
        ci = self.ci
        if cursor.kind == ci.CursorKind.COMPOUND_STMT:
            return self._lower_stmt(cursor)
        return self._lower_stmt_single(cursor)

    def _lower_stmt_single(self, cursor):
        wrap = self.ci.CursorKind
        nodes = []
        if cursor.kind == wrap.RETURN_STMT:
            for kid in cursor.get_children():
                self._lower_expr(kid, nodes)
            nodes.append(("return", cursor.location.line))
        elif cursor.kind == wrap.IF_STMT:
            kids = list(cursor.get_children())
            self._lower_expr(kids[0], nodes)
            then = self._lower_one(kids[1]) if len(kids) > 1 else []
            els = self._lower_one(kids[2]) if len(kids) > 2 else []
            nodes.append(("if", then, els, cursor.location.line))
        else:
            self._lower_expr(cursor, nodes)
        return nodes

    def _lower_expr(self, cursor, nodes):
        ci = self.ci
        if cursor.kind == ci.CursorKind.LAMBDA_EXPR:
            inner = []
            for kid in cursor.get_children():
                if kid.kind == ci.CursorKind.COMPOUND_STMT:
                    inner = self._lower_stmt(kid)
            nodes.append(("defer", inner))
            return
        if cursor.kind == ci.CursorKind.CALL_EXPR:
            name = cursor.spelling or ""
            member = False
            base = ""
            kids = list(cursor.get_children())
            if kids and kids[0].kind == ci.CursorKind. \
                    MEMBER_REF_EXPR:
                member = True
                bb = list(kids[0].get_children())
                if bb:
                    base = bb[0].spelling or ""
                base = f"{base}.{name}" if base else name
            if name:
                nodes.append(("call", base, name,
                              cursor.location.line, member))
        if cursor.kind in (ci.CursorKind.BINARY_OPERATOR,
                           ci.CursorKind.
                           COMPOUND_ASSIGNMENT_OPERATOR):
            kids = list(cursor.get_children())
            if kids:
                toks = [t.spelling for t in cursor.get_tokens()]
                if "=" in toks:
                    lhs = kids[0]
                    base = lhs.spelling
                    cur = lhs
                    while not base:
                        sub = list(cur.get_children())
                        if not sub:
                            break
                        cur = sub[0]
                        base = cur.spelling
                    if base:
                        nodes.append(("assign", base,
                                      cursor.location.line))
        for kid in cursor.get_children():
            self._lower_expr(kid, nodes)


# ---- rule machinery ------------------------------------------------

class Findings:
    def __init__(self):
        self.items = []  # (relpath, line, rule, message)
        self.allows = {}  # relpath -> {line: set(rules)}
        self.used_allows = set()  # (relpath, line, rule)

    def load_allows(self, relpath, text):
        self.allows[relpath] = scan_allows(text)

    def report(self, relpath, line, rule, message):
        per_file = self.allows.get(relpath, {})
        for num in (line, line - 1):
            if rule in per_file.get(num, set()):
                self.used_allows.add((relpath, num, rule))
                return
        self.items.append((relpath, line, rule, message))

    def finish_unused_allows(self):
        for relpath, per_line in sorted(self.allows.items()):
            for num, rules in sorted(per_line.items()):
                for rule in sorted(rules):
                    if (relpath, num, rule) in self.used_allows:
                        continue
                    if rule not in RULES:
                        self.items.append((
                            relpath, num, "unused-allow",
                            f"allow({rule}) names no envy-analyze "
                            "rule"))
                    else:
                        self.items.append((
                            relpath, num, "unused-allow",
                            f"allow({rule}) suppresses nothing -- "
                            "remove it or fix the rule id"))


def walk_ops(nodes, include_defer=False):
    """Flatten to ops for order-insensitive consumers."""
    for n in nodes:
        kind = n[0]
        if kind in ("call", "assign", "lock", "return"):
            yield n
        elif kind == "block" or kind == "loop":
            yield from walk_ops(n[1], include_defer)
        elif kind == "if":
            yield from walk_ops(n[1], include_defer)
            yield from walk_ops(n[2], include_defer)
        elif kind == "defer" and include_defer:
            yield from walk_ops(n[1], include_defer)


# -- rule: journal-before-mmap ---------------------------------------

def is_journal_call(op, extra_names):
    _, base, name, _line, _member = op
    if name in JOURNAL_BARE_CALLS and not base:
        return True
    if name in extra_names:
        return True
    if name in JOURNAL_CALL_NAMES and "journal" in base.lower():
        return True
    return False


def is_store_write(op):
    if op[0] == "call":
        _, base, name, _line, _member = op
        return name in STORE_WRITE_CALLS
    if op[0] == "assign":
        _, base, _line = op
        return base in STORE_WRITE_LHS
    return False


def journal_walk(nodes, journaled, extra, hits):
    """Walk the statement tree; `journaled` is True when every path
    to this point has journaled.  Returns the journaled state on
    fall-through, or None when every path returned."""
    for n in nodes:
        kind = n[0]
        if kind == "call":
            if is_journal_call(n, extra):
                journaled = True
            elif is_store_write(n) and not journaled:
                hits.append((n[3], n[2]))
        elif kind == "assign":
            if is_store_write(n) and not journaled:
                hits.append((n[2], n[1]))
        elif kind == "return":
            return None
        elif kind == "block":
            journaled = journal_walk(n[1], journaled, extra, hits)
            if journaled is None:
                return None
        elif kind == "if":
            then_state = journal_walk(n[1], journaled, extra, hits)
            else_state = journal_walk(n[2], journaled, extra, hits)
            states = [s for s in (then_state, else_state)
                      if s is not None]
            if not states:
                return None
            journaled = all(states) and \
                (then_state is not None and else_state is not None)
            # A branch that returned does not weaken the fall-through
            # state: only surviving paths join.
            journaled = all(states)
        elif kind == "loop":
            # body may run zero times: findings inside are checked
            # with the entry state; a journal inside cannot promote
            # the state after the loop.
            journal_walk(n[1], journaled, extra, hits)
        elif kind == "defer":
            # deferred (lambda) bodies run at unknowable times; they
            # are checked independently with a clean state.
            journal_walk(n[1], False, extra, hits)
    return journaled


def always_journals(fn, extra):
    """True when every path through fn reaches a journal call (and
    never store-writes first) -- such helpers count as journal ops
    for their callers."""
    hits = []
    state = journal_walk(fn.body, False, extra, hits)
    if hits:
        return False
    if state is True:
        return True
    # state None (all paths return): approximate by requiring at
    # least one journal call and no store writes at all.
    ops = list(walk_ops(fn.body))
    if any(is_store_write(op) for op in ops if op[0] in
           ("call", "assign")):
        return False
    return any(op[0] == "call" and is_journal_call(op, extra)
               for op in ops)


def rule_journal_before_mmap(functions, findings):
    targets = [f for f in functions if f.cls in JOURNAL_CLASSES]
    # Fixpoint: helpers of the same class that provably always
    # journal become journal ops themselves (checkpointNow()).
    extra = set()
    for _ in range(3):
        new = {f.name for f in targets if always_journals(f, extra)}
        if new <= extra:
            break
        extra |= new
    for fn in targets:
        hits = []
        journal_walk(fn.body, False, extra, hits)
        for line, what in hits:
            findings.report(
                fn.relpath, line, "journal-before-mmap",
                f"{fn.qualname} writes the store mapping via "
                f"'{what}' on a path with no prior MetaJournal "
                "append -- a crash here leaves flash metadata newer "
                "than the journal (docs/PERSISTENCE.md ordering)")


# -- rule: lock-discipline -------------------------------------------

def _is_exempt_cv(base):
    """True when a member wait's base chain names one of the cleaner
    wakeup cvs (cv_.wait_for / roomCv_.wait_for / this->cv_...),
    ParallelRunner's self-releasing cvs, the serve layer's
    pipe/queue/commit cvs, or the commit pipeline's epoch cvs."""
    for part in re.split(r"\.|->|::", base):
        if (part in CLEANER_CV_BASES or part in RUNNER_CV_BASES or
                part in SERVE_CV_BASES or part in PIPELINE_CV_BASES):
            return True
    return False


def lock_walk(nodes, locked, shard, hits):
    """Walk a body tracking (any-lock-held, shard-lock-held); append
    (line, what, why) for each discipline violation."""
    for n in nodes:
        kind = n[0]
        if kind == "lock":
            # A journal leaf lock (JOURNAL_LEAF_LOCKS) does not count
            # as "locked": covering the journal's write/fdatasync is
            # the lock's documented job, and nothing else nests
            # below it, so parking under it blocks no one who holds
            # anything higher in the order.
            if n[2] != "leaf":
                locked = True
            shard = shard or n[2] == "shard"
        elif kind == "call":
            _, base, name, line, member = n
            if member:
                if name in BLOCKING_MEMBER_CALLS and locked:
                    hits.append((line, f"{base or name}()",
                                 "blocking"))
                elif name in FLASH_DEVICE_CALLS and shard:
                    hits.append((line, f"{base or name}()", "flash"))
                elif name in CV_WAIT_CALLS and locked and \
                        not _is_exempt_cv(base):
                    hits.append((line, f"{base or name}()", "cvwait"))
            elif name in BLOCKING_SYSCALLS and locked:
                hits.append((line, f"{name}()", "blocking"))
        elif kind == "block":
            # a lock declared inside the block dies with it; one held
            # on entry is still held inside.
            lock_walk(n[1], locked, shard, hits)
        elif kind == "if":
            lock_walk(n[1], locked, shard, hits)
            lock_walk(n[2], locked, shard, hits)
        elif kind == "loop":
            lock_walk(n[1], locked, shard, hits)
        elif kind == "defer":
            lock_walk(n[1], False, False, hits)
        elif kind == "return":
            pass
    return locked


def rule_lock_discipline(functions, findings):
    why_text = {
        "blocking": "while holding a mutex -- blocking syscalls and "
                    "ParallelRunner submission must run outside "
                    "locked regions",
        "flash": "while holding a shard lock -- shard locks "
                 "serialize one page's translation; flash "
                 "program/erase belongs under the structural lock "
                 "(docs/INTERNALS.md lock order)",
        "cvwait": "while holding a scoped lock -- only the cleaner "
                  "wakeup cvs (cv_, roomCv_) and the serve "
                  "pipe/queue cvs (dataCv_, workCv_) may wait with "
                  "a scope open, each on a mutex its wait releases "
                  "itself",
    }
    for fn in functions:
        hits = []
        lock_walk(fn.body, False, False, hits)
        for line, what, why in hits:
            findings.report(
                fn.relpath, line, "lock-discipline",
                f"{fn.qualname} calls {what} {why_text[why]}")


# -- rule: crash-point-reachable -------------------------------------

def parse_inventory(root):
    path = os.path.join(root, CRASH_INVENTORY)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return []
    return sorted(set(re.findall(r'"([a-z]+(?:\.[a-z_]+)+)"', text)))


def rule_crash_point_reachable(functions, findings, root):
    inventory = parse_inventory(root)
    if not inventory:
        return
    # point -> (relpath, line, function name) declaration sites
    sites = {}
    calls = {}  # function name -> set of callee names
    for fn in functions:
        callees = calls.setdefault(fn.name, set())
        for op in walk_ops(fn.body, include_defer=True):
            if op[0] != "call":
                continue
            _, _base, name, line, _member = op
            callees.add(name)
            # ENVY_CRASH_POINT sites: the macro call itself.  The
            # point name is recovered from the raw text separately;
            # here we only need the containing function.
        sites.setdefault(fn.relpath, []).append(fn)

    # Recover crash-point name -> containing function by re-reading
    # the files (the tokenizer dropped string contents into tokens,
    # so scan the raw text against function line ranges).
    point_sites = {}  # point -> (relpath, line, fn name)
    cp_re = re.compile(r'ENVY_CRASH_POINT\(\s*"([^"]+)"\s*\)')
    for relpath, fns in sites.items():
        try:
            with open(os.path.join(root, relpath),
                      encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError:
            continue
        spans = sorted(((fn.line, fn) for fn in fns),
                       key=lambda p: p[0])
        for num, line in enumerate(lines, 1):
            for m in cp_re.finditer(line):
                owner = None
                for start, fn in spans:
                    if start <= num:
                        owner = fn
                    else:
                        break
                if owner:
                    point_sites[m.group(1)] = (relpath, num,
                                               owner.name)

    # BFS over call names from the entry classes.
    reached = set()
    frontier = [fn.name for fn in functions
                if fn.cls in ENTRY_CLASSES]
    reached.update(frontier)
    while frontier:
        nxt = []
        for name in frontier:
            for callee in calls.get(name, ()):
                if callee not in reached:
                    reached.add(callee)
                    nxt.append(callee)
        frontier = nxt

    entry_list = "/".join(ENTRY_CLASSES)
    for point in inventory:
        site = point_sites.get(point)
        if site is None:
            # Inventory entry with no declaration site anywhere:
            # report against the inventory file itself.
            findings.report(
                CRASH_INVENTORY, 1, "crash-point-reachable",
                f'crash point "{point}" is in the canonical '
                "inventory but declared nowhere in the scanned tree")
            continue
        relpath, line, fname = site
        if fname not in reached:
            findings.report(
                relpath, line, "crash-point-reachable",
                f'crash point "{point}" (in {fname}) is unreachable '
                f"from any {entry_list} entry point -- the crash "
                "explorer and harness have lost this coverage")


# -- rule: typed-id --------------------------------------------------

def rule_typed_id(functions, findings):
    for fn in functions:
        for type_text, pname, line in fn.params:
            if pname not in TYPED_ID_NAMES:
                continue
            norm = type_text.replace("&", " &").strip()
            if RAW_INT_TYPES.match(type_text.strip()) or \
                    RAW_INT_TYPES.match(norm):
                findings.report(
                    fn.relpath, line, "typed-id",
                    f"{fn.qualname} takes raw integer parameter "
                    f"'{type_text} {pname}' -- use LogicalPageId / "
                    "SlotId / SegmentId")


# ---- driver --------------------------------------------------------

def source_files(root, compdb_path):
    """Files to analyse: the src/ entries of compile_commands.json
    plus all headers; falls back to walking src/."""
    files = set()
    if compdb_path and os.path.exists(compdb_path):
        try:
            with open(compdb_path, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.normpath(os.path.join(
                        entry.get("directory", ""),
                        entry.get("file", "")))
                    rel = os.path.relpath(p, root)
                    if rel.startswith("src" + os.sep):
                        files.add(rel)
        except (OSError, ValueError):
            pass
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for n in names:
            if n.endswith((".hh", ".hpp")):
                files.add(os.path.relpath(
                    os.path.join(dirpath, n), root))
            elif n.endswith((".cc", ".cpp")) and not files:
                pass
    if not any(f.endswith((".cc", ".cpp")) for f in files):
        for dirpath, _, names in os.walk(os.path.join(root, "src")):
            for n in names:
                if n.endswith((".cc", ".cpp")):
                    files.add(os.path.relpath(
                        os.path.join(dirpath, n), root))
    return sorted(files)


def make_frontend(kind, root, compdb_path, notes):
    if kind in ("auto", "libclang"):
        try:
            compdb_dir = os.path.dirname(compdb_path) \
                if compdb_path else os.path.join(root, "build")
            if not os.path.exists(os.path.join(
                    compdb_dir, "compile_commands.json")):
                raise RuntimeError(
                    f"no compile_commands.json in {compdb_dir}")
            fe = LibclangFrontend(root, compdb_dir)
            return fe
        except Exception as e:  # binding/library/compdb missing
            if kind == "libclang":
                print(f"envy-analyze: libclang frontend unavailable: "
                      f"{e}", file=sys.stderr)
                sys.exit(2)
            notes.append(f"libclang unavailable ({e.__class__.__name__}"
                         f": {e}); using internal frontend")
    return InternalFrontend()


def analyze(root, files, frontend, findings):
    functions = []
    for rel in files:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            continue
        findings.load_allows(rel, text)
        try:
            functions.extend(frontend.parse_file(rel, text))
        except Exception as e:
            if frontend.name == "libclang":
                # one bad TU must not silence the run
                functions.extend(
                    InternalFrontend().parse_file(rel, text))
            else:
                raise RuntimeError(f"{rel}: {e}") from e
    rule_journal_before_mmap(functions, findings)
    rule_lock_discipline(functions, findings)
    rule_crash_point_reachable(functions, findings, root)
    rule_typed_id(functions, findings)
    findings.finish_unused_allows()
    return functions


def print_findings(findings, github):
    for relpath, line, rule, message in sorted(findings.items):
        if github:
            print(f"::error file={relpath},line={line}::"
                  f"[{rule}] {message}")
        else:
            print(f"{relpath}:{line}: [{rule}] {message}")


# ---- self test -----------------------------------------------------

EXPECT_RE = re.compile(r"//\s*expect-finding:\s*([a-z-]+)")


def self_test(root, fixtures_dir, frontend_kind):
    """Run the rules over the fixture corpus: each fixture declares
    the findings it must produce via `// expect-finding: <rule>`
    lines; near-miss fixtures declare none and must stay silent."""
    if not os.path.isdir(fixtures_dir):
        print(f"envy-analyze: no fixture dir {fixtures_dir}",
              file=sys.stderr)
        return 2
    fixture_files = sorted(
        n for n in os.listdir(fixtures_dir)
        if n.endswith((".cc", ".hh")))
    if not fixture_files:
        print("envy-analyze: fixture dir is empty", file=sys.stderr)
        return 2

    failures = []
    for name in fixture_files:
        path = os.path.join(fixtures_dir, name)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        expected = {}
        for m in EXPECT_RE.finditer(text):
            expected[m.group(1)] = expected.get(m.group(1), 0) + 1

        findings = Findings()
        frontend = InternalFrontend()
        findings.load_allows(name, text)
        functions = frontend.parse_file(name, text)
        rule_journal_before_mmap(functions, findings)
        rule_lock_discipline(functions, findings)
        # crash-point-reachable runs against a fixture-local
        # inventory: a fixture opts in with a marker comment.
        if "self-test-crash-inventory" in text:
            _self_test_reachability(name, text, functions, findings)
        rule_typed_id(functions, findings)
        findings.finish_unused_allows()

        got = {}
        for _rel, _line, rule, _msg in findings.items:
            got[rule] = got.get(rule, 0) + 1
        if got != expected:
            failures.append(
                f"{name}: expected {expected or '{}'} but got "
                f"{got or '{}'}")
            for item in findings.items:
                failures.append(f"  (finding) {item[0]}:{item[1]}: "
                                f"[{item[2]}] {item[3]}")
    if failures:
        print("envy-analyze self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    n_fire = sum(1 for n in fixture_files if "_fire" in n)
    n_ok = sum(1 for n in fixture_files if "_ok" in n)
    print(f"envy-analyze self-test OK: {n_fire} firing and {n_ok} "
          f"near-miss fixtures behave as declared "
          f"({frontend_kind} frontend request, internal engine)")
    return 0


def _self_test_reachability(name, text, functions, findings):
    """Fixture-local variant of crash-point-reachable: the inventory
    is the set of ENVY_CRASH_POINT names in the fixture plus any
    `// inventory: <point>` lines (for declared-nowhere cases)."""
    cp_re = re.compile(r'ENVY_CRASH_POINT\(\s*"([^"]+)"\s*\)')
    inv_re = re.compile(r"//\s*inventory:\s*([a-z._]+)")
    inventory = sorted(set(cp_re.findall(text)) |
                       set(inv_re.findall(text)))
    lines = text.splitlines()
    spans = sorted(functions, key=lambda f: f.line)
    point_sites = {}
    for num, line in enumerate(lines, 1):
        for m in cp_re.finditer(line):
            owner = None
            for fn in spans:
                if fn.line <= num:
                    owner = fn
                else:
                    break
            if owner:
                point_sites[m.group(1)] = (num, owner.name)
    calls = {}
    for fn in functions:
        callees = calls.setdefault(fn.name, set())
        for op in walk_ops(fn.body, include_defer=True):
            if op[0] == "call":
                callees.add(op[2])
    reached = set(fn.name for fn in functions
                  if fn.cls in ENTRY_CLASSES)
    frontier = list(reached)
    while frontier:
        nxt = []
        for n in frontier:
            for callee in calls.get(n, ()):
                if callee not in reached:
                    reached.add(callee)
                    nxt.append(callee)
        frontier = nxt
    entry_list = "/".join(ENTRY_CLASSES)
    for point in inventory:
        site = point_sites.get(point)
        if site is None:
            findings.report(name, 1, "crash-point-reachable",
                            f'crash point "{point}" declared nowhere')
            continue
        num, fname = site
        if fname not in reached:
            findings.report(
                name, num, "crash-point-reachable",
                f'crash point "{point}" (in {fname}) unreachable '
                f"from {entry_list}")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json path (default: "
                         "ROOT/build/compile_commands.json)")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "internal", "libclang"),
                    help="parser frontend (default: auto -- "
                         "libclang when importable, else internal)")
    ap.add_argument("--github", action="store_true",
                    help="emit findings as GitHub annotations")
    ap.add_argument("--self-test", action="store_true",
                    help="check every rule against the fixture "
                         "corpus in tests/analyze/, then exit")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        fixtures = os.path.join(root, "tests", "analyze")
        return self_test(root, fixtures, args.frontend)

    if not os.path.isdir(os.path.join(root, "src")):
        print(f"envy-analyze: no src/ under {root}", file=sys.stderr)
        return 2

    compdb = args.compdb or os.path.join(root, "build",
                                         "compile_commands.json")
    notes = []
    if args.frontend == "internal":
        frontend = InternalFrontend()
    else:
        frontend = make_frontend(args.frontend, root, compdb, notes)
    for note in notes:
        print(f"envy-analyze: {note}", file=sys.stderr)

    files = source_files(root, compdb)
    findings = Findings()
    try:
        analyze(root, files, frontend, findings)
    except RuntimeError as e:
        print(f"envy-analyze: internal error: {e}", file=sys.stderr)
        return 2

    print_findings(findings, args.github)
    if findings.items:
        print(f"envy-analyze: {len(findings.items)} finding(s) "
              f"[{frontend.name} frontend]")
        return 1
    print(f"envy-analyze: clean [{frontend.name} frontend, "
          f"{len(files)} files]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
