#!/usr/bin/env python3
"""envy-lint: project-specific invariant checks the compiler cannot see.

Rules (suppress one occurrence with `// envy-lint: allow(<rule>) reason`
on the same line or the line directly above):

  crash-point-unique      every ENVY_CRASH_POINT name is declared at
                          exactly one site
  crash-point-registered  every ENVY_CRASH_POINT name used in the code
                          appears in the canonical inventory in
                          src/faults/crash_point.cc
  crash-point-coverage    every function on a mutation path in the
                          controller, cleaner, wear leveler or
                          transaction manager declares at least one
                          crash point
  panic-prefix            ENVY_PANIC/ENVY_FATAL messages start with a
                          lowercase "subsystem: " prefix
  no-raw-alloc            no raw new / malloc family in src/ (the code
                          models battery-backed SRAM with owned
                          containers; raw allocations dodge that)
  no-naked-thread         no std::thread/std::jthread/std::async outside
                          src/envysim/parallel.* and the background
                          cleaner pool (src/envy/cleaner_pool.*) — the
                          isolation argument for each thread-owning
                          component is made exactly once, in its header
  trace-event-unique      every ENVY_TRACE event name is emitted from
                          exactly one call site (an event name IS the
                          call site, so traces stay attributable)
  trace-event-registered  every ENVY_TRACE event name appears in the
                          canonical inventory in src/obs/trace.cc
                          (the registry() initializer), which is the
                          event catalog docs/OBSERVABILITY.md documents
  no-per-byte-page-loop   no per-byte CUI programming (programByte /
                          writeCommand(FlashCmd::ProgramSetup)) outside
                          the chip model itself — page data moves
                          through the bank's bulk programPage fast
                          path; the bank's byte-at-a-time slow-path
                          oracle carries allow() comments
  no-raw-mmap             no raw mmap/munmap/msync/fsync/fdatasync/
                          fallocate/ftruncate outside src/persist/ —
                          every mapping and durability syscall flows
                          through the persistence subsystem so the
                          ordering protocol of docs/PERSISTENCE.md is
                          enforced in one place
  unused-allow            every allow() comment must suppress a real
                          occurrence; a stale suppression hides the
                          next genuine finding at that site

Rules superseded by an AST-level check in
tools/analyze/envy_analyze.py are removed outright, not kept as
deprecated twins (the regex side would drift from the structural
side).  Removed so far: typed-id-params, superseded by envy-analyze
`typed-id`.

Exit status: 0 when clean, 1 when any finding survives, 2 on usage or
internal errors.
"""

import argparse
import os
import re
import sys

RULES = (
    "crash-point-unique",
    "crash-point-registered",
    "crash-point-coverage",
    "panic-prefix",
    "no-raw-alloc",
    "no-naked-thread",
    "trace-event-unique",
    "trace-event-registered",
    "no-per-byte-page-loop",
    "no-raw-mmap",
    "unused-allow",
)

# Functions that mutate durable state (flash contents or the page
# table).  A function in a MUTATION_FILES file that calls one of these
# must declare a crash point, so the crash-point explorer can cut
# execution inside it.
MUTATING_CALLS = re.compile(
    r"\b(appendPage|tryAppendPage|appendShadow|invalidatePage|"
    r"convertToShadow|eraseSegment|mapToFlash|mapToSram|popTail|"
    r"commitRotation|beginCleanRecord)\s*\("
)

MUTATION_FILES = (
    os.path.join("src", "envy", "controller.cc"),
    os.path.join("src", "envy", "cleaner.cc"),
    os.path.join("src", "envy", "wear_leveler.cc"),
    os.path.join("src", "txn", "shadow.cc"),
)

CRASH_POINT = re.compile(r'ENVY_CRASH_POINT\(\s*"([^"]+)"\s*\)')
TRACE_EVENT = re.compile(r'ENVY_TRACE\(\s*"([^"]+)"')
PANIC_CALL = re.compile(r'ENVY_(?:PANIC|FATAL)\(\s*(.)')
PANIC_PREFIX = re.compile(r'ENVY_(?:PANIC|FATAL)\(\s*"[a-z][a-z0-9_-]*: ')
RAW_ALLOC = re.compile(r"\b(?:malloc|calloc|realloc)\s*\(|\bnew\b")
NAKED_THREAD = re.compile(
    r"\bstd::(?:jthread|thread)\b|\bstd::async\s*\(")
# The files allowed to create threads (see their header comments):
# the experiment fan-out runner and the background cleaner pool.
THREAD_EXEMPT = (
    os.path.join("src", "envysim", "parallel.hh"),
    os.path.join("src", "envysim", "parallel.cc"),
    os.path.join("src", "envy", "cleaner_pool.hh"),
    os.path.join("src", "envy", "cleaner_pool.cc"),
    # The group-commit pipeline owns exactly one long-lived epoch
    # thread that coalesces persistFlush() callers; its isolation
    # argument lives in the header (docs/PERSISTENCE.md §group-commit).
    os.path.join("src", "persist", "commit_pipeline.hh"),
    os.path.join("src", "persist", "commit_pipeline.cc"),
    # The serve front end owns long-lived reader/worker threads (one
    # per connection / per configured worker) and the loadgen owns
    # its client threads; ParallelRunner's bounded task queue fits
    # neither lifecycle (docs/SERVING.md).
    os.path.join("src", "serve", "server.hh"),
    os.path.join("src", "serve", "server.cc"),
    os.path.join("src", "serve", "loadgen.cc"),
)
PER_BYTE_PAGE = re.compile(
    r"\bprogramByte\s*\(|\bwriteCommand\s*\(\s*FlashCmd::ProgramSetup\b"
)
# The chip model defines the per-byte CUI; everyone else goes through
# the bank's bulk page path.
PER_BYTE_EXEMPT = (
    os.path.join("src", "flash", "flash_chip.hh"),
    os.path.join("src", "flash", "flash_chip.cc"),
)
RAW_MMAP = re.compile(
    r"\b(?:mmap|munmap|msync|fsync|fdatasync|fallocate|ftruncate)"
    r"\s*\(")
# Durability syscalls live in src/persist/ only, so the ordering
# arguments of docs/PERSISTENCE.md are made in exactly one place.
MMAP_EXEMPT_PREFIX = os.path.join("src", "persist") + os.sep
ALLOW = re.compile(r"//\s*envy-lint:\s*allow\(([a-z-]+)\)\s*\S")


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i:j + 2])
            i = j + 2
        elif (c == "'" and i > 0 and text[i - 1].isalnum() and
                i + 1 < n and (text[i + 1].isalnum() or
                               text[i + 1] == "_")):
            # C++14 digit separator (1'000'000), not a char literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self.stripped = strip_comments_and_strings(self.text).splitlines()
        self.allows = {}  # line number -> set of allowed rules
        self.used_allows = set()  # (line number, rule) consumed
        for num, line in enumerate(self.lines, 1):
            m = ALLOW.search(line)
            if m:
                self.allows.setdefault(num, set()).add(m.group(1))

    def allowed(self, rule, line_num):
        for num in (line_num, line_num - 1):
            if rule in self.allows.get(num, set()):
                self.used_allows.add((num, rule))
                return True
        return False


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, src, line_num, rule, message):
        if not src.allowed(rule, line_num):
            self.findings.append(
                f"{src.relpath}:{line_num}: [{rule}] {message}")

    def run(self, files):
        sources = [SourceFile(self.root, f) for f in files]
        self.check_crash_points(sources)
        self.check_trace_events(sources)
        for src in sources:
            self.check_panic_prefix(src)
            self.check_raw_alloc(src)
            self.check_naked_thread(src)
            self.check_per_byte_page(src)
            self.check_raw_mmap(src)
        for relpath in MUTATION_FILES:
            for src in sources:
                if src.relpath == relpath:
                    self.check_coverage(src)
        for src in sources:
            self.check_unused_allows(src)
        return self.findings

    def check_unused_allows(self, src):
        """Every allow() must have suppressed something this run; a
        stale one silently swallows the next real finding there."""
        for num in sorted(src.allows):
            for rule in sorted(src.allows[num]):
                if (num, rule) in src.used_allows:
                    continue
                if rule not in RULES:
                    self.report(
                        src, num, "unused-allow",
                        f"allow({rule}) names no envy-lint rule")
                else:
                    self.report(
                        src, num, "unused-allow",
                        f"allow({rule}) suppresses nothing — remove "
                        "it or fix the rule id")

    # -- crash points ------------------------------------------------

    def canonical_inventory(self):
        path = os.path.join(self.root, "src", "faults", "crash_point.cc")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        return set(re.findall(r'"([a-z]+(?:\.[a-z_]+)+)"', text))

    def check_crash_points(self, sources):
        inventory = self.canonical_inventory()
        seen = {}  # name -> (src, line)
        for src in sources:
            if src.relpath.endswith(os.path.join("faults",
                                                 "crash_point.hh")):
                continue
            for num, line in enumerate(src.lines, 1):
                for m in CRASH_POINT.finditer(line):
                    name = m.group(1)
                    if name in seen:
                        first = seen[name]
                        self.report(
                            src, num, "crash-point-unique",
                            f'crash point "{name}" already declared at '
                            f"{first[0].relpath}:{first[1]}")
                    else:
                        seen[name] = (src, num)
                    if name not in inventory:
                        self.report(
                            src, num, "crash-point-registered",
                            f'crash point "{name}" is missing from the '
                            "canonical inventory in "
                            "src/faults/crash_point.cc")

    # -- trace events ------------------------------------------------

    def trace_inventory(self):
        """Parse the canonical event list out of the registry()
        initializer in src/obs/trace.cc."""
        path = os.path.join(self.root, "src", "obs", "trace.cc")
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            return set()
        m = re.search(
            r"return\s+std::vector<std::string>\{(.*?)\};",
            text, re.DOTALL)
        if not m:
            return set()
        return set(re.findall(r'"([^"]+)"', m.group(1)))

    def check_trace_events(self, sources):
        inventory = self.trace_inventory()
        seen = {}  # name -> (src, line)
        for src in sources:
            # The macro's own definition and doc examples.
            if src.relpath.endswith(os.path.join("obs", "trace.hh")):
                continue
            for num, line in enumerate(src.lines, 1):
                for m in TRACE_EVENT.finditer(line):
                    name = m.group(1)
                    if name in seen:
                        first = seen[name]
                        self.report(
                            src, num, "trace-event-unique",
                            f'trace event "{name}" already emitted at '
                            f"{first[0].relpath}:{first[1]} — one "
                            "event name per call site")
                    else:
                        seen[name] = (src, num)
                    if name not in inventory:
                        self.report(
                            src, num, "trace-event-registered",
                            f'trace event "{name}" is missing from '
                            "the canonical inventory in "
                            "src/obs/trace.cc (registry())")

    def check_coverage(self, src):
        # Walk top-level function bodies: the repo style puts the
        # opening brace of every function at column zero.
        depth = 0
        body_start = None
        name = "?"
        for num, line in enumerate(src.stripped, 1):
            opens = line.count("{")
            closes = line.count("}")
            if depth == 0 and opens:
                body_start = num
                m = re.match(r"([A-Za-z_][A-Za-z0-9_:]*)\s*\(",
                             src.stripped[num - 2] if num >= 2 else "")
                name = m.group(1) if m else "?"
            depth += opens - closes
            if depth == 0 and body_start is not None:
                body = "\n".join(
                    src.lines[body_start - 1:num])
                if (MUTATING_CALLS.search(body) and
                        "ENVY_CRASH_POINT" not in body):
                    self.report(
                        src, body_start, "crash-point-coverage",
                        f"function '{name}' mutates durable state but "
                        "declares no ENVY_CRASH_POINT")
                body_start = None

    # -- textual rules -----------------------------------------------

    def check_panic_prefix(self, src):
        if src.relpath.endswith(os.path.join("common", "logging.hh")):
            return
        for num, line in enumerate(src.lines, 1):
            m = PANIC_CALL.search(line)
            if not m:
                continue
            if m.group(1) != '"':
                # Message built from a non-literal first argument:
                # cannot check statically, let it pass.
                continue
            if not PANIC_PREFIX.search(line):
                self.report(
                    src, num, "panic-prefix",
                    'panic/fatal message must start with a lowercase '
                    '"subsystem: " prefix')

    def check_raw_alloc(self, src):
        for num, line in enumerate(src.stripped, 1):
            m = RAW_ALLOC.search(line)
            if m:
                self.report(
                    src, num, "no-raw-alloc",
                    f"raw allocation '{m.group(0).strip()}' — use "
                    "std::vector / std::unique_ptr")

    def check_naked_thread(self, src):
        if src.relpath in THREAD_EXEMPT:
            return
        for num, line in enumerate(src.stripped, 1):
            m = NAKED_THREAD.search(line)
            if m:
                self.report(
                    src, num, "no-naked-thread",
                    f"'{m.group(0).strip()}' outside "
                    "src/envysim/parallel.* — route concurrency "
                    "through ParallelRunner")

    def check_per_byte_page(self, src):
        if src.relpath in PER_BYTE_EXEMPT:
            return
        for num, line in enumerate(src.stripped, 1):
            m = PER_BYTE_PAGE.search(line)
            if m:
                self.report(
                    src, num, "no-per-byte-page-loop",
                    f"per-byte CUI program '{m.group(0).strip()}' — "
                    "page data moves through FlashBank::programPage "
                    "(the bank's slow-path oracle is allow()-listed)")

    def check_raw_mmap(self, src):
        if src.relpath.startswith(MMAP_EXEMPT_PREFIX):
            return
        for num, line in enumerate(src.stripped, 1):
            m = RAW_MMAP.search(line)
            if m:
                self.report(
                    src, num, "no-raw-mmap",
                    f"'{m.group(0).strip()}' outside src/persist/ — "
                    "mapping and durability syscalls go through the "
                    "persistence subsystem (docs/PERSISTENCE.md)")


def source_files(root):
    files = []
    for sub in ("src",):
        for dirpath, _, names in os.walk(os.path.join(root, sub)):
            for n in sorted(names):
                if n.endswith((".cc", ".hh", ".cpp", ".hpp")):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, n), root))
    return sorted(files)


# -- self test -------------------------------------------------------

BAD_SNIPPET = '''
void mutate() {
    flash.appendPage(seg, page);
}
void f(std::uint64_t page, std::uint32_t slot) {
    char *p = (char *)malloc(16);
    int *q = new int[4];
    ENVY_PANIC("something went wrong");
    ENVY_CRASH_POINT("bogus.point.name");
    ENVY_CRASH_POINT("bogus.point.name");
    ENVY_TRACE("ctl.cow", obs::tv("page", 1));
    ENVY_TRACE("bogus.trace.event", obs::tv("n", 1));
    ENVY_TRACE("bogus.trace.event", obs::tv("n", 2));
    int harmless = 0; // envy-lint: allow(no-raw-mmap) stale suppression
    std::thread worker([] {});
    void *m = ::mmap(nullptr, 4096, PROT_READ, MAP_SHARED, fd, 0);
    for (std::uint32_t j = 0; j < n; ++j) {
        chip.writeCommand(FlashCmd::ProgramSetup);
        chip.programByte(addr + j, data[j]);
    }
}
'''

SELF_TEST_EXPECT = (
    "crash-point-unique",
    "crash-point-registered",
    "crash-point-coverage",
    "panic-prefix",
    "no-raw-alloc",
    "no-naked-thread",
    "trace-event-unique",
    "trace-event-registered",
    "no-per-byte-page-loop",
    "no-raw-mmap",
    "unused-allow",
)


def self_test(root):
    import tempfile
    import shutil
    tmp = tempfile.mkdtemp(prefix="envy_lint_selftest.")
    try:
        os.makedirs(os.path.join(tmp, "src", "faults"))
        os.makedirs(os.path.join(tmp, "src", "envy"))
        os.makedirs(os.path.join(tmp, "src", "txn"))
        with open(os.path.join(tmp, "src", "faults",
                               "crash_point.cc"), "w") as f:
            f.write('"ctl.cow.after_push"\n')
        os.makedirs(os.path.join(tmp, "src", "obs"))
        with open(os.path.join(tmp, "src", "obs",
                               "trace.cc"), "w") as f:
            f.write('return std::vector<std::string>{\n'
                    '    "ctl.cow",\n};\n')
        with open(os.path.join(tmp, "src", "envy",
                               "controller.cc"), "w") as f:
            f.write(BAD_SNIPPET)
        # Unused mutation files must exist for coverage scanning.
        for rel in MUTATION_FILES:
            path = os.path.join(tmp, rel)
            if not os.path.exists(path):
                with open(path, "w") as f:
                    f.write("\n")
        findings = Linter(tmp).run(source_files(tmp))
        hit = {rule for rule in SELF_TEST_EXPECT
               if any(f"[{rule}]" in f for f in findings)}
        missed = set(SELF_TEST_EXPECT) - hit
        if missed:
            print("envy-lint self-test FAILED; rules not triggered:")
            for rule in sorted(missed):
                print(f"  {rule}")
            for f in findings:
                print(f"  (finding) {f}")
            return 1
        print(f"envy-lint self-test OK: all {len(hit)} rules fire on "
              "the deliberate violations")
        return 0
    finally:
        shutil.rmtree(tmp)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule fires on a deliberate "
                         "violation, then exit")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root)

    if not os.path.isdir(os.path.join(root, "src")):
        print(f"envy-lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = Linter(root).run(source_files(root))
    for f in findings:
        print(f)
    if findings:
        print(f"envy-lint: {len(findings)} finding(s)")
        return 1
    print("envy-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
