#!/usr/bin/env python3
"""inspect_image: dump a persistent eNVy store file and its journal.

Reads the on-disk formats of docs/PERSISTENCE.md — superblock,
per-segment flash metadata, block-materialization bitmap, and the
`<store>.journal` write-ahead record stream — verifies every checksum
(CRC-32, zlib polynomial, matching src/persist), and prints one JSON
document with schema id "envy-persist-inspect-v1".

    inspect_image.py STORE [--segments] [--journal]
    inspect_image.py --self-test

Exit status: 0 when the store is a valid eNVy store (or --self-test
passes), 1 otherwise.  A torn journal tail is *not* an error — a crash
mid-append is the expected case the format is designed around — but it
is reported, and the replay stops exactly where MetaJournal::replay()
would.
"""

import argparse
import json
import os
import struct
import sys
import tempfile
import zlib

SCHEMA = "envy-persist-inspect-v1"

# ---- store file layout (src/persist/store_file.cc) -----------------

STORE_MAGIC = b"ENVYPST1"
STORE_VERSION = 1
SUPER_BYTES = 4096
CRC_FIELD_OFF = 184

PARAM_FIELDS = [
    ("pageSize", 24), ("blockBytes", 32), ("blocksPerChip", 40),
    ("numBanks", 48), ("logicalPages", 56), ("writeBufferPages", 64),
    ("storeData", 72), ("policy", 80), ("partitionSize", 88),
    ("bufferThreshold", 96), ("wearThreshold", 104), ("tlbSize", 112),
    ("autoDrain", 120), ("sramBytes", 128),
]
LAYOUT_FIELDS = [
    ("metaOff", 136), ("metaStride", 144), ("bitmapOff", 152),
    ("dataOff", 160), ("blockDataBytes", 168), ("fileBytes", 176),
]

SEG_WRITE_PTR_OFF = 0   # u32
SEG_SPEC_FAILED_OFF = 4  # u8
SEG_CYCLES_OFF = 8       # u64
SEG_OWNERS_OFF = 16      # u32 per slot, stored bitwise-NOT

OWNER_DEAD = 0xFFFFFFFF
OWNER_SHADOW = 0xFFFFFFFE

# ---- journal layout (src/persist/meta_journal.cc) ------------------

JOURNAL_MAGIC = b"ENVYJRN1"
JOURNAL_HEADER_BYTES = 16
REC_CHECKPOINT = 1
REC_SRAM_WRITE = 2
REC_GROUP = 3
RECORD_OVERHEAD = 17      # len(4) + type(1) + seq(8) + crc(4)
GROUP_RANGE_OVERHEAD = 12  # addr(8) + n(4) per range in a Group


def u64(buf, off):
    return struct.unpack_from("<Q", buf, off)[0]


def u32(buf, off):
    return struct.unpack_from("<I", buf, off)[0]


# ---- store file ----------------------------------------------------

def inspect_store(path, want_segments):
    """Parse the store file at `path` into a report dict."""
    out = {"path": path, "state": "missing"}
    try:
        with open(path, "rb") as f:
            sb = f.read(SUPER_BYTES)
    except OSError as e:
        out["error"] = str(e)
        return out
    if len(sb) == 0:
        return out  # empty file: fresh, same as classify()
    if len(sb) < SUPER_BYTES or sb[:8] != STORE_MAGIC:
        out["state"] = "foreign"
        out["error"] = "not an eNVy store file"
        return out

    out["version"] = u64(sb, 8)
    if out["version"] != STORE_VERSION:
        out["state"] = "foreign"
        out["error"] = "unsupported version %d" % out["version"]
        return out

    out["crcOk"] = zlib.crc32(sb[:CRC_FIELD_OFF]) == u64(sb, CRC_FIELD_OFF)
    if not out["crcOk"]:
        out["state"] = "foreign"
        out["error"] = "superblock checksum mismatch"
        return out

    out["state"] = "valid" if u64(sb, 16) & 1 else "unfinished"
    out["params"] = {name: u64(sb, off) for name, off in PARAM_FIELDS}
    out["layout"] = {name: u64(sb, off) for name, off in LAYOUT_FIELDS}

    p, lay = out["params"], out["layout"]
    num_segments = p["numBanks"] * p["blocksPerChip"]
    pages_per_segment = p["blockBytes"]
    st = os.stat(path)
    out["fileBytes"] = st.st_size
    out["allocatedBytes"] = st.st_blocks * 512  # sparseness at a glance

    summary = {"live": 0, "dead": 0, "shadow": 0, "retired": 0,
               "maxEraseCycles": 0, "totalEraseCycles": 0,
               "specFailedSegments": 0}
    segments = []
    with open(path, "rb") as f:
        for s in range(num_segments):
            f.seek(lay["metaOff"] + s * lay["metaStride"])
            meta = f.read(lay["metaStride"])
            write_ptr = u32(meta, SEG_WRITE_PTR_OFF)
            seg = {
                "segment": s,
                "writePtr": write_ptr,
                "specFailed": meta[SEG_SPEC_FAILED_OFF] != 0,
                "eraseCycles": u64(meta, SEG_CYCLES_OFF),
                "live": 0, "dead": 0, "shadow": 0,
                "retiredUsed": 0, "retiredAhead": 0,
            }
            retired_off = SEG_OWNERS_OFF + 4 * pages_per_segment
            for slot in range(pages_per_segment):
                retired = meta[retired_off + slot] != 0
                if retired:
                    key = ("retiredUsed" if slot < write_ptr
                           else "retiredAhead")
                    seg[key] += 1
                    continue
                if slot >= write_ptr:
                    continue  # erased region
                # Owners are stored bitwise-NOT so holes decode dead.
                owner = ~u32(meta, SEG_OWNERS_OFF + 4 * slot) & 0xFFFFFFFF
                if owner == OWNER_DEAD:
                    seg["dead"] += 1
                elif owner == OWNER_SHADOW:
                    seg["shadow"] += 1
                else:
                    seg["live"] += 1
            summary["live"] += seg["live"]
            summary["dead"] += seg["dead"]
            summary["shadow"] += seg["shadow"]
            summary["retired"] += seg["retiredUsed"] + seg["retiredAhead"]
            summary["maxEraseCycles"] = max(summary["maxEraseCycles"],
                                            seg["eraseCycles"])
            summary["totalEraseCycles"] += seg["eraseCycles"]
            summary["specFailedSegments"] += 1 if seg["specFailed"] else 0
            segments.append(seg)

        f.seek(lay["bitmapOff"])
        bitmap = f.read(num_segments)
    banks = []
    for b in range(p["numBanks"]):
        lo = b * p["blocksPerChip"]
        banks.append(sum(1 for x in bitmap[lo:lo + p["blocksPerChip"]]
                         if x))
    out["blockMap"] = {"banks": banks, "materialized": sum(banks),
                       "total": num_segments}
    out["segmentsSummary"] = summary
    if want_segments:
        out["segments"] = segments
    return out


# ---- journal -------------------------------------------------------

def decode_group(data, off, length):
    """Walk a Group payload — repeated {addr u64 | n u32 | bytes[n]}
    (one group-commit epoch's coalesced dirty ranges, sealed under a
    single record CRC).  Returns (ranges, dataBytes), or None when a
    range header or its bytes overrun the payload."""
    end = off + length
    ranges, total = 0, 0
    while off < end:
        if off + GROUP_RANGE_OVERHEAD > end:
            return None
        n = u32(data, off + 8)
        if off + GROUP_RANGE_OVERHEAD + n > end:
            return None
        ranges += 1
        total += n
        off += GROUP_RANGE_OVERHEAD + n
    return ranges, total


def inspect_journal(path, want_records):
    """Walk `path` exactly as MetaJournal::replay() would."""
    out = {"path": path, "present": False}
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return out
    out["present"] = True
    out["bytes"] = len(data)
    out["magicOk"] = data[:8] == JOURNAL_MAGIC
    if not out["magicOk"]:
        return out

    records = []
    counts = {"records": 0, "checkpoints": 0, "sramWrites": 0,
              "groups": 0}
    seqs = []
    off = JOURNAL_HEADER_BYTES
    stop = None
    while off < len(data):
        if off + 13 > len(data):
            stop = "torn header"
            break
        length = u32(data, off)
        rtype = data[off + 4]
        seq = u64(data, off + 5)
        end = off + 13 + length + 4
        if end > len(data):
            stop = "torn payload"
            break
        if zlib.crc32(data[off:off + 13 + length]) != u32(
                data, off + 13 + length):
            stop = "crc mismatch"
            break
        if rtype not in (REC_CHECKPOINT, REC_SRAM_WRITE, REC_GROUP):
            stop = "unknown type %d" % rtype
            break
        if not records and not seqs and rtype != REC_CHECKPOINT:
            stop = "first record is not a checkpoint"
            break
        if seqs and seq != seqs[-1] + 1:
            stop = "sequence gap"
            break
        if rtype == REC_SRAM_WRITE and length < 8:
            stop = "short SramWrite payload"
            break
        group = None
        if rtype == REC_GROUP:
            group = decode_group(data, off + 13, length)
            if group is None:
                stop = "malformed Group payload"
                break
        seqs.append(seq)
        counts["records"] += 1
        if rtype == REC_CHECKPOINT:
            counts["checkpoints"] += 1
            rec = {"seq": seq, "type": "checkpoint",
                   "sramBytes": length}
        elif rtype == REC_GROUP:
            counts["groups"] += 1
            rec = {"seq": seq, "type": "group",
                   "ranges": group[0], "bytes": group[1]}
        else:
            counts["sramWrites"] += 1
            rec = {"seq": seq, "type": "sramWrite",
                   "addr": u64(data, off + 13),
                   "bytes": length - 8}
        records.append(rec)
        off = end
    out.update(counts)
    out["firstSeq"] = seqs[0] if seqs else None
    out["lastSeq"] = seqs[-1] if seqs else None
    out["tornTailBytes"] = len(data) - off
    out["stoppedAt"] = stop
    if want_records:
        out["recordDetail"] = records
    return out


# ---- schema --------------------------------------------------------

def check_schema(doc):
    """Assert the report's shape; raises on a schema violation."""
    def need(obj, key, types):
        assert key in obj, "missing key %r" % key
        assert isinstance(obj[key], types), \
            "key %r has type %s" % (key, type(obj[key]).__name__)

    need(doc, "schema", str)
    assert doc["schema"] == SCHEMA
    need(doc, "store", dict)
    need(doc, "journal", dict)
    need(doc, "ok", bool)
    store = doc["store"]
    need(store, "path", str)
    need(store, "state", str)
    assert store["state"] in ("missing", "foreign", "unfinished",
                              "valid")
    if store["state"] in ("valid", "unfinished"):
        need(store, "crcOk", bool)
        need(store, "params", dict)
        for name, _ in PARAM_FIELDS:
            need(store["params"], name, int)
        need(store, "layout", dict)
        for name, _ in LAYOUT_FIELDS:
            need(store["layout"], name, int)
        need(store, "segmentsSummary", dict)
        for key in ("live", "dead", "shadow", "retired"):
            need(store["segmentsSummary"], key, int)
        need(store, "blockMap", dict)
        need(store["blockMap"], "banks", list)
        need(store["blockMap"], "materialized", int)
    journal = doc["journal"]
    need(journal, "present", bool)
    if journal["present"] and journal.get("magicOk"):
        for key in ("records", "checkpoints", "sramWrites", "groups",
                    "tornTailBytes"):
            need(journal, key, int)


def inspect(store_path, want_segments=False, want_records=False):
    doc = {
        "schema": SCHEMA,
        "store": inspect_store(store_path, want_segments),
        "journal": inspect_journal(store_path + ".journal",
                                   want_records),
    }
    doc["ok"] = (doc["store"]["state"] == "valid" and
                 doc["journal"]["present"] and
                 bool(doc["journal"].get("magicOk")) and
                 doc["journal"].get("checkpoints", 0) >= 1)
    check_schema(doc)
    return doc


# ---- self-test -----------------------------------------------------

def align_up(v, a):
    return (v + a - 1) // a * a


def journal_record(rtype, seq, payload):
    """Frame one journal record exactly as MetaJournal seals it."""
    body = struct.pack("<IBQ", len(payload), rtype, seq) + payload
    return body + struct.pack("<I", zlib.crc32(body))


def synthesize_store(path):
    """Write a tiny, hand-built store + journal with known contents."""
    params = {
        "pageSize": 64, "blockBytes": 8, "blocksPerChip": 2,
        "numBanks": 1, "logicalPages": 10, "writeBufferPages": 4,
        "storeData": 1, "policy": 2, "partitionSize": 2,
        "bufferThreshold": 0, "wearThreshold": 100, "tlbSize": 16,
        "autoDrain": 1, "sramBytes": 256,
    }
    num_segments = params["numBanks"] * params["blocksPerChip"]
    cap = params["blockBytes"]
    meta_off = SUPER_BYTES
    meta_stride = align_up(SEG_OWNERS_OFF + 5 * cap, 8)
    bitmap_off = align_up(meta_off + num_segments * meta_stride, 4096)
    data_off = align_up(bitmap_off + num_segments, 4096)
    block_data_bytes = params["pageSize"] * params["blockBytes"]
    file_bytes = data_off + num_segments * block_data_bytes

    sb = bytearray(SUPER_BYTES)
    sb[:8] = STORE_MAGIC
    struct.pack_into("<Q", sb, 8, STORE_VERSION)
    struct.pack_into("<Q", sb, 16, 1)  # valid
    for name, off in PARAM_FIELDS:
        struct.pack_into("<Q", sb, off, params[name])
    for name, off in LAYOUT_FIELDS:
        struct.pack_into("<Q", sb, off, {
            "metaOff": meta_off, "metaStride": meta_stride,
            "bitmapOff": bitmap_off, "dataOff": data_off,
            "blockDataBytes": block_data_bytes,
            "fileBytes": file_bytes}[name])
    struct.pack_into("<Q", sb, CRC_FIELD_OFF,
                     zlib.crc32(bytes(sb[:CRC_FIELD_OFF])))

    # Segment 0: slot 0 live (owner 5), slot 1 retired, slot 2 dead;
    # write pointer 3, 7 erase cycles.  Segment 1: untouched (hole).
    seg0 = bytearray(meta_stride)
    struct.pack_into("<I", seg0, SEG_WRITE_PTR_OFF, 3)
    struct.pack_into("<Q", seg0, SEG_CYCLES_OFF, 7)
    struct.pack_into("<I", seg0, SEG_OWNERS_OFF, ~5 & 0xFFFFFFFF)
    struct.pack_into("<I", seg0, SEG_OWNERS_OFF + 8,
                     ~OWNER_DEAD & 0xFFFFFFFF)
    seg0[SEG_OWNERS_OFF + 4 * cap + 1] = 1  # slot 1 retired

    with open(path, "wb") as f:
        f.write(sb)
        f.write(seg0)
        f.seek(bitmap_off)
        f.write(b"\x01\x00")  # block 0 materialized, block 1 a hole
        f.truncate(file_bytes)

    with open(path + ".journal", "wb") as f:
        f.write(JOURNAL_MAGIC + b"\x00" * 8)
        f.write(journal_record(REC_CHECKPOINT, 1,
                               b"\x00" * params["sramBytes"]))
        f.write(journal_record(REC_SRAM_WRITE, 2,
                               struct.pack("<Q", 8) + b"\xAA\xBB\xCC\xDD"))
        # One group-commit epoch: two coalesced ranges under one CRC.
        f.write(journal_record(
            REC_GROUP, 3,
            struct.pack("<QI", 16, 4) + b"\x10\x11\x12\x13" +
            struct.pack("<QI", 64, 2) + b"\x20\x21"))
        f.write(b"\x01\x02\x03")  # torn tail from a crash mid-append
    return params


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "store.envy")
        params = synthesize_store(store)
        doc = inspect(store, want_segments=True, want_records=True)

        assert doc["ok"], doc
        s = doc["store"]
        assert s["state"] == "valid" and s["crcOk"]
        assert s["params"] == params, s["params"]
        assert s["segmentsSummary"] == {
            "live": 1, "dead": 1, "shadow": 0, "retired": 1,
            "maxEraseCycles": 7, "totalEraseCycles": 7,
            "specFailedSegments": 0}, s["segmentsSummary"]
        seg0 = s["segments"][0]
        assert seg0["writePtr"] == 3 and seg0["retiredUsed"] == 1
        assert s["segments"][1]["writePtr"] == 0  # hole decodes erased
        assert s["blockMap"] == {"banks": [1], "materialized": 1,
                                 "total": 2}, s["blockMap"]
        j = doc["journal"]
        assert j["records"] == 3 and j["checkpoints"] == 1
        assert j["sramWrites"] == 1 and j["groups"] == 1
        assert j["tornTailBytes"] == 3
        assert j["recordDetail"][1] == {
            "seq": 2, "type": "sramWrite", "addr": 8, "bytes": 4}
        assert j["recordDetail"][2] == {
            "seq": 3, "type": "group", "ranges": 2, "bytes": 6}

        # A Group range claiming more bytes than its payload holds
        # must stop the walk even though the record CRC is intact.
        jpath = store + ".journal"
        with open(jpath, "wb") as f:
            f.write(JOURNAL_MAGIC + b"\x00" * 8)
            f.write(journal_record(REC_CHECKPOINT, 1,
                                   b"\x00" * params["sramBytes"]))
            f.write(journal_record(REC_GROUP, 2,
                                   struct.pack("<QI", 0, 99)))
        doc = inspect(store, want_records=True)
        assert doc["journal"]["records"] == 1
        assert doc["journal"]["stoppedAt"] == "malformed Group payload"

        # A flipped payload byte must stop the walk at that record.
        with open(jpath, "wb") as f:
            f.write(JOURNAL_MAGIC + b"\x00" * 8)
            f.write(journal_record(REC_CHECKPOINT, 1,
                                   b"\x00" * params["sramBytes"]))
        blob = bytearray(open(jpath, "rb").read())
        blob[JOURNAL_HEADER_BYTES + 14] ^= 0xFF  # inside the checkpoint
        open(jpath, "wb").write(bytes(blob))
        doc = inspect(store)
        assert doc["journal"]["records"] == 0
        assert doc["journal"]["stoppedAt"] == "crc mismatch"
        assert not doc["ok"]

        # A damaged superblock must classify as foreign, not crash.
        blob = bytearray(open(store, "rb").read())
        blob[40] ^= 0xFF  # a params byte: CRC no longer matches
        open(store, "wb").write(bytes(blob))
        doc = inspect(store)
        assert doc["store"]["state"] == "foreign"
        assert doc["store"]["error"] == "superblock checksum mismatch"

        # Missing file: reported, schema still holds.
        doc = inspect(os.path.join(tmp, "nope.envy"))
        assert doc["store"]["state"] == "missing" and not doc["ok"]
    print("inspect_image: self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("store", nargs="?", help="store file path")
    ap.add_argument("--segments", action="store_true",
                    help="include per-segment detail")
    ap.add_argument("--journal", action="store_true",
                    help="include per-record journal detail")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the parser against a synthetic store")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.store:
        ap.error("a store path (or --self-test) is required")
    doc = inspect(args.store, args.segments, args.journal)
    json.dump(doc, sys.stdout, indent=2)
    print()
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
