/**
 * @file
 * Restart-recovery crash harness (docs/PERSISTENCE.md).
 *
 * The in-process CrashPointExplorer models power loss as an
 * exception; this harness tests the persistence subsystem against
 * *real* process death.  For every scheduled (crash point,
 * occurrence) pair it forks a child that runs a deterministic
 * workload against a persistent store and SIGKILLs itself at exactly
 * that instant.  The parent then reopens the store by path — journal
 * replay, flash-metadata restore, shadow-sweep recovery — and
 * verifies that not one acknowledged operation was lost:
 *
 *  - churn: every page matches the reference model replayed from the
 *    ack log; pages touched by the one in-flight operation may hold
 *    any intermediate image of that operation (pre, post, or a
 *    mid-transaction value that the shadow sweep resolved);
 *  - tpca: every account/teller/branch balance matches the completed
 *    debit/credit transactions, the interrupted transaction's three
 *    records each independently pre or post;
 *  - cchurn (PR 10): four client threads churn disjoint page regions
 *    of a *concurrent* persistent store (numWorkers = 4, one
 *    background cleaner, group-commit pipeline); every page must
 *    hold the image of some operation at or past the last
 *    acknowledged one targeting it — zero acknowledged-write loss
 *    under real SIGKILL with the sharded controller underneath;
 *  - always: InvariantChecker passes on the recovered store, and for
 *    the churn workloads an aftershock runs and verifies exactly.
 *
 * Acknowledgement = the child appended the op ordinal to an ack log
 * with write(2) after EnvyStore::persistFlush() returned; both the
 * completed write and the journal bytes it relies on survive SIGKILL
 * by construction.  The schedule is derived from a probe run (same
 * binary, same seed, counting sink instead of a kill sink), sampling
 * occurrences of every reachable crash point — including the
 * persist.* points inside journal flush and checkpoint rename.
 *
 * Exit status 0 when every case passes, 1 otherwise.
 */

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "db/tpca_db.hh"
#include "envy/envy_store.hh"
#include "envysim/crash_explorer.hh"
#include "faults/crash_point.hh"
#include "faults/invariant_checker.hh"
#include "persist/persistent_store.hh"
#include "sim/random.hh"
#include "txn/shadow.hh"

namespace envy {
namespace {

// ---- options -----------------------------------------------------

struct Options
{
    std::string dir;
    std::uint64_t seed = 1;
    std::uint64_t ops = 220;
    std::uint64_t minCases = 100; //!< across all selected workloads
    /** Which workloads to run: "all", "serial" (churn + tpca) or
     *  "concurrent" (the PR 10 sharded-store churn alone). */
    std::string workloads = "all";
    bool verbose = false;
};

/** Client threads of the concurrent-churn workload. */
constexpr unsigned kCcWorkers = 4;

// ---- crash-point sinks -------------------------------------------

/** Probe phase: record how often every point fires.  The concurrent
 *  workload hits points from several threads, hence the lock. */
class CountingSink final : public CrashSink
{
  public:
    void onCrashPoint(const char *name) override
    {
        const std::lock_guard<std::mutex> lock(mu_);
        ++counts[name];
    }
    std::map<std::string, std::uint64_t> counts;

  private:
    std::mutex mu_;
};

/** Case phase: SIGKILL the process at one exact instant.  The count
 *  is atomic so concurrent threads race to exactly one kill. */
class KillSink final : public CrashSink
{
  public:
    KillSink(std::string point, std::uint64_t occurrence)
        : point_(std::move(point)), occurrence_(occurrence)
    {
    }

    void onCrashPoint(const char *name) override
    {
        if (point_ == name &&
            count_.fetch_add(1, std::memory_order_relaxed) + 1 ==
                occurrence_)
            ::raise(SIGKILL); // no unwinding, no destructors
    }

  private:
    std::string point_;
    std::uint64_t occurrence_ = 0;
    std::atomic<std::uint64_t> count_{0};
};

// ---- ack log -----------------------------------------------------

/**
 * Append-only log of acknowledged op ordinals.  An 8-byte record is
 * written with one write(2) call; a record present in the file is an
 * operation the store must not lose.
 */
class AckLog
{
  public:
    static void
    append(int fd, std::uint64_t value)
    {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(value >> (8 * i));
        if (::write(fd, b, 8) != 8) {
            std::fprintf(stderr, "ack log write failed\n");
            ::_exit(3);
        }
    }

    /** Every acknowledged value, in append order.  The concurrent
     *  workload's threads interleave records arbitrarily; each
     *  8-byte O_APPEND write is atomic, so records never tear. */
    static std::vector<std::uint64_t>
    readAll(const std::string &path)
    {
        std::vector<std::uint64_t> out;
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            return out;
        std::uint8_t b[8];
        while (std::fread(b, 1, 8, f) == 8) {
            std::uint64_t v = 0;
            for (int i = 7; i >= 0; --i)
                v = (v << 8) | b[i];
            out.push_back(v);
        }
        std::fclose(f);
        return out;
    }

    /** Highest acknowledged value, 0 if the log is empty. */
    static std::uint64_t
    lastAck(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            return 0;
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        const long records = size / 8;
        std::uint64_t last = 0;
        if (records > 0) {
            std::fseek(f, (records - 1) * 8, SEEK_SET);
            std::uint8_t b[8];
            if (std::fread(b, 1, 8, f) == 8) {
                for (int i = 7; i >= 0; --i)
                    last = (last << 8) | b[i];
            }
        }
        std::fclose(f);
        return last;
    }
};

// ---- deterministic workload scripts ------------------------------

/**
 * One churn operation, fully generated (RNG consumed) before any of
 * it executes, so the verifying parent regenerates the identical
 * sequence from the seed alone.
 */
struct ChurnOp
{
    struct W
    {
        std::uint64_t addr;
        std::vector<std::uint8_t> data;
    };
    std::vector<W> writes; //!< one for a plain write
    bool isTxn = false;
    bool aborts = false;
};

class ChurnScript
{
  public:
    ChurnScript(std::uint64_t seed, std::uint64_t store_size,
                std::uint32_t page_size)
        : rng_(seed ^ 0x636875726E000000ull), size_(store_size),
          pageSize_(page_size)
    {
    }

    ChurnOp
    next()
    {
        ChurnOp op;
        op.isTxn = rng_.chance(0.25);
        const std::uint64_t writes = op.isTxn ? 1 + rng_.below(3) : 1;
        for (std::uint64_t w = 0; w < writes; ++w) {
            ChurnOp::W write;
            write.addr = rng_.chance(0.7) ? rng_.below(size_ / 4)
                                          : rng_.below(size_);
            std::uint64_t len = rng_.between(1, 2 * pageSize_);
            len = std::min<std::uint64_t>(len, size_ - write.addr);
            write.data.resize(len);
            for (auto &b : write.data)
                b = static_cast<std::uint8_t>(rng_.next());
            op.writes.push_back(std::move(write));
        }
        op.aborts = op.isTxn && rng_.chance(0.4);
        return op;
    }

  private:
    Rng rng_;
    std::uint64_t size_;
    std::uint32_t pageSize_;
};

// ---- concurrent-churn page images --------------------------------
//
// Each worker owns a disjoint page region and writes exactly one
// whole page per operation, round-robin across its region, with a
// deterministic image of (seed, worker, op).  Page writes are
// capture-atomic against the commit pipeline's quiesced journal
// epochs (hit-writers hold the structural lock shared, COW runs
// exclusive), so the recovered page must be EXACTLY some op's image
// — at or past the newest acknowledged op targeting that page — or
// the initial zero page if no ack pins it.

std::uint64_t
ccMix(std::uint64_t seed, unsigned worker, std::uint64_t op)
{
    std::uint64_t x =
        seed ^ (std::uint64_t(worker + 1) << 56) ^ (op + 1);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

/** Stamp header (worker + 1, op + 1 as LE u64s) + mixed body. */
void
ccFillPage(std::vector<std::uint8_t> &page, std::uint64_t seed,
           unsigned worker, std::uint64_t op)
{
    auto put64 = [&](std::size_t at, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            page[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    put64(0, worker + 1);
    put64(8, op + 1);
    std::uint64_t x = ccMix(seed, worker, op);
    for (std::size_t off = 16; off < page.size(); ++off) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        page[off] = static_cast<std::uint8_t>(x >> 33);
    }
}

/** Op-completion ack record: worker in the high half so values never
 *  collide with the "ready" ack (1). */
std::uint64_t
ccAckValue(unsigned worker, std::uint64_t op)
{
    return ((std::uint64_t(worker) + 1) << 32) | (op + 1);
}

/** TPC-A parameters shared by child and verifying parent. */
TpcaDatabase::Params
tpcaParams(std::uint32_t page_size)
{
    TpcaDatabase::Params p;
    p.accounts = 200;
    p.accountsPerTeller = 50;
    p.tellersPerBranch = 2;
    p.recordBytes = page_size; // record updates are page-atomic
    return p;
}

struct TpcaOp
{
    std::uint64_t account;
    std::int64_t amount;
};

class TpcaScript
{
  public:
    explicit TpcaScript(std::uint64_t seed)
        : rng_(seed ^ 0x7470636100000000ull)
    {
    }

    TpcaOp
    next(std::uint64_t accounts)
    {
        const std::uint64_t a = rng_.below(accounts);
        const std::int64_t amount =
            static_cast<std::int64_t>(rng_.between(1, 500)) - 250;
        return {a, amount};
    }

  private:
    Rng rng_;
};

/**
 * The record-table layout TpcaDatabase computes in its constructor,
 * replicated so the parent can read balances off a recovered store
 * without constructing a TpcaDatabase (whose constructor reloads the
 * database, destroying the very state under test).
 */
struct TpcaLayout
{
    explicit TpcaLayout(const TpcaDatabase::Params &p)
    {
        tellers = (p.accounts + p.accountsPerTeller - 1) /
                  p.accountsPerTeller;
        branches = (tellers + p.tellersPerBranch - 1) /
                   p.tellersPerBranch;
        rb = p.recordBytes;
        branchBase = 64;
        tellerBase = branchBase + branches * rb;
        accountBase = tellerBase + tellers * rb;
    }

    std::int64_t
    balance(EnvyStore &store, std::uint64_t base,
            std::uint64_t id) const
    {
        return static_cast<std::int64_t>(
            store.readU64(base + id * rb));
    }

    std::uint64_t tellers = 0;
    std::uint64_t branches = 0;
    std::uint64_t rb = 0;
    std::uint64_t branchBase = 0;
    std::uint64_t tellerBase = 0;
    std::uint64_t accountBase = 0;
};

// ---- store/dir plumbing ------------------------------------------

enum class Workload
{
    Churn,
    Tpca,
    ConcurrentChurn,
};

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::Churn:
        return "churn";
      case Workload::Tpca:
        return "tpca";
      case Workload::ConcurrentChurn:
        return "cchurn";
    }
    return "?";
}

EnvyConfig
storeConfig(Workload w, const std::string &path)
{
    EnvyConfig cfg = w == Workload::Tpca
                         ? CrashExplorerConfig::tpcaStore()
                         : CrashExplorerConfig::churnStore();
    if (w == Workload::ConcurrentChurn) {
        // The PR 10 combination under test: sharded controller,
        // background cleaner, group-commit pipeline, all persistent.
        cfg.numWorkers = kCcWorkers;
        cfg.numCleaners = 1;
    }
    cfg.persistPath = path;
    return cfg;
}

struct CasePaths
{
    std::string store;
    std::string acks;
};

CasePaths
casePaths(const Options &opt, Workload w)
{
    CasePaths p;
    p.store = opt.dir + "/" + workloadName(w) + ".envy";
    p.acks = opt.dir + "/" + workloadName(w) + ".acks";
    return p;
}

void
removeCaseFiles(const CasePaths &p)
{
    std::remove(p.store.c_str());
    std::remove((p.store + ".journal").c_str());
    std::remove((p.store + ".journal.tmp").c_str());
    std::remove(p.acks.c_str());
}

// ---- the child: run the workload, die on schedule ----------------

/**
 * Runs in the forked child (and, with a counting sink and no ack
 * fd, in the parent's probe phase).  Never returns control flow to
 * gtest-style cleanup: the child is killed by its sink or _exits.
 *
 * Ack protocol: value 1 is "store + database ready", value i + 2 is
 * "op i completed"; persistFlush runs before every ack so the
 * acknowledged state is journal-durable.
 */
void
runWorkload(Workload w, const Options &opt, const CasePaths &paths,
            int ack_fd)
{
    auto ack = [&](std::uint64_t value) {
        if (ack_fd >= 0)
            AckLog::append(ack_fd, value);
    };

    EnvyStore store(storeConfig(w, paths.store));
    ShadowManager txns(store);

    if (w == Workload::ConcurrentChurn) {
        store.persistFlush();
        ack(1);
        const std::uint32_t pageSize = store.config().geom.pageSize;
        const std::uint64_t regionPages =
            store.size() / pageSize / kCcWorkers;
        std::vector<std::thread> threads;
        for (unsigned cw = 0; cw < kCcWorkers; ++cw) {
            threads.emplace_back([&store, &opt, &ack, regionPages,
                                  pageSize, cw] {
                std::vector<std::uint8_t> page(pageSize);
                for (std::uint64_t i = 0; i < opt.ops; ++i) {
                    const std::uint64_t p =
                        cw * regionPages + i % regionPages;
                    ccFillPage(page, opt.seed, cw, i);
                    store.write(p * pageSize, page);
                    // Join a group-commit epoch, then claim i as
                    // durable: the ack-prefix contract per worker.
                    store.persistFlush();
                    ack(ccAckValue(cw, i));
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
        return;
    }

    if (w == Workload::Churn) {
        store.persistFlush();
        ack(1);
        ChurnScript script(opt.seed, store.size(),
                           store.config().geom.pageSize);
        for (std::uint64_t i = 0; i < opt.ops; ++i) {
            const ChurnOp op = script.next();
            if (!op.isTxn) {
                store.write(op.writes[0].addr, op.writes[0].data);
            } else {
                const ShadowManager::TxnId id = txns.begin();
                for (const ChurnOp::W &wr : op.writes)
                    txns.write(id, wr.addr, wr.data);
                if (op.aborts)
                    txns.abort(id);
                else
                    txns.commit(id);
            }
            store.persistFlush();
            ack(i + 2);
        }
    } else {
        TpcaDatabase db(store,
                        tpcaParams(store.config().geom.pageSize));
        store.persistFlush();
        ack(1);
        TpcaScript script(opt.seed);
        for (std::uint64_t i = 0; i < opt.ops; ++i) {
            const TpcaOp op = script.next(db.accounts());
            db.runAtomic(txns, op.account, op.amount);
            store.persistFlush();
            ack(i + 2);
        }
    }
}

// ---- the parent: reopen, verify ----------------------------------

struct CaseResult
{
    std::string point;
    std::uint64_t occurrence = 0;
    bool killed = false;
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

template <typename... Args>
std::string
format(Args &&...args)
{
    std::string out;
    char buf[64];
    auto add = [&](const auto &v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_arithmetic_v<T>) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
            out += buf;
        } else {
            out += v;
        }
    };
    (add(args), ...);
    return out;
}

void
checkInvariants(EnvyStore &store, std::vector<std::string> &out)
{
    InvariantChecker::Options opts;
    opts.expectNoShadows = true; // recovery sweeps every shadow
    const InvariantReport inv = InvariantChecker::check(store, opts);
    out.insert(out.end(), inv.violations.begin(),
               inv.violations.end());
}

void
verifyChurn(EnvyStore &store, const Options &opt,
            std::uint64_t last_ack, std::vector<std::string> &out)
{
    const std::uint32_t pageSize = store.config().geom.pageSize;
    const std::uint64_t size = store.size();

    // Replay the acknowledged prefix into a reference model; collect
    // the allowed images of every page the in-flight op touched.
    std::vector<std::uint8_t> model(size, 0);
    ChurnScript script(opt.seed, size, pageSize);
    // Ack 1 is "ready", ack i+2 is "op i done".
    const std::uint64_t completed = last_ack >= 2 ? last_ack - 1 : 0;
    for (std::uint64_t i = 0; i < completed; ++i) {
        const ChurnOp op = script.next();
        if (op.isTxn && op.aborts)
            continue; // net no-op
        for (const ChurnOp::W &w : op.writes)
            std::copy(w.data.begin(), w.data.end(),
                      model.begin() +
                          static_cast<std::ptrdiff_t>(w.addr));
    }

    // The in-flight op (if any op remained) may have left each of
    // its pages at any stage it passed through: initial, after any
    // of its writes, or (abort) restored to initial again.
    std::map<std::uint64_t, std::vector<std::vector<std::uint8_t>>>
        alts;
    if (completed < opt.ops) {
        const ChurnOp op = script.next();
        std::vector<std::uint8_t> scratch = model;
        auto capture = [&](std::uint64_t page) {
            const auto begin =
                scratch.begin() +
                static_cast<std::ptrdiff_t>(page * pageSize);
            std::vector<std::uint8_t> img(begin, begin + pageSize);
            auto &list = alts[page];
            if (std::find(list.begin(), list.end(), img) ==
                list.end())
                list.push_back(std::move(img));
        };
        for (const ChurnOp::W &w : op.writes) {
            const std::uint64_t first = w.addr / pageSize;
            const std::uint64_t last =
                (w.addr + w.data.size() - 1) / pageSize;
            for (std::uint64_t p = first; p <= last; ++p)
                capture(p); // image before this write
            std::copy(w.data.begin(), w.data.end(),
                      scratch.begin() +
                          static_cast<std::ptrdiff_t>(w.addr));
            for (std::uint64_t p = first; p <= last; ++p)
                capture(p); // image after this write
        }
    }

    std::vector<std::uint8_t> got(pageSize);
    const std::uint64_t npages = size / pageSize;
    for (std::uint64_t p = 0; p < npages; ++p) {
        store.read(p * pageSize, got);
        const auto it = alts.find(p);
        if (it != alts.end()) {
            bool any = false;
            for (const auto &img : it->second)
                any = any || std::equal(got.begin(), got.end(),
                                        img.begin());
            if (!any) {
                out.push_back(format(
                    "page ", p, " matches no image of the in-flight "
                    "operation"));
            }
            // Adopt whatever recovery resolved to, for the
            // aftershock's exact verification.
            std::copy(got.begin(), got.end(),
                      model.begin() +
                          static_cast<std::ptrdiff_t>(p * pageSize));
        } else if (!std::equal(got.begin(), got.end(),
                               model.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       p * pageSize))) {
            out.push_back(
                format("page ", p, " lost an acknowledged write"));
        }
        if (out.size() > 5)
            return; // enough evidence
    }

    // Aftershock: the recovered store must keep working.
    Rng rng(opt.seed ^ 0xAF7E25A5A5A5A5A5ull);
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 32; ++i) {
        const std::uint64_t len = 1 + rng.below(2 * pageSize);
        const std::uint64_t addr = rng.below(size - len);
        data.resize(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        store.write(addr, data);
        std::copy(data.begin(), data.end(),
                  model.begin() + static_cast<std::ptrdiff_t>(addr));
    }
    for (std::uint64_t p = 0; p < npages; ++p) {
        store.read(p * pageSize, got);
        if (!std::equal(got.begin(), got.end(),
                        model.begin() +
                            static_cast<std::ptrdiff_t>(
                                p * pageSize))) {
            out.push_back(
                format("page ", p, " diverged after the aftershock"));
            return;
        }
    }
}

void
verifyConcurrentChurn(EnvyStore &store, const Options &opt,
                      const std::vector<std::uint64_t> &acks,
                      std::vector<std::string> &out)
{
    const std::uint32_t pageSize = store.config().geom.pageSize;
    const std::uint64_t regionPages =
        store.size() / pageSize / kCcWorkers;

    // Newest acknowledged op per worker.  Each worker acks in op
    // order, so one maximum pins the whole acknowledged prefix.
    std::vector<std::int64_t> maxAcked(kCcWorkers, -1);
    for (const std::uint64_t v : acks) {
        if (v < (1ull << 32))
            continue; // the "ready" ack
        const std::uint64_t cw = (v >> 32) - 1;
        const std::int64_t i =
            static_cast<std::int64_t>((v & 0xFFFFFFFFull) - 1);
        if (cw < kCcWorkers)
            maxAcked[cw] = std::max(maxAcked[cw], i);
    }

    auto le64 = [](const std::vector<std::uint8_t> &b,
                   std::size_t at) {
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | b[at + i];
        return v;
    };

    std::vector<std::uint8_t> got(pageSize), want(pageSize);
    for (unsigned cw = 0; cw < kCcWorkers; ++cw) {
        for (std::uint64_t pi = 0; pi < regionPages; ++pi) {
            const std::uint64_t p = cw * regionPages + pi;
            store.read(p * pageSize, got);

            // The newest acknowledged op that targeted this page
            // (ops hit page i % regionPages, so project maxAcked
            // down onto pi), or -1 when no ack pins it.
            std::int64_t floor = -1;
            if (maxAcked[cw] >= 0 &&
                static_cast<std::uint64_t>(maxAcked[cw]) + 1 > pi) {
                const std::uint64_t m =
                    static_cast<std::uint64_t>(maxAcked[cw]);
                if (m >= pi)
                    floor = static_cast<std::int64_t>(
                        m - (m - pi) % regionPages);
            }

            if (floor < 0 &&
                std::all_of(got.begin(), got.end(),
                            [](std::uint8_t b) { return b == 0; }))
                continue; // never captured: the populate image

            const std::uint64_t sw = le64(got, 0);
            const std::uint64_t si = le64(got, 8);
            bool bad = sw != cw + 1 || si == 0;
            const std::uint64_t i = si - 1;
            if (!bad)
                bad = i % regionPages != pi || i >= opt.ops;
            if (!bad && floor >= 0 &&
                static_cast<std::int64_t>(i) < floor) {
                out.push_back(format(
                    "worker ", cw, " page ", pi, " holds op ", i,
                    " but op ", floor, " was acknowledged"));
                continue;
            }
            if (!bad) {
                ccFillPage(want, opt.seed, cw, i);
                bad = !std::equal(got.begin(), got.end(),
                                  want.begin());
            }
            if (bad) {
                out.push_back(format(
                    "worker ", cw, " page ", pi,
                    " matches no operation's image"));
            }
            if (out.size() > 5)
                return; // enough evidence
        }
    }

    // Aftershock: the recovered store (reopened serial) keeps
    // working; overwrite one page per worker region and re-verify
    // exactly.
    for (unsigned cw = 0; cw < kCcWorkers; ++cw) {
        const std::uint64_t p = cw * regionPages;
        ccFillPage(want, opt.seed ^ 0xAF7E2ull, cw, 0);
        store.write(p * pageSize, want);
        store.read(p * pageSize, got);
        if (!std::equal(got.begin(), got.end(), want.begin())) {
            out.push_back(format("worker ", cw,
                                 " region diverged after the "
                                 "aftershock"));
            return;
        }
    }
}

void
verifyTpca(EnvyStore &store, const Options &opt,
           std::uint64_t last_ack, std::vector<std::string> &out)
{
    const TpcaDatabase::Params params =
        tpcaParams(store.config().geom.pageSize);
    const TpcaLayout layout(params);

    // Balance model from the acknowledged prefix.
    std::vector<std::int64_t> acct(params.accounts,
                                   params.initialBalance);
    std::vector<std::int64_t> tell(layout.tellers, 0);
    std::vector<std::int64_t> brch(layout.branches, 0);
    auto tellerOf = [&](std::uint64_t a) {
        return a / params.accountsPerTeller;
    };
    auto branchOf = [&](std::uint64_t t) {
        return t / params.tellersPerBranch;
    };

    TpcaScript script(opt.seed);
    const std::uint64_t completed = last_ack >= 2 ? last_ack - 1 : 0;
    for (std::uint64_t i = 0; i < completed; ++i) {
        const TpcaOp op = script.next(params.accounts);
        acct[op.account] += op.amount;
        tell[tellerOf(op.account)] += op.amount;
        brch[branchOf(tellerOf(op.account))] += op.amount;
    }

    // The interrupted transaction (record-level either-or: the
    // shadow sweep neither completes nor rolls back a torn txn).
    bool pending = completed < opt.ops;
    TpcaOp inflight{0, 0};
    if (pending)
        inflight = script.next(params.accounts);

    auto check = [&](const char *kind, std::uint64_t base,
                     std::uint64_t id, std::int64_t want,
                     bool either_or) {
        const std::int64_t got = layout.balance(store, base, id);
        if (got == want)
            return;
        if (either_or && got == want + inflight.amount)
            return;
        out.push_back(format(kind, " ", id, " balance ", got,
                             " != expected ", want));
    };
    for (std::uint64_t a = 0; a < params.accounts; ++a) {
        check("account", layout.accountBase, a, acct[a],
              pending && a == inflight.account);
    }
    for (std::uint64_t t = 0; t < layout.tellers; ++t) {
        check("teller", layout.tellerBase, t, tell[t],
              pending && t == tellerOf(inflight.account));
    }
    for (std::uint64_t b = 0; b < layout.branches; ++b) {
        check("branch", layout.branchBase, b, brch[b],
              pending && b == branchOf(tellerOf(inflight.account)));
    }
}

CaseResult
runCase(Workload w, const Options &opt, const std::string &point,
        std::uint64_t occurrence)
{
    CaseResult cr;
    cr.point = point;
    cr.occurrence = occurrence;

    const CasePaths paths = casePaths(opt, w);
    removeCaseFiles(paths);

    const pid_t pid = ::fork();
    if (pid < 0) {
        cr.violations.push_back("fork failed");
        return cr;
    }
    if (pid == 0) {
        const int ack_fd =
            ::open(paths.acks.c_str(),
                   O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
        if (ack_fd < 0)
            ::_exit(3);
        KillSink sink(point, occurrence);
        // Global, not thread-local: the concurrent workload hits
        // crash points from host workers, the cleaner pool and the
        // commit pipeline's epoch thread, and any of them must be
        // able to pull the plug.
        crash_points::setGlobalSink(&sink);
        runWorkload(w, opt, paths, ack_fd);
        // The planned point never fired: exit without running the
        // store's destructor, leaving exactly the journal-flushed
        // state a kill would have (status 2 tells the parent).
        ::_exit(2);
    }

    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
        cr.violations.push_back("waitpid failed");
        return cr;
    }
    cr.killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool finished = WIFEXITED(status) &&
                          WEXITSTATUS(status) == 2;
    if (!cr.killed && !finished) {
        cr.violations.push_back(format(
            "child ended unexpectedly (status ", status, ")"));
        return cr;
    }
    if (finished && w != Workload::ConcurrentChurn) {
        // The schedule came from the probe run of the same binary,
        // so a planned kill that never fires is a determinism bug.
        // The concurrent workload's interleavings shift occurrence
        // counts run to run, so there a never-fired plan is
        // tolerated: the child _exited without destructors, and the
        // journal-flushed state is verified exactly like a kill.
        cr.violations.push_back("planned crash point never fired");
        return cr;
    }

    const std::uint64_t lastAck = AckLog::lastAck(paths.acks);

    std::string error;
    std::unique_ptr<EnvyStore> store =
        persist::PersistentStore::tryOpen(paths.store, error);
    if (!store) {
        // Killed before the store finished creation: fine only if
        // nothing was ever acknowledged.
        if (lastAck != 0) {
            cr.violations.push_back(format(
                "store unopenable (", error, ") after ack ",
                lastAck));
        }
        removeCaseFiles(paths);
        return cr;
    }

    checkInvariants(*store, cr.violations);
    if (w == Workload::ConcurrentChurn) {
        verifyConcurrentChurn(*store, opt,
                              AckLog::readAll(paths.acks),
                              cr.violations);
    } else if (lastAck >= 1) {
        // Database/setup acked; ops 0..lastAck-2 completed.
        if (w == Workload::Churn)
            verifyChurn(*store, opt, lastAck, cr.violations);
        else
            verifyTpca(*store, opt, lastAck, cr.violations);
    }
    store.reset();
    removeCaseFiles(paths);
    return cr;
}

// ---- seeded ordering-critical points -----------------------------

/**
 * Crash points that exercise the journal-before-mmap ordering
 * protocol (docs/PERSISTENCE.md; enforced statically by
 * envy-analyze's `journal-before-mmap` rule).  The probe run of at
 * least one workload must reach every one of them, and reached
 * points always get first- and last-occurrence kill cases -- so a
 * refactor that makes one unreachable fails the harness instead of
 * silently shrinking its coverage.  envy-analyze's
 * `crash-point-reachable` rule checks the same property in the call
 * graph; this list checks it dynamically, against the workloads the
 * recovery guarantees are stated for.
 */
const char *const orderingCriticalPoints[] = {
    // SRAM-map vs flash-program ordering in the write path.
    "ctl.cow.after_push",
    "ctl.cow.after_map",
    "ctl.cow.done",
    "ctl.flush.before_program",
    "ctl.flush.after_program",
    "ctl.flush.after_map",
    "ctl.flush.done",
    // Transaction shadow release/restore windows.
    "txn.commit.begin",
    "txn.commit.mid_release",
    "txn.abort.begin",
    "txn.abort.mid_restore",
    // The journal barrier itself, and the checkpoint rename window
    // -- the instants the FlashMetaView mutators rely on.
    "persist.journal.after_flush",
    "persist.checkpoint.before_rename",
    "persist.checkpoint.after_rename",
};

/** Seeded points no workload's probe reached (empty when healthy). */
std::vector<std::string>
missingSeededPoints(
    const std::map<std::string, std::uint64_t> &union_hits)
{
    std::vector<std::string> missing;
    for (const char *point : orderingCriticalPoints) {
        if (!union_hits.count(point))
            missing.emplace_back(point);
    }
    return missing;
}

// ---- schedule ----------------------------------------------------

std::map<std::string, std::uint64_t>
probe(Workload w, const Options &opt)
{
    const CasePaths paths = casePaths(opt, w);
    removeCaseFiles(paths);
    CountingSink sink;
    // Match the child's sink scope: count hits from every thread of
    // the store, not only the probe thread.
    CrashSink *prev = crash_points::setGlobalSink(&sink);
    runWorkload(w, opt, paths, -1);
    crash_points::setGlobalSink(prev);
    removeCaseFiles(paths);
    return sink.counts;
}

/**
 * Pick (point, occurrence) pairs: always the first and last
 * occurrence of every reached point, then seeded-random middles,
 * round-robin across points, until @p want_cases cases exist (or
 * every occurrence of every point is already scheduled).
 */
std::vector<std::pair<std::string, std::uint64_t>>
schedule(const std::map<std::string, std::uint64_t> &hits,
         std::uint64_t want_cases, std::uint64_t seed)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    if (hits.empty())
        return out;
    Rng pick(seed ^ 0xC3A5C85C97CB3127ull);
    std::map<std::string, std::set<std::uint64_t>> chosen;
    std::uint64_t total = 0;
    for (const auto &[point, count] : hits) {
        auto &s = chosen[point];
        s.insert(1);
        s.insert(count);
        total += s.size();
    }
    bool progress = true;
    while (total < want_cases && progress) {
        progress = false;
        for (const auto &[point, count] : hits) {
            auto &s = chosen[point];
            if (s.size() >= count)
                continue;
            std::uint64_t occ;
            do {
                occ = pick.between(1, count);
            } while (s.count(occ));
            s.insert(occ);
            ++total;
            progress = true;
            if (total >= want_cases)
                break;
        }
    }
    for (const auto &[point, occs] : chosen)
        for (const std::uint64_t occ : occs)
            out.emplace_back(point, occ);
    return out;
}

int
run(const Options &opt)
{
    std::vector<Workload> workloads;
    if (opt.workloads == "all") {
        workloads = {Workload::Churn, Workload::Tpca,
                     Workload::ConcurrentChurn};
    } else if (opt.workloads == "serial") {
        workloads = {Workload::Churn, Workload::Tpca};
    } else if (opt.workloads == "concurrent") {
        workloads = {Workload::ConcurrentChurn};
    } else {
        std::fprintf(stderr,
                     "unknown --workloads '%s' (all|serial|"
                     "concurrent)\n",
                     opt.workloads.c_str());
        return 2;
    }
    const std::uint64_t perWorkload =
        (opt.minCases + workloads.size() - 1) / workloads.size();

    std::uint64_t cases = 0, failures = 0, kills = 0;
    std::map<std::string, std::uint64_t> unionHits;
    for (const Workload w : workloads) {
        const auto hits = probe(w, opt);
        for (const auto &[point, count] : hits)
            unionHits[point] += count;
        const auto plan = schedule(hits, perWorkload, opt.seed);
        std::printf("[%s] %zu crash points reachable, %zu cases\n",
                    workloadName(w), hits.size(), plan.size());
        for (const auto &[point, occ] : plan) {
            const CaseResult cr = runCase(w, opt, point, occ);
            ++cases;
            if (cr.killed)
                ++kills;
            if (!cr.ok()) {
                ++failures;
                std::printf("FAIL [%s] %s occurrence %llu: %s\n",
                            workloadName(w), cr.point.c_str(),
                            static_cast<unsigned long long>(
                                cr.occurrence),
                            cr.violations.front().c_str());
            } else if (opt.verbose) {
                std::printf("ok   [%s] %s occurrence %llu\n",
                            workloadName(w), cr.point.c_str(),
                            static_cast<unsigned long long>(
                                cr.occurrence));
            }
        }
    }
    // Seeded-point coverage is a *serial* determinism contract: the
    // concurrent workload has no transactions and its occurrence
    // counts drift, so running it alone must not fail the seed list.
    std::vector<std::string> missing;
    if (opt.workloads != "concurrent")
        missing = missingSeededPoints(unionHits);
    for (const std::string &point : missing) {
        ++failures;
        std::printf("FAIL seeded ordering-critical crash point "
                    "\"%s\" was never reached by any workload\n",
                    point.c_str());
    }
    if (opt.workloads == "concurrent") {
        std::printf("crash-harness: %llu cases, %llu SIGKILLs, "
                    "%llu failures (seeded-point check skipped: "
                    "concurrent-only run)\n",
                    static_cast<unsigned long long>(cases),
                    static_cast<unsigned long long>(kills),
                    static_cast<unsigned long long>(failures));
    } else {
        std::printf("crash-harness: %llu cases, %llu SIGKILLs, "
                    "%llu failures (%zu/%zu seeded ordering points "
                    "reached)\n",
                    static_cast<unsigned long long>(cases),
                    static_cast<unsigned long long>(kills),
                    static_cast<unsigned long long>(failures),
                    std::size(orderingCriticalPoints) -
                        missing.size(),
                    std::size(orderingCriticalPoints));
    }
    if (cases < opt.minCases) {
        std::printf("crash-harness: FAIL (needed at least %llu "
                    "cases)\n",
                    static_cast<unsigned long long>(opt.minCases));
        return 1;
    }
    std::printf("crash-harness: %s\n", failures ? "FAIL" : "PASS");
    return failures ? 1 : 0;
}

} // namespace
} // namespace envy

int
main(int argc, char **argv)
{
    envy::Options opt;
    opt.dir = "/tmp";
    if (const char *tmp = std::getenv("TMPDIR"))
        opt.dir = tmp;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--dir") {
            opt.dir = value();
        } else if (arg == "--seed") {
            opt.seed = std::stoull(value());
        } else if (arg == "--ops") {
            opt.ops = std::stoull(value());
        } else if (arg == "--cases") {
            opt.minCases = std::stoull(value());
        } else if (arg == "--workloads") {
            opt.workloads = value();
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(
                stderr,
                "usage: crash_harness [--dir DIR] [--seed N] "
                "[--ops N] [--cases N] "
                "[--workloads all|serial|concurrent] [--verbose]\n");
            return arg == "--help" ? 0 : 2;
        }
    }
    return envy::run(opt);
}
