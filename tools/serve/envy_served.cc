/**
 * @file
 * envy-served: the standalone TCP server daemon (docs/SERVING.md §5).
 *
 * Stands an epoll-multiplexed TcpListener in front of a threaded
 * Server and accepts connections until SIGINT/SIGTERM, then prints
 * the serve.* counters.  --persist re-opens an existing database in
 * place, so a restarted daemon picks up exactly where the last one
 * stopped.  A persistent store keeps the full concurrent stack
 * (--store-workers/--cleaners); with --durable-acks that combination
 * batches every mutating ack through the commit thread — one shared
 * journal flush per batch (group commit, docs/SERVING.md §3), plus
 * one device barrier per batch under --sync-acks.  --store-workers 0
 * selects the serial persistent controller instead, which clamps the
 * daemon to one protocol worker and flushes inline per request.
 *
 *   envy_served [--port N] [--capacity KEYS] [--workers N]
 *               [--store-workers N] [--cleaners N]
 *               [--persist PATH [--durable-acks [--sync-acks]]]
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "serve/kv_engine.hh"
#include "serve/server.hh"
#include "serve/socket_transport.hh"

using namespace envy;
using namespace envy::serve;

namespace {

// The accept loop blocks in epoll_wait; the handler just pokes the
// listener's stop eventfd (a single async-signal-safe write).
TcpListener *g_listener = nullptr;

void
onSignal(int)
{
    if (g_listener)
        g_listener->stop();
}

struct Options
{
    std::uint16_t port = 7470;
    std::uint64_t capacity = 1'000'000;
    unsigned workers = 4;
    unsigned storeWorkers = 4;
    unsigned cleaners = 1;
    std::string persistPath;
    bool durableAcks = false;
    bool syncAcks = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--capacity KEYS] [--workers N]\n"
        "          [--store-workers N] [--cleaners N]\n"
        "          [--persist PATH [--durable-acks [--sync-acks]]]\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--durable-acks") {
            opt.durableAcks = true;
            continue;
        }
        if (arg == "--sync-acks") {
            opt.syncAcks = true;
            continue;
        }
        if (!val)
            usage(argv[0]);
        if (arg == "--port")
            opt.port = static_cast<std::uint16_t>(std::atoi(val));
        else if (arg == "--capacity")
            opt.capacity =
                static_cast<std::uint64_t>(std::atoll(val));
        else if (arg == "--workers")
            opt.workers =
                static_cast<unsigned>(std::atoi(val));
        else if (arg == "--store-workers")
            opt.storeWorkers =
                static_cast<unsigned>(std::atoi(val));
        else if (arg == "--cleaners")
            opt.cleaners = static_cast<unsigned>(std::atoi(val));
        else if (arg == "--persist")
            opt.persistPath = val;
        else
            usage(argv[0]);
        i++;
    }
    if (opt.durableAcks && opt.persistPath.empty())
        usage(argv[0]);
    if (opt.syncAcks && !opt.durableAcks)
        usage(argv[0]);
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    EnvyConfig cfg;
    cfg.geom = kvGeometryFor(opt.capacity);
    cfg.numWorkers = opt.storeWorkers;
    cfg.numCleaners = opt.cleaners;
    cfg.persistPath = opt.persistPath;
    // --persist with --store-workers 0 runs the serial persistent
    // controller, which limits the Server to one protocol worker
    // (server.cc asserts it); a concurrent persistent store takes
    // the full worker pool and batches durable acks through the
    // commit thread.
    const bool serialPersist =
        !opt.persistPath.empty() && opt.storeWorkers == 0;
    EnvyStore store(cfg);

    std::unique_ptr<KvEngine> engine;
    if (!opt.persistPath.empty() && KvEngine::present(store)) {
        engine = KvEngine::open(store);
        std::printf("envy-served: reopened %s (%llu keys)\n",
                    opt.persistPath.c_str(),
                    static_cast<unsigned long long>(
                        engine->keyCount()));
    } else {
        engine = std::make_unique<KvEngine>(store, KvEngineConfig{});
    }

    ServeConfig serveCfg;
    serveCfg.workers =
        serialPersist ? std::min(opt.workers, 1u) : opt.workers;
    serveCfg.durableAcks = opt.durableAcks;
    serveCfg.syncAcks = opt.syncAcks;
    Server server(store, *engine, serveCfg);

    TcpListener listener(opt.port);
    g_listener = &listener;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::printf("envy-served: listening on 127.0.0.1:%u "
                "(%u protocol workers, capacity %llu keys)\n",
                listener.port(), serveCfg.workers,
                static_cast<unsigned long long>(opt.capacity));
    std::fflush(stdout);

    while (ByteStreamPtr conn = listener.accept())
        server.attach(std::move(conn));

    server.stop();
    if (!opt.persistPath.empty())
        store.persistCommit();

    const auto snap = store.metrics().snapshot();
    std::printf("envy-served: shutting down\n"
                "  requests   %llu\n"
                "  batch ops  %llu\n"
                "  shed       %llu\n"
                "  queued     %llu\n"
                "  keys       %llu\n",
                static_cast<unsigned long long>(
                    snap.counter("serve.requests")),
                static_cast<unsigned long long>(
                    snap.counter("serve.batch_ops")),
                static_cast<unsigned long long>(
                    snap.counter("serve.shed")),
                static_cast<unsigned long long>(
                    snap.counter("serve.queued")),
                static_cast<unsigned long long>(
                    engine->keyCount()));
    return 0;
}
