/**
 * @file
 * envy-loadgen: drive a running envy-served over TCP
 * (docs/SERVING.md §6).
 *
 * The in-process curves live in bench/bench_serve.cc; this tool
 * points the same Loadgen at a real socket.  Prefill happens over
 * the wire — pipelined PUT windows on one connection — since the
 * engine lives in the server process; pass --no-prefill when the
 * population is already loaded (e.g. a persistent store, or a second
 * run against the same daemon).
 *
 *   envy_loadgen [--host H] [--port N] [--workload zipf|tpca]
 *                [--keys N] [--clients N] [--seconds S]
 *                [--no-prefill]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "envysim/experiment.hh"
#include "serve/client.hh"
#include "serve/loadgen.hh"
#include "serve/socket_transport.hh"

using namespace envy;
using namespace envy::serve;

namespace {

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 7470;
    LoadgenConfig gen;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--host H] [--port N] [--workload zipf|tpca]\n"
        "          [--keys N] [--clients N] [--seconds S]\n"
        "          [--no-prefill]\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--no-prefill") {
            opt.gen.prefill = false;
            continue;
        }
        if (!val)
            usage(argv[0]);
        if (arg == "--host")
            opt.host = val;
        else if (arg == "--port")
            opt.port = static_cast<std::uint16_t>(std::atoi(val));
        else if (arg == "--workload")
            opt.gen.workload = val;
        else if (arg == "--keys")
            opt.gen.keys =
                static_cast<std::uint64_t>(std::atoll(val));
        else if (arg == "--clients")
            opt.gen.clients =
                static_cast<unsigned>(std::atoi(val));
        else if (arg == "--seconds")
            opt.gen.measureSeconds = std::atof(val);
        else
            usage(argv[0]);
        i++;
    }
    return opt;
}

/**
 * PUT every key in the population over one connection, pipelined in
 * windows so the WAN round-trip amortises.  The engine-side prefill
 * in Loadgen::run() is not available here — the engine belongs to
 * the server process.
 */
void
prefillWire(const Options &opt)
{
    KvClient client(tcpConnect(opt.host, opt.port));
    const std::string v(opt.gen.valueBytes, 'p');
    constexpr std::size_t kWindow = 256;

    std::vector<std::uint64_t> window;
    auto flush = [&] {
        for (std::size_t i = 0; i < window.size(); i++) {
            Response resp;
            ENVY_ASSERT(client.recv(resp, true),
                        "serve: prefill connection dropped");
            ENVY_ASSERT(resp.status == Status::Ok,
                        "serve: prefill PUT rejected — server "
                        "capacity below --keys?");
        }
        window.clear();
    };
    auto putKey = [&](std::uint64_t key) {
        client.sendPut(key, v);
        window.push_back(key);
        if (window.size() >= kWindow)
            flush();
    };

    if (opt.gen.workload == "zipf") {
        for (std::uint64_t k = 0; k < opt.gen.keys; k++)
            putKey(k);
    } else {
        TpcaKeys tk(opt.gen.keys);
        for (std::uint64_t a = 0; a < opt.gen.keys; a++)
            putKey(TpcaKeys::account(a));
        for (std::uint64_t t = 0; t < tk.cfg.numTellers(); t++)
            putKey(TpcaKeys::teller(t));
        for (std::uint64_t b = 0; b < tk.cfg.numBranches(); b++)
            putKey(TpcaKeys::branch(b));
    }
    flush();
    client.close();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    if (opt.gen.prefill) {
        std::printf("envy-loadgen: prefilling %llu keys over the "
                    "wire...\n",
                    static_cast<unsigned long long>(opt.gen.keys));
        std::fflush(stdout);
        prefillWire(opt);
    }
    opt.gen.prefill = false; // wire prefill already done (or skipped)

    Loadgen gen(
        nullptr,
        [&opt] { return tcpConnect(opt.host, opt.port); },
        opt.gen);
    const std::vector<LoadPoint> points = gen.run();

    ResultTable t("envy-loadgen vs " + opt.host + ":" +
                  std::to_string(opt.port));
    t.setColumns({"workload", "mode", "clients", "offered_rps",
                  "achieved_rps", "p50_us", "p99_us", "p999_us",
                  "shed", "queued"});
    for (const LoadPoint &p : points)
        t.addRow({p.workload, p.mode,
                  ResultTable::integer(p.clients),
                  ResultTable::num(p.offeredRps, 0),
                  ResultTable::num(p.achievedRps, 0),
                  ResultTable::integer(p.p50Us),
                  ResultTable::integer(p.p99Us),
                  ResultTable::integer(p.p999Us),
                  ResultTable::integer(p.shed),
                  ResultTable::integer(p.queued)});
    t.addNote("latency from the scheduled arrival "
              "(coordinated-omission-safe)");
    t.print();
    return 0;
}
