#!/usr/bin/env python3
"""Fold a JSONL trace into a Fig 6-style cleaning-cost table.

Usage: summarize_trace.py [TRACE.jsonl ...]
       summarize_trace.py --self-test

Reads trace files written by a bench run with --trace (or stdin when
no file is given) and prints:

  1. an event-count table (every event name seen, with counts), and
  2. a cleaning-cost table in the shape of the paper's Figure 6:
     each completed clean is paired from its cleaner.clean.start /
     cleaner.clean.end events, its flash utilization is observed as
     live/capacity at the moment the victim was picked, and cleans
     are bucketed by that utilization (nearest 5%).  Per bucket the
     table shows cleans, pages copied, pages freed (capacity - live)
     and the cleaning cost copied/freed — the paper's "cleaner page
     programs per flushed page" identity, since in steady state every
     freed slot is consumed by exactly one buffer flush.

When the trace carries ctl.flush events (EnvyStore-based runs, as
opposed to the policy simulator) a direct programs-per-flush figure
is printed as well.

Exit status: 0 on success (even if the trace has no cleans), 1 on
malformed input, 2 on usage errors.
"""

import json
import sys


def pair_cleans(events):
    """Yield one dict per completed clean, pairing start/end by the
    victim's logical segment (a clean never nests with itself)."""
    open_cleans = {}
    for e in events:
        name = e.get("event")
        if name == "cleaner.clean.start":
            open_cleans[e["logical"]] = e
        elif name == "cleaner.clean.end":
            start = open_cleans.pop(e["logical"], None)
            if start is None:
                continue  # truncated trace: end without start
            yield {
                "live": start["live"],
                "capacity": start["capacity"],
                "copied": e["copied"],
            }


def bucket(live, capacity):
    """Observed utilization, rounded to the nearest 5%."""
    return 5 * round(100.0 * live / capacity / 5) if capacity else 0


def summarize(events):
    """Return (counts, rows, totals) for the two tables."""
    counts = {}
    buckets = {}
    for e in events:
        name = e.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
    for c in pair_cleans(events):
        b = buckets.setdefault(bucket(c["live"], c["capacity"]),
                               {"cleans": 0, "copied": 0, "freed": 0})
        b["cleans"] += 1
        b["copied"] += c["copied"]
        b["freed"] += c["capacity"] - c["live"]
    rows = []
    total = {"cleans": 0, "copied": 0, "freed": 0}
    for util in sorted(buckets):
        b = buckets[util]
        cost = b["copied"] / b["freed"] if b["freed"] else 0.0
        rows.append((util, b["cleans"], b["copied"], b["freed"],
                     cost))
        for k in total:
            total[k] += b[k]
    return counts, rows, total


def print_tables(counts, rows, total, flushes):
    print("== event counts ==")
    width = max((len(n) for n in counts), default=5)
    for name in sorted(counts):
        print(f"  {name:<{width}}  {counts[name]}")
    if not counts:
        print("  (no events)")
    print()
    print("== cleaning cost by observed utilization (Fig 6) ==")
    print(f"  {'util%':>5}  {'cleans':>7}  {'copied':>9}  "
          f"{'freed':>9}  {'cost':>6}")
    for util, cleans, copied, freed, cost in rows:
        print(f"  {util:>5}  {cleans:>7}  {copied:>9}  "
              f"{freed:>9}  {cost:>6.2f}")
    if not rows:
        print("  (no completed cleans in trace)")
    else:
        cost = (total["copied"] / total["freed"]
                if total["freed"] else 0.0)
        print(f"  {'all':>5}  {total['cleans']:>7}  "
              f"{total['copied']:>9}  {total['freed']:>9}  "
              f"{cost:>6.2f}")
    if flushes:
        ppf = total["copied"] / flushes
        print(f"\n  ctl.flush events: {flushes} "
              f"(cleaner programs/flush: {ppf:.2f})")


def load(stream, path):
    events = []
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            e = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"{path}:{lineno}: bad JSONL: {exc}",
                  file=sys.stderr)
            return None
        if not isinstance(e, dict) or "event" not in e:
            print(f"{path}:{lineno}: not a trace event",
                  file=sys.stderr)
            return None
        events.append(e)
    return events


def self_test():
    """Exercise pairing, bucketing, and the cost arithmetic."""
    def clean(logical, live, capacity, copied):
        return [{"event": "cleaner.clean.start", "logical": logical,
                 "victim": logical, "live": live,
                 "capacity": capacity, "resuming": 0},
                {"event": "flash.erase", "segment": logical,
                 "cycles": 1},
                {"event": "cleaner.clean.end", "logical": logical,
                 "copied": copied, "diverted": 0, "ticks": 0}]

    events = (clean(1, 80, 100, 80) +      # util 80%, freed 20
              clean(2, 82, 100, 82) +      # util 80% bucket, freed 18
              clean(3, 30, 100, 30) +      # util 30%, freed 70
              [{"event": "cleaner.clean.end", "logical": 9,
                "copied": 999, "diverted": 0, "ticks": 0}] +
              [{"event": "ctl.flush", "page": 5, "slot": 0}] * 4)
    counts, rows, total = summarize(events)

    ok = True
    def expect(cond, what):
        nonlocal ok
        if not cond:
            print(f"self-test FAILED: {what}")
            ok = False

    expect(counts["cleaner.clean.start"] == 3, "start count")
    expect(counts["cleaner.clean.end"] == 4, "end count")
    expect(counts["flash.erase"] == 3, "erase count")
    expect(counts["ctl.flush"] == 4, "flush count")
    expect(len(rows) == 2, f"bucket count {len(rows)}")
    expect(rows[0][0] == 30 and rows[0][1] == 1, "30% bucket")
    expect(rows[1][0] == 80 and rows[1][1] == 2, "80% bucket")
    # 80% bucket: copied 162, freed 38 -> cost 162/38
    expect(abs(rows[1][4] - 162 / 38) < 1e-9, "80% cost")
    # Unmatched end is dropped, not counted.
    expect(total["copied"] == 192, f"total copied {total['copied']}")
    expect(total["freed"] == 108, "total freed")
    expect(bucket(0, 0) == 0, "zero capacity bucket")
    if ok:
        print_tables(counts, rows, total, 4)
        print("self-test: OK")
        return 0
    return 1


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if any(a.startswith("--") for a in argv[1:]):
        print(__doc__, file=sys.stderr)
        return 2
    events = []
    if len(argv) == 1:
        got = load(sys.stdin, "<stdin>")
        if got is None:
            return 1
        events += got
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                got = load(f, path)
        except OSError as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 1
        if got is None:
            return 1
        events += got
    counts, rows, total = summarize(events)
    print_tables(counts, rows, total, counts.get("ctl.flush", 0))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
