#include "serve/protocol.hh"

#include <algorithm>

#include "common/logging.hh"

namespace envy {
namespace serve {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Get: return "get";
      case Op::Put: return "put";
      case Op::Del: return "del";
      case Op::Batch: return "batch";
      case Op::Stat: return "stat";
    }
    return "?";
}

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "ok";
      case Status::NotFound: return "not_found";
      case Status::Shed: return "shed";
      case Status::Error: return "error";
      case Status::TooLarge: return "too_large";
    }
    return "?";
}

const char *
frameErrorName(FrameError e)
{
    switch (e) {
      case FrameError::None: return "none";
      case FrameError::BadMagic: return "bad_magic";
      case FrameError::BadVersion: return "bad_version";
      case FrameError::Oversized: return "oversized";
      case FrameError::BadChecksum: return "bad_checksum";
      case FrameError::BadOpcode: return "bad_opcode";
      case FrameError::BadPayload: return "bad_payload";
    }
    return "?";
}

std::uint32_t
fnv1a(std::span<const std::uint8_t> bytes, std::uint32_t seed)
{
    std::uint32_t h = seed;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 16777619u;
    }
    return h;
}

namespace {

// ---- little-endian scalar writers/readers -------------------------

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putBytes(std::vector<std::uint8_t> &out, const std::string &s)
{
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked little-endian reader over a payload. */
class Reader
{
  public:
    explicit Reader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {}

    bool ok() const { return ok_; }
    bool done() const { return ok_ && pos_ == bytes_.size(); }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return bytes_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
        return v;
    }

    std::string
    bytes(std::size_t n)
    {
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(
                          bytes_.data() + pos_), n);
        pos_ += n;
        return s;
    }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_ || bytes_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Wrap @p payload in a checksummed frame header. */
std::vector<std::uint8_t>
frame(std::uint8_t opcode, std::uint64_t request_id,
      std::vector<std::uint8_t> payload)
{
    ENVY_ASSERT(payload.size() <= kMaxPayload,
                "serve: encoding oversized frame (", payload.size(),
                " bytes)");
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + payload.size());
    putU16(out, kMagic);
    out.push_back(kProtocolVersion);
    out.push_back(opcode);
    putU64(out, request_id);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU32(out, 0); // checksum placeholder
    out.insert(out.end(), payload.begin(), payload.end());

    std::uint32_t sum = fnv1a({out.data(), kHeaderBytes});
    sum = fnv1a({out.data() + kHeaderBytes, payload.size()}, sum);
    out[16] = static_cast<std::uint8_t>(sum);
    out[17] = static_cast<std::uint8_t>(sum >> 8);
    out[18] = static_cast<std::uint8_t>(sum >> 16);
    out[19] = static_cast<std::uint8_t>(sum >> 24);
    return out;
}

void
encodeSubOp(std::vector<std::uint8_t> &out, const SubOp &sub)
{
    out.push_back(static_cast<std::uint8_t>(sub.op));
    putU64(out, sub.key);
    if (sub.op == Op::Put) {
        putU32(out, static_cast<std::uint32_t>(sub.value.size()));
        putBytes(out, sub.value);
    }
}

bool
parseSubOp(Reader &r, SubOp &sub)
{
    const std::uint8_t op = r.u8();
    if (op != static_cast<std::uint8_t>(Op::Get) &&
        op != static_cast<std::uint8_t>(Op::Put) &&
        op != static_cast<std::uint8_t>(Op::Del)) {
        return false;
    }
    sub.op = static_cast<Op>(op);
    sub.key = r.u64();
    if (sub.op == Op::Put) {
        const std::uint32_t len = r.u32();
        if (len > kMaxValueBytes)
            return false;
        sub.value = r.bytes(len);
    }
    return r.ok();
}

} // namespace

std::vector<std::uint8_t>
encodeRequest(const Request &req)
{
    std::vector<std::uint8_t> payload;
    switch (req.op) {
      case Op::Get:
      case Op::Del:
        putU64(payload, req.key);
        break;
      case Op::Put:
        putU64(payload, req.key);
        putU32(payload, static_cast<std::uint32_t>(req.value.size()));
        putBytes(payload, req.value);
        break;
      case Op::Stat:
        break;
      case Op::Batch:
        ENVY_ASSERT(req.ops.size() <= kMaxBatchOps,
                    "serve: batch of ", req.ops.size(),
                    " sub-ops exceeds kMaxBatchOps");
        putU32(payload, static_cast<std::uint32_t>(req.ops.size()));
        for (const SubOp &sub : req.ops)
            encodeSubOp(payload, sub);
        break;
    }
    return frame(static_cast<std::uint8_t>(req.op), req.requestId,
                 std::move(payload));
}

void
encodeResponseInto(const Response &resp, std::vector<std::uint8_t> &out)
{
    // Header first, payload appended in place behind it; payloadLen
    // and checksum are patched once the size is known.  No temporary
    // payload vector: this is the per-request hot path.
    out.clear();
    putU16(out, kMagic);
    out.push_back(kProtocolVersion);
    out.push_back(static_cast<std::uint8_t>(resp.op) | kResponseBit);
    putU64(out, resp.requestId);
    putU32(out, 0); // payloadLen placeholder
    putU32(out, 0); // checksum placeholder

    out.push_back(static_cast<std::uint8_t>(resp.status));
    out.push_back(static_cast<std::uint8_t>(resp.admission));
    switch (resp.op) {
      case Op::Get:
        if (resp.status == Status::Ok) {
            putU32(out, static_cast<std::uint32_t>(resp.value.size()));
            putBytes(out, resp.value);
        }
        break;
      case Op::Put:
      case Op::Del:
        break;
      case Op::Stat:
        putU32(out, static_cast<std::uint32_t>(resp.stats.size()));
        for (const std::uint64_t v : resp.stats)
            putU64(out, v);
        break;
      case Op::Batch:
        putU32(out, static_cast<std::uint32_t>(resp.ops.size()));
        for (const SubReply &sub : resp.ops) {
            out.push_back(static_cast<std::uint8_t>(sub.status));
            if (sub.status == Status::Ok) {
                putU32(out, static_cast<std::uint32_t>(
                                sub.value.size()));
                putBytes(out, sub.value);
            }
        }
        break;
    }

    const std::size_t payload_len = out.size() - kHeaderBytes;
    ENVY_ASSERT(payload_len <= kMaxPayload,
                "serve: encoding oversized frame (", payload_len,
                " bytes)");
    for (int i = 0; i < 4; i++)
        out[12 + i] =
            static_cast<std::uint8_t>(payload_len >> (8 * i));
    std::uint32_t sum = fnv1a({out.data(), kHeaderBytes});
    sum = fnv1a({out.data() + kHeaderBytes, payload_len}, sum);
    for (int i = 0; i < 4; i++)
        out[16 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
}

std::vector<std::uint8_t>
encodeResponse(const Response &resp)
{
    std::vector<std::uint8_t> out;
    encodeResponseInto(resp, out);
    return out;
}

// ---- incremental decoding -----------------------------------------

void
FrameDecoder::feed(std::span<const std::uint8_t> bytes)
{
    if (error_ != FrameError::None)
        return; // poisoned: framing is lost, drop everything
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<RawFrame>
FrameDecoder::next()
{
    if (error_ != FrameError::None)
        return std::nullopt;

    // Fail fast on the magic: a stream that opens with the wrong
    // bytes can never resynchronise, so reject it as soon as the
    // first two bytes arrive instead of waiting for a full header
    // that may never come.
    if (buf_.size() >= 2) {
        const std::uint16_t magic =
            static_cast<std::uint16_t>(buf_[0] | (buf_[1] << 8));
        if (magic != kMagic) {
            error_ = FrameError::BadMagic;
            return std::nullopt;
        }
    }
    if (buf_.size() < kHeaderBytes)
        return std::nullopt;

    std::uint8_t hdr[kHeaderBytes];
    std::copy_n(buf_.begin(), kHeaderBytes, hdr);
    if (hdr[2] != kProtocolVersion) {
        error_ = FrameError::BadVersion;
        return std::nullopt;
    }
    std::uint32_t len = 0, sum = 0;
    for (int i = 0; i < 4; i++) {
        len |= std::uint32_t{hdr[12 + i]} << (8 * i);
        sum |= std::uint32_t{hdr[16 + i]} << (8 * i);
    }
    if (len > kMaxPayload) {
        error_ = FrameError::Oversized;
        return std::nullopt;
    }
    if (buf_.size() < kHeaderBytes + len)
        return std::nullopt; // truncated: wait for more bytes

    RawFrame out;
    out.opcode = hdr[3];
    for (int i = 0; i < 8; i++)
        out.requestId |= std::uint64_t{hdr[4 + i]} << (8 * i);
    out.payload.assign(
        buf_.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
        buf_.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + len));

    hdr[16] = hdr[17] = hdr[18] = hdr[19] = 0;
    std::uint32_t expect = fnv1a({hdr, kHeaderBytes});
    expect = fnv1a({out.payload.data(), out.payload.size()}, expect);
    if (expect != sum) {
        error_ = FrameError::BadChecksum;
        return std::nullopt;
    }

    buf_.erase(buf_.begin(),
               buf_.begin() +
                   static_cast<std::ptrdiff_t>(kHeaderBytes + len));
    return out;
}

FrameError
parseRequest(const RawFrame &frame_in, Request &out)
{
    out = Request{};
    out.requestId = frame_in.requestId;
    const std::uint8_t opc = frame_in.opcode;
    if (opc < static_cast<std::uint8_t>(Op::Get) ||
        opc > static_cast<std::uint8_t>(Op::Stat)) {
        return FrameError::BadOpcode;
    }
    out.op = static_cast<Op>(opc);
    Reader r({frame_in.payload.data(), frame_in.payload.size()});
    switch (out.op) {
      case Op::Get:
      case Op::Del:
        out.key = r.u64();
        break;
      case Op::Put: {
        out.key = r.u64();
        const std::uint32_t len = r.u32();
        if (len > kMaxValueBytes)
            return FrameError::BadPayload;
        out.value = r.bytes(len);
        break;
      }
      case Op::Stat:
        break;
      case Op::Batch: {
        const std::uint32_t count = r.u32();
        if (count > kMaxBatchOps)
            return FrameError::BadPayload;
        out.ops.resize(count);
        for (std::uint32_t i = 0; i < count; i++) {
            if (!parseSubOp(r, out.ops[i]))
                return FrameError::BadPayload;
        }
        break;
      }
    }
    if (!r.done())
        return FrameError::BadPayload;
    return FrameError::None;
}

FrameError
parseResponse(const RawFrame &frame_in, Response &out)
{
    out = Response{};
    out.requestId = frame_in.requestId;
    if (!(frame_in.opcode & kResponseBit))
        return FrameError::BadOpcode;
    const std::uint8_t opc =
        frame_in.opcode & static_cast<std::uint8_t>(~kResponseBit);
    if (opc < static_cast<std::uint8_t>(Op::Get) ||
        opc > static_cast<std::uint8_t>(Op::Stat)) {
        return FrameError::BadOpcode;
    }
    out.op = static_cast<Op>(opc);

    Reader r({frame_in.payload.data(), frame_in.payload.size()});
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(Status::TooLarge))
        return FrameError::BadPayload;
    out.status = static_cast<Status>(status);
    const std::uint8_t admission = r.u8();
    if (admission > static_cast<std::uint8_t>(Admission::Queued))
        return FrameError::BadPayload;
    out.admission = static_cast<Admission>(admission);

    switch (out.op) {
      case Op::Get:
        if (out.status == Status::Ok) {
            const std::uint32_t len = r.u32();
            if (len > kMaxValueBytes)
                return FrameError::BadPayload;
            out.value = r.bytes(len);
        }
        break;
      case Op::Put:
      case Op::Del:
        break;
      case Op::Stat: {
        const std::uint32_t count = r.u32();
        if (count > 64)
            return FrameError::BadPayload;
        out.stats.resize(count);
        for (std::uint32_t i = 0; i < count; i++)
            out.stats[i] = r.u64();
        break;
      }
      case Op::Batch: {
        const std::uint32_t count = r.u32();
        if (count > kMaxBatchOps)
            return FrameError::BadPayload;
        out.ops.resize(count);
        for (std::uint32_t i = 0; i < count; i++) {
            SubReply &sub = out.ops[i];
            const std::uint8_t st = r.u8();
            if (st > static_cast<std::uint8_t>(Status::TooLarge))
                return FrameError::BadPayload;
            sub.status = static_cast<Status>(st);
            if (sub.status == Status::Ok) {
                const std::uint32_t len = r.u32();
                if (len > kMaxValueBytes)
                    return FrameError::BadPayload;
                sub.value = r.bytes(len);
            }
        }
        break;
      }
    }
    if (!r.done())
        return FrameError::BadPayload;
    return FrameError::None;
}

} // namespace serve
} // namespace envy
