/**
 * @file
 * The envy-serve wire protocol (docs/SERVING.md §2).
 *
 * A length-prefixed binary framing shared by requests and responses.
 * Every frame is a 20-byte header followed by an opcode-specific
 * payload:
 *
 *   offset 0   u16  magic       0xE57E ("envy serve")
 *   offset 2   u8   version     kProtocolVersion (1)
 *   offset 3   u8   opcode      request Op, or Op | 0x80 for replies
 *   offset 4   u64  requestId   echoed verbatim in the response
 *   offset 12  u32  payloadLen  bytes following the header
 *   offset 16  u32  checksum    FNV-1a over the header (checksum
 *                               field zeroed) then the payload
 *
 * All integers are little-endian.  Frames whose payload exceeds
 * kMaxPayload are rejected before the payload is buffered, so a
 * hostile length field cannot balloon server memory.  Decoding is
 * incremental (feed() arbitrary byte chunks, poll next()) and total:
 * every malformed input produces a typed FrameError, never a crash —
 * tests/test_serve_protocol.cc fuzzes this contract under ASan/UBSan.
 *
 * Request payloads:
 *   Get    key u64
 *   Put    key u64, len u32, value bytes
 *   Del    key u64
 *   Stat   (empty)
 *   Batch  count u32, then count sub-ops, each op u8 + the matching
 *          Get/Put/Del request payload
 *
 * Response payloads (opcode = request opcode | 0x80):
 *   status u8, admission u8, then per-op data:
 *     Get    len u32 + value bytes (status Ok only)
 *     Put    (empty)
 *     Del    (empty)
 *     Stat   count u32, count u64 counter values (docs/SERVING.md §4)
 *     Batch  count u32, then count sub-replies, each status u8
 *            (+ len u32 + bytes for Ok Get sub-replies)
 */

#ifndef ENVY_SERVE_PROTOCOL_HH
#define ENVY_SERVE_PROTOCOL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace envy {
namespace serve {

constexpr std::uint16_t kMagic = 0xE57E;
constexpr std::uint8_t kProtocolVersion = 1;
constexpr std::size_t kHeaderBytes = 20;
/** Hard payload ceiling; larger length fields are a protocol error. */
constexpr std::size_t kMaxPayload = 1u << 20;
/** Sub-operations allowed in one Batch frame. */
constexpr std::size_t kMaxBatchOps = 1024;
/** Value bytes allowed in one Put. */
constexpr std::size_t kMaxValueBytes = 64 * 1024;

enum class Op : std::uint8_t
{
    Get = 1,
    Put = 2,
    Del = 3,
    Batch = 4,
    Stat = 5,
};

constexpr std::uint8_t kResponseBit = 0x80;

const char *opName(Op op);

/** How the request fared against the store. */
enum class Status : std::uint8_t
{
    Ok = 0,
    NotFound = 1,
    /** Rejected by admission control; nothing was executed. */
    Shed = 2,
    /** Server-side failure (engine full, closed, internal). */
    Error = 3,
    /** Value larger than the engine's slot capacity. */
    TooLarge = 4,
};

const char *statusName(Status s);

/** How admission control routed the request (docs/SERVING.md §3). */
enum class Admission : std::uint8_t
{
    /** Executed straight off the queue, no pressure observed. */
    Direct = 0,
    /** Held in the admission queue past the soft watermark or during
     *  flush→clean backpressure before executing. */
    Queued = 1,
};

/** Why a frame was rejected.  Truncation is not an error — the
 *  decoder just waits for more bytes. */
enum class FrameError : std::uint8_t
{
    None = 0,
    BadMagic,
    BadVersion,
    Oversized,   //!< payloadLen > kMaxPayload
    BadChecksum,
    BadOpcode,
    BadPayload,  //!< opcode-specific payload malformed
};

const char *frameErrorName(FrameError e);

/** One sub-operation of a Batch request. */
struct SubOp
{
    Op op = Op::Get;
    std::uint64_t key = 0;
    std::string value; //!< Put only
};

/** A decoded request frame. */
struct Request
{
    Op op = Op::Get;
    std::uint64_t requestId = 0;
    std::uint64_t key = 0;
    std::string value;          //!< Put only
    std::vector<SubOp> ops;     //!< Batch only
};

/** One sub-reply of a Batch response. */
struct SubReply
{
    Status status = Status::Ok;
    std::string value; //!< Ok Get sub-replies only
};

/** A decoded response frame. */
struct Response
{
    Op op = Op::Get;            //!< the request opcode it answers
    std::uint64_t requestId = 0;
    Status status = Status::Ok;
    Admission admission = Admission::Direct;
    std::string value;               //!< Get
    std::vector<SubReply> ops;       //!< Batch
    std::vector<std::uint64_t> stats; //!< Stat (docs/SERVING.md §4)
};

// ---- encoding -----------------------------------------------------

std::vector<std::uint8_t> encodeRequest(const Request &req);
std::vector<std::uint8_t> encodeResponse(const Response &resp);

/**
 * Encode @p resp into @p out, reusing its capacity.  The hot response
 * path (Server::respond, one call per request) encodes into a
 * per-connection scratch buffer instead of allocating a fresh vector
 * per response; after warm-up the encode is allocation-free.
 * encodeResponse() is the convenience wrapper over this.
 */
void encodeResponseInto(const Response &resp,
                        std::vector<std::uint8_t> &out);

/** FNV-1a 32-bit, the frame checksum. */
std::uint32_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 2166136261u);

// ---- decoding -----------------------------------------------------

/** A validated frame before opcode-specific payload parsing. */
struct RawFrame
{
    std::uint8_t opcode = 0;
    std::uint64_t requestId = 0;
    std::vector<std::uint8_t> payload;
};

/**
 * Incremental frame decoder.  feed() appends arbitrary byte chunks;
 * next() yields one validated frame per call until the buffer runs
 * dry.  The first malformed header or checksum poisons the decoder
 * (error() != None, next() stays empty): framing is lost for good on
 * a byte stream, so the connection must be torn down.
 */
class FrameDecoder
{
  public:
    void feed(std::span<const std::uint8_t> bytes);

    /** Next complete, checksum-valid frame, if one is buffered. */
    std::optional<RawFrame> next();

    FrameError error() const { return error_; }

    /** Bytes buffered but not yet consumed (tests). */
    std::size_t pending() const { return buf_.size(); }

  private:
    std::deque<std::uint8_t> buf_;
    FrameError error_ = FrameError::None;
};

/**
 * Parse a validated frame as a request / response.  Returns the
 * FrameError (BadOpcode / BadPayload) or None; on None @p out is
 * fully populated.
 */
FrameError parseRequest(const RawFrame &frame, Request &out);
FrameError parseResponse(const RawFrame &frame, Response &out);

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_PROTOCOL_HH
