/**
 * @file
 * The sharded key-value engine behind the envy-serve front end
 * (docs/SERVING.md §4).
 *
 * Promotes the examples/kvstore.cpp layout into a real subsystem: the
 * whole database lives *inside* the EnvyStore linear address space —
 * B-tree indexes for keys, fixed-capacity value slots, per-shard
 * headers — accessed with ordinary word reads and writes, so every
 * PUT exercises the paper's copy-on-write / flush / clean data path
 * and the whole database survives restart through the persistence
 * subsystem with no serialisation layer.
 *
 * Layout (addresses within the store):
 *
 *   0x00  global header: magic u64, version u32, numShards u32,
 *         valueCap u32, pad u32, shardBytes u64
 *   shard s at 0x100 + s * shardBytes:
 *     +0   keys u64       live keys in this shard
 *     +8   cursor u64     next never-used value-slot address
 *     +16  freeHead u64   head of the freed-slot list (0 = empty;
 *                         a free slot's first word links to the next)
 *     +64  B-tree region  (treeFraction of the shard)
 *     ...  value heap     fixed slots of 4 + valueCap bytes
 *
 * Values are fixed-capacity slots.  Every PUT — including an
 * overwrite — fills a *fresh* slot and then publishes it with the
 * tree's one-word value update, so a crash cut never tears a value a
 * client was already acknowledged for; the superseded slot is
 * recycled through the shard free list, keeping storage bounded by
 * the key count.  DELETE writes a tombstone (tree value 0; real
 * slots always sit above the shard header, so 0 is unreachable as a
 * slot address) and frees the slot.
 *
 * Crash ordering mirrors db/btree.hh: allocator words (cursor,
 * freeHead) are burned before a slot can become reachable, value
 * bytes land while the slot is unreachable, and the single-word tree
 * publish is the commit point for the whole PUT.
 *
 * Shards serialise access per key group with one envy::Mutex each:
 * worker threads on different shards proceed concurrently and meet
 * the PR 8 sharded controller underneath.  Monotonic reads per key
 * follow directly: the shard lock orders every op on a key.
 */

#ifndef ENVY_SERVE_KV_ENGINE_HH
#define ENVY_SERVE_KV_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>

#include "common/thread_annotations.hh"
#include "db/btree.hh"
#include "serve/protocol.hh"

namespace envy {
namespace serve {

/**
 * A flash geometry sized to hold @p keys fixed-capacity slots under
 * the default engine config: per key the engine needs a 104-byte heap
 * slot plus ~37 bytes of half-full B-tree leaf, and the heap's 65%
 * share of the shard is the binding constraint — ~160 bytes of shard
 * per key, padded 1.4x for shard imbalance under the key-mixing
 * hash, at ~70% array utilization with the validator's reserve
 * segment on top.  Shared by bench_serve and envy_served so their
 * capacity math cannot drift.
 */
Geometry kvGeometryFor(std::uint64_t keys);

struct KvEngineConfig
{
    /** Independent key shards (power of two). */
    std::uint32_t numShards = 8;
    /** Fixed value-slot capacity in bytes. */
    std::uint32_t valueCapBytes = 100;
    /** Fraction of each shard holding B-tree nodes. */
    double treeFraction = 0.35;
};

class KvEngine
{
  public:
    /** Lay a fresh database out across @p store. */
    KvEngine(EnvyStore &store, const KvEngineConfig &cfg);

    /**
     * Re-open the database a previous process left in @p store
     * (persistent stores after restart recovery).  Fatal if the
     * global header is missing or inconsistent with the store size.
     */
    static std::unique_ptr<KvEngine> open(EnvyStore &store);

    /** Whether @p store already carries a database (open() would
     *  succeed) — lets a server open-or-create a persistent path. */
    static bool present(EnvyStore &store);

    KvEngine(const KvEngine &) = delete;
    KvEngine &operator=(const KvEngine &) = delete;

    struct GetResult
    {
        Status status = Status::NotFound;
        std::string value;
    };

    GetResult get(std::uint64_t key);
    /** Ok, TooLarge (value > capacity) or Error (shard full). */
    Status put(std::uint64_t key, std::span<const std::uint8_t> value);
    /** Ok or NotFound. */
    Status del(std::uint64_t key);

    /** Live keys across all shards (reads the in-store counters). */
    std::uint64_t keyCount();

    const KvEngineConfig &config() const { return cfg_; }
    std::uint32_t valueCap() const { return cfg_.valueCapBytes; }

  private:
    struct OpenTag {};
    KvEngine(EnvyStore &store, const KvEngineConfig &cfg, OpenTag);

    struct Shard
    {
        Mutex mu;
        std::unique_ptr<BTree> tree;
        Addr base = 0;      //!< shard header address
        Addr heapBase = 0;  //!< first value slot
        Addr heapEnd = 0;   //!< one past the last usable byte
        std::uint64_t treeCapacityNodes = 0;
    };

    Shard &shardOf(std::uint64_t key);
    void layoutShard(Shard &s, std::uint32_t index);

    /** Claim a value slot (free list first, else cursor bump with
     *  the cursor burned ahead of use); 0 means the heap is full. */
    Addr allocSlot(Shard &sh);
    /** Recycle a slot nothing references onto the shard free list. */
    void freeSlot(Shard &sh, Addr slot);

    /** Mixed key bits so sequential keys spread across shards. */
    static std::uint64_t mix(std::uint64_t key);

    static constexpr std::uint64_t kMagic = 0x454E56592D4B5631ull;
    static constexpr std::uint32_t kVersion = 1;
    static constexpr Addr kShardBase = 0x100;
    static constexpr std::uint64_t kShardHeaderBytes = 64;

    EnvyStore &store_;
    KvEngineConfig cfg_;
    std::uint64_t shardBytes_ = 0;
    std::deque<Shard> shards_; //!< deque: Mutex is not movable
};

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_KV_ENGINE_HH
