/**
 * @file
 * The envy-serve load generator: closed- and open-loop traffic with
 * coordinated-omission-safe latency percentiles (docs/SERVING.md §6).
 *
 * Two workloads drive the server through real protocol frames:
 *
 *  - **zipf**: single GET/PUT requests, keys zipf(theta)-distributed
 *    over the population, 50/50 read/write — the skewed cache-ish
 *    traffic a KV front end actually sees.
 *  - **tpca**: one Batch request per transaction carrying the TPC-A
 *    storage ops — read and update the account, its teller and its
 *    branch (paper §5.2 scaling: 10,000 accounts per teller, 10
 *    tellers per branch) — so every transaction exercises request
 *    batching through the write buffer.
 *
 * Measurement runs in two phases per workload.  A *closed loop*
 * (clients issue back-to-back) measures capacity; then *open-loop*
 * points offer fixed fractions of that capacity with exponential
 * arrivals, and latency is measured from the *scheduled* arrival
 * time, not the send — a stalled server keeps accumulating offered
 * work, so queueing delay shows up in the percentiles instead of
 * being coordinated away.
 *
 * The generator only needs a way to dial the server (ConnectFn): the
 * in-process bench uses loopback pairs, envy_loadgen can dial TCP.
 */

#ifndef ENVY_SERVE_LOADGEN_HH
#define ENVY_SERVE_LOADGEN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/kv_engine.hh"
#include "serve/transport.hh"
#include "workload/tpca.hh"

namespace envy {
namespace serve {

struct LoadgenConfig
{
    /** "zipf" or "tpca". */
    std::string workload = "zipf";
    /** Key population (zipf) / account count (tpca). */
    std::uint64_t keys = 1'000'000;
    double theta = 0.99;       //!< zipf skew
    double readFraction = 0.5; //!< zipf GET share
    unsigned clients = 8;
    std::uint32_t valueBytes = 64;
    double warmupSeconds = 0.5;
    double measureSeconds = 2.0;
    /** Open-loop offered load as fractions of closed-loop capacity. */
    std::vector<double> loadFractions = {0.3, 0.6, 0.9};
    std::uint64_t seed = 1;
    /** PUT every key once (straight into the engine) before driving
     *  traffic, so GETs hit. */
    bool prefill = true;
};

/**
 * TPC-A entity keys, disjoint by namespace tag in the low bits, with
 * the paper's §5.2 scaling (10,000 accounts per teller, 10 tellers
 * per branch).  Shared by in-process prefill, wire prefill
 * (tools/serve/envy_loadgen.cc) and the traffic source so the key
 * spaces can never drift apart.
 */
struct TpcaKeys
{
    explicit TpcaKeys(std::uint64_t accounts)
    {
        cfg.numAccounts = accounts;
    }

    static std::uint64_t account(std::uint64_t a) { return a * 4; }
    static std::uint64_t teller(std::uint64_t t) { return t * 4 + 1; }
    static std::uint64_t branch(std::uint64_t b) { return b * 4 + 2; }

    std::uint64_t tellerOf(std::uint64_t a) const
    {
        return a / cfg.accountsPerTeller;
    }
    std::uint64_t branchOf(std::uint64_t t) const
    {
        return t / cfg.tellersPerBranch;
    }

    TpcaConfig cfg;
};

/** One row of the latency-throughput curve. */
struct LoadPoint
{
    std::string workload;
    std::string mode; //!< "closed" or "open"
    unsigned clients = 0;
    double offeredRps = 0.0; //!< closed loop: == achievedRps
    double achievedRps = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t shed = 0;   //!< client-observed Shed responses
    std::uint64_t queued = 0; //!< client-observed Queued admissions
    std::uint64_t p50Us = 0;
    std::uint64_t p99Us = 0;
    std::uint64_t p999Us = 0;
};

class Loadgen
{
  public:
    using ConnectFn = std::function<ByteStreamPtr()>;

    /** @p engine is only used for prefill; traffic goes through
     *  streams dialed with @p connect.  May be null when
     *  cfg.prefill is off (remote loadgen has no local engine). */
    Loadgen(KvEngine *engine, ConnectFn connect,
            const LoadgenConfig &cfg);

    /**
     * Run the full curve for the configured workload: prefill, one
     * closed-loop capacity point, then one open-loop point per load
     * fraction.
     */
    std::vector<LoadPoint> run();

  private:
    LoadPoint runClosed();
    LoadPoint runOpen(double offeredRps);

    KvEngine *engine_;
    ConnectFn connect_;
    LoadgenConfig cfg_;
};

/** @return ceil(p-th percentile) of @p us (sorted in place). */
std::uint64_t percentileUs(std::vector<std::uint64_t> &us, double p);

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_LOADGEN_HH
