/**
 * @file
 * Deterministic in-process transport (docs/SERVING.md §5).
 *
 * A loopback "connection" is a pair of ByteStream endpoints joined by
 * two byte queues, one per direction.  No sockets, no file
 * descriptors: unit tests drive every protocol and admission-control
 * path through this, and the single-threaded Server::pump() mode uses
 * the non-blocking read to run client and server in one thread (the
 * restart-durability test forks exactly such a process and SIGKILLs
 * it).
 *
 * Each direction is a mutex + condition variable + byte deque.  The
 * wait runs on the queue's own mutex, which guards nothing else and
 * sits at the bottom of the lock order — the same contract as the
 * cleaner wakeup cvs (docs/INTERNALS.md), and registered with the
 * envy_analyze lock-discipline exemptions under the name dataCv_.
 */

#ifndef ENVY_SERVE_LOOPBACK_HH
#define ENVY_SERVE_LOOPBACK_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>

#include "common/thread_annotations.hh"
#include "serve/transport.hh"

namespace envy {
namespace serve {

namespace detail {

/** One direction of a loopback connection: a guarded byte queue. */
struct Pipe
{
    Mutex mu;
    std::condition_variable_any dataCv_;
    std::deque<std::uint8_t> bytes ENVY_GUARDED_BY(mu);
    bool closed ENVY_GUARDED_BY(mu) = false;

    void push(std::span<const std::uint8_t> in);
    std::size_t pull(std::span<std::uint8_t> out, bool block);
    void close();
    bool isClosed();
};

} // namespace detail

/**
 * Both endpoints of one loopback connection.  Typical use:
 *
 *     auto [client, server] = loopbackPair();
 *     serverObj.attach(std::move(server));
 *     KvClient c(std::move(client));
 */
struct LoopbackPair
{
    ByteStreamPtr client;
    ByteStreamPtr server;
};

LoopbackPair loopbackPair();

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_LOOPBACK_HH
