/**
 * @file
 * The TCP transport: real sockets behind the ByteStream interface,
 * multiplexed with epoll (docs/SERVING.md §5).
 *
 * Everything the unit tests exercise over the loopback runs
 * unmodified over this layer — it adds only I/O:
 *
 *  - SocketStream wraps a connected fd.  Blocking reads epoll_wait on
 *    {fd, cancel eventfd}, so close() from any thread wakes a blocked
 *    reader immediately — the same semantics the loopback gives the
 *    server's reader threads, with no signals and no timeouts.
 *  - TcpListener owns the listening socket, again epoll-multiplexed
 *    with a stop eventfd: accept() returns attached-ready streams
 *    until stop(), then null.
 *
 * envy_served composes the two: accept loop -> Server::attach.  All
 * syscalls are EINTR-retried; write errors after peer close are
 * swallowed (ByteStream contract: writes after close drop).
 */

#ifndef ENVY_SERVE_SOCKET_TRANSPORT_HH
#define ENVY_SERVE_SOCKET_TRANSPORT_HH

#include <cstdint>
#include <string>

#include "serve/transport.hh"

namespace envy {
namespace serve {

class TcpListener
{
  public:
    /** Bind + listen on 127.0.0.1:@p port (0 = ephemeral). */
    explicit TcpListener(std::uint16_t port);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The bound port (useful after asking for 0). */
    std::uint16_t port() const { return port_; }

    /** Next connection, or null once stop() was called. */
    ByteStreamPtr accept();

    /** Wake and fail any blocked accept(); idempotent. */
    void stop();

  private:
    int listenFd_ = -1;
    int epollFd_ = -1;
    int stopFd_ = -1;
    std::uint16_t port_ = 0;
};

/** Dial @p host:@p port; fatal on refusal (tools exit loudly). */
ByteStreamPtr tcpConnect(const std::string &host, std::uint16_t port);

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_SOCKET_TRANSPORT_HH
