#include "serve/history.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace envy {
namespace serve {

RecordingClient::RecordingClient(std::uint64_t clientId,
                                 ByteStreamPtr stream,
                                 std::atomic<std::uint64_t> &clock)
    : clientId_(clientId), client_(std::move(stream)), clock_(clock)
{}

Status
RecordingClient::put(std::uint64_t key, std::uint64_t version)
{
    HistoryOp op;
    op.kind = HistoryOp::Kind::Put;
    op.client = clientId_;
    op.key = key;
    op.version = version;
    op.invokeSeq = clock_.fetch_add(1) + 1;
    const Response resp = client_.put(key, std::to_string(version));
    op.ackSeq = clock_.fetch_add(1) + 1;
    op.status = resp.status;
    ops_.push_back(op);
    return resp.status;
}

Status
RecordingClient::get(std::uint64_t key)
{
    HistoryOp op;
    op.kind = HistoryOp::Kind::Get;
    op.client = clientId_;
    op.key = key;
    op.invokeSeq = clock_.fetch_add(1) + 1;
    const Response resp = client_.get(key);
    op.ackSeq = clock_.fetch_add(1) + 1;
    op.status = resp.status;
    if (resp.status == Status::Ok) {
        op.version = std::stoull(resp.value);
    } else {
        op.version = 0; // NotFound / Shed observe nothing
    }
    ops_.push_back(op);
    return resp.status;
}

namespace {

struct Write
{
    std::uint64_t version;
    std::uint64_t invokeSeq;
    std::uint64_t ackSeq;
};

} // namespace

std::vector<std::string>
checkHistory(const std::vector<std::vector<HistoryOp>> &histories)
{
    std::vector<std::string> errors;
    auto fail = [&errors](const std::string &msg) {
        errors.push_back(msg);
    };

    // Index the acked writes per key and pin the discipline: one
    // writer per key, versions 1..n in issue order.
    std::map<std::uint64_t, std::uint64_t> writerOf;
    std::map<std::uint64_t, std::vector<Write>> writes;
    for (const auto &ops : histories) {
        for (const HistoryOp &op : ops) {
            if (op.kind != HistoryOp::Kind::Put)
                continue;
            auto [it, fresh] = writerOf.emplace(op.key, op.client);
            ENVY_ASSERT(fresh || it->second == op.client,
                        "serve: history breaks the single-writer "
                        "discipline on key ",
                        op.key);
            if (op.status == Status::Ok)
                writes[op.key].push_back(
                    {op.version, op.invokeSeq, op.ackSeq});
        }
    }
    for (auto &[key, ws] : writes) {
        std::sort(ws.begin(), ws.end(),
                  [](const Write &a, const Write &b) {
                      return a.invokeSeq < b.invokeSeq;
                  });
        for (std::size_t i = 1; i < ws.size(); i++) {
            // Sequential writer: each write acked before the next
            // one was invoked, versions strictly increasing.
            if (ws[i].version <= ws[i - 1].version ||
                ws[i].invokeSeq <= ws[i - 1].ackSeq) {
                std::ostringstream os;
                os << "key " << key << ": writer not sequential at "
                   << "version " << ws[i].version;
                fail(os.str());
            }
        }
    }

    // Check every read's legal window and per-reader monotonicity.
    for (const auto &ops : histories) {
        std::map<std::uint64_t, std::uint64_t> lastSeen; // per reader
        for (const HistoryOp &op : ops) {
            if (op.kind != HistoryOp::Kind::Get)
                continue;
            if (op.status != Status::Ok &&
                op.status != Status::NotFound)
                continue; // shed reads observe nothing
            std::uint64_t floor = 0;   // max acked before invoke
            std::uint64_t ceiling = 0; // max invoked before ack
            auto it = writes.find(op.key);
            if (it != writes.end()) {
                for (const Write &w : it->second) {
                    if (w.ackSeq < op.invokeSeq)
                        floor = std::max(floor, w.version);
                    if (w.invokeSeq < op.ackSeq)
                        ceiling = std::max(ceiling, w.version);
                }
            }
            if (op.version < floor || op.version > ceiling) {
                std::ostringstream os;
                os << "client " << op.client << " read key " << op.key
                   << " version " << op.version
                   << " outside legal window [" << floor << ", "
                   << ceiling << "]";
                fail(os.str());
            }
            auto [seen, fresh] = lastSeen.emplace(op.key, op.version);
            if (!fresh) {
                if (op.version < seen->second) {
                    std::ostringstream os;
                    os << "client " << op.client
                       << " went backwards on key " << op.key << ": "
                       << seen->second << " then " << op.version;
                    fail(os.str());
                }
                seen->second = op.version;
            }
        }
    }
    return errors;
}

} // namespace serve
} // namespace envy
