/**
 * @file
 * The byte-stream boundary between the server core and whatever
 * carries its bytes (docs/SERVING.md §5).
 *
 * The Server, clients and the load generator only ever see this
 * interface.  Two implementations ship: the deterministic in-process
 * loopback (loopback.hh — every protocol and admission path runs in
 * ctest with no sockets), and the TCP/epoll front end
 * (socket_transport.hh — the envy_served binary).  Unit tests are
 * written against the loopback; the socket layer adds only I/O.
 */

#ifndef ENVY_SERVE_TRANSPORT_HH
#define ENVY_SERVE_TRANSPORT_HH

#include <cstdint>
#include <memory>
#include <span>

namespace envy {
namespace serve {

/**
 * One direction-agnostic endpoint of a reliable, ordered byte
 * stream.  Writes never block indefinitely against a connected peer;
 * reads block until bytes arrive or the stream closes (unless asked
 * not to).  Implementations are thread-safe per endpoint: one reader
 * and any number of serialised writers.
 */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /**
     * Read up to out.size() bytes.  Blocks until at least one byte is
     * available or the stream is closed when @p block; returns the
     * byte count, or 0 meaning closed (when blocking) / no bytes
     * buffered (when not).
     */
    virtual std::size_t read(std::span<std::uint8_t> out,
                             bool block = true) = 0;

    /** Append bytes to the stream.  Silently drops after close. */
    virtual void write(std::span<const std::uint8_t> in) = 0;

    /** Close both directions; wakes any blocked reader. */
    virtual void close() = 0;

    /** True once close() was called on either endpoint. */
    virtual bool closed() const = 0;
};

using ByteStreamPtr = std::unique_ptr<ByteStream>;

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_TRANSPORT_HH
