#include "serve/socket_transport.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace envy {
namespace serve {

namespace {

/** epoll instance watching @p fd (in) and @p cancelFd (in). */
int
makeEpoll(int fd, int cancelFd)
{
    const int ep = ::epoll_create1(EPOLL_CLOEXEC);
    ENVY_ASSERT(ep >= 0, "serve: epoll_create1: ",
                std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ENVY_ASSERT(::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) == 0,
                "serve: epoll_ctl(fd): ", std::strerror(errno));
    ev.data.fd = cancelFd;
    ENVY_ASSERT(::epoll_ctl(ep, EPOLL_CTL_ADD, cancelFd, &ev) == 0,
                "serve: epoll_ctl(cancel): ", std::strerror(errno));
    return ep;
}

void
signalEventFd(int fd)
{
    const std::uint64_t one = 1;
    ssize_t n;
    do {
        n = ::write(fd, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
}

/** A connected TCP socket as a ByteStream. */
class SocketStream : public ByteStream
{
  public:
    explicit SocketStream(int fd) : fd_(fd)
    {
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        cancelFd_ = ::eventfd(0, EFD_CLOEXEC);
        ENVY_ASSERT(cancelFd_ >= 0, "serve: eventfd: ",
                    std::strerror(errno));
        epollFd_ = makeEpoll(fd_, cancelFd_);
    }

    ~SocketStream() override
    {
        SocketStream::close();
        ::close(epollFd_);
        ::close(cancelFd_);
        ::close(fd_);
    }

    std::size_t
    read(std::span<std::uint8_t> out, bool block) override
    {
        for (;;) {
            if (closed_.load(std::memory_order_relaxed))
                return 0;
            const ssize_t n = ::recv(fd_, out.data(), out.size(),
                                     MSG_DONTWAIT);
            if (n > 0)
                return static_cast<std::size_t>(n);
            if (n == 0) {
                closed_.store(true, std::memory_order_relaxed);
                return 0; // orderly peer close
            }
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                closed_.store(true, std::memory_order_relaxed);
                return 0; // reset, etc: treat as close
            }
            if (!block)
                return 0;
            epoll_event evs[2];
            const int hits =
                ::epoll_wait(epollFd_, evs, 2, -1);
            if (hits < 0 && errno == EINTR)
                continue;
            // Readable or cancelled: loop either way; the recv or
            // the closed_ check resolves which.
        }
    }

    void
    write(std::span<const std::uint8_t> in) override
    {
        std::size_t off = 0;
        while (off < in.size()) {
            if (closed_.load(std::memory_order_relaxed))
                return; // drop after close, per the contract
            const ssize_t n =
                ::send(fd_, in.data() + off, in.size() - off,
                       MSG_NOSIGNAL);
            if (n > 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            closed_.store(true, std::memory_order_relaxed);
            return; // peer gone
        }
    }

    void
    close() override
    {
        if (closed_.exchange(true, std::memory_order_relaxed))
            return;
        ::shutdown(fd_, SHUT_RDWR);
        signalEventFd(cancelFd_);
    }

    bool
    closed() const override
    {
        return closed_.load(std::memory_order_relaxed);
    }

  private:
    int fd_;
    int epollFd_ = -1;
    int cancelFd_ = -1;
    std::atomic<bool> closed_{false};
};

} // namespace

TcpListener::TcpListener(std::uint16_t port)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ENVY_ASSERT(listenFd_ >= 0, "serve: socket: ",
                std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ENVY_ASSERT(::bind(listenFd_,
                       reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) == 0,
                "serve: bind 127.0.0.1:", port, ": ",
                std::strerror(errno));
    ENVY_ASSERT(::listen(listenFd_, 128) == 0, "serve: listen: ",
                std::strerror(errno));
    socklen_t len = sizeof(addr);
    ENVY_ASSERT(::getsockname(listenFd_,
                              reinterpret_cast<sockaddr *>(&addr),
                              &len) == 0,
                "serve: getsockname: ", std::strerror(errno));
    port_ = ntohs(addr.sin_port);
    stopFd_ = ::eventfd(0, EFD_CLOEXEC);
    ENVY_ASSERT(stopFd_ >= 0, "serve: eventfd: ",
                std::strerror(errno));
    epollFd_ = makeEpoll(listenFd_, stopFd_);
}

TcpListener::~TcpListener()
{
    stop();
    ::close(epollFd_);
    ::close(stopFd_);
    ::close(listenFd_);
}

ByteStreamPtr
TcpListener::accept()
{
    for (;;) {
        epoll_event evs[2];
        const int hits = ::epoll_wait(epollFd_, evs, 2, -1);
        if (hits < 0 && errno == EINTR)
            continue;
        ENVY_ASSERT(hits > 0, "serve: epoll_wait: ",
                    std::strerror(errno));
        for (int i = 0; i < hits; i++)
            if (evs[i].data.fd == stopFd_)
                return nullptr;
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == ECONNABORTED)
                continue;
            return nullptr; // listener torn down
        }
        return std::make_unique<SocketStream>(fd);
    }
}

void
TcpListener::stop()
{
    signalEventFd(stopFd_);
}

ByteStreamPtr
tcpConnect(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ENVY_ASSERT(fd >= 0, "serve: socket: ", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ENVY_ASSERT(::inet_pton(AF_INET, host.c_str(),
                            &addr.sin_addr) == 1,
                "serve: bad address '", host, "'");
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    ENVY_ASSERT(rc == 0, "serve: connect ", host, ":", port, ": ",
                std::strerror(errno));
    return std::make_unique<SocketStream>(fd);
}

} // namespace serve
} // namespace envy
