#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "serve/client.hh"
#include "sim/random.hh"
#include "workload/tpca.hh"
#include "workload/zipf.hh"

namespace envy {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

struct ThreadResult
{
    std::vector<std::uint64_t> latUs;
    std::uint64_t requests = 0;
    std::uint64_t shed = 0;
    std::uint64_t queued = 0;
};

std::uint64_t
usBetween(Clock::time_point a, Clock::time_point b)
{
    const auto d =
        std::chrono::duration_cast<std::chrono::microseconds>(b - a)
            .count();
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

} // namespace

std::uint64_t
percentileUs(std::vector<std::uint64_t> &us, double p)
{
    if (us.empty())
        return 0;
    std::sort(us.begin(), us.end());
    const double pos = p * static_cast<double>(us.size() - 1);
    const auto idx = static_cast<std::size_t>(std::llround(pos));
    return us[std::min(idx, us.size() - 1)];
}

Loadgen::Loadgen(KvEngine *engine, ConnectFn connect,
                 const LoadgenConfig &cfg)
    : engine_(engine), connect_(std::move(connect)), cfg_(cfg)
{
    ENVY_ASSERT(cfg_.workload == "zipf" || cfg_.workload == "tpca",
                "serve: unknown workload '", cfg_.workload, "'");
    ENVY_ASSERT(cfg_.clients > 0, "serve: loadgen needs clients");
    ENVY_ASSERT(cfg_.keys > 0, "serve: loadgen needs keys");
    ENVY_ASSERT(engine_ || !cfg_.prefill,
                "serve: prefill needs a local engine");
}

namespace {

/** One client's traffic source: issues one request per call. */
class TrafficSource
{
  public:
    TrafficSource(const LoadgenConfig &cfg, const ZipfPicker *zipf,
                  const TpcaKeys *tpca, std::uint64_t seed)
        : cfg_(cfg), zipf_(zipf), tpca_(tpca), rng_(seed),
          value_(cfg.valueBytes, 'v')
    {}

    /** Send one request/transaction, return its ack. */
    Response issue(KvClient &client)
    {
        if (zipf_) {
            const std::uint64_t key = zipf_->pick(rng_);
            if (rng_.chance(cfg_.readFraction))
                return client.get(key);
            return client.put(key, value_);
        }
        // TPC-A transaction: read + update account, teller, branch,
        // as one Batch request (docs/SERVING.md §6).
        const std::uint64_t a =
            rng_.below(tpca_->cfg.numAccounts);
        const std::uint64_t t = tpca_->tellerOf(a);
        const std::uint64_t b = tpca_->branchOf(t);
        std::vector<SubOp> ops(6);
        ops[0] = {Op::Get, TpcaKeys::account(a), {}};
        ops[1] = {Op::Get, TpcaKeys::teller(t), {}};
        ops[2] = {Op::Get, TpcaKeys::branch(b), {}};
        ops[3] = {Op::Put, TpcaKeys::account(a), value_};
        ops[4] = {Op::Put, TpcaKeys::teller(t), value_};
        ops[5] = {Op::Put, TpcaKeys::branch(b), value_};
        return client.batch(std::move(ops));
    }

    Rng &rng() { return rng_; }

  private:
    const LoadgenConfig &cfg_;
    const ZipfPicker *zipf_;
    const TpcaKeys *tpca_;
    Rng rng_;
    std::string value_;
};

void
countResponse(const Response &resp, ThreadResult &res)
{
    res.requests++;
    if (resp.status == Status::Shed)
        res.shed++;
    else if (resp.admission == Admission::Queued)
        res.queued++;
}

} // namespace

std::vector<LoadPoint>
Loadgen::run()
{
    // Prefill straight into the engine so GETs hit from the first
    // request (protocol round-trips would dominate setup time).
    if (cfg_.prefill) {
        const std::string v(cfg_.valueBytes, 'p');
        const std::span<const std::uint8_t> vs{
            reinterpret_cast<const std::uint8_t *>(v.data()),
            v.size()};
        if (cfg_.workload == "zipf") {
            for (std::uint64_t k = 0; k < cfg_.keys; k++)
                ENVY_ASSERT(engine_->put(k, vs) == Status::Ok,
                            "serve: loadgen prefill failed at key ",
                            k, " — store too small for --keys");
        } else {
            TpcaKeys tk(cfg_.keys);
            for (std::uint64_t a = 0; a < cfg_.keys; a++)
                ENVY_ASSERT(
                    engine_->put(TpcaKeys::account(a), vs) ==
                        Status::Ok,
                    "serve: loadgen prefill failed at account ", a);
            for (std::uint64_t t = 0; t < tk.cfg.numTellers(); t++)
                ENVY_ASSERT(
                    engine_->put(TpcaKeys::teller(t), vs) ==
                        Status::Ok,
                    "serve: loadgen prefill failed at teller ", t);
            for (std::uint64_t b = 0; b < tk.cfg.numBranches(); b++)
                ENVY_ASSERT(
                    engine_->put(TpcaKeys::branch(b), vs) ==
                        Status::Ok,
                    "serve: loadgen prefill failed at branch ", b);
        }
    }

    std::vector<LoadPoint> points;
    points.push_back(runClosed());
    const double capacity = points.front().achievedRps;
    for (const double f : cfg_.loadFractions)
        points.push_back(runOpen(capacity * f));
    return points;
}

LoadPoint
Loadgen::runClosed()
{
    const ZipfPicker zipf(cfg_.keys, cfg_.theta);
    const TpcaKeys tpca(cfg_.keys);
    const bool isZipf = cfg_.workload == "zipf";

    std::vector<ThreadResult> results(cfg_.clients);
    std::vector<std::thread> threads;
    const auto start = Clock::now();
    const auto warmEnd =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(cfg_.warmupSeconds));
    const auto deadline =
        warmEnd + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          cfg_.measureSeconds));
    for (unsigned c = 0; c < cfg_.clients; c++) {
        threads.emplace_back([&, c] {
            KvClient client(connect_());
            TrafficSource src(cfg_, isZipf ? &zipf : nullptr,
                              isZipf ? nullptr : &tpca,
                              cfg_.seed * 7919 + c + 1);
            ThreadResult &res = results[c];
            for (;;) {
                const auto t0 = Clock::now();
                if (t0 >= deadline)
                    break;
                const Response resp = src.issue(client);
                const auto t1 = Clock::now();
                if (t0 >= warmEnd) {
                    countResponse(resp, res);
                    res.latUs.push_back(usBetween(t0, t1));
                }
            }
            client.close();
        });
    }
    for (std::thread &t : threads)
        t.join();

    LoadPoint point;
    point.workload = cfg_.workload;
    point.mode = "closed";
    point.clients = cfg_.clients;
    std::vector<std::uint64_t> lat;
    for (ThreadResult &res : results) {
        point.requests += res.requests;
        point.shed += res.shed;
        point.queued += res.queued;
        lat.insert(lat.end(), res.latUs.begin(), res.latUs.end());
    }
    point.achievedRps =
        static_cast<double>(point.requests) / cfg_.measureSeconds;
    point.offeredRps = point.achievedRps;
    point.p50Us = percentileUs(lat, 0.50);
    point.p99Us = percentileUs(lat, 0.99);
    point.p999Us = percentileUs(lat, 0.999);
    return point;
}

LoadPoint
Loadgen::runOpen(double offeredRps)
{
    ENVY_ASSERT(offeredRps > 0.0,
                "serve: open-loop point needs a positive rate");
    const ZipfPicker zipf(cfg_.keys, cfg_.theta);
    const TpcaKeys tpca(cfg_.keys);
    const bool isZipf = cfg_.workload == "zipf";
    const double perThreadRps =
        offeredRps / static_cast<double>(cfg_.clients);

    std::vector<ThreadResult> results(cfg_.clients);
    std::vector<std::thread> threads;
    const auto start = Clock::now();
    const auto warmEnd =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(cfg_.warmupSeconds));
    const auto deadline =
        warmEnd + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          cfg_.measureSeconds));
    for (unsigned c = 0; c < cfg_.clients; c++) {
        threads.emplace_back([&, c] {
            KvClient client(connect_());
            TrafficSource src(cfg_, isZipf ? &zipf : nullptr,
                              isZipf ? nullptr : &tpca,
                              cfg_.seed * 104729 + c + 1);
            ThreadResult &res = results[c];
            // Exponential arrivals at the offered rate.  Latency is
            // measured from the *scheduled* arrival: when the server
            // falls behind, delay accumulates instead of the load
            // generator silently backing off (coordinated omission).
            auto scheduled = start;
            for (;;) {
                const double gapS =
                    src.rng().exponential(1.0 / perThreadRps);
                scheduled +=
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(gapS));
                if (scheduled >= deadline)
                    break;
                std::this_thread::sleep_until(scheduled);
                const Response resp = src.issue(client);
                const auto done = Clock::now();
                if (scheduled >= warmEnd) {
                    countResponse(resp, res);
                    res.latUs.push_back(usBetween(scheduled, done));
                }
            }
            client.close();
        });
    }
    for (std::thread &t : threads)
        t.join();

    LoadPoint point;
    point.workload = cfg_.workload;
    point.mode = "open";
    point.clients = cfg_.clients;
    point.offeredRps = offeredRps;
    std::vector<std::uint64_t> lat;
    for (ThreadResult &res : results) {
        point.requests += res.requests;
        point.shed += res.shed;
        point.queued += res.queued;
        lat.insert(lat.end(), res.latUs.begin(), res.latUs.end());
    }
    point.achievedRps =
        static_cast<double>(point.requests) / cfg_.measureSeconds;
    point.p50Us = percentileUs(lat, 0.50);
    point.p99Us = percentileUs(lat, 0.99);
    point.p999Us = percentileUs(lat, 0.999);
    return point;
}

} // namespace serve
} // namespace envy
