#include "serve/server.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace envy {
namespace serve {

const char *
admitDecisionName(AdmitDecision d)
{
    switch (d) {
      case AdmitDecision::Direct:
        return "direct";
      case AdmitDecision::Queued:
        return "queued";
      case AdmitDecision::Shed:
        return "shed";
    }
    return "?";
}

AdmitDecision
admitRequest(std::size_t depth, std::size_t queueSoft,
             std::size_t queueHard, bool backpressure)
{
    if (depth >= queueHard)
        return AdmitDecision::Shed;
    if (depth >= queueSoft || backpressure)
        return AdmitDecision::Queued;
    return AdmitDecision::Direct;
}

Server::Server(EnvyStore &store, KvEngine &engine,
               const ServeConfig &cfg)
    : store_(store), engine_(engine), cfg_(cfg)
{
    ENVY_ASSERT(cfg_.queueHard > 0 && cfg_.queueSoft <= cfg_.queueHard,
                "serve: queue watermarks inverted (soft ",
                cfg_.queueSoft, " hard ", cfg_.queueHard, ")");
    ENVY_ASSERT(cfg_.maxBatchOps >= 1 &&
                    cfg_.maxBatchOps <= kMaxBatchOps,
                "serve: maxBatchOps ", cfg_.maxBatchOps,
                " outside [1, ", kMaxBatchOps, "]");
    ENVY_ASSERT(!cfg_.durableAcks || store_.persistent(),
                "serve: durableAcks needs a persistent store");
    // A *serial* persistent store allows at most one executor thread;
    // a concurrent one (numWorkers > 1 / numCleaners > 0 with a
    // persistPath, PR 10) takes any worker count — SRAM-hit writers
    // ride the structural lock shared and durability batches through
    // the commit pipeline (envy_store.hh).
    ENVY_ASSERT(!store_.persistent() ||
                    store_.controller().concurrent() ||
                    cfg_.workers <= 1,
                "serve: a serial persistent store allows at most 1 "
                "worker");
    groupCommit_ = cfg_.durableAcks && cfg_.workers > 0 &&
                   store_.persistent() &&
                   store_.controller().concurrent();

    obs::MetricsRegistry &reg = store_.metrics();
    metRequests_ = reg.counter("serve.requests", "requests",
                               "requests executed (not shed)");
    metBatchOps_ = reg.counter("serve.batch_ops", "ops",
                               "sub-ops executed inside batches");
    metShed_ = reg.counter("serve.shed", "requests",
                           "requests refused by admission control");
    metQueued_ = reg.counter(
        "serve.queued", "requests",
        "requests admitted with queue or flash pressure observed");
    metAdmitted_ = reg.counter("serve.admitted", "requests",
                               "requests admitted direct");
    metBackpressureSignals_ =
        reg.counter("serve.backpressure_signals", "signals",
                    "controller backpressure hook fires");
    metBytesIn_ = reg.counter("serve.bytes_in", "bytes",
                              "request bytes received");
    metBytesOut_ = reg.counter("serve.bytes_out", "bytes",
                               "response bytes sent");
    metProtocolErrors_ =
        reg.counter("serve.protocol_errors", "connections",
                    "connections torn down on malformed frames");
    metCommitBatches_ =
        reg.counter("serve.commit_batches", "batches",
                    "durable-ack batches sharing one journal flush");
    metQueueDepth_ = reg.gauge("serve.queue_depth", "requests",
                               "admission queue depth");
    metCommitQueue_ = reg.gauge("serve.commit_queue", "responses",
                                "acks parked for the next flush epoch");
    {
        MutexLock lock(histMu_);
        metExecUs_ = reg.histogram(
            "serve.exec_us", "us", "request execution time",
            {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
             8192, 16384, 32768, 65536, 131072, 262144, 524288,
             1048576});
    }

    // Chain onto the controller's backpressure hook: the cleaner
    // pool's poke (installed by EnvyStore) keeps firing, and the
    // admission path learns the flash is behind.
    prevHook_ = store_.controller().backpressureHook;
    store_.controller().backpressureHook = [this] {
        backpressure_.store(true, std::memory_order_relaxed);
        metBackpressureSignals_.add();
        if (prevHook_)
            prevHook_();
    };

    for (unsigned w = 0; w < cfg_.workers; w++)
        workers_.emplace_back([this] { workerLoop(); });
    if (groupCommit_)
        commitThread_ = std::thread([this] { commitLoop(); });
}

Server::~Server()
{
    stop();
    store_.controller().backpressureHook = prevHook_;
}

void
Server::attach(ByteStreamPtr stream)
{
    ENVY_ASSERT(stream, "serve: attach() of a null stream");
    ENVY_ASSERT(!stopping_.load(std::memory_order_relaxed),
                "serve: attach() after stop()");
    auto conn = std::make_shared<Conn>();
    conn->stream = std::move(stream);
    {
        MutexLock lock(connMu_);
        conns_.push_back(conn);
    }
    if (cfg_.workers > 0)
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
}

void
Server::readerLoop(ConnPtr conn)
{
    std::vector<std::uint8_t> buf(64 * 1024);
    while (!stopping_.load(std::memory_order_relaxed)) {
        const std::size_t n = conn->stream->read(buf, true);
        if (n == 0)
            break; // closed
        metBytesIn_.add(n);
        if (!drainConn(conn, {buf.data(), n}, nullptr))
            break;
    }
}

bool
Server::drainConn(const ConnPtr &conn,
                  std::span<const std::uint8_t> bytes,
                  std::size_t *handled)
{
    conn->decoder.feed(bytes);
    while (auto frame = conn->decoder.next()) {
        Request req;
        const FrameError err = parseRequest(*frame, req);
        if (err != FrameError::None) {
            metProtocolErrors_.add();
            ENVY_TRACE("serve.protocol_error",
                       obs::tv("error", frameErrorName(err)),
                       obs::tv("opcode", frame->opcode));
            conn->dead = true;
            conn->stream->close();
            return false;
        }
        if (handled)
            ++*handled;
        routeRequest(conn, std::move(req));
    }
    if (conn->decoder.error() != FrameError::None) {
        metProtocolErrors_.add();
        ENVY_TRACE("serve.frame_error",
                   obs::tv("error",
                      frameErrorName(conn->decoder.error())));
        conn->dead = true;
        conn->stream->close();
        return false;
    }
    return true;
}

void
Server::routeRequest(const ConnPtr &conn, Request &&req)
{
    const Op op = req.op;
    const std::uint64_t id = req.requestId;
    AdmitDecision decision;
    std::size_t depth;
    {
        MutexLock lock(queueMu_);
        depth = queue_.size();
        decision = admitRequest(
            depth, cfg_.queueSoft, cfg_.queueHard,
            backpressure_.load(std::memory_order_relaxed));
        if (decision != AdmitDecision::Shed && cfg_.workers > 0) {
            Work work;
            work.conn = conn;
            work.req = std::move(req);
            work.admission = decision == AdmitDecision::Queued
                                 ? Admission::Queued
                                 : Admission::Direct;
            queue_.push_back(std::move(work));
            metQueueDepth_.set(static_cast<double>(queue_.size()));
        }
    }
    if (decision == AdmitDecision::Shed) {
        metShed_.add();
        ENVY_TRACE("serve.shed", obs::tv("id", id), obs::tv("depth", depth));
        Response resp;
        resp.op = op;
        resp.requestId = id;
        resp.status = Status::Shed;
        respond(conn, resp, false);
        return;
    }
    if (decision == AdmitDecision::Queued) {
        metQueued_.add();
        ENVY_TRACE("serve.queue", obs::tv("id", id), obs::tv("depth", depth),
                   obs::tv("backpressure", backpressureActive()));
    } else {
        metAdmitted_.add();
    }
    if (cfg_.workers > 0) {
        workCv_.notify_one();
        return;
    }
    // Pump mode: execute inline, right now, deterministically.
    executeAndRespond(conn, req,
                      decision == AdmitDecision::Queued
                          ? Admission::Queued
                          : Admission::Direct);
}

void
Server::workerLoop()
{
    for (;;) {
        Work work;
        bool drained;
        {
            MutexLock lock(queueMu_);
            while (queue_.empty() &&
                   !stopping_.load(std::memory_order_relaxed))
                workCv_.wait(lock);
            if (queue_.empty())
                return; // stopping, nothing left to drain
            work = std::move(queue_.front());
            queue_.pop_front();
            metQueueDepth_.set(static_cast<double>(queue_.size()));
            drained = queue_.empty();
        }
        if (drained) {
            // Queue empty again: the burst is absorbed.  The hook
            // re-latches the flag if the flash is still behind.
            backpressure_.store(false, std::memory_order_relaxed);
        }
        executeAndRespond(work.conn, work.req, work.admission);
    }
}

void
Server::executeAndRespond(const ConnPtr &conn, const Request &req,
                          Admission admission)
{
    const auto start = std::chrono::steady_clock::now();
    Response resp = execute(req);
    resp.admission = admission;
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    {
        MutexLock lock(histMu_);
        metExecUs_.record(static_cast<std::uint64_t>(us));
    }
    const bool mutated =
        req.op == Op::Put || req.op == Op::Del ||
        (req.op == Op::Batch &&
         std::any_of(req.ops.begin(), req.ops.end(),
                     [](const SubOp &s) { return s.op != Op::Get; }));
    respond(conn, resp, mutated);
}

Response
Server::execute(const Request &req)
{
    Response resp;
    resp.op = req.op;
    resp.requestId = req.requestId;
    switch (req.op) {
      case Op::Get: {
        KvEngine::GetResult got = engine_.get(req.key);
        resp.status = got.status;
        resp.value = std::move(got.value);
        break;
      }
      case Op::Put:
        resp.status = engine_.put(
            req.key,
            {reinterpret_cast<const std::uint8_t *>(req.value.data()),
             req.value.size()});
        break;
      case Op::Del:
        resp.status = engine_.del(req.key);
        break;
      case Op::Batch: {
        if (req.ops.size() > cfg_.maxBatchOps) {
            resp.status = Status::TooLarge;
            break;
        }
        resp.status = Status::Ok;
        resp.ops.reserve(req.ops.size());
        for (const SubOp &sub : req.ops) {
            SubReply reply;
            switch (sub.op) {
              case Op::Get: {
                KvEngine::GetResult got = engine_.get(sub.key);
                reply.status = got.status;
                reply.value = std::move(got.value);
                break;
              }
              case Op::Put:
                reply.status = engine_.put(
                    sub.key, {reinterpret_cast<const std::uint8_t *>(
                                  sub.value.data()),
                              sub.value.size()});
                break;
              case Op::Del:
                reply.status = engine_.del(sub.key);
                break;
              default:
                reply.status = Status::Error;
                break;
            }
            resp.ops.push_back(std::move(reply));
        }
        metBatchOps_.add(req.ops.size());
        ENVY_TRACE("serve.batch", obs::tv("id", req.requestId),
                   obs::tv("ops", req.ops.size()));
        break;
      }
      case Op::Stat: {
        resp.status = Status::Ok;
        resp.stats.resize(
            static_cast<std::size_t>(StatField::NumFields));
        auto at = [&resp](StatField f) -> std::uint64_t & {
            return resp.stats[static_cast<std::size_t>(f)];
        };
        at(StatField::Requests) = metRequests_.value();
        at(StatField::Shed) = metShed_.value();
        at(StatField::Queued) = metQueued_.value();
        at(StatField::Admitted) = metAdmitted_.value();
        at(StatField::BatchOps) = metBatchOps_.value();
        at(StatField::ProtocolErrors) = metProtocolErrors_.value();
        at(StatField::Keys) = engine_.keyCount();
        break;
      }
    }
    metRequests_.add();
    ENVY_TRACE("serve.request", obs::tv("op", opName(req.op)),
               obs::tv("id", req.requestId),
               obs::tv("status", statusName(resp.status)));
    return resp;
}

void
Server::respond(const ConnPtr &conn, const Response &resp,
                bool mutated)
{
    // Ack-prefix durability (docs/SERVING.md §3): the journal append
    // completes before the ack bytes exist anywhere, so every ack a
    // client ever observes names a mutation that survives SIGKILL.
    if (mutated && cfg_.durableAcks) {
        if (groupCommit_) {
            // Park the ack; the commit thread joins one pipeline
            // flush epoch for the whole batch and writes it then.
            std::size_t depth;
            {
                MutexLock lock(commitMu_);
                commitQueue_.push_back(PendingAck{conn, resp});
                depth = commitQueue_.size();
            }
            metCommitQueue_.set(static_cast<double>(depth));
            commitCv_.notify_one();
            return;
        }
        if (cfg_.syncAcks)
            store_.persistSync();
        else
            store_.persistFlush();
    }
    writeResponse(conn, resp);
}

void
Server::writeResponse(const ConnPtr &conn, const Response &resp)
{
    std::size_t n;
    {
        MutexLock lock(conn->writeMu);
        encodeResponseInto(resp, conn->scratch);
        conn->stream->write(conn->scratch);
        n = conn->scratch.size();
    }
    metBytesOut_.add(n);
}

void
Server::commitLoop()
{
    for (;;) {
        std::deque<PendingAck> batch;
        {
            MutexLock lock(commitMu_);
            while (commitQueue_.empty() && !commitStop_)
                commitCv_.wait(lock);
            if (commitQueue_.empty())
                return; // stopping and fully drained
            batch.swap(commitQueue_);
        }
        metCommitQueue_.set(0);
        // One journal flush epoch covers every mutation in the batch:
        // persistFlush() blocks until the CommitPipeline's next epoch
        // lands, and the batch's mutations all happened-before this
        // call, so the epoch's quiesced capture includes them.  With
        // syncAcks the batch also shares a single device barrier
        // (fdatasync) — the classic group-commit amortisation.
        if (cfg_.syncAcks)
            store_.persistSync();
        else
            store_.persistFlush();
        for (const PendingAck &ack : batch)
            writeResponse(ack.conn, ack.resp);
        metCommitBatches_.add();
        ENVY_TRACE("serve.commit_batch",
                   obs::tv("acks", batch.size()));
    }
}

std::size_t
Server::pump()
{
    ENVY_ASSERT(cfg_.workers == 0,
                "serve: pump() is the workers == 0 mode");
    std::vector<ConnPtr> conns;
    {
        MutexLock lock(connMu_);
        conns = conns_;
    }
    std::size_t handled = 0;
    std::vector<std::uint8_t> buf(64 * 1024);
    for (const ConnPtr &conn : conns) {
        if (conn->dead)
            continue;
        for (;;) {
            const std::size_t n = conn->stream->read(buf, false);
            if (n == 0)
                break;
            metBytesIn_.add(n);
            if (!drainConn(conn, {buf.data(), n}, &handled))
                break;
        }
    }
    // The pass drained everything buffered; any pressure observed on
    // the way is absorbed (mirrors the worker-pool clear).
    backpressure_.store(false, std::memory_order_relaxed);
    return handled;
}

std::size_t
Server::queueDepth() const
{
    MutexLock lock(queueMu_);
    return queue_.size();
}

void
Server::stop()
{
    if (stopping_.exchange(true))
        return;
    std::vector<ConnPtr> conns;
    {
        MutexLock lock(connMu_);
        conns = conns_;
    }
    for (const ConnPtr &conn : conns)
        conn->stream->close();
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    // Workers are parked, so no new acks arrive; the commit thread
    // drains whatever is still queued (flushing it durable) before it
    // honours the stop — no acknowledged mutation is dropped.
    if (commitThread_.joinable()) {
        {
            MutexLock lock(commitMu_);
            commitStop_ = true;
        }
        commitCv_.notify_one();
        commitThread_.join();
    }
    for (const ConnPtr &conn : conns)
        if (conn->reader.joinable())
            conn->reader.join();
}

} // namespace serve
} // namespace envy
