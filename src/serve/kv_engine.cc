#include "serve/kv_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace envy {
namespace serve {

namespace {

constexpr Addr kMagicOff = 0x00;
constexpr Addr kVersionOff = 0x08;
constexpr Addr kNumShardsOff = 0x0C;
constexpr Addr kValueCapOff = 0x10;
constexpr Addr kShardBytesOff = 0x18;

constexpr Addr kKeysOff = 0;
constexpr Addr kCursorOff = 8;
constexpr Addr kFreeOff = 16; //!< head of the freed-slot list (0 = end)

} // namespace

std::uint64_t
KvEngine::mix(std::uint64_t key)
{
    // splitmix64 finalizer: spreads adjacent keys across shards.
    std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

KvEngine::KvEngine(EnvyStore &store, const KvEngineConfig &cfg)
    : store_(store), cfg_(cfg)
{
    ENVY_ASSERT(cfg_.numShards > 0 &&
                    (cfg_.numShards & (cfg_.numShards - 1)) == 0,
                "serve: numShards must be a power of two, got ",
                cfg_.numShards);
    ENVY_ASSERT(cfg_.treeFraction > 0.0 && cfg_.treeFraction < 1.0,
                "serve: treeFraction out of (0,1)");
    ENVY_ASSERT(cfg_.valueCapBytes >= 4,
                "serve: slots must fit the free-list next pointer");
    ENVY_ASSERT(store_.size() > kShardBase,
                "serve: store too small for the engine header");
    shardBytes_ = (store_.size() - kShardBase) / cfg_.numShards;
    shardBytes_ -= shardBytes_ % 64;
    ENVY_ASSERT(shardBytes_ > kShardHeaderBytes + 2 * BTree::nodeBytes +
                                 4 + cfg_.valueCapBytes,
                "serve: shards of ", shardBytes_,
                " bytes are too small for a tree and one slot");

    store_.writeU64(kMagicOff, kMagic);
    store_.writeU32(kVersionOff, kVersion);
    store_.writeU32(kNumShardsOff, cfg_.numShards);
    store_.writeU32(kValueCapOff, cfg_.valueCapBytes);
    store_.writeU64(kShardBytesOff, shardBytes_);

    for (std::uint32_t s = 0; s < cfg_.numShards; s++) {
        Shard &sh = shards_.emplace_back();
        layoutShard(sh, s);
        const std::uint64_t tree_bytes = sh.heapBase -
                                         (sh.base + kShardHeaderBytes);
        sh.tree = std::make_unique<BTree>(
            store_, sh.base + kShardHeaderBytes, tree_bytes);
        store_.writeU64(sh.base + kKeysOff, 0);
        store_.writeU64(sh.base + kCursorOff, sh.heapBase);
        store_.writeU64(sh.base + kFreeOff, 0);
    }
}

KvEngine::KvEngine(EnvyStore &store, const KvEngineConfig &cfg,
                   OpenTag)
    : store_(store), cfg_(cfg)
{
    shardBytes_ = (store_.size() - kShardBase) / cfg_.numShards;
    shardBytes_ -= shardBytes_ % 64;
    for (std::uint32_t s = 0; s < cfg_.numShards; s++) {
        Shard &sh = shards_.emplace_back();
        layoutShard(sh, s);
        const std::uint64_t tree_bytes = sh.heapBase -
                                         (sh.base + kShardHeaderBytes);
        sh.tree = std::make_unique<BTree>(BTree::open(
            store_, sh.base + kShardHeaderBytes, tree_bytes));
        const Addr cursor = store_.readU64(sh.base + kCursorOff);
        ENVY_ASSERT(cursor >= sh.heapBase && cursor <= sh.heapEnd,
                    "serve: shard ", s, " cursor ", cursor,
                    " outside its heap — corrupt engine header");
        const Addr free_head = store_.readU64(sh.base + kFreeOff);
        ENVY_ASSERT(free_head == 0 || (free_head >= sh.heapBase &&
                                       free_head < sh.heapEnd),
                    "serve: shard ", s, " free-list head ", free_head,
                    " outside its heap — corrupt engine header");
    }
}

void
KvEngine::layoutShard(Shard &s, std::uint32_t index)
{
    s.base = kShardBase + std::uint64_t{index} * shardBytes_;
    std::uint64_t tree_bytes = static_cast<std::uint64_t>(
        cfg_.treeFraction *
        static_cast<double>(shardBytes_ - kShardHeaderBytes));
    tree_bytes -= tree_bytes % BTree::nodeBytes;
    // The tree keeps a header inside its region; budgeting a full
    // kShardHeaderBytes for it (it is smaller) errs on the safe
    // side of the index-full check in put().
    s.treeCapacityNodes = (tree_bytes - kShardHeaderBytes) /
                          BTree::nodeBytes;
    s.heapBase = s.base + kShardHeaderBytes + tree_bytes;
    s.heapEnd = s.base + shardBytes_;
}

std::unique_ptr<KvEngine>
KvEngine::open(EnvyStore &store)
{
    ENVY_ASSERT(store.size() > kShardBase,
                "serve: store too small to hold an engine");
    const std::uint64_t magic = store.readU64(kMagicOff);
    ENVY_ASSERT(magic == kMagic,
                "serve: no kv engine in this store (magic ",
                magic, ")");
    const std::uint32_t version = store.readU32(kVersionOff);
    ENVY_ASSERT(version == kVersion, "serve: engine version ",
                version, ", expected ", kVersion);
    KvEngineConfig cfg;
    cfg.numShards = store.readU32(kNumShardsOff);
    cfg.valueCapBytes = store.readU32(kValueCapOff);
    ENVY_ASSERT(cfg.numShards > 0 && cfg.numShards <= 4096,
                "serve: implausible shard count ", cfg.numShards);
    const std::uint64_t shard_bytes = store.readU64(kShardBytesOff);
    ENVY_ASSERT(shard_bytes ==
                    ((store.size() - kShardBase) / cfg.numShards) -
                        (((store.size() - kShardBase) /
                          cfg.numShards) % 64),
                "serve: stored shardBytes ", shard_bytes,
                " does not match the store size");
    // envy-lint: allow(no-raw-alloc) tag ctor is private to the class
    KvEngine *eng = new KvEngine(store, cfg, OpenTag{});
    return std::unique_ptr<KvEngine>(eng);
}

bool
KvEngine::present(EnvyStore &store)
{
    return store.size() > kShardBase &&
           store.readU64(kMagicOff) == kMagic &&
           store.readU32(kVersionOff) == kVersion;
}

Geometry
kvGeometryFor(std::uint64_t keys)
{
    Geometry g;
    g.pageSize = 256;
    g.blockBytes = 64 * KiB; // 16 MB segments, 65536 pages each
    const std::uint64_t logical_bytes =
        std::max<std::uint64_t>(keys * 224, 48 * MiB);
    // ~70% utilization, plus the reserve segment the geometry
    // validator demands for cleaning headroom.
    const std::uint64_t segment_bytes = g.segmentBytes().value();
    const std::uint64_t segments =
        std::max<std::uint64_t>(
            4, (logical_bytes * 10 / 7 + segment_bytes - 1) /
                   segment_bytes) +
        1;
    g.numBanks = 4;
    g.blocksPerChip =
        static_cast<std::uint32_t>((segments + 3) / 4);
    g.logicalPages = logical_bytes / g.pageSize;
    g.writeBufferPages = 4096; // 1 MB battery-backed buffer
    return g;
}

KvEngine::Shard &
KvEngine::shardOf(std::uint64_t key)
{
    return shards_[mix(key) & (cfg_.numShards - 1)];
}

KvEngine::GetResult
KvEngine::get(std::uint64_t key)
{
    Shard &sh = shardOf(key);
    MutexLock lock(sh.mu);
    GetResult res;
    const auto at = sh.tree->lookup(key);
    if (!at || *at == 0)
        return res; // absent or tombstone
    const std::uint32_t len = store_.readU32(*at);
    if (len > cfg_.valueCapBytes) {
        res.status = Status::Error; // slot corrupt; fail the read
        return res;
    }
    res.status = Status::Ok;
    res.value.resize(len);
    store_.read(*at + 4,
                {reinterpret_cast<std::uint8_t *>(res.value.data()),
                 res.value.size()});
    return res;
}

Addr
KvEngine::allocSlot(Shard &sh)
{
    // Freed slots first: their first word holds the next-free link.
    // The pop is a single word write; a crash right after it leaks
    // at most this one slot.
    const Addr head = store_.readU64(sh.base + kFreeOff);
    if (head != 0) {
        store_.writeU64(sh.base + kFreeOff, store_.readU64(head));
        return head;
    }
    const Addr cursor = store_.readU64(sh.base + kCursorOff);
    const std::uint64_t slot_bytes =
        4 + std::uint64_t{cfg_.valueCapBytes};
    if (cursor + slot_bytes > sh.heapEnd)
        return 0; // heap full
    // Burn the cursor before the slot holds anything: a replayed
    // prefix that sees the slot referenced also sees the advance,
    // so it can never hand the same slot out again.
    store_.writeU64(sh.base + kCursorOff, cursor + slot_bytes);
    return cursor;
}

void
KvEngine::freeSlot(Shard &sh, Addr slot)
{
    // Only called once nothing references @p slot, so overwriting
    // its first word with the link is safe at any crash cut; a cut
    // between the two writes merely leaks the slot.
    store_.writeU64(slot, store_.readU64(sh.base + kFreeOff));
    store_.writeU64(sh.base + kFreeOff, slot);
}

Status
KvEngine::put(std::uint64_t key, std::span<const std::uint8_t> value)
{
    if (value.size() > cfg_.valueCapBytes)
        return Status::TooLarge;
    Shard &sh = shardOf(key);
    MutexLock lock(sh.mu);
    const auto at = sh.tree->lookup(key);
    const bool live = at && *at != 0;
    // Overwrites go to a fresh slot too: an in-place slot update is
    // a multi-page write the tree still points at, and a crash cut
    // inside it would tear the key's previously acknowledged value.
    // The old slot is recycled through the shard free list, so
    // storage stays bounded by the key count (plus one transient
    // slot per shard).
    if (!at && sh.tree->nodesAllocated() + 2 * sh.tree->height() + 6 >
                   sh.treeCapacityNodes) {
        return Status::Error; // index full
    }
    const Addr slot = allocSlot(sh);
    if (slot == 0)
        return Status::Error; // heap full
    store_.writeU32(slot, static_cast<std::uint32_t>(value.size()));
    if (!value.empty())
        store_.write(slot + 4, value);
    // The one-word tree publish is the commit point: before it the
    // new slot is unreachable, after it the key maps to the complete
    // new value.
    sh.tree->insert(key, slot);
    if (live) {
        freeSlot(sh, *at);
    } else {
        store_.writeU64(sh.base + kKeysOff,
                        store_.readU64(sh.base + kKeysOff) + 1);
    }
    return Status::Ok;
}

Status
KvEngine::del(std::uint64_t key)
{
    Shard &sh = shardOf(key);
    MutexLock lock(sh.mu);
    const auto at = sh.tree->lookup(key);
    if (!at || *at == 0)
        return Status::NotFound;
    sh.tree->insert(key, 0); // tombstone: a one-word value update
    freeSlot(sh, *at);
    store_.writeU64(sh.base + kKeysOff,
                    store_.readU64(sh.base + kKeysOff) - 1);
    return Status::Ok;
}

std::uint64_t
KvEngine::keyCount()
{
    std::uint64_t total = 0;
    for (Shard &sh : shards_) {
        MutexLock lock(sh.mu);
        total += store_.readU64(sh.base + kKeysOff);
    }
    return total;
}

} // namespace serve
} // namespace envy
