/**
 * @file
 * The envy-serve server core: connections in, admission control,
 * request execution against the KvEngine (docs/SERVING.md §3).
 *
 * The server is transport-agnostic — it owns ByteStream endpoints
 * (loopback in tests, TCP sockets in envy_served) and never opens one
 * itself.  Two execution modes share every code path that matters:
 *
 *  - **Threaded** (cfg.workers > 0): attach() starts one reader
 *    thread per connection that decodes frames and routes them
 *    through admission control into a bounded work queue; a fixed
 *    pool of worker threads drains the queue, executes against the
 *    engine (meeting the PR 8 sharded controller underneath) and
 *    writes responses back under the connection's write lock.
 *  - **Pump** (cfg.workers == 0): no threads at all.  pump() drains
 *    whatever bytes the attached loopbacks hold and executes every
 *    complete request inline, deterministically — the mode the
 *    protocol, restart and model-checking tests run in.
 *
 * Admission control turns the controller's flush→clean backpressure
 * into explicit, observable outcomes instead of silent stalls:
 *
 *    depth >= queueHard                 -> Shed   (refused, not run)
 *    depth >= queueSoft or backpressure -> Queued (run, flagged)
 *    otherwise                          -> Direct
 *
 * The backpressure flag is fed by chaining onto
 * Controller::backpressureHook (the cleaner pool keeps its poke) and
 * cleared once a worker drains the queue empty.  Every decision is
 * visible three ways: the response's admission/status byte, the
 * serve.shed / serve.queued counters, and serve.* trace events — the
 * admission tests cross-check all three.
 *
 * Ordering contract: one connection's requests enter the queue in
 * send order, but a worker pool may *execute* them concurrently, so
 * pipelined writes to the same key may land in any order.  A client
 * that waits for each ack before the next dependent request gets
 * strict per-key ordering (the engine's shard lock orders every op on
 * a key); that is the discipline the history tests verify.
 *
 * Durable ack-prefix contract (cfg.durableAcks, docs/SERVING.md §3):
 * a mutation's ack bytes are handed to the transport only after a
 * journal flush covering that mutation completed, so at any SIGKILL
 * the set of acks each client has observed names only mutations that
 * survive restart — acked writes are never lost, and unacked writes
 * may or may not survive.  On a serial persistent store the flush is
 * inline per response.  On a *concurrent* persistent store (PR 10) a
 * commit thread batches: workers enqueue mutated responses on the
 * commit queue, the thread drains a batch, joins ONE CommitPipeline
 * flush epoch for all of them, then writes every ack — N in-flight
 * PUTs share one journal append without weakening the prefix
 * property (enqueue precedes flush precedes ack, per response).
 */

#ifndef ENVY_SERVE_SERVER_HH
#define ENVY_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "obs/metrics.hh"
#include "serve/kv_engine.hh"
#include "serve/protocol.hh"
#include "serve/transport.hh"

namespace envy {
namespace serve {

struct ServeConfig
{
    /** Executor threads; 0 selects the deterministic pump() mode. */
    unsigned workers = 0;
    /** Queue depth at which admission flips Direct -> Queued. */
    std::size_t queueSoft = 64;
    /** Queue depth at which requests are shed outright. */
    std::size_t queueHard = 256;
    /** Batch sub-ops accepted per request (<= kMaxBatchOps). */
    std::size_t maxBatchOps = kMaxBatchOps;
    /**
     * Make every mutation SIGKILL-durable before its ack leaves the
     * server (EnvyStore::persistFlush, the crash-harness ack-prefix
     * contract).  Requires a persistent store.  With a *concurrent*
     * persistent store and workers > 0 the flush is group-committed:
     * mutated responses queue on a commit thread that shares one
     * journal epoch across the batch (file comment above).
     */
    bool durableAcks = false;
    /**
     * Strengthen durableAcks with the journal log force: acks wait
     * for EnvyStore::persistSync (journal append + fdatasync)
     * instead of persistFlush, so an acked mutation's journal record
     * survives power loss, not just SIGKILL.  In group-commit mode
     * the commit thread pays ONE device barrier per batch; the
     * serial inline path pays one per mutated request — exactly the
     * comparison bench_serve's durable table measures.  Ignored
     * unless durableAcks is set.
     */
    bool syncAcks = false;
};

/** Where admission control routed (or refused) a request. */
enum class AdmitDecision : std::uint8_t
{
    Direct,
    Queued,
    Shed,
};

const char *admitDecisionName(AdmitDecision d);

/**
 * The admission decision function, pure and alone so the unit tests
 * can pin its contract without a server (docs/SERVING.md §3).
 */
AdmitDecision admitRequest(std::size_t depth, std::size_t queueSoft,
                           std::size_t queueHard, bool backpressure);

/** Meaning of the u64s in a Stat response, by index. */
enum class StatField : std::size_t
{
    Requests = 0,       //!< requests executed (not shed)
    Shed,               //!< requests refused by admission control
    Queued,             //!< requests admitted with pressure observed
    Admitted,           //!< requests admitted Direct
    BatchOps,           //!< sub-ops executed inside Batch requests
    ProtocolErrors,     //!< connections torn down on malformed frames
    Keys,               //!< live keys in the engine right now
    NumFields,
};

class Server
{
  public:
    /**
     * @p store and @p engine outlive the server.  Registers serve.*
     * metrics with the store's registry and chains onto the
     * controller's backpressure hook (restored on destruction).
     */
    Server(EnvyStore &store, KvEngine &engine, const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Adopt a connection.  Threaded mode starts its reader here. */
    void attach(ByteStreamPtr stream);

    /**
     * Pump mode only: drain buffered bytes on every attached
     * connection and execute the complete requests inline.  Returns
     * the number of requests handled (including sheds); call until 0
     * for a quiesce.
     */
    std::size_t pump();

    /** Stop readers and workers, close every connection, join. */
    void stop();

    const ServeConfig &config() const { return cfg_; }

    /** Outstanding admitted requests (threaded mode). */
    std::size_t queueDepth() const;

    /** True while the controller's backpressure signal is latched. */
    bool backpressureActive() const
    {
        return backpressure_.load(std::memory_order_relaxed);
    }

  private:
    struct Conn
    {
        ByteStreamPtr stream;
        FrameDecoder decoder;
        std::thread reader;   //!< threaded mode only
        Mutex writeMu;        //!< serialises response writes
        /** Response encode scratch, reused under writeMu: the encode
         *  is allocation-free once the buffer has warmed up. */
        std::vector<std::uint8_t> scratch ENVY_GUARDED_BY(writeMu);
        bool dead = false;    //!< protocol error or peer close
    };
    using ConnPtr = std::shared_ptr<Conn>;

    struct Work
    {
        ConnPtr conn;
        Request req;
        Admission admission = Admission::Direct;
    };

    /** A mutated response parked until its journal flush epoch. */
    struct PendingAck
    {
        ConnPtr conn;
        Response resp;
    };

    void readerLoop(ConnPtr conn);
    /** Decode and route every buffered frame; false on dead conn. */
    bool drainConn(const ConnPtr &conn, std::span<const std::uint8_t> bytes,
                   std::size_t *handled);
    /** Admission + dispatch for one decoded request. */
    void routeRequest(const ConnPtr &conn, Request &&req);
    /** Execute and respond (worker thread or pump). */
    void executeAndRespond(const ConnPtr &conn, const Request &req,
                           Admission admission);
    Response execute(const Request &req);
    void respond(const ConnPtr &conn, const Response &resp,
                 bool mutated);
    /** Encode into the connection scratch and write, under writeMu. */
    void writeResponse(const ConnPtr &conn, const Response &resp);
    void workerLoop();
    /** Group-commit drain: batch -> one flush -> acks (PR 10). */
    void commitLoop();

    EnvyStore &store_;
    KvEngine &engine_;
    ServeConfig cfg_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> backpressure_{false};
    std::function<void()> prevHook_; //!< cleaner pool's poke, chained

    mutable Mutex connMu_;
    std::vector<ConnPtr> conns_ ENVY_GUARDED_BY(connMu_);

    mutable Mutex queueMu_;
    std::condition_variable_any workCv_; //!< waits on queueMu_
    std::deque<Work> queue_ ENVY_GUARDED_BY(queueMu_);
    std::vector<std::thread> workers_;

    // Group-commit durable acks (concurrent persistent store only):
    // workers park mutated responses here; commitLoop() drains a
    // batch, shares one journal flush, then writes the acks.
    bool groupCommit_ = false; //!< set once in the ctor
    mutable Mutex commitMu_;
    std::condition_variable_any commitCv_; //!< waits on commitMu_
    std::deque<PendingAck> commitQueue_ ENVY_GUARDED_BY(commitMu_);
    bool commitStop_ ENVY_GUARDED_BY(commitMu_) = false;
    std::thread commitThread_;

    // serve.* instrumentation (docs/OBSERVABILITY.md).
    obs::Counter metRequests_;
    obs::Counter metBatchOps_;
    obs::Counter metShed_;
    obs::Counter metQueued_;
    obs::Counter metAdmitted_;
    obs::Counter metBackpressureSignals_;
    obs::Counter metBytesIn_;
    obs::Counter metBytesOut_;
    obs::Counter metProtocolErrors_;
    obs::Counter metCommitBatches_;
    obs::Gauge metQueueDepth_;
    obs::Gauge metCommitQueue_;
    // Registry histograms are not thread-safe; every record goes
    // through this server-owned lock (metrics.hh file comment).
    Mutex histMu_;
    obs::Histogram metExecUs_ ENVY_GUARDED_BY(histMu_);
};

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_SERVER_HH
