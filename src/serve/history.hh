/**
 * @file
 * History recording and checking for the concurrent serving tests
 * (tests/test_serve_histories.cc, docs/SERVING.md §7).
 *
 * The consistency contract under test: once a PUT is acked, every
 * later GET of that key sees it or something newer, and one reader's
 * view of a key never goes backwards.  To make that checkable without
 * a full linearizability search, the tests impose a *single-writer
 * discipline*: every key is written by exactly one client, which
 * waits for each ack before the next write, tagging values with a
 * per-key version that increases by one per PUT.  Readers are
 * unconstrained.  Under that discipline the legal window for a read
 * is an interval:
 *
 *   maxAckedBefore(invoke) <= readVersion <= maxInvokedBefore(ack)
 *
 * — the lower bound is the acked-writes-are-visible guarantee, the
 * upper is "you cannot read a write that had not been issued".  The
 * checker verifies both bounds plus per-reader monotonicity against a
 * global happens-before clock (one atomic counter stamped around
 * every operation).
 *
 * Values on the wire are decimal version strings; version 0 means
 * the key has never been written (GET -> NotFound).
 */

#ifndef ENVY_SERVE_HISTORY_HH
#define ENVY_SERVE_HISTORY_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/client.hh"

namespace envy {
namespace serve {

/** One completed operation, stamped against the shared clock. */
struct HistoryOp
{
    enum class Kind : std::uint8_t { Put, Get };

    Kind kind = Kind::Get;
    std::uint64_t client = 0;
    std::uint64_t key = 0;
    /** Version written (Put) or observed (Get; 0 = NotFound). */
    std::uint64_t version = 0;
    std::uint64_t invokeSeq = 0; //!< clock before the send
    std::uint64_t ackSeq = 0;    //!< clock after the response
    Status status = Status::Ok;
};

/**
 * A synchronous client that stamps every operation against @p clock
 * and keeps the completed-op log for the checker.  Shed responses
 * are recorded (status Shed) but carry no consistency obligation.
 */
class RecordingClient
{
  public:
    RecordingClient(std::uint64_t clientId, ByteStreamPtr stream,
                    std::atomic<std::uint64_t> &clock);

    /** Sync PUT of version @p version to @p key; returns status. */
    Status put(std::uint64_t key, std::uint64_t version);
    /** Sync GET; the observed version lands in the log. */
    Status get(std::uint64_t key);

    const std::vector<HistoryOp> &ops() const { return ops_; }
    KvClient &client() { return client_; }

  private:
    std::uint64_t clientId_;
    KvClient client_;
    std::atomic<std::uint64_t> &clock_;
    std::vector<HistoryOp> ops_;
};

/**
 * Check merged histories against the single-writer contract.
 * Returns human-readable violations; empty means the history is
 * consistent.  Fatal if the input breaks the discipline itself (two
 * clients writing one key).
 */
std::vector<std::string>
checkHistory(const std::vector<std::vector<HistoryOp>> &histories);

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_HISTORY_HH
