#include "serve/loopback.hh"

#include <algorithm>

namespace envy {
namespace serve {

namespace detail {

void
Pipe::push(std::span<const std::uint8_t> in)
{
    {
        MutexLock lock(mu);
        if (closed)
            return;
        bytes.insert(bytes.end(), in.begin(), in.end());
    }
    dataCv_.notify_all();
}

std::size_t
Pipe::pull(std::span<std::uint8_t> out, bool block)
{
    MutexLock lock(mu);
    if (block) {
        while (bytes.empty() && !closed)
            dataCv_.wait(lock);
    }
    const std::size_t n = std::min(out.size(), bytes.size());
    std::copy_n(bytes.begin(), n, out.begin());
    bytes.erase(bytes.begin(), bytes.begin() +
                                   static_cast<std::ptrdiff_t>(n));
    return n;
}

void
Pipe::close()
{
    {
        MutexLock lock(mu);
        closed = true;
    }
    dataCv_.notify_all();
}

bool
Pipe::isClosed()
{
    MutexLock lock(mu);
    return closed;
}

} // namespace detail

namespace {

/** One endpoint: reads from @p in, writes to @p out. */
class LoopbackStream : public ByteStream
{
  public:
    LoopbackStream(std::shared_ptr<detail::Pipe> in,
                   std::shared_ptr<detail::Pipe> out)
        : in_(std::move(in)), out_(std::move(out))
    {}

    ~LoopbackStream() override { LoopbackStream::close(); }

    std::size_t
    read(std::span<std::uint8_t> out, bool block) override
    {
        return in_->pull(out, block);
    }

    void
    write(std::span<const std::uint8_t> in) override
    {
        out_->push(in);
    }

    void
    close() override
    {
        // Close both directions: a closed endpoint neither delivers
        // nor accepts, and the peer's blocked reader wakes with 0.
        in_->close();
        out_->close();
    }

    bool
    closed() const override
    {
        return in_->isClosed() || out_->isClosed();
    }

  private:
    std::shared_ptr<detail::Pipe> in_;
    std::shared_ptr<detail::Pipe> out_;
};

} // namespace

LoopbackPair
loopbackPair()
{
    auto c2s = std::make_shared<detail::Pipe>();
    auto s2c = std::make_shared<detail::Pipe>();
    LoopbackPair pair;
    pair.client = std::make_unique<LoopbackStream>(s2c, c2s);
    pair.server = std::make_unique<LoopbackStream>(c2s, s2c);
    return pair;
}

} // namespace serve
} // namespace envy
