/**
 * @file
 * The envy-serve client: encodes requests, decodes responses, over
 * any ByteStream (docs/SERVING.md §5).
 *
 * Two usage styles:
 *
 *  - **Synchronous**: get()/put()/del()/batch()/stat() send one
 *    request and block until its response arrives.  Requires a
 *    threaded server (something must execute while we block).
 *  - **Pipelined**: sendGet()/sendPut()/... fire and return the
 *    requestId; recv() collects responses in arrival order.  With
 *    block=false this also drives the deterministic pump-mode tests:
 *    send, Server::pump(), recv.
 *
 * One client owns one stream and is used from one thread; run many
 * clients for concurrency (tests/test_serve_histories.cc).
 */

#ifndef ENVY_SERVE_CLIENT_HH
#define ENVY_SERVE_CLIENT_HH

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "serve/protocol.hh"
#include "serve/transport.hh"

namespace envy {
namespace serve {

class KvClient
{
  public:
    explicit KvClient(ByteStreamPtr stream);

    KvClient(const KvClient &) = delete;
    KvClient &operator=(const KvClient &) = delete;

    // ---- pipelined ------------------------------------------------

    std::uint64_t sendGet(std::uint64_t key);
    std::uint64_t sendPut(std::uint64_t key, std::string_view value);
    std::uint64_t sendDel(std::uint64_t key);
    std::uint64_t sendBatch(std::vector<SubOp> ops);
    std::uint64_t sendStat();

    /**
     * Next response in arrival order.  Blocking: false until the
     * stream closes.  Non-blocking: false when no complete response
     * is buffered.  Fatal on a malformed response frame — the server
     * never sends one.
     */
    bool recv(Response &out, bool block = true);

    // ---- synchronous ----------------------------------------------

    Response get(std::uint64_t key);
    Response put(std::uint64_t key, std::string_view value);
    Response del(std::uint64_t key);
    Response batch(std::vector<SubOp> ops);
    Response stat();

    void close() { stream_->close(); }
    ByteStream &stream() { return *stream_; }

    /** Requests sent so far (also the next requestId). */
    std::uint64_t sent() const { return nextId_; }

  private:
    std::uint64_t sendRequest(Request &&req);
    /** Blocking recv that insists on @p id (sync path). */
    Response await(std::uint64_t id);

    ByteStreamPtr stream_;
    FrameDecoder decoder_;
    std::uint64_t nextId_ = 1;
    std::vector<std::uint8_t> readBuf_;
};

} // namespace serve
} // namespace envy

#endif // ENVY_SERVE_CLIENT_HH
