#include "serve/client.hh"

#include "common/logging.hh"

namespace envy {
namespace serve {

KvClient::KvClient(ByteStreamPtr stream)
    : stream_(std::move(stream)), readBuf_(64 * 1024)
{
    ENVY_ASSERT(stream_, "serve: client needs a stream");
}

std::uint64_t
KvClient::sendRequest(Request &&req)
{
    req.requestId = nextId_++;
    const std::vector<std::uint8_t> bytes = encodeRequest(req);
    stream_->write(bytes);
    return req.requestId;
}

std::uint64_t
KvClient::sendGet(std::uint64_t key)
{
    Request req;
    req.op = Op::Get;
    req.key = key;
    return sendRequest(std::move(req));
}

std::uint64_t
KvClient::sendPut(std::uint64_t key, std::string_view value)
{
    Request req;
    req.op = Op::Put;
    req.key = key;
    req.value.assign(value);
    return sendRequest(std::move(req));
}

std::uint64_t
KvClient::sendDel(std::uint64_t key)
{
    Request req;
    req.op = Op::Del;
    req.key = key;
    return sendRequest(std::move(req));
}

std::uint64_t
KvClient::sendBatch(std::vector<SubOp> ops)
{
    Request req;
    req.op = Op::Batch;
    req.ops = std::move(ops);
    return sendRequest(std::move(req));
}

std::uint64_t
KvClient::sendStat()
{
    Request req;
    req.op = Op::Stat;
    return sendRequest(std::move(req));
}

bool
KvClient::recv(Response &out, bool block)
{
    for (;;) {
        if (auto frame = decoder_.next()) {
            const FrameError err = parseResponse(*frame, out);
            ENVY_ASSERT(err == FrameError::None,
                        "serve: malformed response frame (",
                        frameErrorName(err), ")");
            return true;
        }
        ENVY_ASSERT(decoder_.error() == FrameError::None,
                    "serve: response stream corrupt (",
                    frameErrorName(decoder_.error()), ")");
        const std::size_t n = stream_->read(readBuf_, block);
        if (n == 0)
            return false; // closed (blocking) or dry (non-blocking)
        decoder_.feed({readBuf_.data(), n});
    }
}

Response
KvClient::await(std::uint64_t id)
{
    Response resp;
    const bool ok = recv(resp, true);
    ENVY_ASSERT(ok, "serve: stream closed awaiting response ", id);
    ENVY_ASSERT(resp.requestId == id,
                "serve: sync reply mismatch: sent ", id, ", got ",
                resp.requestId,
                " (pipelined requests still outstanding?)");
    return resp;
}

Response
KvClient::get(std::uint64_t key)
{
    return await(sendGet(key));
}

Response
KvClient::put(std::uint64_t key, std::string_view value)
{
    return await(sendPut(key, value));
}

Response
KvClient::del(std::uint64_t key)
{
    return await(sendDel(key));
}

Response
KvClient::batch(std::vector<SubOp> ops)
{
    return await(sendBatch(std::move(ops)));
}

Response
KvClient::stat()
{
    return await(sendStat());
}

} // namespace serve
} // namespace envy
