/**
 * @file
 * Hardware atomic transactions via shadow pages (paper §6).
 *
 * "eNVy automatically copies all modified data from Flash to SRAM as
 * part of its copy-on-write mechanism.  The original data in Flash is
 * not destroyed, and it can be used to provide a free shadow copy.
 * An application can roll back a transaction simply by copying data
 * back from Flash.  In order to implement this feature, the
 * controller has to keep track of the location of the shadow copies
 * and protect them from being cleaned."
 *
 * ShadowManager does exactly that: writes issued through it convert
 * the superseded flash copy of each touched page into a pinned
 * *shadow* instead of dead space; the cleaner relocates shadows along
 * with live data and reports the new locations back here.  abort()
 * copies the shadow contents back over the page; commit() releases
 * the shadows for normal reclamation.
 *
 * Pages that had no flash copy when first touched (they were already
 * dirty in the SRAM write buffer) are snapshotted into manager-held
 * memory — the battery-backed SRAM of a real controller.
 *
 * One writer per page: concurrent transactions may not overlap page
 * sets (the paper's hardware has a single host).
 */

#ifndef ENVY_TXN_SHADOW_HH
#define ENVY_TXN_SHADOW_HH

#include <cstdint>
#include <map>
#include <vector>

#include "envy/envy_store.hh"

namespace envy {

class ShadowManager
{
  public:
    using TxnId = std::uint64_t;

    explicit ShadowManager(EnvyStore &store);
    ~ShadowManager();

    ShadowManager(const ShadowManager &) = delete;
    ShadowManager &operator=(const ShadowManager &) = delete;

    TxnId begin();

    /** Transactional write; the first touch of each page arms its
     *  shadow. */
    void write(TxnId txn, Addr addr,
               std::span<const std::uint8_t> data);

    /** Reads go straight through (no versioning needed). */
    void read(Addr addr, std::span<std::uint8_t> out);

    /** Make the transaction's writes permanent. */
    void commit(TxnId txn);

    /** Restore every touched page to its pre-transaction contents. */
    void abort(TxnId txn);

    /**
     * Drop all volatile transaction state after a simulated power
     * failure — no rollback writes, no shadow invalidations.  Open
     * transactions are implicitly aborted by recovery's shadow sweep;
     * call this before EnvyStore::powerFailAndRecover() so the
     * destructor does not try to write through a dead store.
     */
    void powerLost();

    /** Transactions currently open. */
    std::size_t activeTransactions() const { return txns_.size(); }

    /** Pinned flash shadows across all transactions (for tests). */
    std::size_t shadowCount() const { return byAddr_.size(); }

  private:
    struct PageVersion
    {
        bool inFlash = false;
        FlashPageAddr shadow;            //!< valid when inFlash
        std::vector<std::uint8_t> bytes; //!< SRAM snapshot otherwise
    };

    struct Txn
    {
        std::map<std::uint64_t, PageVersion> pages; //!< by page id
    };

    static std::uint64_t
    key(FlashPageAddr a)
    {
        return (a.segment.value() << 32) | a.slot.value();
    }

    void release(Txn &txn);

    EnvyStore &store_;
    TxnId next_ = 1;
    std::map<TxnId, Txn> txns_;
    /** Owner lookup for pages touched by any open transaction. */
    std::map<std::uint64_t, TxnId> pageOwner_; //!< by logical page
    /** Shadow location -> (txn, logical page), for cleaner updates. */
    std::map<std::uint64_t, std::pair<TxnId, std::uint64_t>> byAddr_;
};

} // namespace envy

#endif // ENVY_TXN_SHADOW_HH
