#include "txn/shadow.hh"

#include "common/logging.hh"
#include "faults/crash_point.hh"

namespace envy {

ShadowManager::ShadowManager(EnvyStore &store) : store_(store)
{
    ENVY_ASSERT(store.flash().storesData(),
                "transactions need a functional (data-bearing) store");

    Controller &ctl = store_.controller();
    ENVY_ASSERT(!ctl.cowShadowHook,
                "another shadow manager is already attached");

    // Arm the COW hook: the first supersession of a page owned by an
    // open transaction keeps the old flash copy as the shadow.
    ctl.cowShadowHook = [this](LogicalPageId page, FlashPageAddr old) {
        auto owner = pageOwner_.find(page.value());
        if (owner == pageOwner_.end())
            return false;
        Txn &txn = txns_.at(owner->second);
        auto [it, fresh] = txn.pages.try_emplace(page.value());
        if (!fresh)
            return false; // shadow already armed earlier
        it->second.inFlash = true;
        it->second.shadow = old;
        byAddr_[key(old)] = {owner->second, page.value()};
        return true;
    };

    // Track shadows the cleaner relocates.
    store_.cleanerRef().shadowMoved = [this](FlashPageAddr from,
                                             FlashPageAddr to) {
        auto it = byAddr_.find(key(from));
        ENVY_ASSERT(it != byAddr_.end(),
                    "cleaner moved an unknown shadow");
        const auto [txn_id, page] = it->second;
        byAddr_.erase(it);
        byAddr_[key(to)] = {txn_id, page};
        txns_.at(txn_id).pages.at(page).shadow = to;
    };
}

ShadowManager::~ShadowManager()
{
    // Abort anything still open so no pinned shadows leak.
    while (!txns_.empty())
        abort(txns_.begin()->first);
    store_.controller().cowShadowHook = nullptr;
    store_.cleanerRef().shadowMoved = nullptr;
}

ShadowManager::TxnId
ShadowManager::begin()
{
    const TxnId id = next_++;
    txns_[id];
    return id;
}

void
ShadowManager::write(TxnId txn_id, Addr addr,
                     std::span<const std::uint8_t> data)
{
    auto it = txns_.find(txn_id);
    ENVY_ASSERT(it != txns_.end(), "write on unknown transaction");
    Txn &txn = it->second;

    const std::uint32_t page_size = store_.config().geom.pageSize;
    const std::uint64_t first = addr / page_size;
    const std::uint64_t last = (addr + data.size() - 1) / page_size;

    for (std::uint64_t p = first; p <= last; ++p) {
        auto owner = pageOwner_.find(p);
        if (owner != pageOwner_.end()) {
            ENVY_ASSERT(owner->second == txn_id,
                        "page ", p, " is owned by transaction ",
                        owner->second);
        } else {
            pageOwner_[p] = txn_id;
        }
        if (txn.pages.count(p))
            continue; // version already captured

        // If the page has no flash copy (resident in the write
        // buffer), snapshot its bytes now; otherwise the COW hook
        // will pin the flash copy when the write supersedes it.
        const PageTable::Location loc =
            store_.pageTable().lookup(LogicalPageId(p));
        if (loc.kind != PageTable::LocKind::Flash) {
            PageVersion v;
            v.inFlash = false;
            v.bytes.resize(page_size);
            store_.read(Addr(p) * page_size, v.bytes);
            txn.pages.emplace(p, std::move(v));
        }
    }

    store_.write(addr, data);
}

void
ShadowManager::read(Addr addr, std::span<std::uint8_t> out)
{
    store_.read(addr, out);
}

void
ShadowManager::release(Txn &txn)
{
    for (auto &[page, version] : txn.pages) {
        pageOwner_.erase(page);
        if (version.inFlash) {
            byAddr_.erase(key(version.shadow));
            store_.flash().invalidatePage(version.shadow);
            ENVY_CRASH_POINT("txn.commit.mid_release");
        }
    }
    txn.pages.clear();
}

void
ShadowManager::commit(TxnId txn_id)
{
    auto it = txns_.find(txn_id);
    ENVY_ASSERT(it != txns_.end(), "commit on unknown transaction");
    ENVY_CRASH_POINT("txn.commit.begin");
    // Drop ownership first so the release-path invalidations can
    // never be mistaken for transactional writes.
    release(it->second);
    txns_.erase(it);
}

void
ShadowManager::abort(TxnId txn_id)
{
    auto it = txns_.find(txn_id);
    ENVY_ASSERT(it != txns_.end(), "abort on unknown transaction");
    Txn &txn = it->second;
    ENVY_CRASH_POINT("txn.abort.begin");

    const std::uint32_t page_size = store_.config().geom.pageSize;
    std::vector<std::uint8_t> buf(page_size);

    // Roll back: copy each pre-image over the page.  Ownership is
    // cleared up-front so these restoring writes do not re-arm
    // shadows.
    std::map<std::uint64_t, PageVersion> pages;
    pages.swap(txn.pages);
    for (auto &[page, version] : pages)
        pageOwner_.erase(page);

    for (auto &[page, version] : pages) {
        if (version.inFlash) {
            store_.flash().readPage(version.shadow, buf);
            byAddr_.erase(key(version.shadow));
            store_.flash().invalidatePage(version.shadow);
            store_.write(Addr(page) * page_size, buf);
        } else {
            store_.write(Addr(page) * page_size, version.bytes);
        }
        ENVY_CRASH_POINT("txn.abort.mid_restore");
    }
    txns_.erase(it);
}

void
ShadowManager::powerLost()
{
    // A power failure loses the manager's volatile tracking state;
    // the shadows themselves stay pinned in flash until recovery
    // sweeps them (Recovery::run).  Unlike the destructor's aborts,
    // no store writes happen here — the machine is "off".
    txns_.clear();
    pageOwner_.clear();
    byAddr_.clear();
}

} // namespace envy
