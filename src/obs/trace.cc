#include "obs/trace.hh"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "common/logging.hh"
#include "obs/json_util.hh"

namespace envy {
namespace obs {

std::uint64_t
StoredTraceEvent::num(const std::string &key) const
{
    for (const Field &f : fields) {
        if (f.key == key) {
            if (f.isString) {
                ENVY_FATAL("obs: trace field '", key, "' of event '", name,
                           "' is a string, not a number");
            }
            return f.value;
        }
    }
    ENVY_FATAL("obs: event '", name, "' has no field '", key, "'");
}

const std::string &
StoredTraceEvent::text(const std::string &key) const
{
    for (const Field &f : fields) {
        if (f.key == key) {
            if (!f.isString) {
                ENVY_FATAL("obs: trace field '", key, "' of event '", name,
                           "' is numeric, not a string");
            }
            return f.str;
        }
    }
    ENVY_FATAL("obs: event '", name, "' has no field '", key, "'");
}

bool
StoredTraceEvent::has(const std::string &key) const
{
    for (const Field &f : fields) {
        if (f.key == key)
            return true;
    }
    return false;
}

namespace {

StoredTraceEvent
store(const TraceEvent &event)
{
    StoredTraceEvent out;
    out.name = event.name;
    out.seq = event.seq;
    out.fields.reserve(event.numFields);
    for (std::size_t i = 0; i < event.numFields; i++) {
        const TraceField &f = event.fields[i];
        StoredTraceEvent::Field sf;
        sf.key = f.key;
        if (f.str) {
            sf.isString = true;
            sf.str = f.str;
        } else {
            sf.value = f.value;
        }
        out.fields.push_back(std::move(sf));
    }
    return out;
}

} // namespace

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        ENVY_FATAL("obs: RingBufferSink capacity must be > 0");
}

void
RingBufferSink::emit(const TraceEvent &event)
{
    if (ring_.size() == capacity_)
        ring_.pop_front();
    ring_.push_back(store(event));
}

std::vector<StoredTraceEvent>
RingBufferSink::events() const
{
    return std::vector<StoredTraceEvent>(ring_.begin(), ring_.end());
}

void
RingBufferSink::clear()
{
    ring_.clear();
}

JsonlFileSink::JsonlFileSink(const std::string &path) : out_(path)
{
    if (!out_)
        ENVY_FATAL("obs: cannot open trace file '", path, "' for writing");
}

JsonlFileSink::~JsonlFileSink() = default;

void
JsonlFileSink::emit(const TraceEvent &event)
{
    std::ostringstream line;
    line << "{\"seq\":" << event.seq << ",\"event\":\""
         << jsonEscape(event.name) << "\"";
    for (std::size_t i = 0; i < event.numFields; i++) {
        const TraceField &f = event.fields[i];
        line << ",\"" << jsonEscape(f.key) << "\":";
        if (f.str)
            line << "\"" << jsonEscape(f.str) << "\"";
        else
            line << f.value;
    }
    line << "}";
    out_ << line.str() << "\n";
}

void
JsonlFileSink::flush()
{
    out_.flush();
}

namespace trace {

namespace detail {
thread_local TraceSink *sink = nullptr;

void
emitSlow(const char *name, const TraceField *fields, std::size_t numFields)
{
    ENVY_ASSERT(numFields <= TraceEvent::kMaxFields,
                "obs: event '", name, "' has too many fields");
    TraceEvent event;
    event.name = name;
    event.seq = sink->nextSeq();
    event.numFields = numFields;
    for (std::size_t i = 0; i < numFields; i++)
        event.fields[i] = fields[i];
    sink->emit(event);
}
} // namespace detail

namespace {

/** Guards the registry: events register lazily from worker threads. */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::string> &
registry()
{
    static std::vector<std::string> events = [] {
        // Canonical inventory of the trace events threaded through
        // the system — the event catalog of docs/OBSERVABILITY.md.
        // envy_lint's trace-event-registered rule checks every
        // ENVY_TRACE call site against this list, so adding an event
        // means adding it here (and to the docs) first.
        return std::vector<std::string>{
            "ctl.cow",            // copy-on-write fault absorbed
            "ctl.flush",          // one buffer page flushed to flash
            "ctl.backpressure",   // producer waited for buffer room
            "cleaner.clean.start", // victim chosen, clean beginning
            "cleaner.clean.end",  // clean committed
            "wear.rotate",        // wear-leveling rotation finished
            "flash.erase",        // a segment erase completed
            "recovery.done",      // Recovery::run finished
            "persist.reopen",     // persistent store replayed on open
            "persist.checkpoint", // journal compacted to a checkpoint
            "persist.group_commit", // one group-commit epoch completed
            "fault.power_loss",   // injector cut power at a point
            "fault.program_fail", // injected program spec-failure
            "fault.erase_fail",   // injected transient erase failure
            "serve.request",      // one request executed
            "serve.batch",        // a Batch request's sub-ops ran
            "serve.shed",         // request refused by admission
            "serve.queue",        // request admitted under pressure
            "serve.protocol_error", // malformed request payload
            "serve.frame_error",  // malformed frame, conn torn down
            "serve.commit_batch", // durable-ack batch shared one flush
        };
    }();
    return events;
}

} // namespace

const char *
registerEvent(const char *name)
{
    const std::lock_guard<std::mutex> lock(registryMutex());
    auto &events = registry();
    if (std::find(events.begin(), events.end(), name) == events.end())
        events.emplace_back(name);
    return name;
}

std::vector<std::string>
allEvents()
{
    std::vector<std::string> events;
    {
        const std::lock_guard<std::mutex> lock(registryMutex());
        events = registry();
    }
    std::sort(events.begin(), events.end());
    return events;
}

TraceSink *
setTraceSink(TraceSink *sink)
{
    TraceSink *old = detail::sink;
    detail::sink = sink;
    return old;
}

TraceSink *
currentTraceSink()
{
    return detail::sink;
}

} // namespace trace
} // namespace obs
} // namespace envy
