/**
 * @file
 * Structured event tracing: typed events from fixed call sites, fed
 * to a pluggable per-thread sink, compiled out entirely when timing
 * is being measured.
 *
 * The observability layer's second half (metrics.hh is the first):
 * where metrics answer "how many, over the run", a trace answers
 * "what happened, in order" — each flush, each clean with its victim
 * and utilization, each wear rotation, each injected fault, as one
 * typed event.  tools/obs/summarize_trace.py folds a JSONL trace
 * back into the paper's Fig 6-style cleaning-cost table, which is
 * also the cross-check that the stream and the counters agree.
 *
 * Design rules, in the image of ENVY_CRASH_POINT (faults/crash_point.hh):
 *
 *  - Call sites use `ENVY_TRACE("cleaner.clean.start", tv("live", n))`.
 *    Event names are string literals, dotted, unique per call site,
 *    and pre-registered in the canonical inventory (trace.cc) —
 *    enforced by envy_lint's trace-event rules.
 *  - The sink is thread-local: each worker of the parallel experiment
 *    engine traces only its own simulated system.  Installing is one
 *    pointer write; with no sink installed a trace site is a single
 *    predicate check and evaluates none of its field expressions.
 *  - Events carry at most kMaxFields typed fields, each a
 *    (key, u64 | string) pair built by tv() — no allocation on the
 *    emit path for numeric fields; the ring sink stores events by
 *    value.
 *  - Configuring with -DENVY_TRACE=OFF defines ENVY_OBS_NO_TRACE and
 *    the macro compiles to nothing, so `--jobs N` timing is
 *    unaffected; sinks still link (tests build against them).
 *
 * Two sinks ship: RingBufferSink (last-N events in memory, for tests
 * and post-mortem dumps) and JsonlFileSink (one JSON object per line,
 * for summarize_trace.py).
 */

#ifndef ENVY_OBS_TRACE_HH
#define ENVY_OBS_TRACE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

namespace envy {
namespace obs {

/** One typed field of a trace event: numeric or string payload. */
struct TraceField
{
    const char *key = nullptr;
    std::uint64_t value = 0;
    /**
     * String payload; when set, `value` is ignored.  Points at the
     * caller's storage and is only valid during emit() — sinks that
     * keep events (the ring) copy it into `strings`.
     */
    const char *str = nullptr;
};

inline TraceField
tv(const char *key, bool value)
{
    return TraceField{key, value ? 1u : 0u, nullptr};
}

template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
inline TraceField
tv(const char *key, T value)
{
    return TraceField{key, static_cast<std::uint64_t>(value), nullptr};
}

inline TraceField
tv(const char *key, const char *value)
{
    return TraceField{key, 0, value};
}

/** A trace event as sinks receive it: name + up to kMaxFields. */
struct TraceEvent
{
    static constexpr std::size_t kMaxFields = 8;

    const char *name = nullptr;
    std::uint64_t seq = 0; //!< per-sink sequence number, from 1 (==
                           //!< the sink's totalEvents() after emit)
    std::size_t numFields = 0;
    std::array<TraceField, kMaxFields> fields{};
};

/** A retained copy of an event (string fields copied), for the ring. */
struct StoredTraceEvent
{
    std::string name;
    std::uint64_t seq = 0;
    struct Field
    {
        std::string key;
        std::uint64_t value = 0;
        bool isString = false;
        std::string str;
    };
    std::vector<Field> fields;

    /** Numeric field by key; fatal when absent or a string field. */
    std::uint64_t num(const std::string &key) const;
    /** String field by key; fatal when absent or numeric. */
    const std::string &text(const std::string &key) const;
    /** True when a field with @p key exists. */
    bool has(const std::string &key) const;
};

/** Receives every ENVY_TRACE hit while installed on this thread. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent &event) = 0;

    /** Events ever emitted into this sink. */
    std::uint64_t totalEvents() const { return seq_; }

    /** Emit path only: assign the next per-sink sequence number. */
    std::uint64_t nextSeq() { return ++seq_; }

  private:
    std::uint64_t seq_ = 0;
};

/** Keeps the most recent `capacity` events, by value. */
class RingBufferSink : public TraceSink
{
  public:
    explicit RingBufferSink(std::size_t capacity);

    void emit(const TraceEvent &event) override;

    /** Events currently retained, oldest first. */
    std::vector<StoredTraceEvent> events() const;

    std::size_t capacity() const { return capacity_; }

    /** Drop retained events (totalEvents() stays cumulative). */
    void clear();

  private:
    std::size_t capacity_;
    std::deque<StoredTraceEvent> ring_;
};

/**
 * Writes one flat JSON object per event per line:
 * {"seq":N,"event":"name","k1":v1,...}.  String fields are escaped
 * via obs::jsonEscape.  Fatal if the file cannot be opened.
 */
class JsonlFileSink : public TraceSink
{
  public:
    explicit JsonlFileSink(const std::string &path);
    ~JsonlFileSink() override;

    void emit(const TraceEvent &event) override;

    /** Flush buffered lines to the file. */
    void flush();

  private:
    std::ofstream out_;
};

namespace trace {

/** Add @p name to the global event-name registry (idempotent). */
const char *registerEvent(const char *name);

/** All registered event names, sorted. */
std::vector<std::string> allEvents();

/**
 * Install @p sink for the calling thread (nullptr to clear).
 * Returns the previous sink.  Sinks on other threads are unaffected.
 */
TraceSink *setTraceSink(TraceSink *sink);

TraceSink *currentTraceSink();

/** RAII: install a sink for a scope, restore the previous on exit. */
class ScopedTraceSink
{
  public:
    explicit ScopedTraceSink(TraceSink *sink) : prev_(setTraceSink(sink)) {}
    ~ScopedTraceSink() { setTraceSink(prev_); }

    ScopedTraceSink(const ScopedTraceSink &) = delete;
    ScopedTraceSink &operator=(const ScopedTraceSink &) = delete;

  private:
    TraceSink *prev_;
};

namespace detail {
extern thread_local TraceSink *sink; // one sink per worker thread

struct Registrar
{
    explicit Registrar(const char *name) { registerEvent(name); }
};

void emitSlow(const char *name, const TraceField *fields,
              std::size_t numFields);
} // namespace detail

template <typename... Fields>
inline void
hit(const char *name, const Fields &...fields)
{
    if (detail::sink) {
        const TraceField arr[] = {fields...};
        detail::emitSlow(name, arr, sizeof...(fields));
    }
}

inline void
hit(const char *name)
{
    if (detail::sink)
        detail::emitSlow(name, nullptr, 0);
}

} // namespace trace
} // namespace obs
} // namespace envy

/**
 * Emit a structured trace event.  Use only at statement scope;
 * `name` must be a string literal, unique per call site, dotted
 * `component.operation[.moment]` style, registered in the canonical
 * inventory (obs/trace.cc).  Field expressions are NOT evaluated
 * when no sink is installed, and the whole statement compiles away
 * under -DENVY_TRACE=OFF.
 */
#ifdef ENVY_OBS_NO_TRACE
#define ENVY_TRACE(name, ...) \
    do {                      \
    } while (0)
#else
#define ENVY_TRACE(name, ...)                                          \
    do {                                                               \
        static ::envy::obs::trace::detail::Registrar                   \
            envyTraceEventReg_{name};                                  \
        if (::envy::obs::trace::detail::sink) {                        \
            ::envy::obs::trace::hit(name __VA_OPT__(, ) __VA_ARGS__);  \
        }                                                              \
    } while (0)
#endif

#endif // ENVY_OBS_TRACE_HH
