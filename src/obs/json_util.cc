#include "obs/json_util.hh"

#include <cstdio>

namespace envy {
namespace obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace obs
} // namespace envy
