#include "obs/metrics.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "obs/json_util.hh"

namespace envy {
namespace obs {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    ENVY_PANIC("obs: bad MetricKind ", static_cast<int>(kind));
}

void
Histogram::record(std::uint64_t v)
{
    if (!cell_)
        return;
    // Bucket i counts samples v <= edges[i]; the final bucket is the
    // overflow for v > edges.back().
    auto it = std::lower_bound(cell_->edges.begin(), cell_->edges.end(), v);
    std::size_t idx =
        static_cast<std::size_t>(it - cell_->edges.begin());
    cell_->counts[idx]++;
    cell_->count++;
    cell_->sum += static_cast<double>(v);
}

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &name, MetricKind kind,
                              const std::string &unit,
                              const std::string &desc)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        Entry &e = entries_[it->second];
        if (e.kind != kind) {
            ENVY_FATAL("obs: metric '", name, "' re-registered as ",
                       metricKindName(kind), " but exists as ",
                       metricKindName(e.kind));
        }
        if (e.unit != unit) {
            ENVY_FATAL("obs: metric '", name, "' re-registered with unit '",
                       unit, "' but exists with unit '", e.unit, "'");
        }
        return e;
    }
    if (name.empty())
        ENVY_FATAL("obs: metric name must not be empty");
    entries_.emplace_back();
    Entry &e = entries_.back();
    e.name = name;
    e.unit = unit;
    e.desc = desc;
    e.kind = kind;
    index_.emplace(name, entries_.size() - 1);
    return e;
}

Counter
MetricsRegistry::counter(const std::string &name, const std::string &unit,
                         const std::string &desc)
{
    MutexLock lock(mu_);
    return Counter(&findOrCreate(name, MetricKind::Counter, unit, desc)
                        .counter);
}

Gauge
MetricsRegistry::gauge(const std::string &name, const std::string &unit,
                       const std::string &desc)
{
    MutexLock lock(mu_);
    return Gauge(&findOrCreate(name, MetricKind::Gauge, unit, desc).gauge);
}

Histogram
MetricsRegistry::histogram(const std::string &name, const std::string &unit,
                           const std::string &desc,
                           std::vector<std::uint64_t> edges)
{
    if (edges.empty())
        ENVY_FATAL("obs: histogram '", name, "' needs at least one edge");
    if (!std::is_sorted(edges.begin(), edges.end()) ||
        std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
        ENVY_FATAL("obs: histogram '", name,
                   "' edges must be strictly ascending");
    }
    MutexLock lock(mu_);
    Entry &e = findOrCreate(name, MetricKind::Histogram, unit, desc);
    if (e.histogram.edges.empty()) {
        e.histogram.edges = std::move(edges);
        e.histogram.counts.assign(e.histogram.edges.size() + 1, 0);
    } else if (e.histogram.edges != edges) {
        ENVY_FATAL("obs: histogram '", name,
                   "' re-registered with different bucket edges");
    }
    return Histogram(&e.histogram);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MutexLock lock(mu_);
    MetricsSnapshot snap;
    snap.entries.reserve(entries_.size());
    for (const Entry &e : entries_) {
        MetricsSnapshot::Entry out;
        out.name = e.name;
        out.unit = e.unit;
        out.kind = e.kind;
        out.value = e.counter.value.load(std::memory_order_relaxed);
        out.gaugeValue = e.gauge.value.load(std::memory_order_relaxed);
        out.gaugeHigh = e.gauge.high.load(std::memory_order_relaxed);
        out.edges = e.histogram.edges;
        out.counts = e.histogram.counts;
        out.histCount = e.histogram.count;
        out.histSum = e.histogram.sum;
        snap.entries.push_back(std::move(out));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mu_);
    for (Entry &e : entries_) {
        e.counter.value.store(0, std::memory_order_relaxed);
        e.gauge.value.store(0.0, std::memory_order_relaxed);
        e.gauge.high.store(0.0, std::memory_order_relaxed);
        e.gauge.everSet.store(false, std::memory_order_relaxed);
        std::fill(e.histogram.counts.begin(), e.histogram.counts.end(),
                  std::uint64_t(0));
        e.histogram.count = 0;
        e.histogram.sum = 0.0;
    }
}

std::string
MetricsRegistry::describe(const std::string &name) const
{
    MutexLock lock(mu_);
    auto it = index_.find(name);
    return it == index_.end() ? std::string() : entries_[it->second].desc;
}

const MetricsSnapshot::Entry *
MetricsSnapshot::find(const std::string &name) const
{
    for (const Entry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e || e->kind != MetricKind::Counter)
        ENVY_FATAL("obs: snapshot has no counter '", name, "'");
    return e->value;
}

double
MetricsSnapshot::gauge(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e || e->kind != MetricKind::Gauge)
        ENVY_FATAL("obs: snapshot has no gauge '", name, "'");
    return e->gaugeValue;
}

double
MetricsSnapshot::gaugeHigh(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e || e->kind != MetricKind::Gauge)
        ENVY_FATAL("obs: snapshot has no gauge '", name, "'");
    return e->gaugeHigh;
}

std::uint64_t
MetricsSnapshot::counterDelta(const MetricsSnapshot &earlier,
                              const std::string &name) const
{
    std::uint64_t now = counter(name);
    const Entry *before = earlier.find(name);
    std::uint64_t then = before ? before->value : 0;
    if (now < then) {
        ENVY_FATAL("obs: counter '", name, "' went backwards (", then,
                   " -> ", now, ") across snapshots");
    }
    return now - then;
}

namespace {

// %.17g round-trips doubles; trim to something readable but exact.
std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const Entry &e : entries) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"kind\":\""
           << metricKindName(e.kind) << "\",\"unit\":\""
           << jsonEscape(e.unit) << "\"";
        switch (e.kind) {
          case MetricKind::Counter:
            os << ",\"value\":" << e.value;
            break;
          case MetricKind::Gauge:
            os << ",\"value\":" << jsonNumber(e.gaugeValue)
               << ",\"high\":" << jsonNumber(e.gaugeHigh);
            break;
          case MetricKind::Histogram:
            os << ",\"edges\":[";
            for (std::size_t i = 0; i < e.edges.size(); i++)
                os << (i ? "," : "") << e.edges[i];
            os << "],\"counts\":[";
            for (std::size_t i = 0; i < e.counts.size(); i++)
                os << (i ? "," : "") << e.counts[i];
            os << "],\"count\":" << e.histCount
               << ",\"sum\":" << jsonNumber(e.histSum);
            break;
        }
        os << "}";
    }
    os << "]";
    return os.str();
}

Counter
counterOf(MetricsRegistry *reg, const std::string &name,
          const std::string &unit, const std::string &desc)
{
    return reg ? reg->counter(name, unit, desc) : Counter();
}

Gauge
gaugeOf(MetricsRegistry *reg, const std::string &name,
        const std::string &unit, const std::string &desc)
{
    return reg ? reg->gauge(name, unit, desc) : Gauge();
}

Histogram
histogramOf(MetricsRegistry *reg, const std::string &name,
            const std::string &unit, const std::string &desc,
            std::vector<std::uint64_t> edges)
{
    return reg ? reg->histogram(name, unit, desc, std::move(edges))
               : Histogram();
}

} // namespace obs
} // namespace envy
