/**
 * @file
 * JSON string escaping shared by the metrics snapshot serialiser,
 * the JSONL trace sink and the bench report writer.  Lives in obs
 * (the lowest layer that needs it) so sram/flash/envy code never
 * grows a JSON dependency of its own.
 */

#ifndef ENVY_OBS_JSON_UTIL_HH
#define ENVY_OBS_JSON_UTIL_HH

#include <string>
#include <string_view>

namespace envy {
namespace obs {

/**
 * Escape @p s for use inside a double-quoted JSON string: quotes,
 * backslashes, and control characters (as \uXXXX or the short
 * escapes \n \r \t \b \f).  Does not add the surrounding quotes.
 */
std::string jsonEscape(std::string_view s);

} // namespace obs
} // namespace envy

#endif // ENVY_OBS_JSON_UTIL_HH
