/**
 * @file
 * The metrics registry: always-on, typed, snapshot-on-demand counters
 * for every core component.
 *
 * The paper validates eNVy almost entirely through internal counters —
 * cleaning cost per flush (Fig 6), policy comparisons (Fig 8),
 * utilization and latency curves (Figs 14-15).  This registry makes
 * those counters first-class: each component registers its metrics
 * once at construction and bumps them on the hot path through a
 * handle that is a single pointer indirection (no lookup, no
 * allocation, no lock).  Counter and gauge cells are relaxed atomics
 * so concurrent workers and cleaners (PR 8) can bump them without
 * lost updates; histograms are only recorded under exclusive locks.
 *
 * Three metric kinds:
 *
 *  - Counter:   monotonically increasing event count (u64);
 *  - Gauge:     last-set level plus its high-water mark (double, so
 *               derived figures like cleaning cost fit too);
 *  - Histogram: fixed bucket edges chosen at registration; bucket i
 *               counts samples in (edges[i-1], edges[i]], the last
 *               bucket is the overflow.  Recording is a small binary
 *               search over the edges — no allocation.
 *
 * Registration is idempotent: asking twice for the same name returns
 * a handle to the same cell (recovery re-registers its counters on
 * every run), and asking with a different kind or unit is fatal.
 * Handles are null-safe: a component built without a registry (unit
 * tests, bare harnesses) gets no-op handles and pays one branch.
 *
 * snapshot() returns a deep copy — MetricsSnapshot — that later
 * mutations do not touch.  Snapshots serialise to the JSON `metrics`
 * block of the envy-bench-v2 schema (docs/OBSERVABILITY.md) and
 * support windowed deltas (counterDelta) for measured-interval
 * figures.
 */

#ifndef ENVY_OBS_METRICS_HH
#define ENVY_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"

namespace envy {
namespace obs {

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

const char *metricKindName(MetricKind kind);

namespace detail {

// Counter and gauge cells are relaxed atomics so worker and cleaner
// threads can bump them concurrently with no lost updates (PR 8).
// Snapshots read them relaxed too: consumers only look at snapshots
// taken at quiesce points, so no ordering is implied or needed.
struct CounterCell
{
    std::atomic<std::uint64_t> value{0};
};

struct GaugeCell
{
    std::atomic<double> value{0.0};
    std::atomic<double> high{0.0};
    std::atomic<bool> everSet{false};
};

// Histogram cells stay plain: every record() site runs under an
// exclusive lock (flush/clean paths hold the structural lock), and
// snapshots are only taken at quiesce points.
struct HistogramCell
{
    std::vector<std::uint64_t> edges; //!< ascending, fixed at creation
    std::vector<std::uint64_t> counts; //!< edges.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
};

} // namespace detail

/** Null-safe counter handle: add() on a default handle is a no-op. */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n = 1)
    {
        if (cell_)
            cell_->value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0;
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(detail::CounterCell *cell) : cell_(cell) {}
    detail::CounterCell *cell_ = nullptr;
};

/** Null-safe gauge handle; set() also maintains the high-water mark. */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v)
    {
        if (!cell_)
            return;
        cell_->value.store(v, std::memory_order_relaxed);
        // High-water: seed from the 0.0 default exactly once (so a
        // negative first sample still lands), then CAS-max.
        if (!cell_->everSet.exchange(true, std::memory_order_relaxed)) {
            double expected = 0.0;
            cell_->high.compare_exchange_strong(expected, v,
                                                std::memory_order_relaxed);
        }
        double high = cell_->high.load(std::memory_order_relaxed);
        while (v > high &&
               !cell_->high.compare_exchange_weak(
                   high, v, std::memory_order_relaxed)) {
        }
    }

    double
    value() const
    {
        return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0.0;
    }
    double
    high() const
    {
        return cell_ ? cell_->high.load(std::memory_order_relaxed) : 0.0;
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(detail::GaugeCell *cell) : cell_(cell) {}
    detail::GaugeCell *cell_ = nullptr;
};

/** Null-safe fixed-bucket histogram handle. */
class Histogram
{
  public:
    Histogram() = default;

    void record(std::uint64_t v);

    std::uint64_t count() const { return cell_ ? cell_->count : 0; }
    double sum() const { return cell_ ? cell_->sum : 0.0; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(detail::HistogramCell *cell) : cell_(cell) {}
    detail::HistogramCell *cell_ = nullptr;
};

/** Deep copy of a registry at one instant (see snapshot()). */
struct MetricsSnapshot
{
    struct Entry
    {
        std::string name;
        std::string unit;
        MetricKind kind = MetricKind::Counter;

        // Counter.
        std::uint64_t value = 0;
        // Gauge.
        double gaugeValue = 0.0;
        double gaugeHigh = 0.0;
        // Histogram.
        std::vector<std::uint64_t> edges;
        std::vector<std::uint64_t> counts;
        std::uint64_t histCount = 0;
        double histSum = 0.0;
    };

    std::vector<Entry> entries; //!< in registration order

    /** Entry by name, nullptr when absent. */
    const Entry *find(const std::string &name) const;

    /** Counter value by name; fatal when absent or not a counter. */
    std::uint64_t counter(const std::string &name) const;

    /** Gauge value by name; fatal when absent or not a gauge. */
    double gauge(const std::string &name) const;

    /** Gauge high-water by name; fatal when absent / not a gauge. */
    double gaugeHigh(const std::string &name) const;

    /**
     * counter(name) - earlier.counter(name): the measured-window
     * delta the figure tables are built from.
     */
    std::uint64_t counterDelta(const MetricsSnapshot &earlier,
                               const std::string &name) const;

    /**
     * The snapshot as one JSON array of entry objects, each
     * {"name", "kind", "unit", ...kind-specific fields} — the
     * `entries` value of an envy-bench-v2 metrics block.
     */
    std::string toJson() const;
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register (or re-find) a metric.  Idempotent per name; a kind or
     * unit mismatch against the existing registration is fatal.
     * Names are dotted `component.metric` style, lowercase.
     */
    Counter counter(const std::string &name, const std::string &unit,
                    const std::string &desc);
    Gauge gauge(const std::string &name, const std::string &unit,
                const std::string &desc);
    /** @p edges must be non-empty and strictly ascending. */
    Histogram histogram(const std::string &name,
                        const std::string &unit,
                        const std::string &desc,
                        std::vector<std::uint64_t> edges);

    /** Number of registered metrics. */
    std::size_t size() const
    {
        MutexLock lock(mu_);
        return entries_.size();
    }

    /** Deep, isolated copy of every metric right now. */
    MetricsSnapshot snapshot() const;

    /** Zero every metric (measurement windows); keeps registrations. */
    void reset();

    /** Description of a registered metric ("" when absent). */
    std::string describe(const std::string &name) const;

  private:
    struct Entry
    {
        std::string name;
        std::string unit;
        std::string desc;
        MetricKind kind;
        detail::CounterCell counter;
        detail::GaugeCell gauge;
        detail::HistogramCell histogram;
    };

    Entry &findOrCreate(const std::string &name, MetricKind kind,
                        const std::string &unit,
                        const std::string &desc) ENVY_REQUIRES(mu_);

    // Guards registration and snapshot/reset.  The hot-path cell
    // handles (Counter/Gauge/Histogram) deliberately stay outside it:
    // a store and its registry belong to one simulated controller
    // (see file comment), and deque addresses are stable, so bumping
    // a cell never races with registration of another.
    mutable Mutex mu_;

    // deque: handles point into entries, so addresses must be stable.
    std::deque<Entry> entries_ ENVY_GUARDED_BY(mu_);
    std::map<std::string, std::size_t> index_ ENVY_GUARDED_BY(mu_);
};

/** Null-safe registration helpers for components whose registry
 *  pointer may be null (unit tests, bare harnesses). */
Counter counterOf(MetricsRegistry *reg, const std::string &name,
                  const std::string &unit, const std::string &desc);
Gauge gaugeOf(MetricsRegistry *reg, const std::string &name,
              const std::string &unit, const std::string &desc);
Histogram histogramOf(MetricsRegistry *reg, const std::string &name,
                      const std::string &unit, const std::string &desc,
                      std::vector<std::uint64_t> edges);

} // namespace obs
} // namespace envy

#endif // ENVY_OBS_METRICS_HH
