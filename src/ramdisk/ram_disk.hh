/**
 * @file
 * Block-device adapter over the eNVy linear array (paper §1).
 *
 * "For backwards compatibility, a simple RAM disk program can make a
 * memory array usable by a standard file system."  This adapter
 * exposes the word-addressable store as a classic 512-byte-sector
 * block device, demonstrating both directions of the compatibility
 * argument: sector I/O works trivially on top of the linear array
 * (it is just memcpy at an offset), whereas the converse — word
 * access on a disk — would need a buffer cache.
 *
 * A small write-count statistic illustrates the paper's pathlength
 * point: sector I/O forces full 512-byte transfers where the mapped
 * interface touches only the bytes that change.
 */

#ifndef ENVY_RAMDISK_RAM_DISK_HH
#define ENVY_RAMDISK_RAM_DISK_HH

#include <cstdint>
#include <span>

#include "envy/envy_store.hh"

namespace envy {

class RamDisk
{
  public:
    static constexpr std::uint32_t sectorBytes = 512;

    explicit RamDisk(EnvyStore &store);

    std::uint64_t numSectors() const { return sectors_; }
    std::uint64_t capacityBytes() const
    {
        return sectors_ * sectorBytes;
    }

    void readSector(std::uint64_t sector, std::span<std::uint8_t> out);
    void writeSector(std::uint64_t sector,
                     std::span<const std::uint8_t> in);

    /** Multi-sector helpers (classic driver interface). */
    void read(std::uint64_t sector, std::uint32_t count,
              std::span<std::uint8_t> out);
    void write(std::uint64_t sector, std::uint32_t count,
               std::span<const std::uint8_t> in);

    std::uint64_t sectorReads() const { return reads_; }
    std::uint64_t sectorWrites() const { return writes_; }

  private:
    EnvyStore &store_;
    std::uint64_t sectors_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace envy

#endif // ENVY_RAMDISK_RAM_DISK_HH
