#include "ramdisk/ram_disk.hh"

#include "common/logging.hh"

namespace envy {

RamDisk::RamDisk(EnvyStore &store)
    : store_(store), sectors_(store.size() / sectorBytes)
{
    ENVY_ASSERT(sectors_ > 0, "store smaller than one sector");
}

void
RamDisk::readSector(std::uint64_t sector, std::span<std::uint8_t> out)
{
    ENVY_ASSERT(sector < sectors_, "sector out of range: ", sector);
    ENVY_ASSERT(out.size() >= sectorBytes, "buffer too small");
    store_.read(sector * sectorBytes, out.subspan(0, sectorBytes));
    ++reads_;
}

void
RamDisk::writeSector(std::uint64_t sector,
                     std::span<const std::uint8_t> in)
{
    ENVY_ASSERT(sector < sectors_, "sector out of range: ", sector);
    ENVY_ASSERT(in.size() >= sectorBytes, "buffer too small");
    store_.write(sector * sectorBytes, in.subspan(0, sectorBytes));
    ++writes_;
}

void
RamDisk::read(std::uint64_t sector, std::uint32_t count,
              std::span<std::uint8_t> out)
{
    ENVY_ASSERT(out.size() >= std::uint64_t(count) * sectorBytes,
                "buffer too small");
    for (std::uint32_t i = 0; i < count; ++i)
        readSector(sector + i,
                   out.subspan(std::uint64_t(i) * sectorBytes));
}

void
RamDisk::write(std::uint64_t sector, std::uint32_t count,
               std::span<const std::uint8_t> in)
{
    ENVY_ASSERT(in.size() >= std::uint64_t(count) * sectorBytes,
                "buffer too small");
    for (std::uint32_t i = 0; i < count; ++i)
        writeSector(sector + i,
                    in.subspan(std::uint64_t(i) * sectorBytes));
}

} // namespace envy
