/**
 * @file
 * Fixed-size record tables in the eNVy array (paper §5.2).
 *
 * TPC-A keeps "balance information for each bank, teller, and account
 * ... in the form of a 100 byte record".  Records are packed
 * back-to-back (they deliberately straddle page boundaries — the
 * memory-mapped interface makes that a non-issue, unlike a block
 * device).
 */

#ifndef ENVY_DB_RECORDS_HH
#define ENVY_DB_RECORDS_HH

#include <cstdint>
#include <span>

#include "envy/envy_store.hh"

namespace envy {

class RecordTable
{
  public:
    /**
     * @param store        backing eNVy store
     * @param base         first byte of the table region
     * @param record_bytes fixed record size (TPC-A: 100)
     * @param capacity     record slots
     */
    RecordTable(EnvyStore &store, Addr base,
                std::uint32_t record_bytes, std::uint64_t capacity);

    std::uint64_t capacity() const { return capacity_; }
    std::uint32_t recordBytes() const { return recordBytes_; }
    std::uint64_t regionBytes() const
    {
        return capacity_ * recordBytes_;
    }

    Addr addrOf(std::uint64_t id) const;

    void readRecord(std::uint64_t id, std::span<std::uint8_t> out);
    void writeRecord(std::uint64_t id,
                     std::span<const std::uint8_t> in);

    /** Balance field helpers (first 8 bytes of a record). */
    std::int64_t balance(std::uint64_t id);
    void setBalance(std::uint64_t id, std::int64_t value);
    void addToBalance(std::uint64_t id, std::int64_t delta);

  private:
    EnvyStore &store_;
    Addr base_;
    std::uint32_t recordBytes_;
    std::uint64_t capacity_;
};

} // namespace envy

#endif // ENVY_DB_RECORDS_HH
