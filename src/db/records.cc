#include "db/records.hh"

#include "common/logging.hh"

namespace envy {

RecordTable::RecordTable(EnvyStore &store, Addr base,
                         std::uint32_t record_bytes,
                         std::uint64_t capacity)
    : store_(store),
      base_(base),
      recordBytes_(record_bytes),
      capacity_(capacity)
{
    ENVY_ASSERT(record_bytes > 8, "record too small for a balance");
    ENVY_ASSERT(base + regionBytes() <= store.size(),
                "record table does not fit the store");
}

Addr
RecordTable::addrOf(std::uint64_t id) const
{
    ENVY_ASSERT(id < capacity_, "record id out of range: ", id);
    return base_ + id * recordBytes_;
}

void
RecordTable::readRecord(std::uint64_t id, std::span<std::uint8_t> out)
{
    ENVY_ASSERT(out.size() >= recordBytes_, "buffer too small");
    store_.read(addrOf(id), out.subspan(0, recordBytes_));
}

void
RecordTable::writeRecord(std::uint64_t id,
                         std::span<const std::uint8_t> in)
{
    ENVY_ASSERT(in.size() >= recordBytes_, "buffer too small");
    store_.write(addrOf(id), in.subspan(0, recordBytes_));
}

std::int64_t
RecordTable::balance(std::uint64_t id)
{
    return static_cast<std::int64_t>(store_.readU64(addrOf(id)));
}

void
RecordTable::setBalance(std::uint64_t id, std::int64_t value)
{
    store_.writeU64(addrOf(id), static_cast<std::uint64_t>(value));
}

void
RecordTable::addToBalance(std::uint64_t id, std::int64_t delta)
{
    setBalance(id, balance(id) + delta);
}

} // namespace envy
