#include "db/btree.hh"

#include <cstring>

#include "common/logging.hh"

namespace envy {

/** In-core image of one 256-byte node. */
struct BTree::Node
{
    std::uint64_t idx = 0;
    bool leaf = true;
    std::uint32_t count = 0;
    std::uint64_t keys[leafCapacity];
    std::uint64_t vals[leafCapacity + 1]; // values or children

    std::uint32_t
    lowerBound(std::uint64_t key) const
    {
        std::uint32_t i = 0;
        while (i < count && keys[i] < key)
            ++i;
        return i;
    }
};

BTree::BTree(EnvyStore &store, Addr base, std::uint64_t bytes)
    : BTree(store, base, bytes, OpenTag{})
{
    root_ = allocNode();
    Node root;
    root.idx = root_;
    root.leaf = true;
    root.count = 0;
    storeNode(root);
    persistHeader();
}

BTree::BTree(EnvyStore &store, Addr base, std::uint64_t bytes, OpenTag)
    : store_(store), base_(base)
{
    ENVY_ASSERT(bytes > headerBytes + nodeBytes,
                "B-tree region too small");
    capacityNodes_ = (bytes - headerBytes) / nodeBytes;
}

BTree
BTree::open(EnvyStore &store, Addr base, std::uint64_t bytes)
{
    BTree t(store, base, bytes, OpenTag{});
    const std::uint64_t m = store.readU64(base);
    if (m != magic)
        ENVY_FATAL("btree: no B-tree found at address ", base);
    t.root_ = store.readU64(base + 8);
    t.nextNode_ = store.readU64(base + 16);
    t.count_ = store.readU64(base + 24);
    t.height_ = static_cast<std::uint32_t>(store.readU64(base + 32));
    return t;
}

void
BTree::persistHeader()
{
    store_.writeU64(base_, magic);
    store_.writeU64(base_ + 8, root_);
    store_.writeU64(base_ + 16, nextNode_);
    store_.writeU64(base_ + 24, count_);
    store_.writeU64(base_ + 32, height_);
}

std::uint64_t
BTree::allocNode()
{
    if (nextNode_ >= capacityNodes_)
        ENVY_FATAL("btree: node region exhausted (",
                   capacityNodes_, " nodes)");
    return nextNode_++;
}

BTree::Node
BTree::load(std::uint64_t idx)
{
    std::uint8_t raw[nodeBytes];
    store_.read(nodeAddr(idx), raw);
    Node n;
    n.idx = idx;
    n.leaf = raw[0] == 1;
    n.count = raw[1];
    ENVY_ASSERT(n.count <= leafCapacity, "corrupt node ", idx);
    const std::uint32_t vals =
        n.leaf ? n.count : n.count + 1;
    std::memcpy(n.keys, raw + 8, n.count * 8);
    std::memcpy(n.vals, raw + 8 + 8 * leafCapacity, vals * 8);
    return n;
}

void
BTree::storeNode(const Node &n)
{
    std::uint8_t raw[nodeBytes] = {};
    raw[0] = n.leaf ? 1 : 0;
    raw[1] = static_cast<std::uint8_t>(n.count);
    const std::uint32_t vals = n.leaf ? n.count : n.count + 1;
    std::memcpy(raw + 8, n.keys, n.count * 8);
    std::memcpy(raw + 8 + 8 * leafCapacity, n.vals, vals * 8);
    store_.write(nodeAddr(n.idx), raw);
}

std::optional<std::uint64_t>
BTree::lookup(std::uint64_t key)
{
    std::uint64_t idx = root_;
    for (;;) {
        const Node n = load(idx);
        const std::uint32_t i = n.lowerBound(key);
        if (n.leaf) {
            if (i < n.count && n.keys[i] == key)
                return n.vals[i];
            return std::nullopt;
        }
        // Internal: keys[i-1] <= key < keys[i]; equal keys descend
        // right of the separator.
        idx = n.vals[(i < n.count && n.keys[i] == key) ? i + 1 : i];
    }
}

BTree::Split
BTree::insertInto(std::uint64_t idx, std::uint64_t key,
                  std::uint64_t value, bool &added)
{
    Node n = load(idx);

    if (n.leaf) {
        const std::uint32_t i = n.lowerBound(key);
        if (i < n.count && n.keys[i] == key) {
            n.vals[i] = value; // update in place
            added = false;
            storeNode(n);
            return {};
        }
        added = true;
        ENVY_ASSERT(n.count < leafCapacity, "leaf overflow");
        for (std::uint32_t j = n.count; j > i; --j) {
            n.keys[j] = n.keys[j - 1];
            n.vals[j] = n.vals[j - 1];
        }
        n.keys[i] = key;
        n.vals[i] = value;
        ++n.count;

        if (n.count < leafCapacity) {
            storeNode(n);
            return {};
        }
        // Split the full leaf.
        Node right;
        right.idx = allocNode();
        right.leaf = true;
        const std::uint32_t half = n.count / 2;
        right.count = n.count - half;
        std::memcpy(right.keys, n.keys + half, right.count * 8);
        std::memcpy(right.vals, n.vals + half, right.count * 8);
        n.count = half;
        storeNode(n);
        storeNode(right);
        return {true, right.keys[0], right.idx};
    }

    const std::uint32_t i = n.lowerBound(key);
    const std::uint32_t child =
        (i < n.count && n.keys[i] == key) ? i + 1 : i;
    const Split s = insertInto(n.vals[child], key, value, added);
    if (!s.happened)
        return {};

    ENVY_ASSERT(n.count < internalKeys, "internal overflow");
    for (std::uint32_t j = n.count; j > child; --j) {
        n.keys[j] = n.keys[j - 1];
        n.vals[j + 1] = n.vals[j];
    }
    n.keys[child] = s.key;
    n.vals[child + 1] = s.right;
    ++n.count;

    if (n.count < internalKeys) {
        storeNode(n);
        return {};
    }
    // Split the full internal node; the middle key moves up.
    Node right;
    right.idx = allocNode();
    right.leaf = false;
    const std::uint32_t mid = n.count / 2;
    const std::uint64_t up = n.keys[mid];
    right.count = n.count - mid - 1;
    std::memcpy(right.keys, n.keys + mid + 1, right.count * 8);
    std::memcpy(right.vals, n.vals + mid + 1, (right.count + 1) * 8);
    n.count = mid;
    storeNode(n);
    storeNode(right);
    return {true, up, right.idx};
}

void
BTree::insert(std::uint64_t key, std::uint64_t value)
{
    bool added = false;
    const Split s = insertInto(root_, key, value, added);
    if (s.happened) {
        Node root;
        root.idx = allocNode();
        root.leaf = false;
        root.count = 1;
        root.keys[0] = s.key;
        root.vals[0] = root_;
        root.vals[1] = s.right;
        storeNode(root);
        root_ = root.idx;
        ++height_;
    }
    if (added)
        ++count_;
    persistHeader();
}

void
BTree::scan(
    const std::function<void(std::uint64_t, std::uint64_t)> &fn)
{
    // Depth-first without recursion on store state: explicit stack of
    // (node, next child) pairs.
    struct Frame
    {
        std::uint64_t idx;
        std::uint32_t next;
    };
    std::vector<Frame> stack{{root_, 0}};
    while (!stack.empty()) {
        Frame &f = stack.back();
        const Node n = load(f.idx);
        if (n.leaf) {
            for (std::uint32_t i = 0; i < n.count; ++i)
                fn(n.keys[i], n.vals[i]);
            stack.pop_back();
            continue;
        }
        if (f.next > n.count) {
            stack.pop_back();
            continue;
        }
        const std::uint32_t child = f.next++;
        stack.push_back({n.vals[child], 0});
    }
}

bool
BTree::validateNode(std::uint64_t idx, std::uint32_t depth,
                    std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t &seen)
{
    const Node n = load(idx);
    for (std::uint32_t i = 0; i + 1 < n.count; ++i) {
        if (n.keys[i] >= n.keys[i + 1])
            return false;
    }
    for (std::uint32_t i = 0; i < n.count; ++i) {
        if (n.keys[i] < lo || n.keys[i] >= hi)
            return false;
    }
    if (n.leaf) {
        if (depth + 1 != height_)
            return false;
        seen += n.count;
        return true;
    }
    for (std::uint32_t i = 0; i <= n.count; ++i) {
        const std::uint64_t clo = i == 0 ? lo : n.keys[i - 1];
        const std::uint64_t chi = i == n.count ? hi : n.keys[i];
        if (!validateNode(n.vals[i], depth + 1, clo, chi, seen))
            return false;
    }
    return true;
}

bool
BTree::validate()
{
    std::uint64_t seen = 0;
    if (!validateNode(root_, 0, 0, ~0ull, seen))
        return false;
    return seen == count_;
}

} // namespace envy
