#include "db/btree.hh"

#include <cstring>

#include "common/logging.hh"

namespace envy {

/** In-core image of one 256-byte node. */
struct BTree::Node
{
    std::uint64_t idx = 0;
    bool leaf = true;
    std::uint32_t count = 0;
    std::uint64_t keys[leafCapacity];
    std::uint64_t vals[leafCapacity + 1]; // values or children

    std::uint32_t
    lowerBound(std::uint64_t key) const
    {
        std::uint32_t i = 0;
        while (i < count && keys[i] < key)
            ++i;
        return i;
    }
};

BTree::BTree(EnvyStore &store, Addr base, std::uint64_t bytes)
    : BTree(store, base, bytes, OpenTag{})
{
    root_ = allocNode();
    Node root;
    root.idx = root_;
    root.leaf = true;
    root.count = 0;
    storeNode(root);
    persistHeader();
}

BTree::BTree(EnvyStore &store, Addr base, std::uint64_t bytes, OpenTag)
    : store_(store), base_(base)
{
    ENVY_ASSERT(bytes > headerBytes + nodeBytes,
                "B-tree region too small");
    capacityNodes_ = (bytes - headerBytes) / nodeBytes;
}

BTree
BTree::open(EnvyStore &store, Addr base, std::uint64_t bytes)
{
    BTree t(store, base, bytes, OpenTag{});
    const std::uint64_t m = store.readU64(base);
    if (m != magic)
        ENVY_FATAL("btree: no B-tree found at address ", base);
    t.root_ = store.readU64(base + 8);
    t.nextNode_ = store.readU64(base + 16);
    // The count and height header words trail the structural publish
    // (see the file comment), so after a crash they may be one step
    // stale.  Recompute both — and the free list — from a
    // reachability walk instead of trusting them.
    struct Frame
    {
        std::uint64_t idx;
        std::uint32_t depth;
    };
    std::vector<Frame> stack{{t.root_, 0}};
    std::vector<bool> reachable;
    std::uint64_t counted = 0;
    std::uint32_t height = 0;
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        if (f.idx >= reachable.size())
            reachable.resize(f.idx + 1, false);
        reachable[f.idx] = true;
        const Node n = t.load(f.idx);
        if (n.leaf) {
            counted += n.count;
            ENVY_ASSERT(height == 0 || height == f.depth + 1,
                        "btree: ragged leaf depth at node ", f.idx);
            height = f.depth + 1;
            continue;
        }
        for (std::uint32_t i = 0; i <= n.count; ++i)
            stack.push_back({n.vals[i], f.depth + 1});
    }
    t.count_ = counted;
    t.height_ = height;
    if (reachable.size() > t.nextNode_)
        t.nextNode_ = reachable.size();
    for (std::uint64_t i = 0; i < t.nextNode_; ++i) {
        if (i >= reachable.size() || !reachable[i])
            t.freeNodes_.push_back(i);
    }
    t.persistHeader(); // settle any stale trailing words
    return t;
}

void
BTree::persistHeader()
{
    store_.writeU64(base_, magic);
    store_.writeU64(base_ + 8, root_);
    store_.writeU64(base_ + 16, nextNode_);
    store_.writeU64(base_ + 24, count_);
    store_.writeU64(base_ + 32, height_);
}

std::uint64_t
BTree::allocNode()
{
    if (!freeNodes_.empty()) {
        const std::uint64_t idx = freeNodes_.back();
        freeNodes_.pop_back();
        return idx;
    }
    if (nextNode_ >= capacityNodes_)
        ENVY_FATAL("btree: node region exhausted (",
                   capacityNodes_, " nodes)");
    const std::uint64_t idx = nextNode_++;
    // Persist the watermark before the slot can become reachable so
    // a crash-replayed prefix never hands it out a second time.
    store_.writeU64(base_ + 16, nextNode_);
    return idx;
}

void
BTree::freeNode(std::uint64_t idx)
{
    freeNodes_.push_back(idx);
}

void
BTree::publish(Addr link, std::uint64_t idx)
{
    store_.writeU64(link, idx);
    if (link == base_ + 8)
        root_ = idx;
}

BTree::Node
BTree::load(std::uint64_t idx)
{
    std::uint8_t raw[nodeBytes];
    store_.read(nodeAddr(idx), raw);
    Node n;
    n.idx = idx;
    n.leaf = raw[0] == 1;
    n.count = raw[1];
    ENVY_ASSERT(n.count <= leafCapacity, "corrupt node ", idx);
    const std::uint32_t vals =
        n.leaf ? n.count : n.count + 1;
    std::memcpy(n.keys, raw + 8, n.count * 8);
    std::memcpy(n.vals, raw + 8 + 8 * leafCapacity, vals * 8);
    return n;
}

void
BTree::storeNode(const Node &n)
{
    std::uint8_t raw[nodeBytes] = {};
    raw[0] = n.leaf ? 1 : 0;
    raw[1] = static_cast<std::uint8_t>(n.count);
    const std::uint32_t vals = n.leaf ? n.count : n.count + 1;
    std::memcpy(raw + 8, n.keys, n.count * 8);
    std::memcpy(raw + 8 + 8 * leafCapacity, n.vals, vals * 8);
    store_.write(nodeAddr(n.idx), raw);
}

std::optional<std::uint64_t>
BTree::lookup(std::uint64_t key)
{
    std::uint64_t idx = root_;
    for (;;) {
        const Node n = load(idx);
        const std::uint32_t i = n.lowerBound(key);
        if (n.leaf) {
            if (i < n.count && n.keys[i] == key)
                return n.vals[i];
            return std::nullopt;
        }
        // Internal: keys[i-1] <= key < keys[i]; equal keys descend
        // right of the separator.
        idx = n.vals[(i < n.count && n.keys[i] == key) ? i + 1 : i];
    }
}

bool
BTree::nodeFull(const Node &n) const
{
    return n.count >= (n.leaf ? leafCapacity : internalKeys);
}

std::uint64_t
BTree::splitHalves(const Node &c, Node &left, Node &right)
{
    left = c;
    left.idx = allocNode();
    right.idx = allocNode();
    right.leaf = c.leaf;
    if (c.leaf) {
        const std::uint32_t half = c.count / 2;
        right.count = c.count - half;
        std::memcpy(right.keys, c.keys + half, right.count * 8);
        std::memcpy(right.vals, c.vals + half, right.count * 8);
        left.count = half;
        return right.keys[0];
    }
    // The middle key moves up; it separates the halves.
    const std::uint32_t mid = c.count / 2;
    right.count = c.count - mid - 1;
    std::memcpy(right.keys, c.keys + mid + 1, right.count * 8);
    std::memcpy(right.vals, c.vals + mid + 1, (right.count + 1) * 8);
    left.count = mid;
    return c.keys[mid];
}

void
BTree::splitRoot(const Node &root)
{
    Node left, right;
    const std::uint64_t sep = splitHalves(root, left, right);
    Node top;
    top.idx = allocNode();
    top.leaf = false;
    top.count = 1;
    top.keys[0] = sep;
    top.vals[0] = left.idx;
    top.vals[1] = right.idx;
    // All three copies are unreachable until the one-word root swing
    // publishes them together.
    storeNode(left);
    storeNode(right);
    storeNode(top);
    store_.writeU64(base_ + 8, top.idx);
    root_ = top.idx;
    freeNode(root.idx);
    ++height_;
    store_.writeU64(base_ + 32, height_);
}

BTree::Node
BTree::splitChild(const Node &parent, Addr parentLink,
                  std::uint32_t childPos, const Node &c)
{
    ENVY_ASSERT(!nodeFull(parent), "btree: split under a full parent");
    Node left, right;
    const std::uint64_t sep = splitHalves(c, left, right);

    // New parent version: separator inserted at childPos, halves
    // wired in place of the old child.
    Node next = parent;
    next.idx = allocNode();
    for (std::uint32_t j = parent.count; j > childPos; --j) {
        next.keys[j] = parent.keys[j - 1];
        next.vals[j + 1] = parent.vals[j];
    }
    next.keys[childPos] = sep;
    next.vals[childPos] = left.idx;
    next.vals[childPos + 1] = right.idx;
    next.count = parent.count + 1;

    storeNode(left);
    storeNode(right);
    storeNode(next);
    publish(parentLink, next.idx); // one-word publish
    freeNode(c.idx);
    freeNode(parent.idx);
    return next;
}

void
BTree::insert(std::uint64_t key, std::uint64_t value)
{
    Node cur = load(root_);
    if (nodeFull(cur)) {
        splitRoot(cur);
        cur = load(root_);
    }
    // Descend with preemptive splits: cur is never full (the root is
    // handled above and split halves are at most half full), so a
    // child split never propagates upward.
    Addr link = base_ + 8; // the word that references cur
    while (!cur.leaf) {
        std::uint32_t i = cur.lowerBound(key);
        std::uint32_t pos =
            (i < cur.count && cur.keys[i] == key) ? i + 1 : i;
        Node child = load(cur.vals[pos]);
        if (nodeFull(child)) {
            cur = splitChild(cur, link, pos, child);
            i = cur.lowerBound(key);
            pos = (i < cur.count && cur.keys[i] == key) ? i + 1 : i;
            child = load(cur.vals[pos]);
        }
        link = valAddr(cur.idx, pos);
        cur = child;
    }

    const std::uint32_t i = cur.lowerBound(key);
    if (i < cur.count && cur.keys[i] == key) {
        // Update: one aligned word, atomic in place.
        store_.writeU64(valAddr(cur.idx, i), value);
        return;
    }
    ENVY_ASSERT(cur.count < leafCapacity, "leaf overflow");
    Node next = cur; // new leaf version in a fresh slot
    next.idx = allocNode();
    for (std::uint32_t j = cur.count; j > i; --j) {
        next.keys[j] = cur.keys[j - 1];
        next.vals[j] = cur.vals[j - 1];
    }
    next.keys[i] = key;
    next.vals[i] = value;
    next.count = cur.count + 1;
    storeNode(next);          // unreachable until...
    publish(link, next.idx);  // ...this one-word publish
    freeNode(cur.idx);
    ++count_;
    store_.writeU64(base_ + 24, count_);
}

void
BTree::scan(
    const std::function<void(std::uint64_t, std::uint64_t)> &fn)
{
    // Depth-first without recursion on store state: explicit stack of
    // (node, next child) pairs.
    struct Frame
    {
        std::uint64_t idx;
        std::uint32_t next;
    };
    std::vector<Frame> stack{{root_, 0}};
    while (!stack.empty()) {
        Frame &f = stack.back();
        const Node n = load(f.idx);
        if (n.leaf) {
            for (std::uint32_t i = 0; i < n.count; ++i)
                fn(n.keys[i], n.vals[i]);
            stack.pop_back();
            continue;
        }
        if (f.next > n.count) {
            stack.pop_back();
            continue;
        }
        const std::uint32_t child = f.next++;
        stack.push_back({n.vals[child], 0});
    }
}

bool
BTree::validateNode(std::uint64_t idx, std::uint32_t depth,
                    std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t &seen)
{
    const Node n = load(idx);
    for (std::uint32_t i = 0; i + 1 < n.count; ++i) {
        if (n.keys[i] >= n.keys[i + 1])
            return false;
    }
    for (std::uint32_t i = 0; i < n.count; ++i) {
        if (n.keys[i] < lo || n.keys[i] >= hi)
            return false;
    }
    if (n.leaf) {
        if (depth + 1 != height_)
            return false;
        seen += n.count;
        return true;
    }
    for (std::uint32_t i = 0; i <= n.count; ++i) {
        const std::uint64_t clo = i == 0 ? lo : n.keys[i - 1];
        const std::uint64_t chi = i == n.count ? hi : n.keys[i];
        if (!validateNode(n.vals[i], depth + 1, clo, chi, seen))
            return false;
    }
    return true;
}

bool
BTree::validate()
{
    std::uint64_t seen = 0;
    if (!validateNode(root_, 0, 0, ~0ull, seen))
        return false;
    return seen == count_;
}

} // namespace envy
