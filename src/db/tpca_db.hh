/**
 * @file
 * A functional TPC-A database on the eNVy store (paper §5.2).
 *
 * Where workload/tpca.hh reproduces the *access shape* for the timing
 * experiments, this is the real thing at laptop scale: branch, teller
 * and account record tables plus three B-tree indices, all resident
 * in one EnvyStore, executing genuine debit/credit transactions with
 * the paper's ratios (10 tellers per branch, N accounts per teller).
 *
 * The defining invariant of TPC-A — the sum of account balances per
 * branch equals the branch balance, and teller balances sum to the
 * branch balance — is checkable at any time, which the tests use to
 * verify that cleaning, wear-leveling and crash recovery never
 * corrupt data.  With a ShadowManager supplied, transactions execute
 * atomically and can be aborted mid-flight (§6).
 */

#ifndef ENVY_DB_TPCA_DB_HH
#define ENVY_DB_TPCA_DB_HH

#include <cstdint>
#include <memory>

#include "db/btree.hh"
#include "db/records.hh"
#include "txn/shadow.hh"

namespace envy {

class TpcaDatabase
{
  public:
    struct Params
    {
        std::uint64_t accounts = 10000;
        std::uint32_t accountsPerTeller = 1000;
        std::uint32_t tellersPerBranch = 10;
        std::uint32_t recordBytes = 100;
        std::int64_t initialBalance = 1000;
    };

    /** Build (and load) a fresh database occupying @p store. */
    TpcaDatabase(EnvyStore &store, const Params &params);

    std::uint64_t accounts() const { return params_.accounts; }
    std::uint64_t tellers() const { return tellers_; }
    std::uint64_t branches() const { return branches_; }

    /**
     * Execute one debit/credit transaction: move @p amount into
     * @p account and reflect it in the responsible teller and branch
     * records (all located through the indices).
     */
    void run(std::uint64_t account, std::int64_t amount);

    /** As run(), but atomic under the shadow manager: a @p fail_at
     *  value of 0-2 aborts after that many record updates. */
    void runAtomic(ShadowManager &txns, std::uint64_t account,
                   std::int64_t amount, int fail_at = -1);

    std::int64_t accountBalance(std::uint64_t account);
    std::int64_t tellerBalance(std::uint64_t teller);
    std::int64_t branchBalance(std::uint64_t branch);

    /**
     * Full invariant sweep: per-branch sums of teller and account
     * balances match the branch record, and every index lookup
     * resolves to the right record.
     */
    bool consistent();

    BTree &accountIndex() { return *accountIdx_; }

  private:
    std::uint64_t tellerOf(std::uint64_t account) const;

    EnvyStore &store_;
    Params params_;
    std::uint64_t tellers_;
    std::uint64_t branches_;

    std::unique_ptr<RecordTable> branchRecs_;
    std::unique_ptr<RecordTable> tellerRecs_;
    std::unique_ptr<RecordTable> accountRecs_;
    std::unique_ptr<BTree> branchIdx_;
    std::unique_ptr<BTree> tellerIdx_;
    std::unique_ptr<BTree> accountIdx_;
};

} // namespace envy

#endif // ENVY_DB_TPCA_DB_HH
