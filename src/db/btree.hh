/**
 * @file
 * A B-tree that lives *inside* the eNVy linear array.
 *
 * The paper's simulator models index trees ("each index tree as a
 * B-Tree with 32 entries per node", §5.2); this is the functional
 * counterpart: a real, persistent B-tree whose nodes are 256-byte
 * blocks of EnvyStore memory accessed with ordinary word reads and
 * writes — demonstrating the paper's core claim that a memory-mapped
 * persistent store needs no "save" format or block I/O layer.
 *
 * Node layout (256 bytes):
 *   [0]   type (1 = leaf, 0 = internal)
 *   [1]   count
 *   [2-7] reserved
 *   internal: count keys (8 B each) and count+1 children (8 B)
 *   leaf:     count (key, value) pairs (8 B each)
 *
 * That allows 15 pairs per leaf and 14 keys per internal node.  The
 * workload generator (workload/tpca.hh) separately reproduces the
 * paper's exact 32-entry node *shape* for the timing experiments.
 *
 * Keys are unique uint64; values are uint64 (record addresses).
 * Inserts and updates only — TPC-A never deletes.  Node storage is
 * bump-allocated from a caller-supplied region of the array, with
 * slots recycled through an in-core free list once node copies
 * retire them (rebuilt by a reachability walk on open()).
 *
 * Crash ordering.  On a persistent store the durable image after a
 * crash is the result of some *prefix* of this code's word writes
 * (the journal replays whole frames, and every frame boundary falls
 * between writes, never inside an aligned word).  The tree therefore
 * never mutates reachable structure in place except for single-word
 * value updates:
 *
 *  - updating an existing key rewrites one value word (atomic);
 *  - inserting into a leaf builds the *new version* of the leaf in a
 *    fresh node slot, then publishes it with one word write to the
 *    parent's child pointer (or the header root word);
 *  - splits are preemptive (a full child is split on the way down,
 *    so its parent is never full) and build the two halves plus the
 *    new parent version in fresh slots, published by one pointer
 *    swing at the grandparent — crash cuts see the old or the new
 *    subtree, never a half-split one.
 *
 * The bump watermark is persisted *before* a fresh slot can become
 * reachable, so a replayed prefix never hands the same slot out
 * twice.  The header's count and height words trail the structural
 * publish and may read one step stale after a crash; open() recomputes
 * both (and the free list) from the reachability walk instead of
 * trusting them.
 */

#ifndef ENVY_DB_BTREE_HH
#define ENVY_DB_BTREE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "envy/envy_store.hh"

namespace envy {

class BTree
{
  public:
    static constexpr std::uint32_t nodeBytes = 256;
    static constexpr std::uint32_t leafCapacity = 15;
    static constexpr std::uint32_t internalKeys = 14;

    /**
     * Create a fresh tree.
     *
     * @param store   backing eNVy store
     * @param base    first byte of the node region
     * @param bytes   size of the node region
     */
    BTree(EnvyStore &store, Addr base, std::uint64_t bytes);

    /** Re-open a tree previously created at @p base (persistence). */
    static BTree open(EnvyStore &store, Addr base, std::uint64_t bytes);

    /** Insert a new key or update an existing one. */
    void insert(std::uint64_t key, std::uint64_t value);

    std::optional<std::uint64_t> lookup(std::uint64_t key);

    /** Visit all (key, value) pairs in ascending key order. */
    void scan(const std::function<void(std::uint64_t,
                                       std::uint64_t)> &fn);

    std::uint64_t size() const { return count_; }
    std::uint32_t height() const { return height_; }
    /** Bump watermark: slots ever claimed, including the handful
     *  sitting on the free list between node copies. */
    std::uint64_t nodesAllocated() const { return nextNode_; }

    /** Consistency check: ordering, fill and reachability. */
    bool validate();

  private:
    struct Node;
    struct OpenTag {};

    BTree(EnvyStore &store, Addr base, std::uint64_t bytes, OpenTag);

    Addr nodeAddr(std::uint64_t idx) const
    {
        return base_ + headerBytes + idx * nodeBytes;
    }

    /** Address of value/child word @p i of node @p idx — the 8-byte
     *  aligned words that single-word publishes and updates target. */
    Addr valAddr(std::uint64_t idx, std::uint32_t i) const
    {
        return nodeAddr(idx) + 8 + 8 * leafCapacity + 8 * i;
    }

    std::uint64_t allocNode();
    void freeNode(std::uint64_t idx);
    /** One-word publish of @p idx at @p link, keeping the in-core
     *  root mirror coherent when @p link is the header root word. */
    void publish(Addr link, std::uint64_t idx);
    Node load(std::uint64_t idx);
    void storeNode(const Node &n);
    void persistHeader();

    bool nodeFull(const Node &n) const;
    /** Build fresh left/right halves of full @p c (allocating their
     *  slots, storing nothing yet); returns the separator key that
     *  routes to the right half. */
    std::uint64_t splitHalves(const Node &c, Node &left, Node &right);
    /** Split full @p c (child @p childPos of non-full @p parent) via
     *  fresh copies and one pointer swing at @p parentLink; returns
     *  the new parent version. */
    Node splitChild(const Node &parent, Addr parentLink,
                    std::uint32_t childPos, const Node &c);
    /** Split a full root: fresh halves + fresh root, swing the
     *  header root word. */
    void splitRoot(const Node &root);

    bool validateNode(std::uint64_t idx, std::uint32_t depth,
                      std::uint64_t lo, std::uint64_t hi,
                      std::uint64_t &seen);

    // Region header: magic, root, nextNode, count, height.
    static constexpr std::uint64_t headerBytes = 40;
    static constexpr std::uint64_t magic = 0x454E56592D425452ull;

    EnvyStore &store_;
    Addr base_;
    std::uint64_t capacityNodes_;
    std::uint64_t root_ = 0;
    std::uint64_t nextNode_ = 0;
    std::uint64_t count_ = 0;
    std::uint32_t height_ = 1;
    /** Slots retired by node copies, ready for reuse (in-core only;
     *  open() rebuilds it as allocated-minus-reachable). */
    std::vector<std::uint64_t> freeNodes_;
};

} // namespace envy

#endif // ENVY_DB_BTREE_HH
