/**
 * @file
 * A B-tree that lives *inside* the eNVy linear array.
 *
 * The paper's simulator models index trees ("each index tree as a
 * B-Tree with 32 entries per node", §5.2); this is the functional
 * counterpart: a real, persistent B-tree whose nodes are 256-byte
 * blocks of EnvyStore memory accessed with ordinary word reads and
 * writes — demonstrating the paper's core claim that a memory-mapped
 * persistent store needs no "save" format or block I/O layer.
 *
 * Node layout (256 bytes):
 *   [0]   type (1 = leaf, 0 = internal)
 *   [1]   count
 *   [2-7] reserved
 *   internal: count keys (8 B each) and count+1 children (8 B)
 *   leaf:     count (key, value) pairs (8 B each)
 *
 * That allows 15 pairs per leaf and 14 keys per internal node.  The
 * workload generator (workload/tpca.hh) separately reproduces the
 * paper's exact 32-entry node *shape* for the timing experiments.
 *
 * Keys are unique uint64; values are uint64 (record addresses).
 * Inserts and updates only — TPC-A never deletes.  Node storage is
 * bump-allocated from a caller-supplied region of the array.
 */

#ifndef ENVY_DB_BTREE_HH
#define ENVY_DB_BTREE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "envy/envy_store.hh"

namespace envy {

class BTree
{
  public:
    static constexpr std::uint32_t nodeBytes = 256;
    static constexpr std::uint32_t leafCapacity = 15;
    static constexpr std::uint32_t internalKeys = 14;

    /**
     * Create a fresh tree.
     *
     * @param store   backing eNVy store
     * @param base    first byte of the node region
     * @param bytes   size of the node region
     */
    BTree(EnvyStore &store, Addr base, std::uint64_t bytes);

    /** Re-open a tree previously created at @p base (persistence). */
    static BTree open(EnvyStore &store, Addr base, std::uint64_t bytes);

    /** Insert a new key or update an existing one. */
    void insert(std::uint64_t key, std::uint64_t value);

    std::optional<std::uint64_t> lookup(std::uint64_t key);

    /** Visit all (key, value) pairs in ascending key order. */
    void scan(const std::function<void(std::uint64_t,
                                       std::uint64_t)> &fn);

    std::uint64_t size() const { return count_; }
    std::uint32_t height() const { return height_; }
    std::uint64_t nodesAllocated() const { return nextNode_; }

    /** Consistency check: ordering, fill and reachability. */
    bool validate();

  private:
    struct Node;
    struct OpenTag {};

    BTree(EnvyStore &store, Addr base, std::uint64_t bytes, OpenTag);

    Addr nodeAddr(std::uint64_t idx) const
    {
        return base_ + headerBytes + idx * nodeBytes;
    }

    std::uint64_t allocNode();
    Node load(std::uint64_t idx);
    void storeNode(const Node &n);
    void persistHeader();

    /**
     * Insert into subtree @p idx.  If the child splits, returns the
     * separator key and the new right sibling's index.
     */
    struct Split
    {
        bool happened = false;
        std::uint64_t key = 0;
        std::uint64_t right = 0;
    };
    Split insertInto(std::uint64_t idx, std::uint64_t key,
                     std::uint64_t value, bool &added);

    bool validateNode(std::uint64_t idx, std::uint32_t depth,
                      std::uint64_t lo, std::uint64_t hi,
                      std::uint64_t &seen);

    // Region header: magic, root, nextNode, count, height.
    static constexpr std::uint64_t headerBytes = 40;
    static constexpr std::uint64_t magic = 0x454E56592D425452ull;

    EnvyStore &store_;
    Addr base_;
    std::uint64_t capacityNodes_;
    std::uint64_t root_ = 0;
    std::uint64_t nextNode_ = 0;
    std::uint64_t count_ = 0;
    std::uint32_t height_ = 1;
};

} // namespace envy

#endif // ENVY_DB_BTREE_HH
