#include "db/tpca_db.hh"

#include <vector>

#include "common/logging.hh"

namespace envy {

TpcaDatabase::TpcaDatabase(EnvyStore &store, const Params &params)
    : store_(store), params_(params)
{
    ENVY_ASSERT(params.accounts > 0, "need at least one account");
    tellers_ = (params.accounts + params.accountsPerTeller - 1) /
               params.accountsPerTeller;
    branches_ =
        (tellers_ + params.tellersPerBranch - 1) /
        params.tellersPerBranch;

    // Layout: three record tables, then three index regions sized
    // generously for the B-tree's bump allocator.
    Addr cursor = 64; // keep address 0 free
    auto place = [&cursor](std::uint64_t bytes) {
        const Addr at = cursor;
        cursor += bytes;
        return at;
    };
    auto tree_bytes = [](std::uint64_t keys) {
        // Leaves hold >= 7 pairs after splits; triple it for slack.
        return (keys / 4 + 64) * BTree::nodeBytes;
    };

    branchRecs_ = std::make_unique<RecordTable>(
        store_, place(branches_ * params.recordBytes),
        params.recordBytes, branches_);
    tellerRecs_ = std::make_unique<RecordTable>(
        store_, place(tellers_ * params.recordBytes),
        params.recordBytes, tellers_);
    accountRecs_ = std::make_unique<RecordTable>(
        store_, place(params.accounts * params.recordBytes),
        params.recordBytes, params.accounts);

    const Addr b_idx = place(tree_bytes(branches_));
    const Addr t_idx = place(tree_bytes(tellers_));
    const Addr a_idx = place(tree_bytes(params.accounts));
    ENVY_ASSERT(cursor <= store.size(),
                "database does not fit: needs ", cursor, " bytes, ",
                "store has ", store.size());

    branchIdx_ = std::make_unique<BTree>(store_, b_idx,
                                         tree_bytes(branches_));
    tellerIdx_ = std::make_unique<BTree>(store_, t_idx,
                                         tree_bytes(tellers_));
    accountIdx_ = std::make_unique<BTree>(store_, a_idx,
                                          tree_bytes(params.accounts));

    // Load phase: balances and index entries.
    for (std::uint64_t b = 0; b < branches_; ++b) {
        branchRecs_->setBalance(b, 0);
        branchIdx_->insert(b, branchRecs_->addrOf(b));
    }
    for (std::uint64_t t = 0; t < tellers_; ++t) {
        tellerRecs_->setBalance(t, 0);
        tellerIdx_->insert(t, tellerRecs_->addrOf(t));
    }
    for (std::uint64_t a = 0; a < params.accounts; ++a) {
        accountRecs_->setBalance(a, params.initialBalance);
        accountIdx_->insert(a, accountRecs_->addrOf(a));
    }
}

std::uint64_t
TpcaDatabase::tellerOf(std::uint64_t account) const
{
    return account / params_.accountsPerTeller;
}

void
TpcaDatabase::run(std::uint64_t account, std::int64_t amount)
{
    ENVY_ASSERT(account < params_.accounts, "no such account");
    const std::uint64_t teller = tellerOf(account);
    const std::uint64_t branch = teller / params_.tellersPerBranch;

    // The three index searches of §5.2 (the record address each
    // returns is used, so the lookups cannot be optimised away).
    const Addr a_rec = accountIdx_->lookup(account).value();
    const Addr t_rec = tellerIdx_->lookup(teller).value();
    const Addr b_rec = branchIdx_->lookup(branch).value();

    store_.writeU64(a_rec, store_.readU64(a_rec) + amount);
    store_.writeU64(t_rec, store_.readU64(t_rec) + amount);
    store_.writeU64(b_rec, store_.readU64(b_rec) + amount);
}

void
TpcaDatabase::runAtomic(ShadowManager &txns, std::uint64_t account,
                        std::int64_t amount, int fail_at)
{
    ENVY_ASSERT(account < params_.accounts, "no such account");
    const std::uint64_t teller = tellerOf(account);
    const std::uint64_t branch = teller / params_.tellersPerBranch;

    const Addr recs[3] = {accountIdx_->lookup(account).value(),
                          tellerIdx_->lookup(teller).value(),
                          branchIdx_->lookup(branch).value()};

    const ShadowManager::TxnId txn = txns.begin();
    for (int i = 0; i < 3; ++i) {
        if (fail_at == i) {
            txns.abort(txn);
            return;
        }
        std::uint8_t buf[8];
        txns.read(recs[i], buf);
        std::uint64_t v = 0;
        for (int b = 7; b >= 0; --b)
            v = (v << 8) | buf[b];
        v += static_cast<std::uint64_t>(amount);
        for (int b = 0; b < 8; ++b)
            buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
        txns.write(txn, recs[i], buf);
    }
    txns.commit(txn);
}

std::int64_t
TpcaDatabase::accountBalance(std::uint64_t account)
{
    return accountRecs_->balance(account);
}

std::int64_t
TpcaDatabase::tellerBalance(std::uint64_t teller)
{
    return tellerRecs_->balance(teller);
}

std::int64_t
TpcaDatabase::branchBalance(std::uint64_t branch)
{
    return branchRecs_->balance(branch);
}

bool
TpcaDatabase::consistent()
{
    // Teller sums must equal branch balances; account sums must equal
    // branch balance plus the initial float.
    std::vector<std::int64_t> teller_sum(branches_, 0);
    std::vector<std::int64_t> account_sum(branches_, 0);
    for (std::uint64_t t = 0; t < tellers_; ++t)
        teller_sum[t / params_.tellersPerBranch] += tellerBalance(t);
    for (std::uint64_t a = 0; a < params_.accounts; ++a) {
        account_sum[tellerOf(a) / params_.tellersPerBranch] +=
            accountBalance(a) - params_.initialBalance;
    }
    for (std::uint64_t b = 0; b < branches_; ++b) {
        if (teller_sum[b] != branchBalance(b))
            return false;
        if (account_sum[b] != branchBalance(b))
            return false;
    }
    // Index integrity: every key resolves to the matching record.
    if (!accountIdx_->validate() || !tellerIdx_->validate() ||
        !branchIdx_->validate())
        return false;
    for (std::uint64_t a = 0; a < params_.accounts;
         a += std::max<std::uint64_t>(1, params_.accounts / 64)) {
        if (accountIdx_->lookup(a) != accountRecs_->addrOf(a))
            return false;
    }
    return true;
}

} // namespace envy
