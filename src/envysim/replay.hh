/**
 * @file
 * Trace replay: drive a captured storage-access trace through an
 * EnvyStore and report what the machinery did.  Useful for A/B
 * comparisons between configurations (same byte stream, different
 * policy/geometry) and for regression-testing against recorded
 * workloads.
 */

#ifndef ENVY_ENVYSIM_REPLAY_HH
#define ENVY_ENVYSIM_REPLAY_HH

#include "envy/envy_store.hh"
#include "workload/trace.hh"

namespace envy {

struct ReplayResult
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t cows = 0;
    std::uint64_t bufferHits = 0;
    std::uint64_t flushes = 0;
    std::uint64_t cleans = 0;
    double cleaningCost = 0.0;
};

/**
 * Replay @p trace against @p store.  Accesses beyond the store's
 * size are wrapped (so a trace captured on a larger system still
 * exercises a smaller one).
 */
ReplayResult replayTrace(EnvyStore &store, const Trace &trace);

} // namespace envy

#endif // ENVY_ENVYSIM_REPLAY_HH
