/**
 * @file
 * Parallel experiment engine.
 *
 * The paper's results are parameter sweeps — Figures 6–15 each re-run
 * the simulator once per (parameter, locality) point — and the
 * crash-point explorer multiplies that by every registered crash
 * point.  Every such run constructs its own System (store, flash,
 * SRAM, policy, RNGs), so runs share no mutable state and
 * parallelise embarrassingly.  This file is the only place in the
 * tree allowed to create threads (enforced by envy-lint's
 * no-naked-thread rule): all concurrency flows through ParallelRunner
 * so the isolation argument has to be made exactly once.
 *
 * Determinism contract: results are delivered in submission order,
 * and each task derives everything from its own arguments and seeds.
 * `--jobs 1` (or ENVY_JOBS=1) executes tasks inline at submission —
 * byte-for-byte today's serial behaviour — which is what the
 * determinism tests compare the parallel runs against.
 */

#ifndef ENVY_ENVYSIM_PARALLEL_HH
#define ENVY_ENVYSIM_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace envy {

/**
 * Fixed pool of worker threads draining a bounded task queue.
 *
 * - submit() enqueues a task and returns its submission index;
 *   it blocks while the queue is full (bounded memory even for
 *   million-task explorations).
 * - With jobs == 1 no thread is created and submit() runs the task
 *   inline, preserving exact serial semantics.
 * - Tasks must not touch shared mutable state; each should own its
 *   System.  The crash-point sink is thread-local, so a
 *   FaultInjector armed inside a task stays confined to it.
 * - Exceptions are captured per task; wait() rethrows the one from
 *   the lowest submission index (first error wins, matching what a
 *   serial run would have hit first).
 */
class ParallelRunner
{
  public:
    /** @param jobs worker threads; 0 picks defaultJobs(). */
    explicit ParallelRunner(unsigned jobs = 0);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    unsigned jobs() const { return jobs_; }

    /** Enqueue @p task; returns its submission index. */
    std::size_t submit(std::function<void()> task);

    /** Block until every submitted task has run; rethrow the first
     *  (lowest submission index) captured exception, if any. */
    void wait();

    /**
     * Worker count when the caller does not specify one: ENVY_JOBS
     * if set, else std::thread::hardware_concurrency() (min 1).
     */
    static unsigned defaultJobs();

  private:
    struct Task
    {
        std::size_t index;
        std::function<void()> fn;
    };

    void workerLoop();
    void runTask(const Task &task);
    void noteException(std::size_t index);

    unsigned jobs_;
    std::vector<std::thread> workers_;

    // condition_variable_any: waits on the annotated envy::Mutex
    // directly (BasicLockable), so `-Wthread-safety` sees the queue
    // state as guarded even across the waits.
    Mutex mutex_;
    std::condition_variable_any queueSpace_; //!< signalled on dequeue
    std::condition_variable_any queueWork_;  //!< signalled on enqueue
    std::condition_variable_any allDone_;    //!< on completion
    std::deque<Task> queue_ ENVY_GUARDED_BY(mutex_);
    std::size_t submitted_ ENVY_GUARDED_BY(mutex_) = 0;
    std::size_t completed_ ENVY_GUARDED_BY(mutex_) = 0;
    bool stopping_ ENVY_GUARDED_BY(mutex_) = false;

    // First-error propagation (by submission index, not wall clock).
    std::exception_ptr firstError_ ENVY_GUARDED_BY(mutex_);
    std::size_t firstErrorIndex_ ENVY_GUARDED_BY(mutex_) = 0;
};

/**
 * Sweep harness for the bench tables: benches defer one closure per
 * table cell (in row-major order), run() fans them out and hands the
 * cell strings back in submission order, and the table is assembled
 * exactly as the serial code would have — so the printed output is
 * byte-identical at any job count.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(unsigned jobs = 0) : jobs_(jobs) {}

    /** Register a cell computation; returns its index. */
    std::size_t defer(std::function<std::string()> cell);

    /** Run all deferred cells; results indexed by defer() order. */
    std::vector<std::string> run();

  private:
    unsigned jobs_;
    std::vector<std::function<std::string()>> cells_;
};

/**
 * Fan @p tasks out across @p jobs workers; results in task order.
 * For benches whose sweep points produce structured results rather
 * than strings (e.g. TimedResult rows that feed a second table).
 */
template <typename R>
std::vector<R>
parallelMap(unsigned jobs, std::vector<std::function<R()>> tasks)
{
    std::vector<R> out(tasks.size());
    ParallelRunner runner(jobs);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        runner.submit([&out, &tasks, i] { out[i] = tasks[i](); });
    }
    runner.wait();
    return out;
}

} // namespace envy

#endif // ENVY_ENVYSIM_PARALLEL_HH
