#include "envysim/replay.hh"

#include <algorithm>

#include "common/logging.hh"

namespace envy {

ReplayResult
replayTrace(EnvyStore &store, const Trace &trace)
{
    Controller &ctl = store.controller();
    const std::uint64_t size = store.size();
    ENVY_ASSERT(size > 0, "empty store");

    const std::uint64_t cows0 = ctl.statCows.value();
    const std::uint64_t hits0 = ctl.statBufferHits.value();
    const std::uint64_t flushes0 =
        store.writeBuffer().statFlushes.value();
    const std::uint64_t cleans0 =
        store.cleanerRef().statCleans.value();
    const std::uint64_t programs0 =
        store.cleanerRef().statCleanerPrograms.value();

    ReplayResult r;
    std::uint8_t buf[256];
    for (const StorageAccess &a : trace) {
        const std::uint16_t n = std::min<std::uint16_t>(
            a.bytes, static_cast<std::uint16_t>(sizeof(buf)));
        Addr addr = a.addr % size;
        if (addr + n > size)
            addr = size - n;
        if (a.isWrite) {
            std::fill_n(buf, n, static_cast<std::uint8_t>(a.addr));
            ctl.write(addr, {buf, n});
            ++r.writes;
        } else {
            ctl.read(addr, {buf, n});
            ++r.reads;
        }
    }

    r.cows = ctl.statCows.value() - cows0;
    r.bufferHits = ctl.statBufferHits.value() - hits0;
    r.flushes = store.writeBuffer().statFlushes.value() - flushes0;
    r.cleans = store.cleanerRef().statCleans.value() - cleans0;
    const std::uint64_t programs =
        store.cleanerRef().statCleanerPrograms.value() - programs0;
    r.cleaningCost =
        r.flushes ? static_cast<double>(programs) /
                        static_cast<double>(r.flushes)
                  : 0.0;
    return r;
}

} // namespace envy
