#include "envysim/experiment.hh"

#include <cstdint>
#include <cstdio>
#include <iostream>

#include "common/logging.hh"

namespace envy {

ResultTable::ResultTable(std::string title) : title_(std::move(title))
{
}

void
ResultTable::setColumns(std::initializer_list<std::string> names)
{
    columns_.assign(names);
}

void
ResultTable::addRow(std::initializer_list<std::string> cells)
{
    ENVY_ASSERT(cells.size() == columns_.size(),
                "row width does not match the header");
    rows_.emplace_back(cells);
}

void
ResultTable::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

std::string
ResultTable::num(double v, int digits)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
ResultTable::integer(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
ResultTable::percent(double fraction, int digits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits,
                  fraction * 100.0);
    return buf;
}

void
ResultTable::print() const
{
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        width[c] = columns_[c].size();
        for (const auto &row : rows_)
            width[c] = std::max(width[c], row[c].size());
    }

    std::size_t total = columns_.empty() ? 0 : 2 * columns_.size() - 2;
    for (auto w : width)
        total += w;

    std::cout << "\n== " << title_ << " ==\n";
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::printf("%-*s", static_cast<int>(width[c]),
                        cells[c].c_str());
            if (c + 1 < cells.size())
                std::printf("  ");
        }
        std::printf("\n");
    };
    printRow(columns_);
    std::cout << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
    for (const auto &n : notes_)
        std::cout << "note: " << n << "\n";
    std::cout.flush();
}

} // namespace envy
