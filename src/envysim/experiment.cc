#include "envysim/experiment.hh"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.hh"
#include "envysim/parallel.hh"

namespace envy {

ResultTable::ResultTable(std::string title) : title_(std::move(title))
{
}

void
ResultTable::setColumns(std::initializer_list<std::string> names)
{
    columns_.assign(names);
}

void
ResultTable::addRow(std::initializer_list<std::string> cells)
{
    addRow(std::vector<std::string>(cells));
}

void
ResultTable::addRow(std::vector<std::string> cells)
{
    ENVY_ASSERT(cells.size() == columns_.size(),
                "row width does not match the header");
    rows_.push_back(std::move(cells));
}

void
ResultTable::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

std::string
ResultTable::num(double v, int digits)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
ResultTable::integer(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
ResultTable::percent(double fraction, int digits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits,
                  fraction * 100.0);
    return buf;
}

std::string
ResultTable::toString() const
{
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        width[c] = columns_[c].size();
        for (const auto &row : rows_)
            width[c] = std::max(width[c], row[c].size());
    }

    // One shared gap constant drives both the inter-column padding
    // and the separator width under the header.
    std::size_t total =
        columns_.empty() ? 0 : columnGap * (columns_.size() - 1);
    for (auto w : width)
        total += w;

    std::ostringstream os;
    os << "\n== " << title_ << " ==\n";
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(width[c] - cells[c].size() +
                                      columnGap,
                                  ' ');
            }
        }
        os << "\n";
    };
    printRow(columns_);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
    for (const auto &n : notes_)
        os << "note: " << n << "\n";
    return os.str();
}

void
ResultTable::print() const
{
    std::cout << toString();
    std::cout.flush();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

namespace {

void
appendStringArray(std::ostringstream &os,
                  const std::vector<std::string> &items)
{
    os << "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << ", ";
        os << '"' << jsonEscape(items[i]) << '"';
    }
    os << "]";
}

} // namespace

std::string
ResultTable::toJson() const
{
    std::ostringstream os;
    os << "{\"title\": \"" << jsonEscape(title_)
       << "\", \"columns\": ";
    appendStringArray(os, columns_);
    os << ", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            os << ", ";
        appendStringArray(os, rows_[r]);
    }
    os << "], \"notes\": ";
    appendStringArray(os, notes_);
    if (wallMs_ >= 0.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.3f", wallMs_);
        os << ", \"wall_ms\": " << buf;
    }
    os << "}";
    return os.str();
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opt;
    opt.jobs = ParallelRunner::defaultJobs();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1) {
                std::fprintf(stderr, "%s: bad --jobs value '%s'\n",
                             argv[0], argv[i]);
                std::exit(2);
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.tracePath = argv[++i];
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--time") {
            opt.time = true;
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s'\n"
                         "usage: %s [--jobs N] [--json PATH] "
                         "[--trace PATH] [--smoke] [--time]\n",
                         argv[0], arg.c_str(), argv[0]);
            std::exit(2);
        }
    }
    if (!opt.tracePath.empty() && opt.jobs != 1) {
        std::fprintf(stderr,
                     "%s: --trace forces --jobs 1 (trace sinks are "
                     "thread-local)\n",
                     argv[0]);
        opt.jobs = 1;
    }
    return opt;
}

BenchReport::BenchReport(std::string bench_name,
                         const BenchOptions &opt)
    : bench_(std::move(bench_name)), opt_(opt)
{
    if (!opt_.tracePath.empty()) {
        traceSink_ =
            std::make_unique<obs::JsonlFileSink>(opt_.tracePath);
        prevSink_ = obs::trace::setTraceSink(traceSink_.get());
    }
    mark_ = std::chrono::steady_clock::now();
}

BenchReport::~BenchReport()
{
    if (traceSink_)
        obs::trace::setTraceSink(prevSink_);
}

void
BenchReport::add(const ResultTable &table)
{
    table.print();
    tables_.push_back(table);
    if (opt_.time) {
        const auto now = std::chrono::steady_clock::now();
        tables_.back().setWallMs(
            std::chrono::duration<double, std::milli>(now - mark_)
                .count());
        mark_ = now;
    }
}

void
BenchReport::addMetrics(const std::string &label,
                        const obs::MetricsSnapshot &snapshot)
{
    metrics_.emplace_back(label, snapshot.toJson());
}

std::string
BenchReport::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\": \"envy-bench-v2\", \"bench\": \""
       << jsonEscape(bench_) << "\", \"smoke\": "
       << (opt_.smoke ? "true" : "false") << ", \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (i)
            os << ", ";
        os << tables_[i].toJson();
    }
    os << "]";
    if (!metrics_.empty()) {
        os << ", \"metrics\": {";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            if (i)
                os << ", ";
            os << '"' << jsonEscape(metrics_[i].first)
               << "\": " << metrics_[i].second;
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

int
BenchReport::finish()
{
    if (opt_.jsonPath.empty())
        return 0;
    std::ofstream out(opt_.jsonPath);
    if (!out) {
        std::fprintf(stderr, "bench: cannot write %s\n",
                     opt_.jsonPath.c_str());
        return 1;
    }
    out << toJson() << "\n";
    return out.good() ? 0 : 1;
}

} // namespace envy
