/**
 * @file
 * key=value command-line option parsing for the examples and
 * benchmark harnesses (e.g. `policy_explorer policy=hybrid
 * locality=10/90 segments=128`).
 */

#ifndef ENVY_ENVYSIM_CONFIG_HH
#define ENVY_ENVYSIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

#include "envy/policy/cleaning_policy.hh"

namespace envy {

struct EnvyConfig;

class Options
{
  public:
    Options(int argc, char **argv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** greedy | fifo | locality-gathering (or lg) | hybrid. */
    PolicyKind getPolicy(const std::string &key, PolicyKind def) const;

    /**
     * Read the durable-persistence keys (docs/PERSISTENCE.md) into
     * @p cfg: `persist=PATH` backs the store with a file at PATH —
     * reopening an existing store replays the journal and recovers —
     * and `persist_checkpoint_bytes=N` bounds journal growth.
     */
    void applyPersist(EnvyConfig &cfg) const;

    /**
     * Read the concurrency keys (docs/PERFORMANCE.md §Concurrency)
     * into @p cfg: `num_workers=N` client threads, `num_cleaners=N`
     * background cleaner threads, `cleaner_watermark=N` free pages
     * per partition below which they engage (0 = auto).
     */
    void applyConcurrency(EnvyConfig &cfg) const;

    /** Keys that were provided but never read (typo detection). */
    void warnUnused() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> used_;
};

} // namespace envy

#endif // ENVY_ENVYSIM_CONFIG_HH
