#include "envysim/policy_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"
#include "envy/cleaner.hh"
#include "envy/mmu.hh"
#include "envy/page_table.hh"
#include "envy/segment_space.hh"
#include "envy/wear_leveler.hh"
#include "flash/flash_array.hh"
#include "sram/sram_array.hh"

namespace envy {

namespace {

Geometry
geometryFor(const PolicySimParams &p)
{
    Geometry g;
    g.pageSize = 8; // metadata-only: width is irrelevant, keep cheap
    g.blockBytes = static_cast<std::uint32_t>(p.pagesPerSegment);
    std::uint32_t bpc = 16;
    while (bpc > 1 && p.numSegments % bpc != 0)
        bpc /= 2;
    g.blocksPerChip = bpc;
    g.numBanks = p.numSegments / bpc;
    g.targetUtilization = p.utilization;
    return g;
}

} // namespace

PolicySimResult
runPolicySim(const PolicySimParams &params)
{
    const Geometry geom = geometryFor(params);
    if (const char *problem = geom.validate())
        ENVY_FATAL("sim: bad policy-sim geometry: ", problem);

    const std::uint64_t logical_pages =
        geom.effectiveLogicalPages().value();

    StatGroup root("policySim");
    obs::MetricsRegistry metrics;
    FlashArray flash(geom, FlashTiming{}, false, &root, &metrics);
    const std::uint64_t table_bytes =
        PageTable::bytesNeeded(geom.physicalPages().value());
    SramArray sram(table_bytes +
                   SegmentSpace::bytesNeeded(geom.numSegments()).value());
    PageTable table(sram, 0, geom.physicalPages().value());
    Mmu mmu(table, 1024, &root);
    SegmentSpace space(flash, sram, table_bytes, &metrics);
    WearLeveler wear(params.wearThreshold, &root, &metrics);
    Cleaner cleaner(space, mmu, &wear, &root, &metrics);

    // Measured-window figures, published so bench JSON can embed a
    // snapshot that provably matches the printed table cells.
    obs::Gauge simCost = metrics.gauge(
        "sim.cleaning_cost", "programs/flush",
        "measured-window cleaning cost (the Fig 6 metric)");
    obs::Gauge simWrites = metrics.gauge(
        "sim.measured_writes", "pages",
        "host flushes inside the measurement window");
    obs::Gauge simCleans = metrics.gauge(
        "sim.measured_cleans", "cleans",
        "segment cleans inside the measurement window");

    auto policy = makePolicy(params.policy, params.partitionSize);
    policy->attach(space, cleaner);

    const std::uint32_t segs = space.numLogical();
    if (params.placement == PolicySimParams::Placement::Striped) {
        for (std::uint64_t p = 0; p < logical_pages; ++p) {
            const auto seg = static_cast<std::uint32_t>(p % segs);
            const FlashPageAddr addr =
                flash.appendPage(space.physOf(seg), LogicalPageId(p));
            mmu.mapToFlash(LogicalPageId(p), addr);
        }
    } else {
        // Sequential: an even share of consecutive logical pages per
        // segment, like a freshly loaded database.
        const std::uint64_t share = (logical_pages + segs - 1) / segs;
        for (std::uint64_t p = 0; p < logical_pages; ++p) {
            const auto seg = static_cast<std::uint32_t>(p / share);
            const FlashPageAddr addr =
                flash.appendPage(space.physOf(seg), LogicalPageId(p));
            mmu.mapToFlash(LogicalPageId(p), addr);
        }
    }

    BimodalWriteWorkload workload(logical_pages, params.locality,
                                  params.seed);
    std::uint64_t hot_offset = 0;

    // One write = copy-on-write plus immediate flush (§4 experiments
    // have no buffering concerns).  The optional hot-region rotation
    // models a workload whose locality moves over time.
    auto writeOnce = [&]() {
        const LogicalPageId page(
            (workload.nextPage().value() + hot_offset) %
            logical_pages);
        const PageTable::Location loc = mmu.lookup(page);
        ENVY_ASSERT(loc.kind == PageTable::LocKind::Flash,
                    "policy sim page not in flash");
        const std::uint32_t origin_seg =
            space.logOf(loc.flash.segment);
        const std::uint64_t origin = policy->originTag(origin_seg);
        flash.invalidatePage(loc.flash);
        const std::uint32_t dest = policy->flushDestination(origin);
        const FlashPageAddr addr =
            flash.appendPage(space.physOf(dest), page);
        mmu.mapToFlash(page, addr);
        space.noteFlush();
    };

    const std::uint64_t chunk =
        params.chunkWrites ? params.chunkWrites : logical_pages;

    // Steady state at high locality is reached on the *cold* data's
    // timescale: size the warmup for roughly two cold turnovers.
    std::uint32_t warmup = params.warmupChunks;
    if (warmup == 0) {
        const double cold_frac = 1.0 - params.locality.hotFraction;
        const double cold_access =
            std::max(1.0 - params.locality.hotAccess, 0.02);
        const double turnovers = 2.0 * cold_frac / cold_access;
        warmup = static_cast<std::uint32_t>(
            std::clamp(turnovers + 2.0, 4.0, 64.0));
    }
    std::uint32_t measure = params.measureChunks;
    if (measure == 0)
        measure = std::max<std::uint32_t>(2, warmup / 4);

    PolicySimResult result;
    for (std::uint32_t c = 0; c < warmup; ++c) {
        for (std::uint64_t i = 0; i < chunk; ++i)
            writeOnce();
        ++result.warmupChunksUsed;
    }
    result.warmupMetrics = metrics.snapshot();

    // Measurement window.
    const std::uint64_t programs0 = cleaner.statCleanerPrograms.value();
    const std::uint64_t flushes0 = space.flushClock();
    const std::uint64_t cleans0 = cleaner.statCleans.value();
    for (std::uint32_t c = 0; c < measure; ++c) {
        hot_offset = (hot_offset + params.shiftPerChunk) %
                     logical_pages;
        for (std::uint64_t i = 0; i < chunk; ++i)
            writeOnce();
    }

    const std::uint64_t programs =
        cleaner.statCleanerPrograms.value() - programs0;
    result.writes = space.flushClock() - flushes0;
    result.cleans = cleaner.statCleans.value() - cleans0;
    result.cleaningCost =
        result.writes
            ? static_cast<double>(programs) /
                  static_cast<double>(result.writes)
            : 0.0;
    result.avgCleanedUtilization =
        result.cleans ? static_cast<double>(programs) /
                            (static_cast<double>(result.cleans) *
                             asDouble(geom.pagesPerSegment()))
                      : 0.0;
    result.wearSpread = wear.spread(space);
    result.wearRotations = wear.statRotations.value();

    simCost.set(result.cleaningCost);
    simWrites.set(static_cast<double>(result.writes));
    simCleans.set(static_cast<double>(result.cleans));
    result.finalMetrics = metrics.snapshot();
    return result;
}

} // namespace envy
