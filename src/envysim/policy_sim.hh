/**
 * @file
 * Cleaning-policy simulator (paper §4, Figures 6, 8, 9, 10).
 *
 * The §4 experiments study cleaning efficiency in isolation: a stream
 * of page writes with a chosen locality hits an array at a chosen
 * utilization, and the metric is the *cleaning cost* — cleaner
 * programs per flushed page.  Timing, the write buffer and the TPC-A
 * shape play no role ("only write locality and write access patterns
 * affect cleaning efficiency"), so each write is modelled as an
 * immediate copy-on-write plus flush: invalidate the old copy, ask
 * the policy for a destination, program, remap.
 *
 * The simulator runs on the real SegmentSpace/Cleaner/policy stack in
 * metadata-only mode, warms up until the measured cost stabilises,
 * then measures.
 */

#ifndef ENVY_ENVYSIM_POLICY_SIM_HH
#define ENVY_ENVYSIM_POLICY_SIM_HH

#include <cstdint>

#include "envy/policy/cleaning_policy.hh"
#include "obs/metrics.hh"
#include "workload/bimodal.hh"

namespace envy {

struct PolicySimParams
{
    std::uint32_t numSegments = 128; //!< physical (one is reserve)
    std::uint64_t pagesPerSegment = 4096; //!< paper: 65536
    double utilization = 0.8;
    PolicyKind policy = PolicyKind::Hybrid;
    std::uint32_t partitionSize = 16;
    LocalitySpec locality;          //!< default 50/50 = uniform
    std::uint64_t seed = 42;
    std::uint64_t wearThreshold = 1ull << 60; //!< off by default

    /**
     * Initial data placement.  Sequential mirrors a database load:
     * the (low-address) hot data starts clustered in low segments,
     * which is the regime §4.3's gathering maintains.  Striped starts
     * every segment with the same hot/cold mixture — an adversarial
     * ablation that makes gathering build the sort from scratch.
     */
    enum class Placement { Sequential, Striped };
    Placement placement = Placement::Sequential;

    /** Writes per chunk; 0 = one array's worth of live pages. */
    std::uint64_t chunkWrites = 0;
    /**
     * Workload shift: during measurement, rotate the hot region by
     * this many pages after every chunk (0 = stationary).  Exercises
     * the policies' write-rate tracking: a policy that never forgets
     * keeps free space allocated to pages that went cold.
     */
    std::uint64_t shiftPerChunk = 0;
    /**
     * Warmup chunks; 0 = auto, sized so the *cold* data turns over
     * about twice (high-locality steady state is reached on the cold
     * timescale, not the hot one).
     */
    std::uint32_t warmupChunks = 0;
    /** Measurement chunks; 0 = auto (a quarter of the warmup). */
    std::uint32_t measureChunks = 0;
};

struct PolicySimResult
{
    double cleaningCost = 0.0;      //!< measured window
    std::uint64_t writes = 0;       //!< measured window writes
    std::uint64_t cleans = 0;       //!< measured window cleans
    std::uint64_t wearSpread = 0;   //!< erase-cycle max-min at end
    std::uint64_t wearRotations = 0;
    double avgCleanedUtilization = 0.0;
    std::uint32_t warmupChunksUsed = 0;

    /**
     * Metrics snapshots (docs/OBSERVABILITY.md) at the two window
     * boundaries.  The measured figures above are derived from their
     * counter deltas — `sim.cleaning_cost` in finalMetrics equals
     * cleaningCost by construction, which is what lets bench tables
     * embed a snapshot that provably matches their printed cells.
     */
    obs::MetricsSnapshot warmupMetrics;
    obs::MetricsSnapshot finalMetrics;
};

PolicySimResult runPolicySim(const PolicySimParams &params);

} // namespace envy

#endif // ENVY_ENVYSIM_POLICY_SIM_HH
