#include "envysim/system.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace envy {

EnvyConfig
paperConfig(double utilization, double scale)
{
    EnvyConfig cfg;
    cfg.geom = Geometry::paperSystem();
    cfg.geom.targetUtilization = utilization;
    if (scale < 1.0) {
        // Shrink the segment count, never the segment size: the cost
        // of an erase per recovered page is scale-invariant that way.
        auto banks = static_cast<std::uint32_t>(
            cfg.geom.numBanks * scale + 0.5);
        cfg.geom.numBanks = std::max<std::uint32_t>(banks, 2);
    }
    cfg.storeData = false;
    cfg.policy = PolicyKind::Hybrid;
    cfg.partitionSize = 16;
    cfg.placement = Controller::Placement::Aged;
    cfg.agedStride = cfg.partitionSize;
    cfg.autoDrain = false;
    return cfg;
}

EnvyConfig
tinyConfig()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.storeData = true;
    cfg.autoDrain = true;
    return cfg;
}

TimedParams
paperTimedParams(double request_rate, double utilization, double scale)
{
    TimedParams p;
    p.envy = paperConfig(utilization, scale);
    p.tpca =
        TpcaConfig::forStoreBytes(p.envy.geom.logicalBytes().value());
    p.requestRate = request_rate;
    if (scale >= 1.0) {
        p.warmupSeconds = 60.0;
        p.measureSeconds = 60.0;
    } else {
        p.warmupSeconds = 15.0;
        p.measureSeconds = 15.0;
    }
    return p;
}

bool
fullScaleRequested()
{
    const char *env = std::getenv("ENVY_SCALE");
    return env && std::strcmp(env, "full") == 0;
}

double
defaultScale()
{
    return fullScaleRequested() ? 1.0 : 0.25;
}

} // namespace envy
