/**
 * @file
 * Timed whole-system simulation (paper §5, Figures 13-15).
 *
 * The base eNVy controller is a single resource: host accesses
 * (160 ns with bus overhead), copy-on-write transfers, 4 us page
 * programs and 50 ms segment erases all serialise through it.  Long
 * operations (flush, clean, erase) are *suspendable*: a host access
 * arriving mid-operation waits only a small suspend penalty, and the
 * controller "waits a few microseconds before resuming the long
 * operation" (§3.4).  §5.3's observation that eliminating all
 * non-read work would only buy 2.5x at 30 kTPS is a direct
 * consequence of this single-resource model.
 *
 * Implementation: a sequential timeline.  Background work is applied
 * to the functional state the moment it is issued but pays its busy
 * time into a *debt* that only elapses in the gaps between host
 * accesses — which is exactly what suspend/resume hardware achieves.
 * Host accesses always have priority; transactions queue FIFO.
 *
 * Latency is reported the way the paper plots it: per host access,
 * from issue to completion (suspend penalty, COW transfer and any
 * full-buffer stall included; transaction queueing excluded — Fig 15
 * shows read latency staying near 180 ns even past saturation, which
 * is only possible with access-level latency).
 *
 * The §6 hardware extension (4-8 concurrent program/erase operations
 * in different banks) is modelled by dividing background busy time by
 * `parallelOps`.
 */

#ifndef ENVY_ENVYSIM_TIMED_SYSTEM_HH
#define ENVY_ENVYSIM_TIMED_SYSTEM_HH

#include <cstdint>

#include "envy/envy_store.hh"
#include "obs/metrics.hh"
#include "workload/tpca.hh"

namespace envy {

struct TimedParams
{
    EnvyConfig envy;      //!< metadata-only paper system (see system.hh)
    TpcaConfig tpca;      //!< pre-sized database (forStoreBytes)
    double requestRate = 10000.0; //!< offered transactions per second
    std::uint64_t seed = 1;

    double warmupSeconds = 20.0;
    double measureSeconds = 20.0;

    Tick hostAccessTime = 160;   //!< chip 100 ns + 60 ns overhead
    Tick cowTransferTime = 200;  //!< wide read + SRAM write cycles
    Tick tlbMissPenalty = 100;   //!< page-table walk in SRAM
    Tick suspendPenalty = 1000;  //!< finish the current program pulse
    Tick resumeBackoff = 2000;   //!< idle before background resumes
    std::uint32_t parallelOps = 1; //!< §6: concurrent bank operations
};

struct TimedResult
{
    double requestedTps = 0.0;
    double completedTps = 0.0;
    std::uint64_t transactions = 0;

    double readLatencyNs = 0.0;
    double writeLatencyNs = 0.0;
    double writeLatencyP99Ns = 0.0;

    // Controller busy breakdown over the measurement window (§5.3).
    double fracRead = 0.0;
    double fracFlush = 0.0;
    double fracClean = 0.0;
    double fracErase = 0.0;
    double fracIdle = 0.0;

    double cleaningCost = 0.0;
    double flushPagesPerSec = 0.0;
    std::uint64_t cleans = 0;
    std::uint64_t foregroundStalls = 0;

    /**
     * Store-registry snapshots (docs/OBSERVABILITY.md) at the warmup
     * boundary and after the measurement window.  Per-window figures
     * are their counter deltas, e.g.
     * `finalMetrics.counterDelta(warmupMetrics, "buf.flushes")`.
     */
    obs::MetricsSnapshot warmupMetrics;
    obs::MetricsSnapshot finalMetrics;

    /**
     * §5.5 lifetime estimate in days of continuous use for the
     * measured flush rate and cleaning cost.
     */
    double lifetimeDays(const Geometry &geom,
                        std::uint64_t rated_cycles) const;
};

TimedResult runTimedSim(const TimedParams &params);

} // namespace envy

#endif // ENVY_ENVYSIM_TIMED_SYSTEM_HH
