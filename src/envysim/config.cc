#include "envysim/config.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "envy/envy_store.hh"

namespace envy {

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            ENVY_FATAL("config: expected key=value, got '", arg, "'");
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
}

bool
Options::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Options::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    used_[key] = true;
    return it->second;
}

std::uint64_t
Options::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    used_[key] = true;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
Options::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    used_[key] = true;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Options::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    used_[key] = true;
    return it->second == "1" || it->second == "true" ||
           it->second == "yes";
}

PolicyKind
Options::getPolicy(const std::string &key, PolicyKind def) const
{
    const std::string v = getString(key, "");
    if (v.empty())
        return def;
    if (v == "greedy")
        return PolicyKind::Greedy;
    if (v == "fifo")
        return PolicyKind::Fifo;
    if (v == "locality-gathering" || v == "lg")
        return PolicyKind::LocalityGathering;
    if (v == "hybrid")
        return PolicyKind::Hybrid;
    ENVY_FATAL("config: unknown policy '", v,
               "'; use greedy|fifo|lg|hybrid");
}

void
Options::applyPersist(EnvyConfig &cfg) const
{
    cfg.persistPath = getString("persist", cfg.persistPath);
    cfg.persistCheckpointBytes = getUint("persist_checkpoint_bytes",
                                         cfg.persistCheckpointBytes);
}

void
Options::applyConcurrency(EnvyConfig &cfg) const
{
    cfg.numWorkers = static_cast<unsigned>(
        getUint("num_workers", cfg.numWorkers));
    cfg.numCleaners = static_cast<unsigned>(
        getUint("num_cleaners", cfg.numCleaners));
    cfg.cleanerWatermark = static_cast<std::uint32_t>(
        getUint("cleaner_watermark", cfg.cleanerWatermark));
}

void
Options::warnUnused() const
{
    for (const auto &[key, value] : values_) {
        if (!used_.count(key))
            ENVY_WARN("option '", key, "=", value, "' was not used");
    }
}

} // namespace envy
