#include "envysim/crash_explorer.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <sstream>

#include "db/tpca_db.hh"
#include "envysim/parallel.hh"
#include "sim/random.hh"
#include "txn/shadow.hh"

namespace envy {

namespace {

/**
 * A workload the explorer can crash anywhere: runs deterministic
 * operations against the store, maintains a reference model of the
 * expected contents, and knows — at every instant — which pages the
 * in-flight operation leaves in an either-or state.
 */
class WorkloadDriver
{
  public:
    virtual ~WorkloadDriver() = default;
    /** Run @p ops operations; may be cut short by PowerLoss. */
    virtual void run(std::uint64_t ops) = 0;
    /** Drop volatile state (the machine died mid-operation). */
    virtual void onPowerLost() = 0;
    /**
     * Compare the recovered store against the model; pages touched
     * by the interrupted operation may hold their pre- or post-image.
     * The resolved contents are adopted into the model.
     */
    virtual void verifyAfterRecovery(
        std::vector<std::string> &out) = 0;
    /** Exercise the recovered store some more (no crash possible). */
    virtual void aftershock(std::uint64_t ops) = 0;
    /** Strict model comparison (after the aftershock). */
    virtual void verifyExact(std::vector<std::string> &out) = 0;
};

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Random single-page-ish writes, a fraction inside shadow txns. */
class ChurnDriver final : public WorkloadDriver
{
  public:
    ChurnDriver(EnvyStore &store, const CrashExplorerConfig &cfg)
        : store_(store),
          cfg_(cfg),
          rng_(cfg.seed ^ 0x636875726E000000ull), // "churn"
          txns_(store),
          pageSize_(store.config().geom.pageSize),
          model_(store.size(), 0)
    {
    }

    void
    run(std::uint64_t ops) override
    {
        for (std::uint64_t i = 0; i < ops; ++i) {
            if (rng_.chance(cfg_.txnChance))
                txnOp();
            else
                plainWrite();
        }
    }

    void onPowerLost() override { txns_.powerLost(); }

    void
    verifyAfterRecovery(std::vector<std::string> &out) override
    {
        std::vector<std::uint8_t> got(pageSize_);
        const std::uint64_t npages = model_.size() / pageSize_;
        for (std::uint64_t p = 0; p < npages; ++p) {
            store_.read(p * pageSize_, got);
            const auto it = pending_.find(p);
            if (it != pending_.end()) {
                bool any = false;
                for (const auto &alt : it->second)
                    any = any || std::equal(got.begin(), got.end(),
                                            alt.begin());
                if (!any) {
                    out.push_back(format(
                        "page ", p, " matches neither the pre- nor "
                        "the post-image of the interrupted write"));
                }
                // Adopt whichever alternative recovery resolved to.
                std::copy(got.begin(), got.end(), modelPage(p));
            } else if (!std::equal(got.begin(), got.end(),
                                   modelPage(p))) {
                out.push_back(format(
                    "page ", p,
                    " diverged from the reference model"));
            }
        }
        pending_.clear();
    }

    void
    aftershock(std::uint64_t ops) override
    {
        for (std::uint64_t i = 0; i < ops; ++i)
            plainWrite();
        pending_.clear();
    }

    void
    verifyExact(std::vector<std::string> &out) override
    {
        std::vector<std::uint8_t> got(pageSize_);
        const std::uint64_t npages = model_.size() / pageSize_;
        for (std::uint64_t p = 0; p < npages; ++p) {
            store_.read(p * pageSize_, got);
            if (!std::equal(got.begin(), got.end(), modelPage(p))) {
                out.push_back(format("page ", p,
                                     " diverged after the "
                                     "aftershock workload"));
            }
        }
    }

  private:
    std::vector<std::uint8_t>::iterator
    modelPage(std::uint64_t page_index)
    {
        return model_.begin() +
               static_cast<std::ptrdiff_t>(page_index * pageSize_);
    }

    std::vector<std::uint8_t>
    modelPageCopy(std::uint64_t page_index)
    {
        return {modelPage(page_index), modelPage(page_index + 1)};
    }

    struct Op
    {
        Addr addr;
        std::vector<std::uint8_t> data;
    };

    Op
    genWrite()
    {
        const std::uint64_t size = model_.size();
        // Concentrate most writes in a hot quarter so pages are
        // rewritten, invalidated and cleaned repeatedly.
        const Addr addr = rng_.chance(0.7) ? rng_.below(size / 4)
                                           : rng_.below(size);
        std::uint64_t len = rng_.between(1, 2 * pageSize_);
        len = std::min<std::uint64_t>(len, size - addr);
        std::vector<std::uint8_t> data(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng_.next());
        return {addr, std::move(data)};
    }

    /** Pages an op touches get {before, after} alternatives. */
    void
    setPendingForWrite(const Op &op)
    {
        const std::uint64_t first = op.addr / pageSize_;
        const std::uint64_t last =
            (op.addr + op.data.size() - 1) / pageSize_;
        for (std::uint64_t p = first; p <= last; ++p) {
            std::vector<std::uint8_t> before = modelPageCopy(p);
            std::vector<std::uint8_t> after = before;
            const Addr page_base = p * pageSize_;
            const Addr lo = std::max<Addr>(op.addr, page_base);
            const Addr hi = std::min<Addr>(op.addr + op.data.size(),
                                           page_base + pageSize_);
            std::copy(op.data.begin() +
                          static_cast<std::ptrdiff_t>(lo - op.addr),
                      op.data.begin() +
                          static_cast<std::ptrdiff_t>(hi - op.addr),
                      after.begin() +
                          static_cast<std::ptrdiff_t>(lo - page_base));
            pending_[p] = {std::move(before), std::move(after)};
        }
    }

    void
    applyToModel(const Op &op)
    {
        std::copy(op.data.begin(), op.data.end(),
                  model_.begin() +
                      static_cast<std::ptrdiff_t>(op.addr));
    }

    void
    plainWrite()
    {
        const Op op = genWrite();
        setPendingForWrite(op);
        store_.write(op.addr, op.data);
        applyToModel(op);
        pending_.clear();
    }

    void
    txnOp()
    {
        const ShadowManager::TxnId id = txns_.begin();
        // First-touch pre-images, for the abort alternatives.
        std::map<std::uint64_t, std::vector<std::uint8_t>> pre;
        const std::uint64_t writes = 1 + rng_.below(3);
        for (std::uint64_t w = 0; w < writes; ++w) {
            const Op op = genWrite();
            const std::uint64_t first = op.addr / pageSize_;
            const std::uint64_t last =
                (op.addr + op.data.size() - 1) / pageSize_;
            for (std::uint64_t p = first; p <= last; ++p)
                pre.try_emplace(p, modelPageCopy(p));
            setPendingForWrite(op);
            txns_.write(id, op.addr, op.data);
            applyToModel(op);
            pending_.clear();
        }
        if (rng_.chance(cfg_.abortChance)) {
            // A crash mid-abort leaves each touched page either
            // rolled back or still holding the transaction's value.
            for (auto &[p, img] : pre)
                pending_[p] = {img, modelPageCopy(p)};
            txns_.abort(id);
            for (auto &[p, img] : pre)
                std::copy(img.begin(), img.end(), modelPage(p));
            pending_.clear();
        } else {
            // Commit releases shadows without touching page data, so
            // no either-or window exists.
            txns_.commit(id);
        }
    }

    EnvyStore &store_;
    const CrashExplorerConfig &cfg_;
    Rng rng_;
    ShadowManager txns_;
    std::uint32_t pageSize_;
    std::vector<std::uint8_t> model_;
    /** page -> allowed post-recovery images of the in-flight op. */
    std::map<std::uint64_t, std::vector<std::vector<std::uint8_t>>>
        pending_;
};

/** Atomic TPC-A debit/credit transactions with a balance model. */
class TpcaDriver final : public WorkloadDriver
{
  public:
    TpcaDriver(EnvyStore &store, const CrashExplorerConfig &cfg)
        : store_(store),
          cfg_(cfg),
          rng_(cfg.seed ^ 0x7470636100000000ull), // "tpca"
          txns_(store),
          db_(store, params(cfg))
    {
        acct_.resize(db_.accounts());
        tell_.resize(db_.tellers());
        brch_.resize(db_.branches());
        snapshot();
    }

    void
    run(std::uint64_t ops) override
    {
        for (std::uint64_t i = 0; i < ops; ++i) {
            const std::uint64_t a = rng_.below(db_.accounts());
            const std::int64_t amount =
                static_cast<std::int64_t>(rng_.between(1, 500)) - 250;
            pending_ = Pending{true, a, tellerOf(a),
                               branchOf(tellerOf(a)), amount};
            db_.runAtomic(txns_, a, amount);
            acct_[a] += amount;
            tell_[tellerOf(a)] += amount;
            brch_[branchOf(tellerOf(a))] += amount;
            pending_.active = false;
        }
    }

    void onPowerLost() override { txns_.powerLost(); }

    void
    verifyAfterRecovery(std::vector<std::string> &out) override
    {
        // Record-level either-or for the interrupted transaction:
        // each of its three records is independently pre or post (the
        // shadow sweep neither completes nor rolls back a torn
        // transaction — the page table is the only commit point).
        checkAll(out, true);
        snapshot(); // adopt what recovery resolved
        pending_.active = false;
    }

    void
    aftershock(std::uint64_t ops) override
    {
        run(ops);
    }

    void
    verifyExact(std::vector<std::string> &out) override
    {
        checkAll(out, false);
    }

  private:
    static TpcaDatabase::Params
    params(const CrashExplorerConfig &cfg)
    {
        TpcaDatabase::Params p;
        p.accounts = cfg.tpcaAccounts;
        p.accountsPerTeller =
            static_cast<std::uint32_t>(cfg.tpcaAccounts / 4);
        p.tellersPerBranch = 2;
        // One record per page: record updates are page-atomic, so
        // the record-level either-or verification is sound.
        p.recordBytes = cfg.store.geom.pageSize;
        return p;
    }

    std::uint64_t
    tellerOf(std::uint64_t account) const
    {
        return account / (cfg_.tpcaAccounts / 4);
    }

    std::uint64_t
    branchOf(std::uint64_t teller) const
    {
        return teller / 2;
    }

    void
    snapshot()
    {
        for (std::uint64_t a = 0; a < db_.accounts(); ++a)
            acct_[a] = db_.accountBalance(a);
        for (std::uint64_t t = 0; t < db_.tellers(); ++t)
            tell_[t] = db_.tellerBalance(t);
        for (std::uint64_t b = 0; b < db_.branches(); ++b)
            brch_[b] = db_.branchBalance(b);
    }

    void
    checkOne(std::vector<std::string> &out, const char *kind,
             std::uint64_t id, std::int64_t got, std::int64_t want,
             bool either_or)
    {
        if (got == want)
            return;
        if (either_or && pending_.active &&
            got == want + pending_.amount)
            return;
        out.push_back(format(kind, " ", id, " balance ", got,
                             " != expected ", want,
                             either_or && pending_.active
                                 ? format(" (or ",
                                          want + pending_.amount, ")")
                                 : std::string()));
    }

    void
    checkAll(std::vector<std::string> &out, bool allow_pending)
    {
        for (std::uint64_t a = 0; a < db_.accounts(); ++a) {
            checkOne(out, "account", a, db_.accountBalance(a),
                     acct_[a],
                     allow_pending && pending_.active &&
                         a == pending_.account);
        }
        for (std::uint64_t t = 0; t < db_.tellers(); ++t) {
            checkOne(out, "teller", t, db_.tellerBalance(t), tell_[t],
                     allow_pending && pending_.active &&
                         t == pending_.teller);
        }
        for (std::uint64_t b = 0; b < db_.branches(); ++b) {
            checkOne(out, "branch", b, db_.branchBalance(b), brch_[b],
                     allow_pending && pending_.active &&
                         b == pending_.branch);
        }
    }

    struct Pending
    {
        bool active = false;
        std::uint64_t account = 0;
        std::uint64_t teller = 0;
        std::uint64_t branch = 0;
        std::int64_t amount = 0;
    };

    EnvyStore &store_;
    const CrashExplorerConfig &cfg_;
    Rng rng_;
    ShadowManager txns_;
    TpcaDatabase db_;
    std::vector<std::int64_t> acct_, tell_, brch_;
    Pending pending_;
};

std::unique_ptr<WorkloadDriver>
makeDriver(EnvyStore &store, const CrashExplorerConfig &cfg)
{
    if (cfg.workload == CrashExplorerConfig::Workload::Tpca)
        return std::make_unique<TpcaDriver>(store, cfg);
    return std::make_unique<ChurnDriver>(store, cfg);
}

} // namespace

EnvyConfig
CrashExplorerConfig::churnStore()
{
    EnvyConfig cfg;
    cfg.geom.pageSize = 64;
    cfg.geom.blockBytes = 128; // 128 pages per segment
    cfg.geom.blocksPerChip = 4;
    cfg.geom.numBanks = 2; // 8 segments, 1024 physical pages
    // Enough slack that cleans stay cheap and a handful of retired
    // slots can never overflow a cleaning destination.
    cfg.geom.logicalPages = 640;
    cfg.geom.writeBufferPages = 16;
    cfg.partitionSize = 4;
    // Reserve rotation spreads erases almost perfectly on its own,
    // so only a zero threshold makes data rotations happen inside a
    // short exploration run.
    cfg.wearThreshold = 0;
    return cfg;
}

EnvyConfig
CrashExplorerConfig::tpcaStore()
{
    EnvyConfig cfg = churnStore();
    cfg.geom.blockBytes = 256; // 256 pages per segment
    cfg.geom.logicalPages = 1600;
    cfg.geom.writeBufferPages = 32;
    return cfg;
}

std::string
CrashExplorerResult::firstFailure() const
{
    for (const CrashCaseResult &c : cases) {
        if (!c.ok()) {
            return format("crash at ", c.point, " occurrence ",
                          c.occurrence, ": ", c.violations.front());
        }
    }
    return {};
}

CrashPointExplorer::CrashPointExplorer(CrashExplorerConfig cfg)
    : cfg_(std::move(cfg))
{
}

CrashCaseResult
CrashPointExplorer::runCase(const std::string &point,
                            std::uint64_t occurrence)
{
    CrashCaseResult cr;
    cr.point = point;
    cr.occurrence = occurrence;

    FaultPlan plan;
    plan.seed = cfg_.seed;
    plan.crashPoint = point;
    plan.crashOccurrence = occurrence;
    plan.programFailureRate = cfg_.programFailureRate;
    plan.eraseFailureRate = cfg_.eraseFailureRate;
    plan.failProgramOps = cfg_.failProgramOps;
    plan.failEraseOps = cfg_.failEraseOps;

    EnvyStore store(cfg_.store);
    auto driver = makeDriver(store, cfg_);
    FaultInjector inj(plan);
    inj.arm();
    inj.attachFlash(store.flash());
    inj.observeMetrics(&store.metrics());
    try {
        driver->run(cfg_.opsPerCase);
    } catch (const PowerLoss &) {
        cr.crashed = true;
    }
    inj.disarm();

    if (!cr.crashed) {
        cr.violations.push_back(
            "the planned crash point was never reached");
        return cr;
    }

    driver->onPowerLost();
    cr.recovery = store.powerFailAndRecover();

    InvariantChecker::Options opts;
    opts.expectNoShadows = true; // the sweep reclaims every shadow
    const InvariantReport inv = InvariantChecker::check(store, opts);
    cr.violations.insert(cr.violations.end(), inv.violations.begin(),
                         inv.violations.end());
    driver->verifyAfterRecovery(cr.violations);

    driver->aftershock(cfg_.aftershockOps);
    driver->verifyExact(cr.violations);
    const InvariantReport after = InvariantChecker::check(store, opts);
    for (const std::string &v : after.violations)
        cr.violations.push_back("after aftershock: " + v);

    // The observability layer must survive the crash too: recovery
    // re-registers its counters (idempotently) and their values must
    // agree with the RecoveryReport; the injector's fault.* counters
    // must agree with the injector itself.
    cr.metricsAfter = store.metrics().snapshot();
    auto checkCounter = [&](const char *name, std::uint64_t want) {
        const obs::MetricsSnapshot::Entry *e = cr.metricsAfter.find(name);
        if (!e) {
            cr.violations.push_back(
                format("metric ", name, " missing after recovery"));
        } else if (e->value != want) {
            cr.violations.push_back(format("metric ", name, " = ",
                                           e->value, " != expected ",
                                           want));
        }
    };
    checkCounter("recovery.runs", 1);
    checkCounter("recovery.stale_reclaimed",
                 cr.recovery.staleFlashReclaimed);
    checkCounter("recovery.shadows_swept", cr.recovery.shadowsSwept);
    checkCounter("recovery.buffer_kept", cr.recovery.bufferEntriesKept);
    checkCounter("recovery.orphans_dropped",
                 cr.recovery.bufferOrphansDropped);
    checkCounter("recovery.pages_repaired",
                 cr.recovery.staleFlashReclaimed +
                     cr.recovery.shadowsSwept +
                     cr.recovery.bufferOrphansDropped);
    checkCounter("recovery.cleans_resumed",
                 cr.recovery.cleanResumed ? 1 : 0);
    checkCounter("recovery.wear_resumed",
                 cr.recovery.wearResumed ? 1 : 0);
    checkCounter("fault.power_losses", 1);
    checkCounter("fault.program_failures",
                 inj.programFailuresInjected());
    checkCounter("fault.erase_failures", inj.eraseFailuresInjected());
    return cr;
}

CrashExplorerResult
CrashPointExplorer::run()
{
    CrashExplorerResult result;

    // Probe: the workload with no power loss (device-fault rates
    // still apply — they are part of every run), counting hits.
    {
        FaultPlan plan;
        plan.seed = cfg_.seed;
        plan.programFailureRate = cfg_.programFailureRate;
        plan.eraseFailureRate = cfg_.eraseFailureRate;
        plan.failProgramOps = cfg_.failProgramOps;
        plan.failEraseOps = cfg_.failEraseOps;
        EnvyStore store(cfg_.store);
        auto driver = makeDriver(store, cfg_);
        FaultInjector inj(plan);
        inj.arm();
        inj.attachFlash(store.flash());
        driver->run(cfg_.opsPerCase);
        inj.disarm();
        result.probeHits = inj.hitCounts();
    }

    // Schedule: every occurrence of every point, or a seeded sample
    // per point that always includes the first and the last hit.
    Rng pick(cfg_.seed ^ 0xC3A5C85C97CB3127ull);
    std::vector<std::pair<std::string, std::uint64_t>> schedule;
    for (const std::string &point : crash_points::allPoints()) {
        // persist.* points sit on the durable-store paths (journal
        // flush, checkpoint rename) that only a store with a
        // persistPath executes; the fork/SIGKILL crash harness
        // (tools/persist/crash_harness) owns those.
        if (cfg_.store.persistPath.empty() &&
            point.rfind("persist.", 0) == 0)
            continue;
        const auto it = result.probeHits.find(point);
        const std::uint64_t hits =
            it == result.probeHits.end() ? 0 : it->second;
        if (hits == 0) {
            result.pointsNeverHit.push_back(point);
            continue;
        }
        if (cfg_.maxCasesPerPoint == 0 ||
            hits <= cfg_.maxCasesPerPoint) {
            for (std::uint64_t o = 1; o <= hits; ++o)
                schedule.emplace_back(point, o);
        } else {
            std::set<std::uint64_t> sample{1, hits};
            while (sample.size() < cfg_.maxCasesPerPoint)
                sample.insert(pick.between(1, hits));
            for (const std::uint64_t o : sample)
                schedule.emplace_back(point, o);
        }
    }

    // Fan the cases out: each runCase builds its own store, driver
    // and injector (the crash-point sink is thread-local), so cases
    // share nothing; collecting results by schedule index keeps the
    // report identical at any job count.
    std::vector<std::function<CrashCaseResult()>> tasks;
    tasks.reserve(schedule.size());
    for (const auto &[point, occurrence] : schedule) {
        tasks.push_back([this, point = point,
                         occurrence = occurrence] {
            return runCase(point, occurrence);
        });
    }
    result.cases = parallelMap<CrashCaseResult>(cfg_.jobs,
                                                std::move(tasks));
    for (const CrashCaseResult &c : result.cases) {
        if (!c.ok())
            ++result.failures;
    }
    return result;
}

} // namespace envy
