/**
 * @file
 * Ready-made system configurations.
 *
 * paperSystem() is the Figure 12 machine: 2 GB of flash in 128
 * segments of 16 MB, a 16 MB (one-segment) SRAM write buffer, the
 * hybrid policy with 16-segment partitions, 80% utilization.  It runs
 * metadata-only so the timing experiments do not need 2 GB of host
 * memory.  Set `scale` below 1.0 to shrink the segment count for
 * quick runs (segment *size* is preserved — erase time per recovered
 * page is what shapes the throughput ceiling).
 */

#ifndef ENVY_ENVYSIM_SYSTEM_HH
#define ENVY_ENVYSIM_SYSTEM_HH

#include "envy/envy_store.hh"
#include "envysim/timed_system.hh"

namespace envy {

/** The paper's simulated 2 GB system (Fig 12), metadata-only. */
EnvyConfig paperConfig(double utilization = 0.8, double scale = 1.0);

/** A small fully-functional store for examples and tests. */
EnvyConfig tinyConfig();

/** Timed-simulation parameters for the Fig 13-15 experiments. */
TimedParams paperTimedParams(double request_rate,
                             double utilization = 0.8,
                             double scale = 1.0);

/** True when ENVY_SCALE=full is set (paper-length runs). */
bool fullScaleRequested();

/** Scale factor honouring ENVY_SCALE (full -> 1.0, else quick). */
double defaultScale();

} // namespace envy

#endif // ENVY_ENVYSIM_SYSTEM_HH
