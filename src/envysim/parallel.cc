#include "envysim/parallel.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace envy {

namespace {

/** Pending tasks allowed per worker before submit() blocks. */
constexpr std::size_t queueDepthPerJob = 4;

} // namespace

unsigned
ParallelRunner::defaultJobs()
{
    if (const char *env = std::getenv("ENVY_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
        ENVY_WARN("parallel: ignoring ENVY_JOBS=", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
    if (jobs_ == 1)
        return; // serial mode: submit() runs tasks inline
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelRunner::~ParallelRunner()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    queueWork_.notify_all();
    queueSpace_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ParallelRunner::noteException(std::size_t index)
{
    MutexLock lock(mutex_);
    if (!firstError_ || index < firstErrorIndex_) {
        firstError_ = std::current_exception();
        firstErrorIndex_ = index;
    }
}

void
ParallelRunner::runTask(const Task &task)
{
    try {
        task.fn();
    } catch (...) {
        noteException(task.index);
    }
    {
        MutexLock lock(mutex_);
        ++completed_;
    }
    allDone_.notify_all();
}

std::size_t
ParallelRunner::submit(std::function<void()> task)
{
    if (jobs_ == 1) {
        // Inline serial execution, through the same capture path as
        // the workers so errors surface at wait() in every mode.
        std::size_t index;
        {
            MutexLock lock(mutex_);
            index = submitted_++;
        }
        runTask(Task{index, std::move(task)});
        return index;
    }

    std::size_t index;
    {
        MutexLock lock(mutex_);
        // Explicit predicate loop: condition_variable_any::wait
        // releases and reacquires mutex_ itself, so the guarded
        // members are only read with the lock held.
        while (queue_.size() >= queueDepthPerJob * jobs_ && !stopping_)
            queueSpace_.wait(mutex_);
        ENVY_ASSERT(!stopping_, "parallel: submit after shutdown");
        index = submitted_++;
        queue_.push_back(Task{index, std::move(task)});
    }
    queueWork_.notify_one();
    return index;
}

void
ParallelRunner::wait()
{
    std::exception_ptr err;
    {
        MutexLock lock(mutex_);
        if (jobs_ > 1) {
            while (completed_ != submitted_)
                allDone_.wait(mutex_);
        }
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ParallelRunner::workerLoop()
{
    for (;;) {
        Task task;
        {
            MutexLock lock(mutex_);
            while (queue_.empty() && !stopping_)
                queueWork_.wait(mutex_);
            if (queue_.empty())
                return; // stopping
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        queueSpace_.notify_one();
        runTask(task);
    }
}

std::size_t
SweepRunner::defer(std::function<std::string()> cell)
{
    cells_.push_back(std::move(cell));
    return cells_.size() - 1;
}

std::vector<std::string>
SweepRunner::run()
{
    std::vector<std::function<std::string()>> cells;
    cells.swap(cells_);
    return parallelMap<std::string>(jobs_, std::move(cells));
}

} // namespace envy
