/**
 * @file
 * Small helpers shared by the benchmark harnesses: fixed-width table
 * printing in the style of the paper's figures, paper-vs-measured
 * comparison rows for EXPERIMENTS.md, command-line options common to
 * every bench (--jobs/--json/--smoke) and machine-readable JSON
 * output for the BENCH_*.json perf trajectory.
 */

#ifndef ENVY_ENVYSIM_EXPERIMENT_HH
#define ENVY_ENVYSIM_EXPERIMENT_HH

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace envy {

/** Console table with a banner, aligned columns and a footer note. */
class ResultTable
{
  public:
    explicit ResultTable(std::string title);

    void setColumns(std::initializer_list<std::string> names);
    void addRow(std::initializer_list<std::string> cells);
    void addRow(std::vector<std::string> cells);
    void addNote(std::string note);

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);
    static std::string integer(std::uint64_t v);
    static std::string percent(double fraction, int digits = 0);

    void print() const;

    /** Exactly what print() writes, as a string (determinism tests
     *  compare these byte for byte across job counts). */
    std::string toString() const;

    /** The table as a JSON object {title, columns, rows, notes}
     *  plus an optional `wall_ms` member when setWallMs() ran. */
    std::string toJson() const;

    const std::string &title() const { return title_; }

    /**
     * Wall-clock milliseconds spent producing the table (--time).
     * Kept out of toString() so the determinism tests — which diff
     * console output byte for byte across job counts — never see it;
     * it only shows up in the JSON document.
     */
    void setWallMs(double ms) { wallMs_ = ms; }
    double wallMs() const { return wallMs_; }

  private:
    /** Spaces between adjacent columns; the separator row derives
     *  its width from the same constant. */
    static constexpr std::size_t columnGap = 2;

    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
    double wallMs_ = -1.0; // < 0: not measured
};

/**
 * Command-line options shared by every bench binary:
 *
 *   --jobs N      worker threads for the sweep (default: ENVY_JOBS,
 *                 else hardware concurrency; 1 = exact serial run)
 *   --json PATH   also write the tables as JSON to PATH
 *   --trace PATH  write a JSONL event trace to PATH (forces --jobs 1:
 *                 trace sinks are thread-local, so only a serial run
 *                 captures the whole experiment)
 *   --smoke       reduced sweep for CI smoke runs
 *   --time        stamp each table with the wall-clock milliseconds
 *                 spent producing it (`wall_ms` in the JSON output;
 *                 the console tables stay byte-identical)
 *
 * Unknown arguments are a usage error (exit 2) so CI catches typos.
 */
struct BenchOptions
{
    unsigned jobs = 1;
    std::string jsonPath;
    std::string tracePath;
    bool smoke = false;
    bool time = false;

    static BenchOptions parse(int argc, char **argv);
};

/**
 * Collects a bench's ResultTables: prints each one as it is added
 * (preserving the serial harnesses' output) and, when --json was
 * given, writes them all to one JSON document on finish().
 */
class BenchReport
{
  public:
    BenchReport(std::string bench_name, const BenchOptions &opt);
    ~BenchReport();

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** Print @p table and retain it for the JSON document. */
    void add(const ResultTable &table);

    /**
     * Retain a metrics snapshot under @p label for the JSON
     * document's optional `metrics` block (one entry per labelled
     * snapshot, e.g. one per sweep point).
     */
    void addMetrics(const std::string &label,
                    const obs::MetricsSnapshot &snapshot);

    /** Write the JSON file if requested.  Returns an exit status. */
    int finish();

    /** The JSON document (schema envy-bench-v2), for tests. */
    std::string toJson() const;

  private:
    std::string bench_;
    BenchOptions opt_;
    std::vector<ResultTable> tables_;
    std::vector<std::pair<std::string, std::string>> metrics_;

    // --trace: a JSONL sink installed on the calling thread for the
    // report's lifetime (the options parser forces --jobs 1).
    std::unique_ptr<obs::JsonlFileSink> traceSink_;
    obs::TraceSink *prevSink_ = nullptr;

    // --time: the end of the previous table's measurement window.
    // add() charges everything since then to the incoming table, so
    // set-up work between tables lands on the table it produced.
    std::chrono::steady_clock::time_point mark_;
};

/** JSON string escaping (quotes added by the caller's context). */
std::string jsonEscape(const std::string &s);

} // namespace envy

#endif // ENVY_ENVYSIM_EXPERIMENT_HH
