/**
 * @file
 * Small helpers shared by the benchmark harnesses: fixed-width table
 * printing in the style of the paper's figures, and paper-vs-measured
 * comparison rows for EXPERIMENTS.md.
 */

#ifndef ENVY_ENVYSIM_EXPERIMENT_HH
#define ENVY_ENVYSIM_EXPERIMENT_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace envy {

/** Console table with a banner, aligned columns and a footer note. */
class ResultTable
{
  public:
    explicit ResultTable(std::string title);

    void setColumns(std::initializer_list<std::string> names);
    void addRow(std::initializer_list<std::string> cells);
    void addNote(std::string note);

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);
    static std::string integer(std::uint64_t v);
    static std::string percent(double fraction, int digits = 0);

    void print() const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

} // namespace envy

#endif // ENVY_ENVYSIM_EXPERIMENT_HH
